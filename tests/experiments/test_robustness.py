"""Tests for the A4 robustness ablation."""

import pytest

from repro.experiments import (
    DEFAULT_SIGMAS,
    paper_taskset,
    robustness_ablation,
)
from repro.platform import PerformanceModel, idgraf_platform


@pytest.fixture(scope="module")
def rows():
    perf = PerformanceModel(idgraf_platform(4, 4))
    return robustness_ablation(
        paper_taskset(), perf, sigmas=(0.0, 0.2, 0.8), seeds=(0, 1)
    )


class TestRobustness:
    def test_one_row_per_sigma(self, rows):
        assert [r.sigma for r in rows] == [0.0, 0.2, 0.8]

    def test_clean_case_one_round_wins(self, rows):
        clean = rows[0]
        assert clean.best_policy() == "one-round"
        assert clean.one_round < clean.self_scheduling

    def test_static_degrades_with_noise(self, rows):
        assert rows[-1].one_round > rows[0].one_round

    def test_crossover_under_heavy_noise(self, rows):
        # At sigma=0.8 the static plan's lead over self-scheduling is
        # gone (the dynamic policy absorbs the error).
        heavy = rows[-1]
        assert heavy.self_scheduling < heavy.one_round

    def test_validation(self):
        perf = PerformanceModel(idgraf_platform(1, 1))
        with pytest.raises(ValueError):
            robustness_ablation(paper_taskset(), perf, sigmas=())
        with pytest.raises(ValueError):
            robustness_ablation(paper_taskset(), perf, seeds=())

    def test_default_sigmas_sorted(self):
        assert list(DEFAULT_SIGMAS) == sorted(DEFAULT_SIGMAS)
