"""Tests for the calibration-sensitivity ablation."""

import pytest

from repro.experiments import gpu_half_length_sensitivity
from repro.platform import PAPER


class TestSensitivity:
    @pytest.fixture(scope="class")
    def rows(self):
        return gpu_half_length_sensitivity(half_lengths=(50.0, 220.0, 800.0))

    def test_t1_anchor_preserved(self, rows):
        # Whatever the half-length, the derived peak must reproduce
        # CUDASW++'s single-worker time: higher h -> higher peak.
        peaks = [r.gpu_peak_gcups for r in rows]
        assert peaks == sorted(peaks)
        assert peaks[0] > 20

    def test_crossover_robust(self, rows):
        assert all(r.crossover_holds for r in rows)

    def test_headline_stability(self, rows):
        t8 = [r.swdual_8w for r in rows]
        assert max(t8) / min(t8) < 1.15

    def test_validation(self):
        with pytest.raises(ValueError):
            gpu_half_length_sensitivity(half_lengths=())
        with pytest.raises(ValueError):
            gpu_half_length_sensitivity(half_lengths=(-1.0,))

    def test_paper_t1_constant_used(self):
        assert PAPER.cudasw_t1 == 785.26
