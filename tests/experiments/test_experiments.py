"""Tests for the experiment drivers (the table/figure regeneration).

These assert the DESIGN.md shape criteria rather than absolute numbers:
who wins, monotonicity, approximate factors against the paper.
"""

import pytest

from repro.experiments import (
    ExperimentResult,
    Series,
    knapsack_order_ablation,
    paper_taskset,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
    scheduler_ablation,
    tolerance_ablation,
)


@pytest.fixture(scope="module")
def table2():
    return run_table2()


@pytest.fixture(scope="module")
def table4():
    return run_table4(worker_counts=(2, 4, 8))


@pytest.fixture(scope="module")
def table5():
    return run_table5(worker_counts=(2, 4, 8))


class TestSeries:
    def test_decreasing(self):
        s = Series("x", {1: 3.0, 2: 2.0, 3: 2.0})
        assert s.is_decreasing()
        assert not s.is_decreasing(strict=True)

    def test_value_at(self):
        s = Series("x", {1: 3.0})
        assert s.value_at(1) == 3.0
        with pytest.raises(KeyError):
            s.value_at(2)

    def test_experiment_result_table(self):
        r = ExperimentResult(
            experiment_id="T",
            title="t",
            measured={"a": Series("a", {1: 1.0})},
            paper={"a": Series("a", {1: 2.0})},
        )
        out = r.table()
        assert "T: t" in out
        assert "(paper a)" in out

    def test_ratio_to_paper(self):
        r = ExperimentResult(
            experiment_id="T",
            title="t",
            measured={"a": Series("a", {1: 1.0})},
            paper={"a": Series("a", {1: 2.0})},
        )
        assert r.ratio_to_paper("a") == {1: 0.5}
        with pytest.raises(KeyError):
            r.ratio_to_paper("b")


class TestTable2(object):
    def test_all_apps_present(self, table2):
        assert set(table2.measured) == {
            "SWPS3",
            "STRIPED",
            "SWIPE",
            "CUDASW++",
            "SWDUAL",
        }

    def test_baselines_within_15pct_of_paper(self, table2):
        for name in ("SWPS3", "STRIPED", "SWIPE", "CUDASW++"):
            for w, ratio in table2.ratio_to_paper(name).items():
                assert 0.85 <= ratio <= 1.15, (name, w)

    def test_swdual_within_2x_of_paper(self, table2):
        for w, ratio in table2.ratio_to_paper("SWDUAL").items():
            assert 0.5 <= ratio <= 2.0, w

    def test_series_decreasing(self, table2):
        for name, series in table2.measured.items():
            assert series.is_decreasing(), name

    def test_crossover_swdual_vs_cudasw(self, table2):
        # Figure 7: CUDASW++ wins at 2 workers, SWDUAL wins at 4.
        sw = table2.measured["SWDUAL"]
        cu = table2.measured["CUDASW++"]
        assert cu.value_at(2) < sw.value_at(2)
        assert sw.value_at(4) < cu.value_at(4)


class TestTable3:
    def test_matches_spec(self):
        result = run_table3()
        assert result.matches_spec()
        assert "UniProt" in result.table()

    def test_five_rows(self):
        assert len(run_table3().stats) == 5


class TestTable4:
    def test_five_databases(self, table4):
        assert len(table4.times.measured) == 5

    def test_times_decrease_with_workers(self, table4):
        for name, series in table4.times.measured.items():
            assert series.is_decreasing(strict=True), name

    def test_gcups_increase_with_workers(self, table4):
        for name, series in table4.gcups.measured.items():
            values = [series.points[w] for w in series.xs]
            assert values == sorted(values), name

    def test_uniprot_dominates_times(self, table4):
        # UniProt is ~10x bigger than the others; its times must be the
        # largest at every worker count.
        uni = table4.times.measured["UniProt"]
        for name, series in table4.times.measured.items():
            if name == "UniProt":
                continue
            for w in (2, 4, 8):
                assert uni.value_at(w) > series.value_at(w), (name, w)

    def test_times_within_2x_of_paper(self, table4):
        for name in table4.times.measured:
            for w, ratio in table4.times.ratio_to_paper(name).items():
                assert 0.5 <= ratio <= 2.0, (name, w)

    def test_gcups_roughly_double_2_to_4_to_8(self, table4):
        for name, series in table4.gcups.measured.items():
            assert 1.6 <= series.value_at(4) / series.value_at(2) <= 2.4, name
            assert 1.3 <= series.value_at(8) / series.value_at(4) <= 2.2, name


class TestTable5:
    def test_both_sets_present(self, table5):
        assert set(table5.times.measured) == {"heterogeneous", "homogeneous"}

    def test_heterogeneous_takes_longer(self, table5):
        # ~3.7x more residues in the heterogeneous set.
        het = table5.times.measured["heterogeneous"]
        hom = table5.times.measured["homogeneous"]
        for w in (2, 4, 8):
            assert het.value_at(w) > 2.5 * hom.value_at(w)

    def test_gcups_similar_for_both_sets(self, table5):
        # Section V-C's point: the allocation handles both shapes; the
        # achieved GCUPS of the two sets stay within ~25%.
        het = table5.gcups.measured["heterogeneous"]
        hom = table5.gcups.measured["homogeneous"]
        for w in (2, 4, 8):
            assert het.value_at(w) / hom.value_at(w) == pytest.approx(1.0, abs=0.25)

    def test_times_within_2x_of_paper(self, table5):
        for name in table5.times.measured:
            for w, ratio in table5.times.ratio_to_paper(name).items():
                assert 0.4 <= ratio <= 2.0, (name, w)


class TestAblations:
    @pytest.fixture(scope="class")
    def tasks(self):
        return paper_taskset()

    def test_ratio_order_is_best_or_tied(self, tasks):
        rows = knapsack_order_ablation(tasks, 4, 4)
        by_name = {r.order: r.makespan for r in rows}
        best = min(by_name.values())
        assert by_name["ratio (paper)"] == pytest.approx(best, rel=1e-9)

    def test_tolerance_iterations_monotone(self, tasks):
        rows = tolerance_ablation(tasks, 4, 4)
        iters = [r.iterations for r in rows]
        assert iters == sorted(iters)
        makespans = [r.makespan for r in rows]
        assert makespans[-1] <= makespans[0] + 1e-9

    def test_scheduler_ablation_sorted_and_swdual_beats_naive(self, tasks):
        rows = scheduler_ablation(tasks, 4, 4)
        makespans = [r.makespan for r in rows]
        assert makespans == sorted(makespans)
        by_name = {r.scheduler: r.makespan for r in rows}
        for naive in ("self-scheduling", "equal-power", "proportional"):
            assert by_name["swdual-2approx"] < by_name[naive]
