"""Tests for the run-everything evaluation driver."""

import pytest

from repro.experiments import run_all


@pytest.fixture(scope="module")
def summary():
    return run_all()


class TestRunAll:
    def test_all_shape_checks_pass(self, summary):
        checks = summary.shape_checks()
        failing = [name for name, ok in checks.items() if not ok]
        assert not failing, failing

    def test_render_contains_all_sections(self, summary):
        text = summary.render()
        assert "Table II" in text
        assert "Table III" in text
        assert "Table IV" in text
        assert "Table V" in text
        assert "A1: order" in text
        assert "A4: sigma" in text

    def test_deterministic(self, summary):
        again = run_all()
        assert again.table2.measured["SWDUAL"].points == summary.table2.measured[
            "SWDUAL"
        ].points

    def test_seed_changes_database_not_shape(self):
        other = run_all(seed=99)
        checks = other.shape_checks()
        assert all(checks.values()), checks
