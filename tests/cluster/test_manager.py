"""ShardManager lifecycle: spawn, supervise, restart, adopt."""

import pytest

from repro.cluster import ClusterTopology, ShardEndpoint, ShardManager
from repro.sequences import small_database

from tests.cluster.conftest import SERVICE_KWARGS, wait_until


@pytest.fixture(scope="module")
def manager(db):
    with ShardManager(
        database=db,
        num_shards=2,
        service_kwargs=SERVICE_KWARGS,
        health_interval_s=0.2,
    ) as m:
        yield m


class TestValidation:
    def test_needs_exactly_one_source(self, db):
        topo = ClusterTopology("t", (ShardEndpoint("s0", "127.0.0.1", 7731),))
        with pytest.raises(ValueError, match="exactly one"):
            ShardManager(database=db, topology=topo)
        with pytest.raises(ValueError, match="exactly one"):
            ShardManager()

    def test_negative_restart_budget(self, db):
        with pytest.raises(ValueError, match="max_restarts"):
            ShardManager(database=db, max_restarts=-1)

    def test_oversized_shard_count_clamps_and_warns(self):
        tiny = small_database(num_sequences=3, mean_length=30, seed=7)
        with pytest.warns(UserWarning, match="clamp"):
            manager = ShardManager(database=tiny, num_shards=10)
        # Never started, nothing to close — but close() must be safe.
        assert len(manager.shard_names) == 3
        manager.close()


class TestSpawnedCluster:
    def test_every_shard_serves(self, manager):
        assert manager.shard_names == ["shard0", "shard1"]
        endpoints = manager.endpoints()
        assert all(e is not None for e in endpoints.values())
        for endpoint in endpoints.values():
            assert ShardManager._ping(endpoint)

    def test_topology_roundtrip(self, manager):
        topo = manager.topology()
        assert [e.name for e in topo] == manager.shard_names
        for name in manager.shard_names:
            assert topo.endpoint(name) == manager.endpoints()[name]

    def test_snapshot_shape(self, manager):
        snap = manager.snapshot()
        assert set(snap) == set(manager.shard_names)
        for entry in snap.values():
            assert entry["owned"] is True
            assert entry["state"] == "up"
            assert entry["pid"] is not None
            assert entry["endpoint"] is not None

    def test_kill_is_restarted_by_supervision(self, manager):
        changed = []
        manager.on_change(changed.append)
        before = manager.snapshot()["shard1"]["restarts"]
        old_pid = manager.pid("shard1")
        manager.kill_shard("shard1")
        wait_until(
            lambda: (
                manager.snapshot()["shard1"]["state"] == "up"
                and manager.pid("shard1") not in (None, old_pid)
            ),
            message="supervisor restart of shard1",
        )
        snap = manager.snapshot()["shard1"]
        assert snap["restarts"] == before + 1
        assert ShardManager._ping(manager.endpoints()["shard1"])
        assert "shard1" in changed
        manager.on_change(None)

    def test_rolling_restart_keeps_cluster_up(self, manager):
        old_pids = {name: manager.pid(name) for name in manager.shard_names}
        manager.rolling_restart(settle_timeout_s=30.0)
        for name in manager.shard_names:
            assert manager.pid(name) != old_pids[name]
            assert ShardManager._ping(manager.endpoints()[name])
            assert manager.snapshot()[name]["state"] == "up"


class TestRestartBudget:
    def test_exhausted_budget_marks_failed(self, db):
        with ShardManager(
            database=db,
            num_shards=2,
            service_kwargs=SERVICE_KWARGS,
            max_restarts=0,
            health_interval_s=0.1,
        ) as manager:
            manager.kill_shard("shard0")
            wait_until(
                lambda: manager.snapshot()["shard0"]["state"] == "failed",
                message="shard0 to exhaust its restart budget",
            )
            # The other shard is untouched.
            assert manager.snapshot()["shard1"]["state"] == "up"


class TestAdoptedCluster:
    def test_adopt_pings_and_tracks_liveness(self, manager):
        adopted = ShardManager(topology=manager.topology(), health_interval_s=30.0)
        try:
            adopted.start()
            snap = adopted.snapshot()
            assert all(entry["state"] == "up" for entry in snap.values())
            assert all(entry["owned"] is False for entry in snap.values())
        finally:
            adopted.close()
        # Closing an adopted manager must not stop the real shards.
        for endpoint in manager.endpoints().values():
            assert ShardManager._ping(endpoint)

    def test_adopted_dead_endpoint_goes_down(self):
        # Nothing listens on this port (bound then released).
        import socket

        with socket.create_server(("127.0.0.1", 0)) as s:
            port = s.getsockname()[1]
        topo = ClusterTopology("t", (ShardEndpoint("ghost", "127.0.0.1", port),))
        adopted = ShardManager(topology=topo, health_interval_s=30.0)
        try:
            adopted.start()
            assert adopted.snapshot()["ghost"]["state"] == "down"
        finally:
            adopted.close()

    def test_adopted_shards_cannot_be_restarted_here(self, manager):
        adopted = ShardManager(topology=manager.topology(), health_interval_s=30.0)
        try:
            adopted.start()
            name = manager.shard_names[0]
            with pytest.raises(ValueError, match="adopted"):
                adopted.restart_shard(name)
            with pytest.raises(ValueError, match="no running process"):
                adopted.kill_shard(name)
        finally:
            adopted.close()
