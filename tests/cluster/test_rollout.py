"""Drain-first database rollout across a live sharded cluster: the
manager re-cuts the new generation over the existing shards, restarts
them one at a time, and surfaces the cluster generation in its
snapshot."""

import pytest

from repro.cluster import ClusterTopology, ShardEndpoint, ShardManager
from repro.sequences import Sequence, SequenceDatabase, small_database
from repro.service import SearchClient

from tests.cluster.conftest import SERVICE_KWARGS


@pytest.fixture(scope="module")
def db():
    return small_database(num_sequences=24, mean_length=60, seed=41)


@pytest.fixture()
def manager(db):
    with ShardManager(
        database=db,
        num_shards=2,
        service_kwargs=SERVICE_KWARGS,
        health_interval_s=0.2,
    ) as m:
        yield m


def _cluster_census(manager):
    """Total sequences served across all shards."""
    total = 0
    for endpoint in manager.endpoints().values():
        with SearchClient(endpoint.host, endpoint.port) as client:
            info = client.db_info()
            total += info["num_sequences"]
            stats = client.stats()
            assert stats["database"]["ordinal"] == info["ordinal"]
    return total


class TestRollout:
    def test_rollout_swaps_every_shard(self, manager, db):
        assert manager.generation == 0
        assert _cluster_census(manager) == len(db)
        template = next(iter(db))
        grown = SequenceDatabase(
            db.name,
            list(db)
            + [
                Sequence.from_text(
                    f"roll_{i}", template.text, alphabet=template.alphabet
                )
                for i in range(4)
            ],
        )
        assert manager.rollout_database(grown) == 1
        assert manager.generation == 1
        # Every shard restarted onto its cut of the new generation; the
        # cuts partition the database exactly.
        assert _cluster_census(manager) == len(grown)
        for entry in manager.snapshot().values():
            assert entry["generation"] == 1
            assert entry["state"] == "up"
        # A planted copy of a shard sequence is now searchable
        # somewhere in the cluster.
        found = []
        for endpoint in manager.endpoints().values():
            with SearchClient(endpoint.host, endpoint.port) as client:
                out = client.query(template.text, top=5)
                found.extend(h[0] for h in out["hits"])
        assert "roll_0" in found or any(f.startswith("roll_") for f in found)

    def test_second_rollout_keeps_counting(self, manager, db):
        survivors = [s for s in db if s.id != next(iter(db)).id]
        shrunk = SequenceDatabase(db.name, survivors)
        assert manager.rollout_database(shrunk) == 1
        assert manager.rollout_database(db) == 2
        assert _cluster_census(manager) == len(db)

    def test_too_small_database_rejected(self, manager):
        lone = small_database(num_sequences=1, mean_length=30, seed=9)
        with pytest.warns(UserWarning, match="clamp"):
            with pytest.raises(ValueError, match="cannot fill"):
                manager.rollout_database(lone)
        assert manager.generation == 0

    def test_adopted_only_manager_rejected(self, db):
        topo = ClusterTopology(
            "t", (ShardEndpoint("s0", "127.0.0.1", 7731),)
        )
        manager = ShardManager(topology=topo)
        try:
            with pytest.raises(ValueError, match="no owned shards"):
                manager.rollout_database(db)
        finally:
            manager.close()

    def test_snapshot_hides_generation_for_adopted_shards(self, db):
        topo = ClusterTopology(
            "t", (ShardEndpoint("s0", "127.0.0.1", 7731),)
        )
        manager = ShardManager(topology=topo)
        try:
            snap = manager.snapshot()
            assert snap["s0"]["generation"] is None
        finally:
            manager.close()
