"""Topology model and TOML/JSON loading for adopted clusters."""

import pytest

from repro.cluster import ClusterTopology, ShardEndpoint, load_topology


class TestShardEndpoint:
    def test_address(self):
        e = ShardEndpoint("shard0", "10.0.0.1", 7731)
        assert e.address == ("10.0.0.1", 7731)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(name="", host="h", port=1),
            dict(name="s", host="", port=1),
            dict(name="s", host="h", port=0),
            dict(name="s", host="h", port=65536),
            dict(name="s", host="h", port=-7731),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ShardEndpoint(**kwargs)


class TestClusterTopology:
    def _two(self):
        return (
            ShardEndpoint("a", "127.0.0.1", 7731),
            ShardEndpoint("b", "127.0.0.1", 7732),
        )

    def test_len_iter_lookup(self):
        topo = ClusterTopology("t", self._two())
        assert len(topo) == 2
        assert [e.name for e in topo] == ["a", "b"]
        assert topo.endpoint("b").port == 7732
        with pytest.raises(KeyError):
            topo.endpoint("missing")

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="no shards"):
            ClusterTopology("t", ())

    def test_duplicate_names_rejected(self):
        dupe = (
            ShardEndpoint("a", "127.0.0.1", 7731),
            ShardEndpoint("a", "127.0.0.1", 7732),
        )
        with pytest.raises(ValueError, match="duplicate"):
            ClusterTopology("t", dupe)


class TestLoadTopology:
    def test_toml(self, tmp_path):
        path = tmp_path / "cluster.toml"
        path.write_text(
            'name = "prod"\n'
            "[[shards]]\n"
            'name = "s0"\nhost = "10.0.0.11"\nport = 7731\n'
            "[[shards]]\n"
            'name = "s1"\nhost = "10.0.0.12"\nport = 7731\n'
        )
        topo = load_topology(path)
        assert topo.name == "prod"
        assert [e.name for e in topo] == ["s0", "s1"]
        assert topo.endpoint("s0").host == "10.0.0.11"

    def test_json(self, tmp_path):
        path = tmp_path / "cluster.json"
        path.write_text(
            '{"name": "lab", "shards": ['
            '{"name": "s0", "host": "127.0.0.1", "port": 7731},'
            '{"name": "s1", "host": "127.0.0.1", "port": 7732}]}'
        )
        topo = load_topology(path)
        assert topo.name == "lab"
        assert len(topo) == 2

    def test_defaults_filled_in(self, tmp_path):
        """Missing name falls back to the file stem; missing shard
        names/hosts get positional/loopback defaults."""
        path = tmp_path / "mycluster.json"
        path.write_text('{"shards": [{"port": 7731}, {"port": 7732}]}')
        topo = load_topology(path)
        assert topo.name == "mycluster"
        assert [e.name for e in topo] == ["shard0", "shard1"]
        assert all(e.host == "127.0.0.1" for e in topo)

    @pytest.mark.parametrize(
        "filename,body,match",
        [
            ("bad.toml", "name = [unclosed", "invalid TOML"),
            ("bad.json", "{not json", "invalid JSON"),
            ("empty.json", '{"name": "x"}', "non-empty 'shards'"),
            ("list.json", "[1, 2]", "mapping"),
            ("noport.json", '{"shards": [{"name": "s0"}]}', "integer 'port'"),
            ("strport.json", '{"shards": [{"port": "abc"}]}', "integer 'port'"),
            ("entry.json", '{"shards": ["s0"]}', "mapping"),
        ],
    )
    def test_invalid_files(self, tmp_path, filename, body, match):
        path = tmp_path / filename
        path.write_text(body)
        with pytest.raises(ValueError, match=match):
            load_topology(path)
