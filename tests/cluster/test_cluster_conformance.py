"""Acceptance: a 3-shard cluster answers bit-identically to one
unsharded SearchService — exact full-scan and heuristic pipeline modes
alike, score ties included.

The oracle is a real (unsharded) service process answering the same
wire queries, not an in-process search: this pins the whole stack —
protocol, admission, shard scan, scatter-gather merge — to the single
service's observable behaviour.
"""

import threading

import pytest

from repro.cluster import ScatterGatherRouter, ShardManager
from repro.sequences import Sequence, SequenceDatabase, small_database
from repro.service import SearchClient, SearchService

from tests.cluster.conftest import SERVICE_KWARGS, TOP


@pytest.fixture(scope="module")
def tie_db():
    """Duplicated sequences spread across shard cut points, so the
    merge must reproduce the single service's tie ordering exactly."""
    base = small_database(num_sequences=18, mean_length=50, seed=77)
    clones = [
        Sequence(id=f"dup{i}_{c}", codes=base[i].codes)
        for c in range(2)
        for i in range(6)
    ]
    return SequenceDatabase("conformance", list(base) + clones)


@pytest.fixture(scope="module")
def oracle_service(tie_db):
    service = SearchService(tie_db, port=0, **SERVICE_KWARGS)
    service.start()
    yield service
    service.shutdown()


@pytest.fixture(scope="module")
def cluster(tie_db):
    with ShardManager(
        database=tie_db, num_shards=3, service_kwargs=SERVICE_KWARGS
    ) as manager:
        with ScatterGatherRouter(manager, top_hits=TOP) as router:
            yield router


@pytest.fixture(scope="module")
def conformance_queries(queries, tie_db):
    # The standard query set plus a verbatim database sequence: a
    # guaranteed perfect self-hit shared by every duplicate clone —
    # the hardest tie the merge can face.
    return list(queries[:4]) + [Sequence(id="selfhit", codes=tie_db[0].codes)]


def _ask(port, sequence, pipeline):
    with SearchClient("127.0.0.1", port, timeout=60.0) as client:
        outcome = client.query(sequence, top=TOP, pipeline=pipeline)
    assert outcome["type"] == "result", outcome
    return outcome


@pytest.mark.parametrize("pipeline", [False, True], ids=["exact", "pipeline"])
def test_cluster_matches_unsharded_service(
    oracle_service, cluster, conformance_queries, pipeline
):
    for q in conformance_queries:
        expected = _ask(oracle_service.port, q, pipeline)
        got = _ask(cluster.port, q, pipeline)
        assert not got.get("partial"), got
        assert got["hits"] == expected["hits"], (q.id, pipeline)


def test_concurrent_clients_stay_conformant(
    oracle_service, cluster, conformance_queries
):
    """Several clients hammering the router concurrently must each see
    the oracle's exact hit lists (no cross-query state bleed)."""
    expected = {
        q.id: _ask(oracle_service.port, q, False)["hits"]
        for q in conformance_queries
    }
    failures = []

    def one_client(offset):
        try:
            with SearchClient("127.0.0.1", cluster.port, timeout=60.0) as client:
                ordered = list(conformance_queries)
                ordered = ordered[offset:] + ordered[:offset]
                for q in ordered:
                    outcome = client.query(q, top=TOP)
                    if outcome["hits"] != expected[q.id]:
                        failures.append((offset, q.id, outcome))
        except Exception as exc:  # noqa: BLE001 - surfaced via failures
            failures.append((offset, "exception", repr(exc)))

    threads = [
        threading.Thread(target=one_client, args=(i,)) for i in range(3)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert not failures, failures
