"""ScatterGatherRouter: fan-out, merge exactness, failure degradation.

Two kinds of shard sit behind the router here: real spawned
SearchService processes (end-to-end paths, SIGKILL drill) and scripted
in-process NDJSON servers (deterministic reject/error/stall behaviour
that a real service only shows under race-prone load).
"""

import json
import socket
import threading
import time

import pytest

from repro.cluster import (
    ClusterTopology,
    ScatterGatherRouter,
    ShardEndpoint,
    ShardManager,
)
from repro.cluster.router import ShardFailure
from repro.engine import Hit, QueryResult, merge_query_results
from repro.service import RetryPolicy, SearchClient

from tests.cluster.conftest import SERVICE_KWARGS, TOP, wait_until


# -- scripted shard ----------------------------------------------------


class ScriptedShard:
    """A minimal NDJSON shard whose query answers follow a script.

    ``script`` is a callable ``(message_dict, query_number) -> dict |
    None``; returning ``None`` leaves the query unanswered (stall).
    Non-query verbs get just enough protocol to satisfy the manager.
    """

    def __init__(self, script):
        self.script = script
        self.queries_seen = 0
        self._lock = threading.Lock()
        self._sock = socket.create_server(("127.0.0.1", 0))
        self._sock.settimeout(0.1)
        self.port = self._sock.getsockname()[1]
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._accept_loop, daemon=True)
        self._thread.start()

    def endpoint(self, name):
        return ShardEndpoint(name, "127.0.0.1", self.port)

    def close(self):
        self._stop.set()
        self._sock.close()
        self._thread.join(timeout=5)

    def _accept_loop(self):
        while not self._stop.is_set():
            try:
                conn, _ = self._sock.accept()
            except TimeoutError:
                continue
            except OSError:
                return
            threading.Thread(
                target=self._serve, args=(conn,), daemon=True
            ).start()

    def _serve(self, conn):
        try:
            reader = conn.makefile("rb")
            while not self._stop.is_set():
                line = reader.readline()
                if not line:
                    return
                message = json.loads(line)
                if message.get("verb") == "ping":
                    reply = {"type": "pong"}
                elif message.get("verb") == "query":
                    with self._lock:
                        self.queries_seen += 1
                        number = self.queries_seen
                    reply = self.script(message, number)
                    if reply is None:
                        continue  # stall: never answer this query
                else:
                    reply = {"type": "error", "reason": "unsupported"}
                conn.sendall(json.dumps(reply).encode() + b"\n")
        except (OSError, ValueError):
            pass
        finally:
            conn.close()


def result_script(hits):
    """A script that always answers with the same hit list."""

    def script(message, number):
        return {"type": "result", "id": message.get("id"), "hits": hits}

    return script


def scripted_router(shards, **kwargs):
    """Router over a static topology of ScriptedShards."""
    topo = ClusterTopology(
        "scripted",
        tuple(s.endpoint(f"shard{i}") for i, s in enumerate(shards)),
    )
    kwargs.setdefault("retry", RetryPolicy(max_attempts=2, jitter_cap_s=0.0))
    return ScatterGatherRouter(topo, **kwargs)


# -- real-cluster fixtures ---------------------------------------------


@pytest.fixture(scope="module")
def cluster(db):
    with ShardManager(
        database=db,
        num_shards=3,
        service_kwargs=SERVICE_KWARGS,
        health_interval_s=0.2,
    ) as manager:
        with ScatterGatherRouter(manager, top_hits=TOP) as router:
            yield manager, router


@pytest.fixture
def client(cluster):
    _, router = cluster
    with SearchClient("127.0.0.1", router.port, timeout=30.0) as c:
        yield c


# -- construction ------------------------------------------------------


class TestValidation:
    def _topo(self):
        return ClusterTopology("t", (ShardEndpoint("s0", "127.0.0.1", 7731),))

    def test_bad_parameters(self):
        with pytest.raises(ValueError, match="top_hits"):
            ScatterGatherRouter(self._topo(), top_hits=0)
        with pytest.raises(ValueError, match="max_in_flight"):
            ScatterGatherRouter(self._topo(), max_in_flight=0)
        with pytest.raises(ValueError, match="ewma_alpha"):
            ScatterGatherRouter(self._topo(), ewma_alpha=1.5)

    def test_double_start_rejected(self):
        shard = ScriptedShard(result_script([]))
        try:
            with scripted_router([shard]) as router:
                with pytest.raises(RuntimeError, match="already started"):
                    router.start()
        finally:
            shard.close()


# -- end-to-end over real shards ---------------------------------------


class TestFanOut:
    def test_merged_topk_bit_identical_to_oracle(self, client, queries, reference):
        for q in queries:
            outcome = client.query(q, top=TOP)
            assert outcome["type"] == "result"
            assert not outcome.get("partial")
            assert outcome["hits"] == reference[q.id], q.id

    def test_worker_field_reports_fanout(self, client, queries):
        outcome = client.query(queries[0], top=TOP)
        assert outcome["worker"] == "router[3/3]"

    def test_top_capped_at_router_limit(self, client, queries):
        outcome = client.query(queries[0], top=TOP + 50)
        assert outcome["type"] == "result"
        assert len(outcome["hits"]) <= TOP

    def test_streamed_partials_then_result(self, client, cluster, queries, reference):
        manager, _ = cluster
        qid = client.submit(queries[0], top=TOP, stream=True)
        messages = list(client.collect_stream(qid))
        partials, terminal = messages[:-1], messages[-1]
        assert sorted(p["shard"] for p in partials) == manager.shard_names
        assert all(p["type"] == "partial" for p in partials)
        assert terminal["type"] == "result"
        assert terminal["hits"] == reference[queries[0].id]
        assert all(p["latency_s"] >= 0 for p in partials)

    def test_protocol_errors(self, client):
        client._send({"verb": "query"})  # no sequence
        assert client.collect(1)[0]["type"] == "error"
        client._send({"verb": "query", "sequence": "ACDE", "top": 0})
        assert client.collect(1)[0]["type"] == "error"
        client._send({"verb": "query", "sequence": "ACDE", "pipeline": "yes"})
        assert client.collect(1)[0]["type"] == "error"
        client._send({"verb": "frobnicate"})
        outcome = client.collect(1)[0]
        assert outcome["type"] == "error"
        assert "unknown verb" in outcome["reason"]

    def test_ping(self, client):
        assert client.ping()


class TestIntrospection:
    def test_stats_snapshot(self, client, cluster, queries):
        manager, _ = cluster
        client.query(queries[0], top=TOP)
        snapshot = client.stats()
        assert snapshot["kind"] == "router"
        assert snapshot["topology"] == {"shards": 3, "managed": True}
        assert snapshot["requests"]["received"] >= 1
        assert snapshot["requests"]["completed"] >= 1
        assert set(snapshot["shards"]) == set(manager.shard_names)
        for shard in snapshot["shards"].values():
            assert shard["queries"] >= 1
            assert shard["endpoint"] is not None
        assert set(snapshot["supervision"]) == set(manager.shard_names)

    def test_prometheus_metrics(self, client, queries):
        client.query(queries[0], top=TOP)
        body = client.metrics()
        assert "swdual_router_queries_total" in body
        assert 'swdual_router_shard_queries_total{shard="shard0"}' in body
        assert "swdual_router_latency_seconds" in body


class TestFailureDegradation:
    def test_sigkill_mid_flight_degrades_to_partial_then_recovers(
        self, db, queries, reference
    ):
        with ShardManager(
            database=db,
            num_shards=3,
            service_kwargs=SERVICE_KWARGS,
            health_interval_s=0.2,
        ) as manager:
            with ScatterGatherRouter(
                manager, top_hits=TOP, shard_timeout_s=5.0,
                retry=RetryPolicy(max_attempts=2, jitter_cap_s=0.0),
            ) as router:
                with SearchClient("127.0.0.1", router.port, timeout=60.0) as c:
                    assert c.query(queries[0], top=TOP)["hits"] == (
                        reference[queries[0].id]
                    )
                    victim_pid = manager.pid("shard1")
                    manager.kill_shard("shard1")
                    started = time.monotonic()
                    outcome = c.query(queries[1], top=TOP, id="drill")
                    elapsed = time.monotonic() - started
                    # Never a hang: bounded by the shard timeout budget,
                    # and in practice a dead TCP peer fails fast.
                    assert elapsed < 30.0
                    assert outcome["type"] == "result"
                    assert outcome["partial"] is True
                    assert outcome["shards_failed"] == ["shard1"]
                    # Survivors' merged hits are the oracle's minus
                    # anything only shard1 held — verify it is exactly
                    # the merge over the two live shards.
                    assert len(outcome["hits"]) >= 1
                    # Supervisor brings shard1 back; full answers resume.
                    wait_until(
                        lambda: (
                            manager.snapshot()["shard1"]["state"] == "up"
                            and manager.pid("shard1") not in (None, victim_pid)
                        ),
                        timeout_s=30.0,
                        message="shard1 restart",
                    )
                    wait_until(
                        lambda: not c.query(queries[2], top=TOP).get("partial"),
                        timeout_s=20.0,
                        message="full (non-partial) answers to resume",
                    )
                    final = c.query(queries[3], top=TOP)
                    assert final["hits"] == reference[queries[3].id]
                    assert not final.get("partial")

    def test_all_shards_down_is_retryable_error_not_hang(self):
        # Bind-then-release two ports so nothing listens on them.
        ports = []
        for _ in range(2):
            with socket.create_server(("127.0.0.1", 0)) as s:
                ports.append(s.getsockname()[1])
        topo = ClusterTopology(
            "dead",
            tuple(
                ShardEndpoint(f"shard{i}", "127.0.0.1", p)
                for i, p in enumerate(ports)
            ),
        )
        with ScatterGatherRouter(
            topo, top_hits=TOP, shard_timeout_s=2.0,
            retry=RetryPolicy(max_attempts=1),
        ) as router:
            with SearchClient("127.0.0.1", router.port, timeout=30.0) as c:
                started = time.monotonic()
                outcome = c.query("ACDEFGHIKL", top=TOP)
                assert time.monotonic() - started < 15.0
                assert outcome["type"] == "error"
                assert outcome["retryable"] is True
                assert "all 2 shards failed" in outcome["reason"]


class TestScriptedFailures:
    def test_shard_reject_is_retried_per_hint(self):
        def reject_once(message, number):
            if number == 1:
                return {
                    "type": "rejected",
                    "id": message.get("id"),
                    "reason": "busy",
                    "retry_after_s": 0.0,
                }
            return {"type": "result", "id": message.get("id"), "hits": [["s1", 9]]}

        shard = ScriptedShard(reject_once)
        try:
            with scripted_router([shard], top_hits=TOP) as router:
                with SearchClient("127.0.0.1", router.port, timeout=10.0) as c:
                    outcome = c.query("ACDEFGHIKL", top=TOP)
                assert outcome["type"] == "result"
                assert outcome["hits"] == [["s1", 9]]
                assert not outcome.get("partial")
                assert shard.queries_seen == 2
                assert router.stats.upstream_retries.value == 1
        finally:
            shard.close()

    def test_terminal_shard_error_degrades_to_partial(self):
        good = ScriptedShard(result_script([["good", 7]]))
        bad = ScriptedShard(
            lambda message, number: {
                "type": "error",
                "id": message.get("id"),
                "reason": "shard exploded",
                "retryable": False,
            }
        )
        try:
            with scripted_router([good, bad], top_hits=TOP) as router:
                with SearchClient("127.0.0.1", router.port, timeout=10.0) as c:
                    outcome = c.query("ACDEFGHIKL", top=TOP)
                assert outcome["type"] == "result"
                assert outcome["partial"] is True
                assert outcome["shards_failed"] == ["shard1"]
                assert outcome["hits"] == [["good", 7]]
        finally:
            good.close()
            bad.close()

    def test_stalled_shard_times_out_to_partial(self):
        good = ScriptedShard(result_script([["good", 7]]))
        stalled = ScriptedShard(lambda message, number: None)
        try:
            with scripted_router(
                [good, stalled], top_hits=TOP, shard_timeout_s=0.5,
                retry=RetryPolicy(max_attempts=1),
            ) as router:
                with SearchClient("127.0.0.1", router.port, timeout=30.0) as c:
                    started = time.monotonic()
                    outcome = c.query("ACDEFGHIKL", top=TOP)
                    elapsed = time.monotonic() - started
                assert elapsed < 10.0
                assert outcome["type"] == "result"
                assert outcome["partial"] is True
                assert outcome["shards_failed"] == ["shard1"]
                assert outcome["hits"] == [["good", 7]]
        finally:
            good.close()
            stalled.close()

    def test_backpressure_rejects_with_hint(self):
        gate = threading.Event()

        def gated(message, number):
            gate.wait(timeout=30.0)
            return {"type": "result", "id": message.get("id"), "hits": []}

        shard = ScriptedShard(gated)
        try:
            with scripted_router([shard], top_hits=TOP, max_in_flight=1) as router:
                with SearchClient("127.0.0.1", router.port, timeout=30.0) as held:
                    held.submit("ACDEFGHIKL", top=TOP)
                    wait_until(
                        lambda: shard.queries_seen >= 1,
                        message="first query to reach the shard",
                    )
                    with SearchClient("127.0.0.1", router.port, timeout=10.0) as c:
                        bounced = c.query("ACDEFGHIKL", top=TOP)
                    assert bounced["type"] == "rejected"
                    assert bounced["retry_after_s"] > 0
                    assert router.stats.rejected.value == 1
                    gate.set()
                    assert held.collect(1)[0]["type"] == "result"
        finally:
            gate.set()
            shard.close()


# -- speculative top-k credit ------------------------------------------


class TestSpeculativeCredit:
    def _router(self, names=("shard0", "shard1")):
        topo = ClusterTopology(
            "spec",
            tuple(
                ShardEndpoint(n, "127.0.0.1", 7731 + i)
                for i, n in enumerate(names)
            ),
        )
        return ScatterGatherRouter(topo, top_hits=8)

    def _warm(self, router, latencies):
        for name, latency in latencies.items():
            for _ in range(8):
                router._observe_latency(name, latency)

    def test_full_depth_until_warm(self):
        router = self._router()
        assert router._speculative_k("shard0", 8) == 8
        # One shard warm, the other cold: still full depth everywhere.
        self._warm(router, {"shard0": 0.1})
        assert router._speculative_k("shard1", 8) == 8

    def test_slower_shard_gets_smaller_k(self):
        router = self._router()
        self._warm(router, {"shard0": 0.1, "shard1": 0.4})
        assert router._speculative_k("shard0", 8) == 8  # fastest: full depth
        assert router._speculative_k("shard1", 8) == 2  # 8 * (0.1/0.4)
        # Floor at 1 even for extreme ratios.
        router2 = self._router()
        self._warm(router2, {"shard0": 0.001, "shard1": 10.0})
        assert router2._speculative_k("shard1", 8) == 1

    def test_restart_resets_credit_to_full_depth(self):
        """A restarted shard's latency history described the dead
        process: its credit must be forgotten so speculation runs the
        replacement at full depth until it re-earns a shallow ask."""
        router = self._router()
        self._warm(router, {"shard0": 0.1, "shard1": 0.4})
        assert router._speculative_k("shard1", 8) == 2
        router._on_shard_change("shard1")
        # The survivor keeps its credit; the replacement starts cold —
        # and a cold shard anywhere forces full depth everywhere (no
        # refinement round-trips against an unknown-speed process).
        assert router._speculative_k("shard1", 8) == 8
        assert router._speculative_k("shard0", 8) == 8
        # Re-earning credit restores the shallow ask.
        self._warm(router, {"shard1": 0.4})
        assert router._speculative_k("shard1", 8) == 2

    def test_disabled_speculation_always_full_depth(self):
        topo = ClusterTopology(
            "spec",
            (
                ShardEndpoint("shard0", "127.0.0.1", 7731),
                ShardEndpoint("shard1", "127.0.0.1", 7732),
            ),
        )
        router = ScatterGatherRouter(topo, top_hits=8, speculative=False)
        self._warm(router, {"shard0": 0.1, "shard1": 0.4})
        assert router._speculative_k("shard1", 8) == 8

    def test_refinement_requeries_truncated_shard(self):
        """A shallow shard whose lowest hit could still place must be
        re-asked at full depth — and the final merge must match what a
        full-depth scatter would have produced."""
        full = {
            "shard0": [("a", 50), ("b", 40), ("c", 30)],
            "shard1": [("d", 45), ("e", 44), ("f", 43)],
        }
        router = self._router()
        asked_at = {}

        def fake_ask(name, text, query_id, k, pipeline):
            asked_at[name] = k
            return {
                "type": "result",
                "id": query_id,
                "hits": [list(h) for h in full[name][:k]],
            }

        router._ask_shard = fake_ask
        top = 3
        # Speculation asked shard1 for only 1 hit; its lowest returned
        # score (45) beats the provisional kth (30) → refinement.
        gathered = {
            "shard0": (
                QueryResult(
                    query_id="q",
                    hits=tuple(Hit(subject_id=s, score=v) for s, v in full["shard0"]),
                ),
                top,
            ),
            "shard1": (
                QueryResult(query_id="q", hits=(Hit(subject_id="d", score=45),)),
                1,
            ),
        }
        merged = router._merge_with_refinement(gathered, "SEQ", "q", top, None)
        oracle = merge_query_results(
            [
                QueryResult(
                    query_id="q",
                    hits=tuple(Hit(subject_id=s, score=v) for s, v in hits),
                )
                for hits in full.values()
            ],
            top=top,
        )
        assert [(h.subject_id, h.score) for h in merged.hits] == [
            (h.subject_id, h.score) for h in oracle.hits
        ]
        assert asked_at == {"shard1": top}
        assert router.stats.refinements.value == 1

    def test_refinement_failure_keeps_truncated_list(self):
        router = self._router()

        def dying_ask(name, text, query_id, k, pipeline):
            raise ShardFailure(f"{name}: gone")

        router._ask_shard = dying_ask
        gathered = {
            "shard0": (
                QueryResult(
                    query_id="q",
                    hits=(Hit(subject_id="a", score=50), Hit(subject_id="b", score=40)),
                ),
                3,
            ),
            "shard1": (
                QueryResult(query_id="q", hits=(Hit(subject_id="d", score=45),)),
                1,
            ),
        }
        merged = router._merge_with_refinement(gathered, "SEQ", "q", 3, None)
        assert [(h.subject_id, h.score) for h in merged.hits] == [
            ("a", 50), ("d", 45), ("b", 40),
        ]

    def test_satisfied_shallow_ask_skips_refinement(self):
        """A truncated shard whose lowest score cannot reach the merged
        top-k is left alone — no wasted full-depth re-query."""
        router = self._router()

        def must_not_call(name, text, query_id, k, pipeline):
            raise AssertionError("refinement should not have fired")

        router._ask_shard = must_not_call
        gathered = {
            "shard0": (
                QueryResult(
                    query_id="q",
                    hits=(
                        Hit(subject_id="a", score=50),
                        Hit(subject_id="b", score=40),
                        Hit(subject_id="c", score=30),
                    ),
                ),
                3,
            ),
            # Asked for 1, returned 1, but its best (10) is below the
            # provisional kth score (30): nothing hidden can place.
            "shard1": (
                QueryResult(query_id="q", hits=(Hit(subject_id="d", score=10),)),
                1,
            ),
        }
        merged = router._merge_with_refinement(gathered, "SEQ", "q", 3, None)
        assert [h.subject_id for h in merged.hits] == ["a", "b", "c"]
