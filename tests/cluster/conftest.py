"""Shared fixtures for the cluster-plane tests.

Shard services run with one CPU worker and the threads backend — the
smallest real :class:`~repro.service.server.SearchService` — so the
cluster tests exercise true process fan-out without long warm-ups.
"""

import time

import pytest

from repro.engine import live_search
from repro.sequences import small_database, standard_query_set

TOP = 5

#: SearchService settings applied to every spawned shard in tests.
SERVICE_KWARGS = dict(
    num_cpu_workers=1, num_gpu_workers=0, backend="threads", top_hits=TOP
)


def wait_until(predicate, timeout_s=15.0, interval_s=0.05, message="condition"):
    """Poll *predicate* until it holds or *timeout_s* elapses."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval_s)
    raise AssertionError(f"timed out after {timeout_s}s waiting for {message}")


@pytest.fixture(scope="module")
def db():
    return small_database(num_sequences=24, mean_length=60, seed=41)


@pytest.fixture(scope="module")
def queries():
    return list(standard_query_set(count=6).scaled(0.01).materialize(seed=42))


@pytest.fixture(scope="module")
def reference(db, queries):
    """Unsharded in-process oracle over the same database."""
    report = live_search(
        queries, db, num_cpu_workers=1, num_gpu_workers=0,
        policy="swdual", top_hits=TOP,
    )
    return {
        qr.query_id: [[h.subject_id, h.score] for h in qr.hits]
        for qr in report.query_results
    }
