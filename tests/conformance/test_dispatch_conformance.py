"""Differential dispatch conformance: every execution path against the
single-threaded reference.

The same workload must produce **bit-identical hit tables** (subject
ids, scores, order) no matter how it is executed: threaded or process
workers, pickle or shared-memory data plane, whole-query or
chunk-range dispatch, dynamic self-scheduling or the SWDUAL static
allocation, and the warm service pool on either backend.  Ranking ties
break deterministically (score desc, subject id asc), so the
comparison is exact.
"""

import pytest

from repro.engine import live_search, process_search
from repro.sequences import small_database, standard_query_set
from repro.sequences.shm import shm_available
from repro.service.pool import WarmPool

TOP_HITS = 4
CHUNK_CELLS = 1_500

needs_shm = pytest.mark.skipif(
    not shm_available(), reason="POSIX shared memory unavailable"
)


def _hits(report):
    return [
        [(h.subject_id, h.score) for h in qr.hits]
        for qr in report.query_results
    ]


@pytest.fixture(scope="module")
def workload():
    db = small_database(num_sequences=18, mean_length=50, seed=81)
    queries = list(standard_query_set(count=3).scaled(0.015).materialize(seed=82))
    return db, queries


@pytest.fixture(scope="module")
def reference(workload):
    """One worker, one thread: the sequential reference hit table."""
    db, queries = workload
    return _hits(
        live_search(queries, db, 1, 0, policy="self", top_hits=TOP_HITS)
    )


class TestThreadedDispatch:
    @pytest.mark.parametrize("policy", ["self", "swdual", "swdual-dp", "affinity"])
    def test_live_search_policies(self, workload, reference, policy):
        db, queries = workload
        report = live_search(
            queries,
            db,
            2,
            1,
            policy=policy,
            top_hits=TOP_HITS,
            measured_gcups={"cpu": 1.0, "gpu": 2.0},
        )
        assert _hits(report) == reference

    @pytest.mark.parametrize("policy", ["self", "swdual", "affinity"])
    def test_warm_pool_threads(self, workload, reference, policy):
        db, queries = workload
        with WarmPool(
            db,
            num_cpu_workers=2,
            num_gpu_workers=1,
            backend="threads",
            policy=policy,
            measured_gcups={"cpu": 1.0, "gpu": 2.0},
            top_hits=TOP_HITS,
        ) as pool:
            assert _hits(pool.run_batch(queries)) == reference

    def test_warm_pool_rolling_rates(self, workload, reference):
        """Per-batch rate overrides (the rolling-calibration seam) may
        move placement but never scores — even wildly wrong estimates
        produce the reference hit table."""
        db, queries = workload
        with WarmPool(
            db,
            num_cpu_workers=2,
            num_gpu_workers=1,
            backend="threads",
            policy="swdual",
            measured_gcups={"cpu": 1.0, "gpu": 2.0},
            top_hits=TOP_HITS,
        ) as pool:
            for rates in (
                {"cpu": 1.0, "gpu": 2.0},
                {"cpu": 50.0, "gpu": 0.01},
                {"cpu": 0.01, "gpu": 50.0},
            ):
                assert _hits(pool.run_batch(queries, measured_gcups=rates)) == reference


class TestProcessDispatch:
    @pytest.mark.parametrize(
        "plane", ["pickle", pytest.param("shm", marks=needs_shm)]
    )
    @pytest.mark.parametrize("dispatch", ["query", "chunk"])
    @pytest.mark.parametrize("policy", ["self", "swdual", "affinity"])
    def test_plane_dispatch_policy_grid(
        self, workload, reference, plane, dispatch, policy
    ):
        db, queries = workload
        report = process_search(
            queries,
            db,
            num_workers=2,
            top_hits=TOP_HITS,
            policy=policy,
            measured_gcups={"cpu": 1.0},
            data_plane=plane,
            dispatch=dispatch,
            chunk_cells=CHUNK_CELLS,
        )
        assert _hits(report) == reference

    def test_warm_pool_processes(self, workload, reference):
        db, queries = workload
        with WarmPool(
            db,
            num_cpu_workers=2,
            num_gpu_workers=0,
            backend="processes",
            policy="self",
            top_hits=TOP_HITS,
            chunk_cells=CHUNK_CELLS,
        ) as pool:
            assert _hits(pool.run_batch(queries)) == reference
