"""Differential kernel conformance: every scoring kernel against the
scalar oracle.

The scalar DP (:func:`repro.align.sw_scalar.sw_score`) is the ground
truth — a direct transcription of the paper's recurrences.  Every
optimised kernel (striped, row-sweep vector, wavefront, SWIPE-style
batch, the packed fast paths, every rung of the narrow-dtype ladder)
must reproduce its scores **bit for bit** on the same inputs; any
divergence is a bug in the optimisation, never an acceptable
approximation.
"""

import numpy as np
import pytest

from repro.align.backend import resolve_backend
from repro.align.banded import sw_score_banded
from repro.align.scoring import default_scheme
from repro.align.sw_batch import (
    DTYPE_LADDER,
    sw_score_batch,
    sw_score_packed,
)
from repro.align.sw_scalar import sw_score
from repro.align.sw_striped import sw_score_striped
from repro.align.sw_vector import sw_score_rowsweep
from repro.align.sw_wavefront import (
    sw_score_wavefront,
    sw_score_wavefront_batch,
    sw_score_wavefront_packed,
)
from repro.sequences import small_database, standard_query_set
from repro.sequences.packed import PackedDatabase

#: Small chunk budget so the packed paths exercise multi-chunk merging.
CHUNK_CELLS = 1_500


def _available_backends() -> list[str]:
    """Every kernel tier this machine can actually run, numpy first.

    The grid adapts to the container: a box with numba runs the numba
    column, a box with only a C compiler runs the cc column, a bare box
    still pins the numpy column.  A tier whose probe falls back is
    simply absent — the fallback *behaviour* is covered in
    ``tests/align/test_backend.py``.
    """
    names = ["numpy"]
    for tier in ("numba", "cc"):
        if resolve_backend(tier).name == tier:
            names.append(tier)
    return names


BACKENDS = _available_backends()
COMPILED = [b for b in BACKENDS if b != "numpy"]


@pytest.fixture(scope="module")
def workload():
    db = small_database(num_sequences=16, mean_length=60, seed=71)
    queries = standard_query_set(count=3).scaled(0.02).materialize(seed=72)
    return db, list(queries)


@pytest.fixture(scope="module")
def scheme():
    return default_scheme()


@pytest.fixture(scope="module")
def oracle(workload, scheme):
    """Scalar-DP scores: ``oracle[qi][si]``."""
    db, queries = workload
    subjects = list(db)
    return [
        [sw_score(q, s, scheme) for s in subjects] for q in queries
    ]


class TestPairwiseKernels:
    """One query x one subject kernels vs the scalar oracle."""

    @pytest.mark.parametrize("lanes", [1, 4, 8])
    def test_striped(self, workload, scheme, oracle, lanes):
        db, queries = workload
        for qi, q in enumerate(queries):
            for si, s in enumerate(db):
                assert sw_score_striped(q, s, scheme, lanes=lanes) == oracle[qi][si]

    def test_rowsweep(self, workload, scheme, oracle):
        db, queries = workload
        for qi, q in enumerate(queries):
            for si, s in enumerate(db):
                assert sw_score_rowsweep(q, s, scheme) == oracle[qi][si]

    def test_wavefront(self, workload, scheme, oracle):
        db, queries = workload
        for qi, q in enumerate(queries):
            for si, s in enumerate(db):
                assert sw_score_wavefront(q, s, scheme) == oracle[qi][si]


class TestBatchKernels:
    """Whole-database kernels vs the scalar oracle."""

    def test_swipe_batch(self, workload, scheme, oracle):
        db, queries = workload
        subjects = list(db)
        for qi, q in enumerate(queries):
            scores = sw_score_batch(q, subjects, scheme, chunk_cells=CHUNK_CELLS)
            assert scores.dtype == np.int64
            assert scores.tolist() == oracle[qi]

    def test_wavefront_batch(self, workload, scheme, oracle):
        db, queries = workload
        subjects = list(db)
        for qi, q in enumerate(queries):
            scores = sw_score_wavefront_batch(
                q, subjects, scheme, chunk_cells=CHUNK_CELLS
            )
            assert scores.tolist() == oracle[qi]

    def test_packed_paths_share_one_packing(self, workload, scheme, oracle):
        db, queries = workload
        packed = PackedDatabase.from_database(db, chunk_cells=CHUNK_CELLS)
        for qi, q in enumerate(queries):
            assert sw_score_packed(q, packed, scheme).tolist() == oracle[qi]
            assert (
                sw_score_wavefront_packed(q, packed, scheme).tolist() == oracle[qi]
            )

    @pytest.mark.parametrize("level_index", range(len(DTYPE_LADDER)))
    def test_every_ladder_rung(self, workload, scheme, oracle, level_index):
        """Each narrow-dtype rung, forced alone (plus the wide rungs
        above it as overflow fallback), matches the oracle exactly."""
        db, queries = workload
        subjects = list(db)
        levels = DTYPE_LADDER[level_index:]
        for qi, q in enumerate(queries):
            scores = sw_score_batch(
                q, subjects, scheme, chunk_cells=CHUNK_CELLS, levels=levels
            )
            assert scores.tolist() == oracle[qi]


class TestBackendGrid:
    """Every available kernel tier × dtype rung × dispatch plane against
    the same scalar oracle.

    The compiled tiers (numba and/or cc, whatever this machine has)
    must be *bit-identical* to the numpy kernels — same scores, same
    ladder promotions, same banded early-termination point — so any
    mix of tiers across a worker roster merges cleanly.
    """

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_pairwise_matches_oracle(self, workload, scheme, oracle, backend):
        db, queries = workload
        for qi, q in enumerate(queries):
            for si, s in enumerate(db):
                assert sw_score_striped(q, s, scheme, backend=backend) == (
                    oracle[qi][si]
                )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_banded_exact_matches_oracle(self, workload, scheme, oracle, backend):
        db, queries = workload
        for qi, q in enumerate(queries):
            for si, s in enumerate(db):
                got = sw_score_banded(q, s, scheme, None, backend=backend)
                assert got == oracle[qi][si]

    @pytest.mark.parametrize("backend", COMPILED)
    def test_banded_zdrop_matches_numpy_rowforrow(self, workload, scheme, backend):
        """With a band and z-drop, the score is a lower bound — the
        conformance target is the numpy kernel's *exact* behaviour,
        early termination included."""
        db, queries = workload
        for q in queries:
            for s in db:
                for bandwidth, zdrop in ((4, 10), (8, 25), (2, 0)):
                    ref = sw_score_banded(
                        q, s, scheme, bandwidth, zdrop=zdrop, backend="numpy"
                    )
                    got = sw_score_banded(
                        q, s, scheme, bandwidth, zdrop=zdrop, backend=backend
                    )
                    assert got == ref

    @pytest.mark.parametrize("level_index", range(len(DTYPE_LADDER)))
    @pytest.mark.parametrize("backend", COMPILED)
    def test_batch_every_rung(self, workload, scheme, oracle, backend, level_index):
        db, queries = workload
        subjects = list(db)
        levels = DTYPE_LADDER[level_index:]
        for qi, q in enumerate(queries):
            scores = sw_score_batch(
                q,
                subjects,
                scheme,
                chunk_cells=CHUNK_CELLS,
                levels=levels,
                backend=backend,
            )
            assert scores.dtype == np.int64
            assert scores.tolist() == oracle[qi]

    @pytest.mark.parametrize("backend", COMPILED)
    def test_packed_chunk_dispatch(self, workload, scheme, oracle, backend):
        """The chunk-range dispatch plane (what subtask stealing uses)
        under a compiled tier: per-chunk partials merged by max."""
        db, queries = workload
        packed = PackedDatabase.from_database(db, chunk_cells=CHUNK_CELLS)
        for qi, q in enumerate(queries):
            merged = np.zeros(packed.num_sequences, dtype=np.int64)
            for k, chunk in enumerate(packed.chunks):
                part = sw_score_packed(
                    q, packed, scheme, chunk_range=(k, k + 1), backend=backend
                )
                np.maximum.at(merged, chunk.indices, part)
            assert merged.tolist() == oracle[qi]

    @pytest.mark.parametrize("backend", COMPILED)
    def test_ladder_saturation_promotes_identically(self, scheme, backend):
        """A workload that saturates int16 must promote through the
        ladder to the same exact scores under every tier."""
        from repro.sequences.alphabet import PROTEIN
        from repro.sequences.sequence import Sequence

        hot = Sequence.from_text("hot", "W" * 3500, alphabet=PROTEIN)
        cold = list(small_database(num_sequences=6, mean_length=30, seed=9))
        subjects = [hot, *cold]
        exact = sw_score_batch(
            hot, subjects, scheme, chunk_cells=4_000, levels=(DTYPE_LADDER[-1],)
        )
        assert exact.max() > np.iinfo(np.int16).max  # promotion is real
        got = sw_score_batch(
            hot, subjects, scheme, chunk_cells=4_000, backend=backend
        )
        assert got.tolist() == exact.tolist()


class TestMixedBackendMerge:
    """Chunk-steal merges across *different* tiers in one roster.

    A stolen subtask may be rescored by a worker running a different
    kernel tier than the one that scored the neighbouring chunks; the
    partial-maxima merge is only sound because every tier is bit-exact.
    """

    @pytest.mark.skipif(not COMPILED, reason="no compiled tier on this machine")
    @pytest.mark.parametrize("seed", [0, 1])
    def test_stolen_chunks_scored_by_other_tier_merge_bitexact(
        self, workload, scheme, oracle, seed
    ):
        from repro.engine.subtasks import ScoreMerger

        db, queries = workload
        packed = PackedDatabase.from_database(db, chunk_cells=CHUNK_CELLS)
        rng = np.random.default_rng(seed)
        tiers = ["numpy", *COMPILED]
        merger = ScoreMerger(list(queries), packed, top_hits=8)
        for qi, q in enumerate(queries):
            order = list(range(len(packed.chunks)))
            rng.shuffle(order)  # stolen = arbitrary completion order
            done = False
            for k in order:
                tier = tiers[int(rng.integers(len(tiers)))]
                part = sw_score_packed(
                    q, packed, scheme, chunk_range=(k, k + 1), backend=tier
                )
                done = merger.add(qi, k, k + 1, part)
            assert done
            assert merger._scores[qi].tolist() == oracle[qi]

    @pytest.mark.skipif(not COMPILED, reason="no compiled tier on this machine")
    def test_mixed_tier_worker_roster_identical_report(self, workload, scheme):
        """Two threaded workers pinned to different tiers produce the
        same ranked hits as an all-numpy roster."""
        db, queries = workload

        def run(backends):
            from repro.engine.master import Master
            from repro.engine.worker import KernelWorker

            packed = PackedDatabase.from_database(db, chunk_cells=CHUNK_CELLS)
            master = Master(list(queries), policy="swdual")
            for i, b in enumerate(backends):
                master.register_worker(
                    KernelWorker(
                        name=f"cpu{i}",
                        kind="cpu",
                        database=db,
                        scheme=scheme,
                        packed=packed,
                        top_hits=6,
                        backend=b,
                    )
                )
            return master.run()

        mixed = run(["numpy", COMPILED[0]])
        pure = run(["numpy", "numpy"])
        ranked_mixed = {
            r.query_id: [(h.subject_id, h.score) for h in r.hits]
            for r in mixed.query_results
        }
        ranked_pure = {
            r.query_id: [(h.subject_id, h.score) for h in r.hits]
            for r in pure.query_results
        }
        assert ranked_mixed == ranked_pure
        backends_seen = {w.backend for w in mixed.worker_stats}
        assert backends_seen == {"numpy", COMPILED[0]}
