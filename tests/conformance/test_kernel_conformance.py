"""Differential kernel conformance: every scoring kernel against the
scalar oracle.

The scalar DP (:func:`repro.align.sw_scalar.sw_score`) is the ground
truth — a direct transcription of the paper's recurrences.  Every
optimised kernel (striped, row-sweep vector, wavefront, SWIPE-style
batch, the packed fast paths, every rung of the narrow-dtype ladder)
must reproduce its scores **bit for bit** on the same inputs; any
divergence is a bug in the optimisation, never an acceptable
approximation.
"""

import numpy as np
import pytest

from repro.align.scoring import default_scheme
from repro.align.sw_batch import (
    DTYPE_LADDER,
    sw_score_batch,
    sw_score_packed,
)
from repro.align.sw_scalar import sw_score
from repro.align.sw_striped import sw_score_striped
from repro.align.sw_vector import sw_score_rowsweep
from repro.align.sw_wavefront import (
    sw_score_wavefront,
    sw_score_wavefront_batch,
    sw_score_wavefront_packed,
)
from repro.sequences import small_database, standard_query_set
from repro.sequences.packed import PackedDatabase

#: Small chunk budget so the packed paths exercise multi-chunk merging.
CHUNK_CELLS = 1_500


@pytest.fixture(scope="module")
def workload():
    db = small_database(num_sequences=16, mean_length=60, seed=71)
    queries = standard_query_set(count=3).scaled(0.02).materialize(seed=72)
    return db, list(queries)


@pytest.fixture(scope="module")
def scheme():
    return default_scheme()


@pytest.fixture(scope="module")
def oracle(workload, scheme):
    """Scalar-DP scores: ``oracle[qi][si]``."""
    db, queries = workload
    subjects = list(db)
    return [
        [sw_score(q, s, scheme) for s in subjects] for q in queries
    ]


class TestPairwiseKernels:
    """One query x one subject kernels vs the scalar oracle."""

    @pytest.mark.parametrize("lanes", [1, 4, 8])
    def test_striped(self, workload, scheme, oracle, lanes):
        db, queries = workload
        for qi, q in enumerate(queries):
            for si, s in enumerate(db):
                assert sw_score_striped(q, s, scheme, lanes=lanes) == oracle[qi][si]

    def test_rowsweep(self, workload, scheme, oracle):
        db, queries = workload
        for qi, q in enumerate(queries):
            for si, s in enumerate(db):
                assert sw_score_rowsweep(q, s, scheme) == oracle[qi][si]

    def test_wavefront(self, workload, scheme, oracle):
        db, queries = workload
        for qi, q in enumerate(queries):
            for si, s in enumerate(db):
                assert sw_score_wavefront(q, s, scheme) == oracle[qi][si]


class TestBatchKernels:
    """Whole-database kernels vs the scalar oracle."""

    def test_swipe_batch(self, workload, scheme, oracle):
        db, queries = workload
        subjects = list(db)
        for qi, q in enumerate(queries):
            scores = sw_score_batch(q, subjects, scheme, chunk_cells=CHUNK_CELLS)
            assert scores.dtype == np.int64
            assert scores.tolist() == oracle[qi]

    def test_wavefront_batch(self, workload, scheme, oracle):
        db, queries = workload
        subjects = list(db)
        for qi, q in enumerate(queries):
            scores = sw_score_wavefront_batch(
                q, subjects, scheme, chunk_cells=CHUNK_CELLS
            )
            assert scores.tolist() == oracle[qi]

    def test_packed_paths_share_one_packing(self, workload, scheme, oracle):
        db, queries = workload
        packed = PackedDatabase.from_database(db, chunk_cells=CHUNK_CELLS)
        for qi, q in enumerate(queries):
            assert sw_score_packed(q, packed, scheme).tolist() == oracle[qi]
            assert (
                sw_score_wavefront_packed(q, packed, scheme).tolist() == oracle[qi]
            )

    @pytest.mark.parametrize("level_index", range(len(DTYPE_LADDER)))
    def test_every_ladder_rung(self, workload, scheme, oracle, level_index):
        """Each narrow-dtype rung, forced alone (plus the wide rungs
        above it as overflow fallback), matches the oracle exactly."""
        db, queries = workload
        subjects = list(db)
        levels = DTYPE_LADDER[level_index:]
        for qi, q in enumerate(queries):
            scores = sw_score_batch(
                q, subjects, scheme, chunk_cells=CHUNK_CELLS, levels=levels
            )
            assert scores.tolist() == oracle[qi]
