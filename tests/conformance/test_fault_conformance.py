"""Differential fault conformance (the issue's property test).

Property: for any seeded :class:`~repro.engine.faults.FaultPlan`, a
run that loses workers mid-batch — with the requeue, work-stealing and
narrow-dtype-ladder machinery all engaged in recovery — produces
scores **bit-identical** to the zero-fault run.  Faults may change
which worker computes what and when; they must never change a single
score or ranking.

The loop is seeded (no wall-clock anywhere in the fault machinery), so
a failure reproduces exactly from the printed seed.
"""

import pytest

from repro.engine import process_search
from repro.engine.faults import FaultPlan, RecoveryLog
from repro.sequences import small_database, standard_query_set

TOP_HITS = 4
CHUNK_CELLS = 1_500
#: Fast heartbeat so injected stalls are detected in ~a second.
HEARTBEAT = 1.0


def _hits(report):
    return [
        [(h.subject_id, h.score) for h in qr.hits]
        for qr in report.query_results
    ]


@pytest.fixture(scope="module")
def workload():
    db = small_database(num_sequences=14, mean_length=50, seed=91)
    queries = list(standard_query_set(count=4).scaled(0.015).materialize(seed=92))
    return db, queries


@pytest.fixture(scope="module")
def fault_free(workload):
    db, queries = workload
    return _hits(
        process_search(
            queries,
            db,
            num_workers=3,
            top_hits=TOP_HITS,
            chunk_cells=CHUNK_CELLS,
        )
    )


class TestRandomFaultPlans:
    """The seeded property loop: random plans, bit-identical recovery."""

    @pytest.mark.parametrize("seed", range(6))
    def test_query_dispatch_recovers_bit_identical(
        self, workload, fault_free, seed
    ):
        db, queries = workload
        plan = FaultPlan.random(
            seed, ["proc0", "proc1", "proc2"], num_faults=1,
            kinds=("kill", "stall", "corrupt"),
        )
        recovery = RecoveryLog()
        report = process_search(
            queries,
            db,
            num_workers=3,
            top_hits=TOP_HITS,
            chunk_cells=CHUNK_CELLS,
            fault_plan=plan,
            heartbeat_timeout=HEARTBEAT,
            recovery_log=recovery,
        )
        assert report.quarantined == (), f"seed={seed}"
        assert _hits(report) == fault_free, f"seed={seed}"

    @pytest.mark.parametrize("seed", [0, 3, 5])
    def test_chunk_dispatch_recovers_bit_identical(
        self, workload, fault_free, seed
    ):
        """Chunk grains + stealing + requeue after a fault: still exact."""
        db, queries = workload
        plan = FaultPlan.random(
            seed, ["proc0", "proc1", "proc2"], num_faults=1,
            kinds=("kill", "corrupt"), max_ordinal=1,
        )
        recovery = RecoveryLog()
        report = process_search(
            queries,
            db,
            num_workers=3,
            top_hits=TOP_HITS,
            chunk_cells=CHUNK_CELLS,
            dispatch="chunk",
            fault_plan=plan,
            heartbeat_timeout=HEARTBEAT,
            recovery_log=recovery,
        )
        assert report.quarantined == (), f"seed={seed}"
        assert _hits(report) == fault_free, f"seed={seed}"

    def test_two_faults_same_batch(self, workload, fault_free):
        db, queries = workload
        plan = FaultPlan.random(
            11, ["proc0", "proc1", "proc2"], num_faults=2,
            kinds=("kill", "corrupt"), max_ordinal=1,
        )
        report = process_search(
            queries,
            db,
            num_workers=3,
            top_hits=TOP_HITS,
            chunk_cells=CHUNK_CELLS,
            fault_plan=plan,
            heartbeat_timeout=HEARTBEAT,
        )
        assert report.quarantined == ()
        assert _hits(report) == fault_free

    def test_plan_is_deterministic(self):
        a = FaultPlan.random(42, ["w0", "w1"], num_faults=2)
        b = FaultPlan.random(42, ["w0", "w1"], num_faults=2)
        assert [
            (s.worker, s.task_ordinal, s.kind) for s in a.worker_faults
        ] == [(s.worker, s.task_ordinal, s.kind) for s in b.worker_faults]
