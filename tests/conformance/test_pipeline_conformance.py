"""Differential pipeline conformance: the heuristic cascade against
the scalar oracle.

The exactness contract (what "heuristic" is allowed to mean here):

* **Exact knobs** — ``min_seeds=0``, ``min_diag_score=0``,
  ``bandwidth=None``, ``zdrop=None`` (``PipelineConfig.exact()``):
  nothing is filtered and every score is bit-identical to the scalar
  DP, everywhere.
* **Heuristic knobs** — any positive ``min_seeds`` /
  ``min_diag_score`` can *lose* a subject before DP; a finite
  ``bandwidth`` / ``zdrop`` can under-estimate the banded lower bound
  and lose a candidate before rescoring.  Losing a hit is the
  sensitivity trade; what is **never** acceptable is reporting a
  wrong score: every subject the cascade reports (pipeline score
  ``>= threshold``) must carry a score bit-identical to the scalar
  oracle, on every backend, data plane and dispatch mode.

This suite pins both directions on a homolog-planted workload where
the true hits are unambiguous: no reported hit lost, and no reported
score diverging.
"""

import numpy as np
import pytest

from repro.align.pipeline import PipelineConfig, pipeline_score_packed
from repro.align.scoring import default_scheme
from repro.align.sw_scalar import sw_score
from repro.engine import live_search, process_search
from repro.engine.pipeline import PIPELINE_PRESETS
from repro.sequences import small_database, plant_homologs
from repro.sequences.database import SequenceDatabase
from repro.sequences.packed import PackedDatabase
from repro.sequences.shm import shm_available
from repro.service.pool import WarmPool

THRESHOLD = 60
TOP_HITS = 6
CHUNK_CELLS = 2_000

needs_shm = pytest.mark.skipif(
    not shm_available(), reason="POSIX shared memory unavailable"
)

#: Every heuristic preset, with the suite's reporting threshold.
PRESETS = {
    name: PipelineConfig.from_dict({**cfg.as_dict(), "threshold": THRESHOLD})
    for name, cfg in PIPELINE_PRESETS.items()
}


@pytest.fixture(scope="module")
def workload():
    """Background + two homologs per query: real hits exist."""
    db = small_database(num_sequences=20, mean_length=60, seed=91)
    queries = [s for s in list(db)[:2]]
    queries = [
        q.__class__(id=f"q{i}", codes=q.codes, alphabet=q.alphabet)
        for i, q in enumerate(queries)
    ]
    subjects = list(db)
    for i, q in enumerate(queries):
        subjects = plant_homologs(subjects, q, 2, divergence=0.15, seed=100 + i)
    return SequenceDatabase("conf-pipeline", subjects), queries


@pytest.fixture(scope="module")
def scheme():
    return default_scheme()


@pytest.fixture(scope="module")
def oracle(workload, scheme):
    """Scalar-DP scores per query, keyed by subject id."""
    db, queries = workload
    return {
        q.id: {s.id: sw_score(q, s, scheme) for s in db} for q in queries
    }


def _oracle_hits(oracle, qid):
    """Subjects the exact search reports at THRESHOLD."""
    return {sid for sid, score in oracle[qid].items() if score >= THRESHOLD}


def _assert_no_hit_lost_or_misscored(report, oracle, db):
    """Every reported hit is oracle-exact; every oracle hit that fits
    the top list is present."""
    for qr in report.query_results:
        truth = oracle[qr.query_id]
        reported = {h.subject_id: h.score for h in qr.hits if h.score >= THRESHOLD}
        for sid, score in reported.items():
            assert score == truth[sid], (
                f"{qr.query_id}/{sid}: reported {score}, oracle {truth[sid]}"
            )
        expected = _oracle_hits(oracle, qr.query_id)
        if len(expected) <= TOP_HITS:
            assert set(reported) == expected, (
                f"{qr.query_id}: lost hits {expected - set(reported)}"
            )


class TestKernelLevel:
    """pipeline_score_packed against the scalar oracle directly."""

    def test_exact_config_is_oracle_everywhere(self, workload, scheme, oracle):
        db, queries = workload
        packed = PackedDatabase.from_database(db, chunk_cells=CHUNK_CELLS)
        subjects = list(db)
        for q in queries:
            scores = pipeline_score_packed(
                q, packed, scheme, PipelineConfig.exact(threshold=THRESHOLD)
            )
            for i, s in enumerate(subjects):
                assert int(scores[i]) == oracle[q.id][s.id]

    @pytest.mark.parametrize("preset", sorted(PRESETS))
    def test_no_reported_hit_lost(self, workload, scheme, oracle, preset):
        db, queries = workload
        packed = PackedDatabase.from_database(db, chunk_cells=CHUNK_CELLS)
        subjects = list(db)
        for q in queries:
            scores = pipeline_score_packed(q, packed, scheme, PRESETS[preset])
            reported = {
                subjects[i].id: int(scores[i])
                for i in np.flatnonzero(scores >= THRESHOLD)
            }
            # Bit-identical on everything reported...
            for sid, score in reported.items():
                assert score == oracle[q.id][sid]
            # ...and nothing at/above threshold went missing.
            assert set(reported) == _oracle_hits(oracle, q.id), preset


class TestEngineBackends:
    """The full engine, every execution mode, vs the oracle."""

    @pytest.mark.parametrize("preset", ["default", "strict"])
    def test_threads(self, workload, oracle, preset):
        db, queries = workload
        report = live_search(
            queries, db, 2, 1, top_hits=TOP_HITS, pipeline=PRESETS[preset]
        )
        _assert_no_hit_lost_or_misscored(report, oracle, db)
        assert report.pipeline_stages is not None
        assert report.pipeline_stages["subjects_scanned"] == len(db) * len(queries)

    @pytest.mark.parametrize(
        "plane", ["pickle", pytest.param("shm", marks=needs_shm)]
    )
    @pytest.mark.parametrize("dispatch", ["query", "chunk"])
    def test_processes(self, workload, oracle, plane, dispatch):
        db, queries = workload
        report = process_search(
            queries,
            db,
            num_workers=2,
            top_hits=TOP_HITS,
            data_plane=plane,
            dispatch=dispatch,
            chunk_cells=CHUNK_CELLS,
            pipeline=PRESETS["default"],
        )
        _assert_no_hit_lost_or_misscored(report, oracle, db)
        assert report.pipeline_stages["subjects_scanned"] == len(db) * len(queries)

    def test_pipeline_matches_fullscan_hits(self, workload):
        """Above the threshold, pipeline and full scan agree hit-for-hit."""
        db, queries = workload
        full = live_search(queries, db, 1, 0, top_hits=TOP_HITS)
        pipe = live_search(
            queries, db, 1, 0, top_hits=TOP_HITS, pipeline=PRESETS["default"]
        )
        for fq, pq in zip(full.query_results, pipe.query_results):
            f = [(h.subject_id, h.score) for h in fq.hits if h.score >= THRESHOLD]
            p = [(h.subject_id, h.score) for h in pq.hits if h.score >= THRESHOLD]
            assert f == p

    def test_warm_pool_per_batch_toggle(self, workload, oracle):
        """One pool serves exact and pipeline batches interleaved."""
        db, queries = workload
        with WarmPool(
            db,
            num_cpu_workers=2,
            num_gpu_workers=0,
            backend="threads",
            top_hits=TOP_HITS,
        ) as pool:
            exact1 = pool.run_batch(queries)
            piped = pool.run_batch(queries, pipeline=PRESETS["default"])
            exact2 = pool.run_batch(queries, pipeline=None)
        assert exact1.pipeline_stages is None
        assert piped.pipeline_stages is not None
        _assert_no_hit_lost_or_misscored(piped, oracle, db)
        h = lambda r: [[(x.subject_id, x.score) for x in qr.hits] for qr in r.query_results]
        assert h(exact1) == h(exact2)
