"""Swap conformance: a service that reached its database through any
sequence of live append/retire swaps must answer every query
**bit-identically** to a fresh service built directly on the final
database — exact full scans and the heuristic pipeline alike, on every
execution plane (thread workers, process workers over pickle, process
workers over shared memory).

Mutation schedules are seeded-random: each round appends a few novel
sequences (ids no fresh-build could order differently) and retires a
few survivors, so the final database is order-identical whichever path
produced it (see ``apply_append``/``apply_retire``'s path-independence
contract)."""

import random

import pytest

from repro.sequences import Sequence, SequenceDatabase, small_database
from repro.sequences import standard_query_set
from repro.sequences.shm import shm_available
from repro.service import SearchClient, SearchService

TOP_HITS = 4
CHUNK_CELLS = 1_500
SWAP_ROUNDS = 4

needs_shm = pytest.mark.skipif(
    not shm_available(), reason="POSIX shared memory unavailable"
)

PLANES = [
    pytest.param({"backend": "threads", "num_gpu_workers": 1}, id="threads"),
    pytest.param(
        {"backend": "processes", "num_gpu_workers": 0, "data_plane": "pickle"},
        id="processes-pickle",
    ),
    pytest.param(
        {"backend": "processes", "num_gpu_workers": 0, "data_plane": "shm"},
        id="processes-shm",
        marks=needs_shm,
    ),
]


@pytest.fixture(scope="module")
def workload():
    db = small_database(num_sequences=18, mean_length=50, seed=81)
    queries = list(standard_query_set(count=3).scaled(0.015).materialize(seed=82))
    return db, queries


def _mutation_schedule(db, seed: int, rounds: int = SWAP_ROUNDS):
    """Seeded random swap schedule; yields ("append", seqs) and
    ("retire", ids) steps and returns via closure the running db."""
    rng = random.Random(seed)
    template = next(iter(db))
    alive = [s.id for s in db]
    steps = []
    for round_no in range(rounds):
        if round_no % 2 == 0 or len(alive) < 6:
            count = rng.randint(1, 3)
            fresh = [
                Sequence.from_text(
                    f"mut{seed}_{round_no}_{i}",
                    "".join(
                        rng.choice(template.alphabet.letters)
                        for _ in range(rng.randint(30, 60))
                    ),
                    alphabet=template.alphabet,
                )
                for i in range(count)
            ]
            alive.extend(s.id for s in fresh)
            steps.append(("append", fresh))
        else:
            count = rng.randint(1, min(3, len(alive) - 4))
            victims = rng.sample(alive, count)
            alive = [i for i in alive if i not in victims]
            steps.append(("retire", victims))
    return steps


def _apply_schedule_directly(db, steps) -> SequenceDatabase:
    """The oracle: build the final database without any service."""
    records = list(db)
    for verb, payload in steps:
        if verb == "append":
            records.extend(payload)
        else:
            victims = set(payload)
            records = [s for s in records if s.id not in victims]
    return SequenceDatabase(db.name, records)


def _service(db, plane: dict) -> SearchService:
    return SearchService(
        db,
        num_cpu_workers=2,
        top_hits=TOP_HITS,
        chunk_cells=CHUNK_CELLS,
        max_batch=4,
        **plane,
    )


def _answers(service, queries, pipeline: bool) -> list:
    with SearchClient(*service.address) as client:
        outs = client.search(queries, top=TOP_HITS, pipeline=pipeline)
    for out in outs:
        assert out["type"] == "result", out
    return [(out["id"], out["hits"]) for out in outs]


@pytest.mark.parametrize("plane", PLANES)
@pytest.mark.parametrize("schedule_seed", [7, 19])
def test_mutated_service_matches_fresh_service(workload, plane, schedule_seed):
    db, queries = workload
    steps = _mutation_schedule(db, schedule_seed)
    final_db = _apply_schedule_directly(db, steps)

    mutated = _service(db, plane)
    mutated.start()
    try:
        with SearchClient(*mutated.address) as admin:
            # Touch the pool before any swap so caches are warm — the
            # swap must invalidate them, not serve generation-0 hits.
            admin.search(queries[:1], top=TOP_HITS)
            for verb, payload in steps:
                if verb == "append":
                    answer = admin.db_append(payload)
                else:
                    answer = admin.db_retire(payload)
                assert answer["type"] == "db_info", answer
                assert answer.get("swapped") is True
            info = admin.db_info()
        assert info["ordinal"] == len(steps)
        assert info["fingerprint"] == final_db.fingerprint()
        assert info["num_sequences"] == len(final_db)
        mutated_exact = _answers(mutated, queries, pipeline=False)
        mutated_pipeline = _answers(mutated, queries, pipeline=True)
    finally:
        mutated.shutdown()

    fresh = _service(final_db, plane)
    fresh.start()
    try:
        assert _answers(fresh, queries, pipeline=False) == mutated_exact
        assert _answers(fresh, queries, pipeline=True) == mutated_pipeline
    finally:
        fresh.shutdown()


@pytest.mark.parametrize("plane", PLANES)
def test_appended_sequence_is_searchable_and_retired_is_gone(workload, plane):
    """Directed sanity on top of the random schedules: an appended
    exact copy of the query must score as a hit; after retiring it, it
    must vanish from the hit table."""
    db, queries = workload
    query = queries[0]
    copy = Sequence.from_text("planted_copy", query.text, alphabet=db.alphabet)
    service = _service(db, plane)
    service.start()
    try:
        with SearchClient(*service.address) as client:
            client.db_append([copy])
            hits = client.query(query, top=TOP_HITS)["hits"]
            assert "planted_copy" in [h[0] for h in hits]
            client.db_retire(["planted_copy"])
            hits = client.query(query, top=TOP_HITS)["hits"]
            assert "planted_copy" not in [h[0] for h in hits]
    finally:
        service.shutdown()
