"""Tests for synthetic paper databases and query sets."""

import numpy as np
import pytest

from repro.sequences import (
    PAPER_DATABASE_ORDER,
    PAPER_DATABASES,
    evenly_spaced_lengths,
    heterogeneous_query_set,
    homogeneous_query_set,
    paper_database_profile,
    random_profile,
    standard_query_set,
)
from repro.sequences.synthetic import SWISSPROT_COMPOSITION, _lognormal_lengths
from repro.utils import ensure_rng


class TestPaperDatabases:
    def test_registry_has_five_databases(self):
        assert len(PAPER_DATABASES) == 5
        assert set(PAPER_DATABASE_ORDER) == set(PAPER_DATABASES)

    @pytest.mark.parametrize("key", ["ensembl_dog", "refseq_mouse"])
    def test_profile_matches_spec(self, key):
        spec = PAPER_DATABASES[key]
        profile = paper_database_profile(key)
        assert profile.num_sequences == spec.num_sequences
        assert profile.total_residues == spec.total_residues
        assert profile.lengths.min() == spec.min_length
        assert profile.lengths.max() == spec.max_length

    def test_table3_counts(self):
        # Sequence counts straight from Table III.
        assert PAPER_DATABASES["uniprot"].num_sequences == 537_505
        assert PAPER_DATABASES["ensembl_dog"].num_sequences == 25_160
        assert PAPER_DATABASES["ensembl_rat"].num_sequences == 32_971
        assert PAPER_DATABASES["refseq_human"].num_sequences == 34_705
        assert PAPER_DATABASES["refseq_mouse"].num_sequences == 29_437

    def test_uniprot_extremes_from_section5c(self):
        spec = PAPER_DATABASES["uniprot"]
        assert spec.min_length == 4
        assert spec.max_length == 35_213

    def test_deterministic(self):
        a = paper_database_profile("ensembl_dog", seed=1)
        b = paper_database_profile("ensembl_dog", seed=1)
        assert np.array_equal(a.lengths, b.lengths)

    def test_different_seeds_differ(self):
        a = paper_database_profile("ensembl_dog", seed=1)
        b = paper_database_profile("ensembl_dog", seed=2)
        assert not np.array_equal(a.lengths, b.lengths)

    def test_unknown_key(self):
        with pytest.raises(ValueError, match="unknown database"):
            paper_database_profile("genbank")

    def test_composition_is_normalised(self):
        assert SWISSPROT_COMPOSITION.sum() == pytest.approx(1.0)
        assert SWISSPROT_COMPOSITION[20:].sum() == 0.0


class TestLognormalLengths:
    def test_exact_total(self):
        rng = ensure_rng(0)
        lengths = _lognormal_lengths(1000, 350_000, 10, 5000, rng)
        assert lengths.sum() == 350_000
        assert lengths.min() >= 10
        assert lengths.max() <= 5000

    def test_extremes_pinned(self):
        rng = ensure_rng(0)
        lengths = _lognormal_lengths(500, 200_000, 50, 9000, rng)
        assert lengths.min() == 50
        assert lengths.max() == 9000

    def test_infeasible_total(self):
        rng = ensure_rng(0)
        with pytest.raises(ValueError, match="infeasible"):
            _lognormal_lengths(10, 5, 10, 100, rng)

    def test_tight_bounds(self):
        rng = ensure_rng(0)
        lengths = _lognormal_lengths(10, 100, 10, 10, rng)
        assert (lengths == 10).all()


class TestQuerySets:
    def test_standard_total_is_102000(self):
        # 40 lengths evenly spaced over [100, 5000] sum to 102,000 —
        # the value the Table IV GCUPS figures imply.
        qs = standard_query_set()
        assert len(qs) == 40
        assert qs.total_residues == 102_000
        assert qs.lengths.min() == 100
        assert qs.lengths.max() == 5_000

    def test_homogeneous_range(self):
        qs = homogeneous_query_set()
        assert qs.lengths.min() == 4_500
        assert qs.lengths.max() == 5_000
        assert qs.total_residues == 190_000

    def test_heterogeneous_range(self):
        qs = heterogeneous_query_set()
        assert qs.lengths.min() == 4
        assert qs.lengths.max() == 35_213

    def test_materialize(self):
        qs = standard_query_set(count=5)
        seqs = qs.materialize(seed=0)
        assert [len(s) for s in seqs] == qs.lengths.tolist()
        assert len({s.id for s in seqs}) == 5

    def test_scaled(self):
        qs = standard_query_set()
        s = qs.scaled(0.1)
        assert s.lengths.max() == 500
        assert s.lengths.min() >= 10

    def test_evenly_spaced_endpoints(self):
        lengths = evenly_spaced_lengths(7, 10, 100)
        assert lengths[0] == 10
        assert lengths[-1] == 100
        assert (np.diff(lengths) >= 0).all()

    def test_evenly_spaced_single(self):
        assert evenly_spaced_lengths(1, 10, 20).tolist() == [15]

    def test_evenly_spaced_validation(self):
        with pytest.raises(ValueError):
            evenly_spaced_lengths(0, 1, 2)
        with pytest.raises(ValueError):
            evenly_spaced_lengths(3, 5, 1)


class TestRandomProfile:
    def test_shape(self):
        p = random_profile("x", 100, 200.0, seed=3)
        assert p.num_sequences == 100
        assert abs(p.total_residues - 20_000) <= 1

    def test_deterministic(self):
        a = random_profile("x", 50, 100.0, seed=9)
        b = random_profile("x", 50, 100.0, seed=9)
        assert np.array_equal(a.lengths, b.lengths)
