"""Unit tests for the Sequence value type."""

import numpy as np
import pytest

from repro.sequences import DNA, PROTEIN, Sequence


class TestConstruction:
    def test_from_text(self):
        s = Sequence.from_text("q1", "ARND", description="test protein")
        assert s.id == "q1"
        assert len(s) == 4
        assert s.text == "ARND"
        assert s.description == "test protein"

    def test_codes_are_readonly(self):
        s = Sequence.from_text("q1", "ARND")
        with pytest.raises(ValueError):
            s.codes[0] = 3

    def test_codes_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            Sequence(id="bad", codes=np.array([99], dtype=np.uint8), alphabet=DNA)

    def test_2d_codes_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            Sequence(id="bad", codes=np.zeros((2, 2), dtype=np.uint8))

    def test_input_array_not_aliased(self):
        codes = np.zeros(4, dtype=np.uint8)
        s = Sequence(id="q", codes=codes)
        codes[0] = 5
        assert s.codes[0] == 0

    def test_strict_from_text(self):
        with pytest.raises(ValueError):
            Sequence.from_text("q", "AJ1", alphabet=DNA)

    def test_lenient_from_text(self):
        s = Sequence.from_text("q", "AZZT", alphabet=DNA, strict=False)
        assert s.text == "ANNT"


class TestProtocol:
    def test_equality(self):
        a = Sequence.from_text("q", "ARND")
        b = Sequence.from_text("q", "ARND")
        c = Sequence.from_text("q", "ARNDC")
        assert a == b
        assert a != c
        assert a != "ARND"

    def test_hash_consistency(self):
        a = Sequence.from_text("q", "ARND")
        b = Sequence.from_text("q", "ARND")
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_alphabet_distinguishes(self):
        a = Sequence.from_text("q", "ACGT", alphabet=DNA)
        b = Sequence.from_text("q", "ACGT", alphabet=PROTEIN)
        assert a != b

    def test_slice(self):
        s = Sequence.from_text("q", "ARNDC")
        assert s[1:3].text == "RN"
        assert s[1:3].id == "q"

    def test_scalar_index_rejected(self):
        s = Sequence.from_text("q", "ARNDC")
        with pytest.raises(TypeError):
            s[0]

    def test_reversed(self):
        s = Sequence.from_text("q", "ARNDC")
        assert s.reversed().text == "CDNRA"
        assert s.reversed().reversed() == s

    def test_empty_sequence(self):
        s = Sequence.from_text("q", "")
        assert len(s) == 0
        assert s.text == ""
