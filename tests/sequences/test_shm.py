"""Shared-memory arena tests: round-trip fidelity, lifecycle (close /
unlink / finalizer), resource-tracker hygiene, and the packed-database
payload on top."""

import glob
import os

import numpy as np
import pytest

from repro.sequences import small_database
from repro.sequences.packed import PackedDatabase
from repro.sequences.shm import (
    SHM_PREFIX,
    SharedArena,
    attach_packed,
    share_packed,
    shm_available,
)

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="POSIX shared memory unavailable"
)


def _live_segments() -> set[str]:
    return {
        os.path.basename(p) for p in glob.glob(f"/dev/shm/{SHM_PREFIX}*")
    }


@pytest.fixture
def arrays():
    rng = np.random.default_rng(7)
    return {
        "a": rng.integers(-100, 100, size=(13, 7), dtype=np.int64),
        "b": rng.integers(0, 255, size=37, dtype=np.uint8).astype(np.uint8),
        "c": np.array([], dtype=np.int32),
    }


class TestSharedArena:
    def test_round_trip_values_and_dtypes(self, arrays):
        with SharedArena.create(arrays) as owner:
            attached = SharedArena.attach(owner.manifest)
            try:
                for name, arr in arrays.items():
                    view = attached.array(name)
                    assert view.dtype == arr.dtype
                    assert view.shape == arr.shape
                    np.testing.assert_array_equal(view, arr)
            finally:
                attached.close()

    def test_views_are_read_only(self, arrays):
        with SharedArena.create(arrays) as owner:
            view = owner.array("a")
            with pytest.raises(ValueError):
                view[0, 0] = 1

    def test_owner_close_unlinks_segment(self, arrays):
        owner = SharedArena.create(arrays)
        name = owner.name
        assert name in _live_segments()
        owner.close()
        assert name not in _live_segments()

    def test_close_is_idempotent(self, arrays):
        owner = SharedArena.create(arrays)
        owner.close()
        owner.close()
        assert owner.closed

    def test_attacher_close_keeps_segment(self, arrays):
        with SharedArena.create(arrays) as owner:
            attached = SharedArena.attach(owner.manifest)
            attached.close()
            assert owner.name in _live_segments()
            # The owner can still read after an attacher detached.
            np.testing.assert_array_equal(owner.array("a"), arrays["a"])

    def test_array_after_close_rejected(self, arrays):
        owner = SharedArena.create(arrays)
        owner.close()
        with pytest.raises(ValueError, match="closed"):
            owner.array("a")

    def test_finalizer_unlinks_dropped_owner(self, arrays):
        owner = SharedArena.create(arrays)
        name = owner.name
        del owner
        assert name not in _live_segments()

    def test_segment_names_carry_prefix_and_pid(self, arrays):
        with SharedArena.create(arrays) as owner:
            assert owner.name.startswith(f"{SHM_PREFIX}_{os.getpid()}_")

    def test_attach_missing_segment_raises(self, arrays):
        with SharedArena.create(arrays) as owner:
            manifest = dict(owner.manifest)
        manifest["segment"] = f"{SHM_PREFIX}_0_deadbeef0000"
        with pytest.raises(FileNotFoundError):
            SharedArena.attach(manifest)


class TestPackedPayload:
    def test_attach_packed_round_trip(self):
        db = small_database(num_sequences=20, mean_length=40, seed=3)
        packed = PackedDatabase.from_database(db, chunk_cells=2_000)
        arena = share_packed(packed)
        try:
            attached_arena, rebuilt = attach_packed(arena.manifest)
            try:
                assert rebuilt.name == packed.name
                assert rebuilt.chunk_cells == packed.chunk_cells
                assert rebuilt.num_sequences == packed.num_sequences
                assert rebuilt.total_residues == packed.total_residues
                assert len(rebuilt.chunks) == len(packed.chunks)
                for mine, theirs in zip(packed.chunks, rebuilt.chunks):
                    np.testing.assert_array_equal(mine.codes, theirs.codes)
                    np.testing.assert_array_equal(mine.indices, theirs.indices)
                    np.testing.assert_array_equal(mine.lengths, theirs.lengths)
                assert [s.id for s in rebuilt.subjects] == [
                    s.id for s in packed.subjects
                ]
            finally:
                attached_arena.close()
        finally:
            arena.close()

    def test_no_segments_leak(self):
        before = _live_segments()
        db = small_database(num_sequences=8, mean_length=30, seed=5)
        packed = PackedDatabase.from_database(db)
        arena = share_packed(packed)
        attached, _rebuilt = attach_packed(arena.manifest)
        attached.close()
        arena.close()
        assert _live_segments() == before
