"""Tests for FASTA reading/writing."""

import io

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sequences import (
    DNA,
    FastaError,
    PROTEIN,
    Sequence,
    read_fasta,
    write_fasta,
)

SAMPLE = """>q1 first protein
ARNDC
QEGHI
>q2
LKMFP
"""


class TestRead:
    def test_basic_parse(self):
        seqs = read_fasta(io.StringIO(SAMPLE))
        assert [s.id for s in seqs] == ["q1", "q2"]
        assert seqs[0].text == "ARNDCQEGHI"
        assert seqs[0].description == "first protein"
        assert seqs[1].description == ""

    def test_multiline_concatenation(self):
        assert len(read_fasta(io.StringIO(SAMPLE))[0]) == 10

    def test_blank_lines_skipped(self):
        text = ">a\nAR\n\nND\n\n>b\nCC\n"
        seqs = read_fasta(io.StringIO(text))
        assert seqs[0].text == "ARND"
        assert seqs[1].text == "CC"

    def test_crlf_endings(self):
        text = ">a desc\r\nARND\r\n"
        seqs = read_fasta(io.StringIO(text))
        assert seqs[0].text == "ARND"
        assert seqs[0].description == "desc"

    def test_data_before_header(self):
        with pytest.raises(FastaError, match="before any"):
            read_fasta(io.StringIO("ARND\n>a\nARND\n"))

    def test_empty_header(self):
        with pytest.raises(FastaError, match="empty FASTA header"):
            read_fasta(io.StringIO(">\nARND\n"))

    def test_strict_rejects_bad_residue(self):
        with pytest.raises(FastaError, match="q1"):
            read_fasta(io.StringIO(">q1\nAR1D\n"), strict=True)

    def test_lenient_wildcards_bad_residue(self):
        seqs = read_fasta(io.StringIO(">q1\nARJD\n"), strict=False)
        assert seqs[0].text == "ARXD"

    def test_empty_file(self):
        assert read_fasta(io.StringIO("")) == []

    def test_record_with_no_residues(self):
        seqs = read_fasta(io.StringIO(">empty\n>b\nAR\n"))
        assert len(seqs[0]) == 0
        assert seqs[1].text == "AR"

    def test_file_path(self, tmp_path):
        p = tmp_path / "db.fasta"
        p.write_text(SAMPLE)
        seqs = read_fasta(p)
        assert len(seqs) == 2


class TestWrite:
    def test_roundtrip(self):
        original = read_fasta(io.StringIO(SAMPLE))
        buf = io.StringIO()
        count = write_fasta(original, buf)
        assert count == 2
        buf.seek(0)
        again = read_fasta(buf)
        assert again == original

    def test_wrapping(self):
        seq = Sequence.from_text("q", "A" * 130)
        buf = io.StringIO()
        write_fasta([seq], buf, width=60)
        lines = buf.getvalue().splitlines()
        assert lines[0] == ">q"
        assert [len(x) for x in lines[1:]] == [60, 60, 10]

    def test_no_wrapping(self):
        seq = Sequence.from_text("q", "A" * 130)
        buf = io.StringIO()
        write_fasta([seq], buf, width=0)
        assert len(buf.getvalue().splitlines()) == 2

    def test_negative_width(self):
        with pytest.raises(ValueError):
            write_fasta([], io.StringIO(), width=-1)

    def test_write_to_path(self, tmp_path):
        p = tmp_path / "out.fasta"
        seq = Sequence.from_text("q", "ACGT", alphabet=DNA)
        write_fasta([seq], p)
        assert read_fasta(p, alphabet=DNA) == [seq]


@given(
    st.lists(
        st.tuples(
            st.text(alphabet="abcdefgh123", min_size=1, max_size=8),
            st.text(alphabet="ARNDCQEGHILKMFPSTWYV", min_size=1, max_size=120),
        ),
        min_size=1,
        max_size=12,
    )
)
def test_property_roundtrip(records):
    seqs = [
        Sequence.from_text(f"{rid}_{i}", text, alphabet=PROTEIN)
        for i, (rid, text) in enumerate(records)
    ]
    buf = io.StringIO()
    write_fasta(seqs, buf, width=17)
    buf.seek(0)
    assert read_fasta(buf) == seqs
