"""Tests for homolog generation."""

import numpy as np
import pytest

from repro.align import default_scheme, sw_score
from repro.sequences import (
    Sequence,
    homolog_family,
    mutate,
    plant_homologs,
    small_database,
)


@pytest.fixture(scope="module")
def parent():
    rng = np.random.default_rng(17)
    codes = rng.integers(0, 20, 200).astype(np.uint8)
    return Sequence(id="parent", codes=codes)


class TestMutate:
    def test_zero_divergence_is_identity(self, parent):
        child = mutate(parent, divergence=0.0, seed=1)
        assert child.codes.tolist() == parent.codes.tolist()

    def test_deterministic(self, parent):
        a = mutate(parent, 0.3, seed=5)
        b = mutate(parent, 0.3, seed=5)
        assert a.codes.tolist() == b.codes.tolist()

    def test_divergence_changes_sequence(self, parent):
        child = mutate(parent, 0.5, seed=2)
        assert child.codes.tolist() != parent.codes.tolist()

    def test_child_id_and_description(self, parent):
        child = mutate(parent, 0.2, seed=3, child_id="kid")
        assert child.id == "kid"
        assert "parent" in child.description

    def test_only_standard_residues(self, parent):
        child = mutate(parent, 0.9, indel_rate=0.3, seed=4)
        assert (child.codes < 20).all()

    def test_similarity_decreases_with_divergence(self, parent):
        scheme = default_scheme()
        close = mutate(parent, 0.1, seed=6)
        far = mutate(parent, 0.7, seed=6)
        assert sw_score(parent, close, scheme) > sw_score(parent, far, scheme)

    def test_homolog_detectable_vs_background(self, parent):
        # A 30%-diverged homolog must massively outscore unrelated
        # sequences of similar composition.
        scheme = default_scheme()
        rng = np.random.default_rng(8)
        homolog = mutate(parent, 0.3, seed=7)
        unrelated = Sequence(
            id="bg", codes=rng.integers(0, 20, len(parent)).astype(np.uint8)
        )
        assert sw_score(parent, homolog, scheme) > 3 * sw_score(
            parent, unrelated, scheme
        )

    def test_validation(self, parent):
        with pytest.raises(ValueError):
            mutate(parent, divergence=1.5)
        with pytest.raises(ValueError):
            mutate(parent, 0.2, indel_rate=2.0)
        with pytest.raises(ValueError):
            mutate(parent, 0.2, mean_indel_length=0.5)

    def test_nonstandard_residues_rejected(self):
        seq = Sequence.from_text("x", "ARNDX")  # X is code 22
        with pytest.raises(ValueError, match="standard-residue"):
            mutate(seq, 0.1)


class TestFamilyAndPlanting:
    def test_family_size_and_ids(self, parent):
        family = homolog_family(parent, size=5, seed=9)
        assert len(family) == 5
        assert len({m.id for m in family}) == 5

    def test_family_members_differ(self, parent):
        family = homolog_family(parent, size=3, divergence=0.4, seed=10)
        texts = {m.text for m in family}
        assert len(texts) == 3

    def test_family_validation(self, parent):
        with pytest.raises(ValueError):
            homolog_family(parent, size=0)

    def test_plant_homologs(self, parent):
        background = list(small_database(num_sequences=10, seed=11))
        merged = plant_homologs(background, parent, num_homologs=3, seed=12)
        assert len(merged) == 13
        planted = [s for s in merged if s.id.startswith("parent_h")]
        assert len(planted) == 3

    def test_plant_zero(self, parent):
        background = list(small_database(num_sequences=4, seed=13))
        merged = plant_homologs(background, parent, num_homologs=0, seed=14)
        assert len(merged) == 4

    def test_search_finds_planted_homolog(self, parent):
        # End-to-end: a live search ranks the planted homolog first.
        from repro.engine import live_search
        from repro.sequences import SequenceDatabase

        background = list(small_database(num_sequences=15, mean_length=150, seed=15))
        merged = plant_homologs(background, parent, num_homologs=2, seed=16)
        database = SequenceDatabase("planted", merged)
        report = live_search([parent], database, 1, 0, policy="self", top_hits=3)
        best = report.result_for("parent").best
        assert best.subject_id.startswith("parent_h")
