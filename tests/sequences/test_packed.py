"""Tests for the packed-database layout and its reuse across queries."""

import numpy as np
import pytest

from repro.align import default_scheme, sw_score, sw_score_batch, sw_score_packed
from repro.sequences import DNA, PROTEIN, PackedDatabase, Sequence


def random_db(rng, n, lo=1, hi=90):
    return [
        Sequence(
            id=f"s{i}",
            codes=rng.integers(0, 20, int(length)).astype(np.uint8),
            alphabet=PROTEIN,
        )
        for i, length in enumerate(rng.integers(lo, hi, size=n))
    ]


class TestPacking:
    def test_chunks_respect_cell_budget(self):
        rng = np.random.default_rng(3)
        packed = PackedDatabase(random_db(rng, 50), chunk_cells=2000)
        assert len(packed.chunks) > 1
        for chunk in packed.chunks:
            assert chunk.padded_cells <= 2000

    def test_single_subject_may_exceed_budget(self):
        # A subject longer than the budget still gets a (singleton) chunk.
        rng = np.random.default_rng(4)
        subject = random_db(rng, 1, lo=500, hi=501)[0]
        packed = PackedDatabase([subject], chunk_cells=100)
        assert len(packed.chunks) == 1
        assert packed.chunks[0].num_sequences == 1

    def test_sorted_by_length_within_and_across_chunks(self):
        rng = np.random.default_rng(5)
        packed = PackedDatabase(random_db(rng, 40), chunk_cells=1500)
        all_lengths = np.concatenate([c.lengths for c in packed.chunks])
        assert np.array_equal(all_lengths, np.sort(all_lengths))

    def test_indices_cover_database_exactly_once(self):
        rng = np.random.default_rng(6)
        db = random_db(rng, 30)
        packed = PackedDatabase(db, chunk_cells=1200)
        indices = np.concatenate([c.indices for c in packed.chunks])
        assert sorted(indices.tolist()) == list(range(len(db)))

    def test_codes_match_subjects_and_padding(self):
        rng = np.random.default_rng(7)
        db = random_db(rng, 12)
        packed = PackedDatabase(db, chunk_cells=800)
        for chunk in packed.chunks:
            for b, i in enumerate(chunk.indices):
                n = int(chunk.lengths[b])
                assert np.array_equal(chunk.codes[b, :n], db[i].codes)
                assert (chunk.codes[b, n:] == packed.pad_code).all()

    def test_codes_read_only(self):
        rng = np.random.default_rng(8)
        packed = PackedDatabase(random_db(rng, 5))
        with pytest.raises(ValueError):
            packed.chunks[0].codes[0, 0] = 1

    def test_metadata(self):
        rng = np.random.default_rng(9)
        db = random_db(rng, 15)
        packed = PackedDatabase(db, chunk_cells=1000, name="meta")
        assert packed.num_sequences == len(db) == len(packed)
        assert packed.total_residues == sum(len(s) for s in db)
        assert packed.padded_cells >= packed.total_residues
        assert 0 < packed.pack_efficiency <= 1.0
        assert packed.subjects == tuple(db)
        assert list(packed) == db
        assert packed[0] is db[0]

    def test_empty_database(self):
        packed = PackedDatabase([])
        assert packed.chunks == ()
        assert packed.alphabet is None
        assert packed.pack_efficiency == 1.0

    def test_validation(self):
        q = Sequence.from_text("q", "ARND")
        with pytest.raises(ValueError, match="chunk_cells"):
            PackedDatabase([q], chunk_cells=0)
        d = Sequence.from_text("d", "ACGT", alphabet=DNA)
        with pytest.raises(ValueError, match="alphabet"):
            PackedDatabase([q, d])


class TestReuse:
    """One packing must serve many queries with exact scores."""

    def test_two_queries_one_packing_match_fresh_batch(self):
        rng = np.random.default_rng(21)
        db = random_db(rng, 25)
        scheme = default_scheme()
        packed = PackedDatabase(db, chunk_cells=2000)
        for n in (30, 55):
            q = Sequence(
                id=f"q{n}",
                codes=rng.integers(0, 20, n).astype(np.uint8),
                alphabet=PROTEIN,
            )
            reused = sw_score_packed(q, packed, scheme)
            fresh = sw_score_batch(q, db, scheme)
            assert np.array_equal(reused, fresh)

    def test_packed_scores_match_scalar_across_chunks(self):
        rng = np.random.default_rng(22)
        db = random_db(rng, 20)
        q = Sequence(
            id="q", codes=rng.integers(0, 20, 40).astype(np.uint8), alphabet=PROTEIN
        )
        scheme = default_scheme()
        packed = PackedDatabase(db, chunk_cells=500)  # force many chunks
        got = sw_score_packed(q, packed, scheme)
        ref = np.array([sw_score(q, s, scheme) for s in db], dtype=np.int64)
        assert np.array_equal(got, ref)

    def test_alphabet_mismatch_rejected(self):
        rng = np.random.default_rng(23)
        packed = PackedDatabase(random_db(rng, 4))
        dna_q = Sequence.from_text("q", "ACGT", alphabet=DNA)
        with pytest.raises(ValueError, match="alphabet"):
            sw_score_packed(dna_q, packed, default_scheme())
