"""Tests for SequenceDatabase / DatabaseProfile."""

import numpy as np
import pytest

from repro.sequences import (
    DatabaseProfile,
    PROTEIN,
    Sequence,
    SequenceDatabase,
    small_database,
)


def toy_db():
    seqs = [
        Sequence.from_text("a", "ARND"),
        Sequence.from_text("b", "CQ"),
        Sequence.from_text("c", "EGHILK"),
    ]
    return SequenceDatabase("toy", seqs)


class TestSequenceDatabase:
    def test_len_and_iteration(self):
        db = toy_db()
        assert len(db) == 3
        assert [s.id for s in db] == ["a", "b", "c"]

    def test_lengths(self):
        assert toy_db().lengths.tolist() == [4, 2, 6]

    def test_total_residues(self):
        assert toy_db().total_residues == 12

    def test_stats(self):
        stats = toy_db().stats()
        assert stats.num_sequences == 3
        assert stats.min_length == 2
        assert stats.max_length == 6
        assert stats.mean_length == 4.0
        assert stats.total_residues == 12

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="no sequences"):
            SequenceDatabase("empty", [])

    def test_mixed_alphabets_rejected(self):
        from repro.sequences import DNA

        seqs = [
            Sequence.from_text("a", "ARND"),
            Sequence.from_text("b", "ACGT", alphabet=DNA),
        ]
        with pytest.raises(ValueError, match="mixes alphabets"):
            SequenceDatabase("bad", seqs)

    def test_lengths_readonly(self):
        with pytest.raises(ValueError):
            toy_db().lengths[0] = 1

    def test_profile_matches(self):
        db = toy_db()
        profile = db.profile()
        assert profile.num_sequences == len(db)
        assert profile.total_residues == db.total_residues
        assert np.array_equal(profile.lengths, db.lengths)

    def test_fasta_roundtrip(self, tmp_path):
        db = toy_db()
        path = tmp_path / "db.fasta"
        db.to_fasta(path)
        again = SequenceDatabase.from_fasta(path, name="toy")
        assert list(again) == list(db)

    def test_binary_roundtrip(self, tmp_path):
        db = toy_db()
        path = tmp_path / "db.swdb"
        db.to_binary(path)
        again = SequenceDatabase.from_binary(path, name="toy")
        assert list(again) == list(db)


class TestDatabaseProfile:
    def test_validation(self):
        with pytest.raises(ValueError, match="positive"):
            DatabaseProfile("bad", np.array([3, 0]))
        with pytest.raises(ValueError, match="non-empty"):
            DatabaseProfile("bad", np.array([], dtype=np.int64))

    def test_composition_normalised(self):
        comp = np.zeros(PROTEIN.size)
        comp[:20] = 2.0
        p = DatabaseProfile("x", np.array([5]), composition=comp)
        assert p.composition.sum() == pytest.approx(1.0)

    def test_composition_shape_checked(self):
        with pytest.raises(ValueError, match="composition"):
            DatabaseProfile("x", np.array([5]), composition=np.ones(3))

    def test_scaled_preserves_bounds(self):
        p = DatabaseProfile("x", np.arange(1, 101))
        s = p.scaled(0.25, seed=1)
        assert s.num_sequences == 25
        assert s.lengths.min() >= 1
        assert s.lengths.max() <= 100

    def test_scaled_fraction_validation(self):
        p = DatabaseProfile("x", np.array([5]))
        with pytest.raises(ValueError):
            p.scaled(0.0)
        with pytest.raises(ValueError):
            p.scaled(1.5)

    def test_materialize_matches_lengths(self):
        p = DatabaseProfile("x", np.array([7, 13, 2]))
        db = p.materialize(seed=3)
        assert db.lengths.tolist() == [7, 13, 2]
        assert db.alphabet is PROTEIN

    def test_materialize_deterministic(self):
        p = DatabaseProfile("x", np.array([9, 9]))
        a = p.materialize(seed=5)
        b = p.materialize(seed=5)
        assert list(a) == list(b)

    def test_materialize_no_wildcards(self):
        p = DatabaseProfile("x", np.array([500]))
        db = p.materialize(seed=1)
        assert "X" not in db[0].text
        assert "*" not in db[0].text


class TestSmallDatabase:
    def test_shape(self):
        db = small_database(num_sequences=10, mean_length=50, seed=2)
        assert len(db) == 10
        assert db.total_residues == 500

    def test_deterministic(self):
        a = small_database(seed=11)
        b = small_database(seed=11)
        assert list(a) == list(b)
