"""Tests for substitution matrices."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sequences import (
    BLOSUM50,
    BLOSUM62,
    DNA,
    PAM250,
    PROTEIN,
    SubstitutionMatrix,
    match_mismatch_matrix,
    matrix_by_name,
)

ALL_STANDARD = [BLOSUM62, BLOSUM50, PAM250]


class TestStandardMatrices:
    @pytest.mark.parametrize("matrix", ALL_STANDARD, ids=lambda m: m.name)
    def test_symmetric(self, matrix):
        assert matrix.is_symmetric

    @pytest.mark.parametrize("matrix", ALL_STANDARD, ids=lambda m: m.name)
    def test_shape(self, matrix):
        assert matrix.scores.shape == (24, 24)

    @pytest.mark.parametrize("matrix", ALL_STANDARD, ids=lambda m: m.name)
    def test_diagonal_dominates_row(self, matrix):
        # A residue should never score higher against a different
        # residue than against itself (true for all standard matrices,
        # excluding ambiguity/stop codes).
        scores = matrix.scores[:20, :20]
        diag = np.diag(scores)
        assert (scores <= diag[:, None]).all()

    @pytest.mark.parametrize("matrix", ALL_STANDARD, ids=lambda m: m.name)
    def test_diagonal_positive(self, matrix):
        assert (np.diag(matrix.scores)[:20] > 0).all()

    def test_blosum62_spot_values(self):
        # Well-known values of the NCBI BLOSUM62 matrix.
        assert BLOSUM62.score("A", "A") == 4
        assert BLOSUM62.score("W", "W") == 11
        assert BLOSUM62.score("C", "C") == 9
        assert BLOSUM62.score("A", "R") == -1
        assert BLOSUM62.score("W", "V") == -3
        assert BLOSUM62.score("E", "Z") == 4
        assert BLOSUM62.score("*", "*") == 1
        assert BLOSUM62.score("A", "*") == -4

    def test_blosum50_spot_values(self):
        assert BLOSUM50.score("W", "W") == 15
        assert BLOSUM50.score("C", "C") == 13
        assert BLOSUM50.score("A", "A") == 5

    def test_pam250_spot_values(self):
        assert PAM250.score("W", "W") == 17
        assert PAM250.score("C", "C") == 12
        assert PAM250.score("F", "Y") == 7

    def test_scores_readonly(self):
        with pytest.raises(ValueError):
            BLOSUM62.scores[0, 0] = 99

    def test_matrix_by_name(self):
        assert matrix_by_name("BLOSUM62") is BLOSUM62
        assert matrix_by_name("pam250") is PAM250

    def test_matrix_by_name_unknown(self):
        with pytest.raises(ValueError, match="unknown matrix"):
            matrix_by_name("blosum999")


class TestProfile:
    def test_profile_shape(self):
        q = PROTEIN.encode("ARND")
        prof = BLOSUM62.profile(q)
        assert prof.shape == (4, 24)

    def test_profile_rows_match_scores(self):
        q = PROTEIN.encode("AW")
        prof = BLOSUM62.profile(q)
        assert np.array_equal(prof[0], BLOSUM62.scores[PROTEIN.code_of("A")])
        assert np.array_equal(prof[1], BLOSUM62.scores[PROTEIN.code_of("W")])

    def test_profile_empty_query(self):
        prof = BLOSUM62.profile(PROTEIN.encode(""))
        assert prof.shape == (0, 24)


class TestMatchMismatch:
    def test_figure1_scoring(self):
        # The paper's Figure 1 example uses ma=+1, mi=-1 on DNA.
        m = match_mismatch_matrix(DNA, match=1, mismatch=-1)
        assert m.score("A", "A") == 1
        assert m.score("A", "C") == -1

    def test_wildcard_rows(self):
        m = match_mismatch_matrix(DNA, match=2, mismatch=-3, wildcard_score=0)
        assert m.score("N", "A") == 0
        assert m.score("A", "N") == 0
        assert m.score("N", "N") == 0

    def test_match_must_exceed_mismatch(self):
        with pytest.raises(ValueError, match="must exceed"):
            match_mismatch_matrix(DNA, match=-1, mismatch=-1)

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="shape"):
            SubstitutionMatrix("bad", DNA, np.zeros((3, 3), dtype=np.int32))

    @given(
        match=st.integers(min_value=1, max_value=10),
        mismatch=st.integers(min_value=-10, max_value=0),
    )
    def test_property_symmetric(self, match, mismatch):
        m = match_mismatch_matrix(DNA, match=match, mismatch=mismatch)
        assert m.is_symmetric
