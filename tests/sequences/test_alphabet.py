"""Unit and property tests for residue alphabets."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sequences import DNA, PROTEIN, RNA, Alphabet, alphabet_by_name


class TestAlphabetBasics:
    def test_sizes(self):
        assert DNA.size == 5
        assert RNA.size == 5
        assert PROTEIN.size == 24

    def test_len_matches_size(self):
        for a in (DNA, RNA, PROTEIN):
            assert len(a) == a.size

    def test_protein_is_blosum_order(self):
        assert PROTEIN.letters == "ARNDCQEGHILKMFPSTWYVBZX*"

    def test_wildcards(self):
        assert DNA.wildcard == "N"
        assert PROTEIN.wildcard == "X"
        assert PROTEIN.wildcard_code == PROTEIN.letters.index("X")

    def test_code_of_roundtrip(self):
        for a in (DNA, RNA, PROTEIN):
            for i, letter in enumerate(a.letters):
                assert a.code_of(letter) == i

    def test_code_of_lowercase(self):
        assert PROTEIN.code_of("a") == PROTEIN.code_of("A")

    def test_code_of_invalid_letter(self):
        with pytest.raises(ValueError, match="not in alphabet"):
            DNA.code_of("Z")

    def test_code_of_multichar(self):
        with pytest.raises(ValueError, match="single character"):
            DNA.code_of("AC")

    def test_lookup_by_name(self):
        assert alphabet_by_name("dna") is DNA
        assert alphabet_by_name("PROTEIN") is PROTEIN

    def test_lookup_unknown_name(self):
        with pytest.raises(ValueError, match="unknown alphabet"):
            alphabet_by_name("klingon")

    def test_duplicate_letters_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Alphabet(name="bad", letters="AAC", wildcard="C")

    def test_wildcard_must_be_member(self):
        with pytest.raises(ValueError, match="wildcard"):
            Alphabet(name="bad", letters="ACGT", wildcard="N")


class TestEncodeDecode:
    def test_encode_simple(self):
        codes = DNA.encode("ACGT")
        assert codes.dtype == np.uint8
        assert codes.tolist() == [0, 1, 2, 3]

    def test_encode_case_insensitive(self):
        assert np.array_equal(DNA.encode("acgt"), DNA.encode("ACGT"))

    def test_encode_strict_rejects_unknown(self):
        with pytest.raises(ValueError, match="invalid letter"):
            DNA.encode("ACGTZ", strict=True)

    def test_encode_lenient_maps_to_wildcard(self):
        codes = DNA.encode("ACZT", strict=False)
        assert codes[2] == DNA.wildcard_code

    def test_encode_bytes_input(self):
        assert np.array_equal(DNA.encode(b"ACGT"), DNA.encode("ACGT"))

    def test_encode_empty(self):
        assert DNA.encode("").size == 0

    def test_decode_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            DNA.decode(np.array([200], dtype=np.uint8))

    def test_is_valid(self):
        assert PROTEIN.is_valid("ARND")
        assert not PROTEIN.is_valid("ARND1")


@given(st.text(alphabet="ACGTN", max_size=200))
def test_dna_roundtrip(text):
    assert DNA.decode(DNA.encode(text)) == text.upper()


@given(st.text(alphabet="ARNDCQEGHILKMFPSTWYVBZX*", max_size=200))
def test_protein_roundtrip(text):
    assert PROTEIN.decode(PROTEIN.encode(text)) == text.upper()


@given(st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=100))
def test_lenient_encode_never_raises(text):
    codes = PROTEIN.encode(text, strict=False)
    assert codes.size == len(text.encode("ascii"))
    assert (codes < PROTEIN.size).all()
