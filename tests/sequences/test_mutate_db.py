"""The generation-versioned database plane: pure mutations
(:func:`apply_append` / :func:`apply_retire`), generation ordinals and
provenance, and the refcounted arena handle that makes shm swaps
leak-proof."""

import pytest

from repro.sequences import DNA, Sequence, SequenceDatabase, small_database
from repro.sequences.mutate_db import (
    DatabaseGeneration,
    GenerationHandle,
    GenerationInfo,
    MutationError,
    apply_append,
    apply_retire,
)


@pytest.fixture()
def db():
    return small_database(num_sequences=6, mean_length=30, seed=11)


def _seq_like(db, sid: str) -> Sequence:
    template = next(iter(db))
    return Sequence.from_text(sid, template.text, alphabet=template.alphabet)


class TestApplyAppend:
    def test_appends_at_the_end(self, db):
        extra = [_seq_like(db, "new_a"), _seq_like(db, "new_b")]
        out = apply_append(db, extra)
        assert [s.id for s in out] == [s.id for s in db] + ["new_a", "new_b"]
        assert out.name == db.name
        assert len(db) == 6  # the input is untouched

    def test_custom_name(self, db):
        out = apply_append(db, [_seq_like(db, "x")], name="renamed")
        assert out.name == "renamed"

    def test_empty_batch_rejected(self, db):
        with pytest.raises(MutationError, match="at least one"):
            apply_append(db, [])

    def test_existing_id_rejected(self, db):
        taken = next(iter(db)).id
        with pytest.raises(MutationError, match="already in the database"):
            apply_append(db, [_seq_like(db, taken)])

    def test_duplicate_in_batch_rejected(self, db):
        with pytest.raises(MutationError, match="duplicate"):
            apply_append(db, [_seq_like(db, "twin"), _seq_like(db, "twin")])

    def test_alphabet_mismatch_rejected(self, db):
        dna = Sequence.from_text("dna_seq", "ACGTACGT", alphabet=DNA)
        with pytest.raises(MutationError, match="alphabet"):
            apply_append(db, [dna])

    def test_mutation_error_is_a_value_error(self):
        assert issubclass(MutationError, ValueError)


class TestApplyRetire:
    def test_retires_named_ids_order_preserved(self, db):
        ids = [s.id for s in db]
        out = apply_retire(db, [ids[1], ids[3]])
        assert [s.id for s in out] == [ids[0], ids[2], ids[4], ids[5]]
        assert len(db) == 6

    def test_empty_id_list_rejected(self, db):
        with pytest.raises(MutationError, match="at least one"):
            apply_retire(db, [])

    def test_unknown_id_rejected(self, db):
        with pytest.raises(MutationError, match="unknown sequence id"):
            apply_retire(db, ["nope"])

    def test_emptying_the_database_rejected(self, db):
        with pytest.raises(MutationError, match="empty"):
            apply_retire(db, [s.id for s in db])

    def test_duplicate_ids_collapse(self, db):
        victim = next(iter(db)).id
        out = apply_retire(db, [victim, victim])
        assert len(out) == 5

    def test_path_independence(self, db):
        """Append-then-retire equals building the final list directly —
        the invariant the swap-conformance suite leans on."""
        extra = [_seq_like(db, "new_a"), _seq_like(db, "new_b")]
        victim = next(iter(db)).id
        stepped = apply_retire(apply_append(db, extra), [victim])
        direct = SequenceDatabase(
            db.name, [s for s in db if s.id != victim] + extra
        )
        assert stepped.fingerprint() == direct.fingerprint()


class TestDatabaseGeneration:
    def test_generation_zero(self, db):
        gen = DatabaseGeneration(db)
        info = gen.info()
        assert info.ordinal == 0
        assert info.name == db.name
        assert info.num_sequences == len(db)
        assert info.total_residues == db.total_residues
        assert info.fingerprint == db.fingerprint()
        assert info.appended == 0 and info.retired == 0

    def test_negative_ordinal_rejected(self, db):
        with pytest.raises(ValueError, match="ordinal"):
            DatabaseGeneration(db, ordinal=-1)

    def test_append_advances_ordinal(self, db):
        gen0 = DatabaseGeneration(db)
        gen1 = gen0.append([_seq_like(db, "x"), _seq_like(db, "y")])
        assert gen1.ordinal == 1
        assert gen1.info().appended == 2
        assert gen1.info().retired == 0
        # The old generation still serves its own database.
        assert gen0.ordinal == 0
        assert len(gen0.database) == 6
        assert len(gen1.database) == 8

    def test_retire_advances_ordinal(self, db):
        gen0 = DatabaseGeneration(db)
        victim = next(iter(db)).id
        gen1 = gen0.retire([victim])
        assert gen1.ordinal == 1
        assert gen1.info().retired == 1
        assert len(gen1.database) == 5

    def test_stacked_mutations(self, db):
        gen = DatabaseGeneration(db)
        gen = gen.append([_seq_like(db, "x")])
        gen = gen.retire(["x"])
        gen = gen.append([_seq_like(db, "y")])
        assert gen.ordinal == 3
        assert gen.info().appended == 1  # provenance of the *last* step

    def test_failed_mutation_leaves_generation_alone(self, db):
        gen = DatabaseGeneration(db)
        with pytest.raises(MutationError):
            gen.retire(["nope"])
        assert gen.ordinal == 0

    def test_info_round_trips_through_dict(self, db):
        info = DatabaseGeneration(db).append([_seq_like(db, "x")]).info()
        assert GenerationInfo.from_dict(info.as_dict()) == info


class _FakeArena:
    def __init__(self):
        self.closed = 0

    def close(self):
        self.closed += 1


class TestGenerationHandle:
    def test_starts_with_base_reference(self):
        handle = GenerationHandle()
        assert handle.refcount == 1
        assert not handle.finalized

    def test_release_to_zero_closes_arena(self):
        arena = _FakeArena()
        handle = GenerationHandle(arena)
        handle.acquire()
        assert handle.release() == 1
        assert arena.closed == 0  # a worker still holds it
        assert handle.release() == 0
        assert arena.closed == 1
        assert handle.finalized

    def test_acquire_after_finalize_rejected(self):
        handle = GenerationHandle()
        handle.release()
        with pytest.raises(ValueError, match="finalized"):
            handle.acquire()

    def test_double_release_raises(self):
        handle = GenerationHandle(_FakeArena())
        handle.release()
        with pytest.raises(ValueError, match="more times than acquired"):
            handle.release()

    def test_none_arena_is_pure_refcounting(self):
        handle = GenerationHandle(None)
        handle.acquire()
        handle.release()
        assert handle.release() == 0
        assert handle.finalized

    def test_concurrent_release_closes_exactly_once(self):
        import threading

        arena = _FakeArena()
        handle = GenerationHandle(arena)
        for _ in range(15):
            handle.acquire()
        threads = [
            threading.Thread(target=handle.release) for _ in range(16)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert handle.finalized
        assert arena.closed == 1
