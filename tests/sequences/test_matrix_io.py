"""Tests for NCBI matrix file parsing/formatting."""

import numpy as np
import pytest

from repro.sequences import (
    BLOSUM50,
    BLOSUM62,
    PAM250,
    format_ncbi_matrix,
    parse_ncbi_matrix,
)

SMALL = """# test matrix
   A  C  G
A  2 -1 -1
C -1  2 -1
G -1 -1  2
"""


class TestParse:
    def test_small_matrix(self):
        m = parse_ncbi_matrix(SMALL, name="tiny")
        assert m.name == "tiny"
        assert m.alphabet.letters == "ACG"
        assert m.score("A", "A") == 2
        assert m.score("A", "C") == -1

    def test_comments_ignored(self):
        m = parse_ncbi_matrix("# one\n# two\n" + SMALL)
        assert m.alphabet.size == 3

    def test_wildcard_selection(self):
        assert parse_ncbi_matrix(SMALL).alphabet.wildcard == "G"  # last letter
        with_n = SMALL.replace("G", "N")
        assert parse_ncbi_matrix(with_n).alphabet.wildcard == "N"

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="no content"):
            parse_ncbi_matrix("# only comments\n")

    def test_row_count_checked(self):
        broken = "\n".join(SMALL.splitlines()[:-1])
        with pytest.raises(ValueError, match="expected 3 matrix rows"):
            parse_ncbi_matrix(broken)

    def test_row_label_checked(self):
        swapped = SMALL.replace("C -1  2 -1", "T -1  2 -1")
        with pytest.raises(ValueError, match="labelled"):
            parse_ncbi_matrix(swapped)

    def test_value_count_checked(self):
        broken = SMALL.replace("A  2 -1 -1", "A  2 -1")
        with pytest.raises(ValueError, match="values"):
            parse_ncbi_matrix(broken)


class TestRoundTrip:
    @pytest.mark.parametrize("matrix", [BLOSUM62, BLOSUM50, PAM250], ids=lambda m: m.name)
    def test_standard_matrices(self, matrix):
        text = format_ncbi_matrix(matrix, comment=f"{matrix.name} roundtrip")
        again = parse_ncbi_matrix(text, name=matrix.name)
        assert np.array_equal(again.scores, matrix.scores)
        assert again.alphabet.letters == matrix.alphabet.letters

    def test_comment_written(self):
        text = format_ncbi_matrix(BLOSUM62, comment="hello\nworld")
        assert text.startswith("# hello\n# world\n")

    def test_parseable_by_alignment(self):
        # A parsed matrix works end to end in an alignment.
        from repro.align import GapModel, ScoringScheme, sw_score
        from repro.sequences import Sequence

        m = parse_ncbi_matrix(SMALL, name="tiny")
        scheme = ScoringScheme(matrix=m, gaps=GapModel.linear(-2))
        q = Sequence.from_text("q", "ACG", alphabet=m.alphabet)
        assert sw_score(q, q, scheme) == 6
