"""Tests for sequence/database statistics."""

import numpy as np
import pytest

from repro.sequences import (
    PROTEIN,
    Sequence,
    composition,
    database_composition,
    length_histogram,
    paper_database_profile,
    sequence_entropy,
)
from repro.sequences.synthetic import SWISSPROT_COMPOSITION


class TestComposition:
    def test_uniform_sequence(self):
        s = Sequence.from_text("s", "ARND")
        freqs = composition(s)
        assert freqs.sum() == pytest.approx(1.0)
        assert freqs[PROTEIN.code_of("A")] == pytest.approx(0.25)

    def test_empty_sequence(self):
        s = Sequence.from_text("s", "")
        assert composition(s).sum() == 0.0

    def test_database_composition_matches_generator(self):
        # Materialised synthetic databases should follow the Swiss-Prot
        # background they were drawn from.
        profile = paper_database_profile("ensembl_dog").scaled(0.01, seed=1)
        db = profile.materialize(seed=2)
        freqs = database_composition(db)
        # Compare the 20 standard residues (chi-by-eye tolerance).
        assert np.abs(freqs[:20] - SWISSPROT_COMPOSITION[:20]).max() < 0.01

    def test_database_composition_sums_to_one(self):
        from repro.sequences import small_database

        freqs = database_composition(small_database(seed=4))
        assert freqs.sum() == pytest.approx(1.0)


class TestEntropy:
    def test_single_letter_zero(self):
        s = Sequence.from_text("s", "AAAAAA")
        assert sequence_entropy(s) == pytest.approx(0.0)

    def test_uniform_max(self):
        s = Sequence.from_text("s", "ARND")
        assert sequence_entropy(s) == pytest.approx(2.0)  # log2(4)

    def test_empty(self):
        assert sequence_entropy(Sequence.from_text("s", "")) == 0.0

    def test_base_e(self):
        s = Sequence.from_text("s", "AR")
        assert sequence_entropy(s, base=np.e) == pytest.approx(np.log(2))

    def test_base_validation(self):
        with pytest.raises(ValueError):
            sequence_entropy(Sequence.from_text("s", "AR"), base=1.0)

    def test_low_complexity_below_random(self):
        rng = np.random.default_rng(5)
        random_seq = Sequence(
            id="r", codes=rng.integers(0, 20, 200).astype(np.uint8)
        )
        repeat = Sequence.from_text("p", "PQ" * 100)
        assert sequence_entropy(repeat) < sequence_entropy(random_seq)


class TestLengthHistogram:
    def test_linear_bins_for_narrow_spread(self):
        edges, counts = length_histogram(np.array([10, 20, 30, 40]), num_bins=3)
        assert len(edges) == 4
        assert counts.sum() == 4
        # Linear: equal spacing.
        assert np.allclose(np.diff(edges), np.diff(edges)[0])

    def test_log_bins_for_wide_spread(self):
        lengths = np.array([4, 50, 600, 35_000])
        edges, counts = length_histogram(lengths, num_bins=4)
        assert counts.sum() == 4
        # Logarithmic: equal ratios.
        ratios = edges[1:] / edges[:-1]
        assert np.allclose(ratios, ratios[0])

    def test_validation(self):
        with pytest.raises(ValueError):
            length_histogram(np.array([]))
        with pytest.raises(ValueError):
            length_histogram(np.array([1, 2]), num_bins=0)
        with pytest.raises(ValueError):
            length_histogram(np.array([0, 2]))
