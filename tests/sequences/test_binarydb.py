"""Tests for the SWDUAL binary database format."""

import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sequences import (
    BinaryDBError,
    BinaryDatabaseReader,
    DNA,
    Sequence,
    write_binary_db,
)


def make_seqs(texts, alphabet=DNA):
    return [
        Sequence.from_text(f"s{i}", t, alphabet=alphabet, description=f"desc {i}")
        for i, t in enumerate(texts)
    ]


class TestWriteRead:
    def test_roundtrip(self, tmp_path):
        seqs = make_seqs(["ACGT", "A", "GGGTTTAAA"])
        path = tmp_path / "db.swdb"
        assert write_binary_db(seqs, path) == 3
        with BinaryDatabaseReader(path) as db:
            assert len(db) == 3
            assert list(db) == seqs

    def test_random_access_matches_sequential(self, tmp_path):
        seqs = make_seqs(["ACGT" * k for k in range(1, 20)])
        path = tmp_path / "db.swdb"
        write_binary_db(seqs, path)
        with BinaryDatabaseReader(path) as db:
            # Read out of order; the paper's motivation for the format.
            assert db[17] == seqs[17]
            assert db[0] == seqs[0]
            assert db[5] == seqs[5]

    def test_negative_index(self, tmp_path):
        seqs = make_seqs(["AC", "GT", "TT"])
        path = tmp_path / "db.swdb"
        write_binary_db(seqs, path)
        with BinaryDatabaseReader(path) as db:
            assert db[-1] == seqs[-1]

    def test_index_out_of_range(self, tmp_path):
        path = tmp_path / "db.swdb"
        write_binary_db(make_seqs(["AC"]), path)
        with BinaryDatabaseReader(path) as db:
            with pytest.raises(IndexError):
                db[1]

    def test_slice_access(self, tmp_path):
        seqs = make_seqs(["AC", "GT", "TT", "AA"])
        path = tmp_path / "db.swdb"
        write_binary_db(seqs, path)
        with BinaryDatabaseReader(path) as db:
            assert db[1:3] == seqs[1:3]

    def test_lengths_without_pool_reads(self, tmp_path):
        seqs = make_seqs(["A" * 5, "C" * 9])
        path = tmp_path / "db.swdb"
        write_binary_db(seqs, path)
        with BinaryDatabaseReader(path) as db:
            assert db.lengths().tolist() == [5, 9]
            assert db.total_residues == 14

    def test_alphabet_preserved(self, tmp_path):
        path = tmp_path / "db.swdb"
        write_binary_db(make_seqs(["ACGT"]), path)
        with BinaryDatabaseReader(path) as db:
            assert db.alphabet.name == "dna"

    def test_description_preserved(self, tmp_path):
        path = tmp_path / "db.swdb"
        write_binary_db(make_seqs(["ACGT"]), path)
        with BinaryDatabaseReader(path) as db:
            assert db[0].description == "desc 0"


class TestErrors:
    def test_empty_database_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="empty"):
            write_binary_db([], tmp_path / "x.swdb")

    def test_mixed_alphabets_rejected(self, tmp_path):
        from repro.sequences import PROTEIN

        seqs = [
            Sequence.from_text("a", "ACGT", alphabet=DNA),
            Sequence.from_text("b", "ARND", alphabet=PROTEIN),
        ]
        with pytest.raises(ValueError, match="mixed alphabets"):
            write_binary_db(seqs, tmp_path / "x.swdb")

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.swdb"
        path.write_bytes(b"NOPE" + b"\x00" * 32)
        with pytest.raises(BinaryDBError, match="bad magic"):
            BinaryDatabaseReader(path)

    def test_bad_version(self, tmp_path):
        path = tmp_path / "bad.swdb"
        path.write_bytes(b"SWDB" + struct.pack("<I", 99) + b"\x00" * 32)
        with pytest.raises(BinaryDBError, match="version"):
            BinaryDatabaseReader(path)

    def test_truncated_index(self, tmp_path):
        path = tmp_path / "db.swdb"
        write_binary_db(make_seqs(["ACGT", "GGGG"]), path)
        data = path.read_bytes()
        path.write_bytes(data[:30])
        with pytest.raises(BinaryDBError, match="truncated"):
            BinaryDatabaseReader(path)

    def test_use_after_close(self, tmp_path):
        path = tmp_path / "db.swdb"
        write_binary_db(make_seqs(["ACGT"]), path)
        db = BinaryDatabaseReader(path)
        db.close()
        with pytest.raises(BinaryDBError, match="closed"):
            db[0]

    def test_truncated_residue_pool(self, tmp_path):
        path = tmp_path / "db.swdb"
        write_binary_db(make_seqs(["ACGTACGT"]), path)
        data = path.read_bytes()
        path.write_bytes(data[:-4])
        with BinaryDatabaseReader(path) as db:
            with pytest.raises(BinaryDBError, match="truncated residue"):
                db[0]


@settings(max_examples=25)
@given(
    st.lists(
        st.text(alphabet="ACGTN", min_size=0, max_size=64),
        min_size=1,
        max_size=10,
    )
)
def test_property_roundtrip(tmp_path_factory, texts):
    tmp = tmp_path_factory.mktemp("swdb")
    seqs = make_seqs(texts)
    path = tmp / "db.swdb"
    write_binary_db(seqs, path)
    with BinaryDatabaseReader(path) as db:
        assert list(db) == seqs
        assert np.array_equal(db.lengths(), np.array([len(t) for t in texts]))
