"""IncrementalAllocator: rate plumbing, reallocation counting, and
equivalence with the static allocation seam."""

import pytest

from repro.engine.master import predict_static_allocation
from repro.sched import IncrementalAllocator, RollingCalibrator
from repro.sched.allocator import RATE_CHANGE_TOLERANCE, _rates_differ
from repro.sequences import small_database


class TestRatesDiffer:
    def test_none_to_something_differs(self):
        assert _rates_differ(None, {"cpu": 1.0})
        assert not _rates_differ(None, {})

    def test_key_set_change_differs(self):
        assert _rates_differ({"cpu": 1.0}, {"cpu": 1.0, "gpu": 2.0})

    def test_within_tolerance_is_identical(self):
        jitter = 1.0 + RATE_CHANGE_TOLERANCE / 2
        assert not _rates_differ({"cpu": 1.0}, {"cpu": jitter})
        assert _rates_differ({"cpu": 1.0}, {"cpu": 1.1})


class TestRatesForBatch:
    def test_calibrator_rates_win(self):
        cal = RollingCalibrator(seed_rates={"cpu": 1.0})
        alloc = IncrementalAllocator(cal, fallback_rates={"cpu": 9.0})
        assert alloc.rates_for_batch() == {"cpu": 1.0}

    def test_fallback_when_calibrator_empty(self):
        alloc = IncrementalAllocator(
            RollingCalibrator(), fallback_rates={"cpu": 9.0}
        )
        assert alloc.rates_for_batch() == {"cpu": 9.0}

    def test_none_when_no_information(self):
        alloc = IncrementalAllocator(RollingCalibrator())
        assert alloc.rates_for_batch() is None
        assert alloc.reallocations == 0
        assert alloc.batches == 1

    def test_first_rated_batch_counts_as_reallocation(self):
        cal = RollingCalibrator(seed_rates={"cpu": 1.0, "gpu": 2.0})
        alloc = IncrementalAllocator(cal)
        alloc.rates_for_batch()
        assert alloc.reallocations == 1

    def test_stable_rates_do_not_count(self):
        cal = RollingCalibrator(seed_rates={"cpu": 1.0, "gpu": 2.0})
        alloc = IncrementalAllocator(cal)
        for _ in range(4):
            alloc.rates_for_batch()
        assert alloc.reallocations == 1
        assert alloc.batches == 4

    def test_drift_counts_again(self):
        cal = RollingCalibrator(seed_rates={"cpu": 1.0, "gpu": 2.0})
        alloc = IncrementalAllocator(cal)
        alloc.rates_for_batch()
        assert cal.observe("gpu", cells=0.5e9, seconds=1.0)  # gpu now 0.5
        alloc.rates_for_batch()
        assert alloc.reallocations == 2

    def test_returned_dict_is_a_copy(self):
        cal = RollingCalibrator(seed_rates={"cpu": 1.0})
        alloc = IncrementalAllocator(cal)
        rates = alloc.rates_for_batch()
        rates["cpu"] = -1.0
        assert alloc.rates_for_batch() == {"cpu": 1.0}
        assert alloc.reallocations == 1  # the mutation did not register


class TestAllocate:
    def test_matches_static_seam(self):
        queries = list(small_database(num_sequences=4, mean_length=40, seed=7))
        workers = [("cpu0", "cpu"), ("gpu0", "gpu")]
        rates = {"cpu": 1.0, "gpu": 3.0}
        alloc = IncrementalAllocator(RollingCalibrator(seed_rates=rates))
        got, variant = alloc.allocate(queries, 10_000, workers, policy="swdual")
        want, want_variant = predict_static_allocation(
            queries, 10_000, workers, "swdual", rates
        )
        assert got == want
        assert variant == want_variant

    @pytest.mark.parametrize("policy", ["swdual", "swdual-dp", "affinity"])
    def test_policies_accepted(self, policy):
        queries = list(small_database(num_sequences=3, mean_length=30, seed=8))
        alloc = IncrementalAllocator(
            RollingCalibrator(seed_rates={"cpu": 1.0, "gpu": 2.0})
        )
        assignments, info = alloc.allocate(
            queries, 5_000, [("cpu0", "cpu"), ("gpu0", "gpu")], policy=policy
        )
        placed = sorted(i for ids in assignments.values() for i in ids)
        assert placed == list(range(len(queries)))
        assert isinstance(info, str) and info
