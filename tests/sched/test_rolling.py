"""RollingCalibrator: EWMA convergence, outlier gating, seeds,
percentiles, staleness, and the span/report ingestion paths."""

import pytest

from repro.sched import RollingCalibrator
from repro.sched.rolling import (
    CALIBRATION_MODES,
    MIN_SAMPLE_SECONDS,
    TASK_SPAN_NAMES,
)
from repro.telemetry import tracing
from repro.telemetry.tracing import Span


def _observe_gcups(cal, kind, gcups, n=1):
    """Feed *n* samples that decode to exactly *gcups*."""
    for _ in range(n):
        assert cal.observe(kind, cells=gcups * 1e9, seconds=1.0)


class TestConstruction:
    def test_modes_exported(self):
        assert CALIBRATION_MODES == ("oneshot", "rolling")

    @pytest.mark.parametrize("alpha", [0.0, -0.1, 1.5])
    def test_bad_alpha(self, alpha):
        with pytest.raises(ValueError, match="alpha"):
            RollingCalibrator(alpha=alpha)

    def test_bad_window(self):
        with pytest.raises(ValueError, match="window"):
            RollingCalibrator(window=1)

    @pytest.mark.parametrize("factor", [1.0, 0.5])
    def test_bad_outlier_factor(self, factor):
        with pytest.raises(ValueError, match="outlier_factor"):
            RollingCalibrator(outlier_factor=factor)


class TestObserve:
    def test_degenerate_samples_ignored(self):
        cal = RollingCalibrator()
        assert not cal.observe("cpu", cells=0, seconds=1.0)
        assert not cal.observe("cpu", cells=-5, seconds=1.0)
        assert not cal.observe("cpu", cells=1e9, seconds=MIN_SAMPLE_SECONDS / 2)
        assert cal.rates() == {}
        assert cal.rate("cpu") is None

    def test_first_sample_sets_ewma_directly(self):
        cal = RollingCalibrator(seed_rates={"cpu": 99.0})
        _observe_gcups(cal, "cpu", 2.0)
        # Seed does NOT blend into the estimate: first observation wins.
        assert cal.rate("cpu") == pytest.approx(2.0)

    def test_ewma_converges_toward_new_rate(self):
        cal = RollingCalibrator(alpha=0.3)
        _observe_gcups(cal, "gpu", 4.0)
        _observe_gcups(cal, "gpu", 1.0, n=20)
        rate = cal.rate("gpu")
        assert 1.0 <= rate < 1.01  # drifted down, nearly converged

    def test_ewma_update_rule(self):
        cal = RollingCalibrator(alpha=0.5)
        _observe_gcups(cal, "cpu", 2.0)
        _observe_gcups(cal, "cpu", 4.0)
        assert cal.rate("cpu") == pytest.approx(3.0)  # 2 + 0.5*(4-2)


class TestOutlierGate:
    def test_gate_inactive_until_history(self):
        cal = RollingCalibrator(outlier_factor=8.0)
        # 4 samples at 1.0, then a wild 1000x sample: still accepted —
        # the gate needs 5 samples of history before it may veto.
        _observe_gcups(cal, "cpu", 1.0, n=4)
        assert cal.observe("cpu", cells=1000.0 * 1e9, seconds=1.0)
        assert cal.snapshot()["classes"]["cpu"]["outliers"] == 0

    def test_gate_rejects_both_directions(self):
        cal = RollingCalibrator(outlier_factor=8.0)
        _observe_gcups(cal, "cpu", 1.0, n=5)
        assert not cal.observe("cpu", cells=100.0 * 1e9, seconds=1.0)  # too fast
        assert not cal.observe("cpu", cells=0.01 * 1e9, seconds=1.0)  # too slow
        snap = cal.snapshot()["classes"]["cpu"]
        assert snap["outliers"] == 2
        assert snap["samples"] == 5
        assert cal.rate("cpu") == pytest.approx(1.0)  # estimate untouched

    def test_gradual_drift_is_learnable(self):
        # A real 3x slowdown arrives as samples within the gate: the
        # estimate must follow it rather than reject it.
        cal = RollingCalibrator(outlier_factor=8.0)
        _observe_gcups(cal, "gpu", 3.0, n=6)
        _observe_gcups(cal, "gpu", 1.0, n=20)
        assert cal.rate("gpu") == pytest.approx(1.0, rel=0.02)


class TestReading:
    def test_rates_overlay_seed(self):
        cal = RollingCalibrator(seed_rates={"cpu": 1.0, "gpu": 2.0})
        assert cal.rates() == {"cpu": 1.0, "gpu": 2.0}
        _observe_gcups(cal, "gpu", 5.0)
        assert cal.rates() == {"cpu": 1.0, "gpu": 5.0}

    def test_empty_means_no_information(self):
        cal = RollingCalibrator()
        assert cal.rates() == {}

    def test_set_seed_replaces_fallbacks_only(self):
        cal = RollingCalibrator()
        _observe_gcups(cal, "cpu", 2.0)
        cal.set_seed({"cpu": 9.0, "gpu": 4.0})
        assert cal.rates() == {"cpu": 2.0, "gpu": 4.0}

    def test_percentile_interpolates(self):
        cal = RollingCalibrator()
        for g in (1.0, 2.0, 3.0, 4.0):
            _observe_gcups(cal, "cpu", g)
        assert cal.percentile("cpu", 50.0) == pytest.approx(2.5)
        assert cal.percentile("cpu", 0.0) == pytest.approx(1.0)
        assert cal.percentile("cpu", 100.0) == pytest.approx(4.0)
        assert cal.percentile("gpu") is None

    def test_staleness_from_explicit_now(self):
        cal = RollingCalibrator()
        _observe_gcups(cal, "cpu", 1.0)
        now = tracing.clock()
        stale = cal.staleness(now=now + 5.0)
        assert stale["cpu"] == pytest.approx(5.0, abs=1.0)
        assert "gpu" not in stale

    def test_snapshot_shape(self):
        cal = RollingCalibrator(seed_rates={"gpu": 4.0})
        _observe_gcups(cal, "cpu", 2.0, n=3)
        snap = cal.snapshot()
        assert snap["alpha"] == cal.alpha
        assert snap["seed_gcups"] == {"gpu": 4.0}
        cpu = snap["classes"]["cpu"]
        assert cpu["gcups"] == pytest.approx(2.0)
        assert cpu["p50_gcups"] == pytest.approx(2.0)
        assert cpu["samples"] == 3
        assert cpu["staleness_s"] >= 0.0


class TestIngestion:
    def _span(self, name, kind="gpu", cells=2e9, seconds=1.0, **extra):
        attrs = {"kind": kind, "cells": cells, **extra}
        return Span(name, start_s=10.0, end_s=10.0 + seconds, attrs=attrs)

    def test_observe_spans_objects(self):
        cal = RollingCalibrator()
        spans = [
            self._span("task.kernel", cells=2e9),
            self._span("task.subtask", cells=3e9),
            self._span("batch.run"),  # wrong name: skipped
            Span("task.kernel", start_s=0.0, end_s=1.0, attrs={}),  # no kind/cells
        ]
        assert set(TASK_SPAN_NAMES) == {"task.kernel", "task.subtask"}
        assert cal.observe_spans(spans) == 2
        assert cal.snapshot()["classes"]["gpu"]["samples"] == 2

    def test_observe_spans_wire_dicts(self):
        cal = RollingCalibrator()
        spans = [self._span("task.kernel", kind="cpu", cells=1.5e9).to_dict()]
        assert cal.observe_spans(spans) == 1
        assert cal.rate("cpu") == pytest.approx(1.5)

    def test_observe_report(self):
        from repro.engine.results import SearchReport, WorkerStats

        report = SearchReport(
            label="t",
            wall_seconds=1.0,
            total_cells=3_000_000_000,
            worker_stats=(
                WorkerStats("cpu0", "cpu", 1, busy_seconds=1.0, cells=1_000_000_000),
                WorkerStats("gpu0", "gpu", 1, busy_seconds=0.5, cells=2_000_000_000),
                WorkerStats("idle", "cpu", 0, busy_seconds=0.0, cells=0),
            ),
        )
        cal = RollingCalibrator()
        assert cal.observe_report(report) == 2  # the idle worker is skipped
        assert cal.rate("cpu") == pytest.approx(1.0)
        assert cal.rate("gpu") == pytest.approx(4.0)
