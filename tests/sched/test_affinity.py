"""AffinityTracker semantics and its bounded steering of the
ChunkScheduler's seeding and stealing.  Placement-only: conformance
tests prove scores stay bit-identical; these tests prove the bias
actually exists and actually stays bounded."""

import pytest

from repro.engine.subtasks import ChunkScheduler, Subtask
from repro.sched import AffinityTracker
from repro.sched.affinity import AFFINITY_SLACK


def _sub(sid, lo, hi, cells=100, qi=0):
    return Subtask(sid=sid, query_index=qi, chunk_lo=lo, chunk_hi=hi, cells=cells)


class TestTracker:
    def test_bad_slack(self):
        with pytest.raises(ValueError, match="slack"):
            AffinityTracker(slack=-0.1)

    def test_default_slack(self):
        assert AffinityTracker().slack == AFFINITY_SLACK

    def test_unknown_range_has_no_preference(self):
        assert AffinityTracker().preferred_kind(_sub(0, 0, 3)) is None

    def test_majority_vote(self):
        t = AffinityTracker()
        t.record(_sub(0, 0, 2), "gpu")  # chunks 0,1 → gpu
        t.record(_sub(1, 2, 3), "cpu")  # chunk 2 → cpu
        assert t.preferred_kind(_sub(2, 0, 3)) == "gpu"

    def test_tie_is_no_preference(self):
        t = AffinityTracker()
        t.record(_sub(0, 0, 1), "gpu")
        t.record(_sub(1, 1, 2), "cpu")
        assert t.preferred_kind(_sub(2, 0, 2)) is None

    def test_residency_updates_on_record(self):
        t = AffinityTracker()
        t.record(_sub(0, 0, 2), "gpu")
        t.record(_sub(1, 0, 2), "cpu")  # migrated: cpu owns it now
        assert t.preferred_kind(_sub(2, 0, 2)) == "cpu"
        assert t.chunks_tracked == 2

    def test_hit_miss_accounting(self):
        t = AffinityTracker()
        t.record(_sub(0, 0, 1), "gpu")  # no prior preference: neither
        t.record(_sub(1, 0, 1), "gpu")  # honoured → hit
        t.record(_sub(2, 0, 1), "cpu")  # overridden → miss
        snap = t.snapshot()
        assert snap["hits"] == 1
        assert snap["misses"] == 1
        assert snap["chunks_tracked"] == 1
        assert snap["slack"] == t.slack


class TestSchedulerSeeding:
    def test_generous_slack_pulls_grains_to_resident_class(self):
        # Every chunk is hot on the GPU; with ample slack the seed must
        # place every grain there even though load balance alone would
        # split them.
        tracker = AffinityTracker(slack=10.0)
        subs = [_sub(i, i, i + 1) for i in range(4)]
        for s in subs:
            tracker.record(s, "gpu")
        sched = ChunkScheduler(
            subs,
            [("c0", "cpu"), ("g0", "gpu")],
            rates={"c0": 1.0, "g0": 1.0},
            affinity=tracker,
        )
        assert len(sched._deques["g0"]) == 4
        assert len(sched._deques["c0"]) == 0

    def test_zero_slack_never_sacrifices_balance(self):
        # GPU residency everywhere, but the CPU is 10x faster: with no
        # slack the locality bias may not cost a microsecond, so every
        # grain stays on the fast class.
        tracker = AffinityTracker(slack=0.0)
        subs = [_sub(i, i, i + 1) for i in range(4)]
        for s in subs:
            tracker.record(s, "gpu")
        sched = ChunkScheduler(
            subs,
            [("c0", "cpu"), ("g0", "gpu")],
            rates={"c0": 10.0, "g0": 1.0},
            affinity=tracker,
        )
        assert len(sched._deques["c0"]) == 4

    def test_handouts_update_residency(self):
        tracker = AffinityTracker()
        subs = [_sub(0, 0, 1)]
        sched = ChunkScheduler(subs, [("c0", "cpu")], affinity=tracker)
        sub, stolen = sched.next_for("c0")
        assert not stolen
        assert tracker.preferred_kind(sub) == "cpu"


class TestSchedulerStealing:
    def test_thief_prefers_kin_loot_over_largest(self):
        # Everything seeds onto the fast CPU; the mid-sized grain's
        # chunk is resident on the GPU class, so the GPU thief takes it
        # instead of the classic largest-overall loot.
        tracker = AffinityTracker()
        subs = [_sub(0, 0, 1, cells=10), _sub(1, 1, 2, cells=500),
                _sub(2, 2, 3, cells=20)]
        tracker.record(subs[2], "gpu")
        sched = ChunkScheduler(
            subs,
            [("a", "cpu"), ("b", "gpu")],
            rates={"a": 1e9, "b": 1e-9},
            affinity=tracker,
        )
        sub, stolen = sched.next_for("b")
        assert stolen and sub.cells == 20
        assert tracker.snapshot()["hits"] == 1

    def test_thief_falls_back_to_largest_without_kin(self):
        tracker = AffinityTracker()
        subs = [_sub(0, 0, 1, cells=10), _sub(1, 1, 2, cells=500)]
        sched = ChunkScheduler(
            subs,
            [("a", "cpu"), ("b", "gpu")],
            rates={"a": 1e9, "b": 1e-9},
            affinity=tracker,
        )
        sub, stolen = sched.next_for("b")
        assert stolen and sub.cells == 500
