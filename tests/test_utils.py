"""Tests for shared utilities."""

import numpy as np
import pytest

from repro.utils import (
    ascii_table,
    check_in_range,
    check_non_negative,
    check_positive,
    check_type,
    ensure_rng,
    format_seconds,
    format_si,
    spawn_rng,
)


class TestRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_deterministic(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert ensure_rng(rng) is rng

    def test_negative_seed(self):
        with pytest.raises(ValueError):
            ensure_rng(-1)

    def test_bad_type(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")

    def test_spawn_independent(self):
        children = spawn_rng(ensure_rng(0), 3)
        assert len(children) == 3
        draws = [c.random() for c in children]
        assert len(set(draws)) == 3

    def test_spawn_negative(self):
        with pytest.raises(ValueError):
            spawn_rng(ensure_rng(0), -1)


class TestValidation:
    def test_check_positive(self):
        assert check_positive("x", 3) == 3
        with pytest.raises(ValueError, match="x must be > 0"):
            check_positive("x", 0)

    def test_check_non_negative(self):
        assert check_non_negative("x", 0) == 0
        with pytest.raises(ValueError):
            check_non_negative("x", -1)

    def test_check_in_range(self):
        assert check_in_range("x", 5, 0, 10) == 5
        with pytest.raises(ValueError):
            check_in_range("x", 11, 0, 10)

    def test_check_type(self):
        assert check_type("x", 5, int) == 5
        with pytest.raises(TypeError, match="x must be int"):
            check_type("x", "5", int)

    def test_check_type_union(self):
        assert check_type("x", 5.0, (int, float)) == 5.0


class TestFormat:
    def test_format_seconds_small(self):
        assert format_seconds(86.2) == "86.20 s"

    def test_format_seconds_minutes(self):
        assert format_seconds(543.28) == "9m 03.3s"

    def test_format_seconds_hours(self):
        assert format_seconds(2 * 3600 + 5 * 60) == "2h 05m"

    def test_format_seconds_negative(self):
        with pytest.raises(ValueError):
            format_seconds(-1)

    def test_format_si(self):
        assert format_si(136.06e9, "CUPS") == "136.06 GCUPS"
        assert format_si(77.7e12, "cell") == "77.70 Tcell"
        assert format_si(12.0) == "12.00"

    def test_ascii_table(self):
        out = ascii_table(["App", "1", "2"], [["SWIPE", 2367.24, 1199.47]])
        lines = out.splitlines()
        assert "App" in lines[0]
        assert "SWIPE" in lines[-1]

    def test_ascii_table_title(self):
        out = ascii_table(["a"], [["b"]], title="Table II")
        assert out.startswith("Table II")

    def test_ascii_table_ragged_rejected(self):
        with pytest.raises(ValueError, match="cells"):
            ascii_table(["a", "b"], [["only-one"]])
