"""Pipeline benchmark + provenance stamp: shape and invariants only
(the numbers are machine-dependent)."""

import json

import numpy as np
import pytest

from repro.platform import (
    BENCH_SCHEMA_VERSION,
    bench_stamp,
    build_pipeline_workload,
    run_pipeline_bench,
    stamp_report,
    write_bench_report,
)

#: Tiny but hit-bearing configuration so the suite stays fast.
SMOKE = dict(
    num_subjects=60,
    min_len=40,
    max_len=120,
    query_len=80,
    num_queries=1,
    num_homologs=3,
    divergence=0.15,
    threshold=60,
    repeats=1,
)


@pytest.fixture(scope="module")
def report():
    return run_pipeline_bench(**SMOKE)


class TestWorkload:
    def test_homologs_planted(self):
        queries, db = build_pipeline_workload(
            num_subjects=20, num_queries=2, num_homologs=3
        )
        ids = [s.id for s in db]
        for q in queries:
            assert sum(1 for i in ids if i.startswith(f"{q.id}_h")) == 3

    def test_deterministic(self):
        q1, db1 = build_pipeline_workload(num_subjects=10, seed=5)
        q2, db2 = build_pipeline_workload(num_subjects=10, seed=5)
        assert [s.id for s in db1] == [s.id for s in db2]
        assert all(
            np.array_equal(a.codes, b.codes) for a, b in zip(db1, db2)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            build_pipeline_workload(num_subjects=0)
        with pytest.raises(ValueError):
            run_pipeline_bench(repeats=0)
        with pytest.raises(ValueError):
            run_pipeline_bench(threshold=0)


class TestReportShape:
    def test_top_level_keys(self, report):
        assert report["bench"] == "pipeline"
        assert set(report) >= {"workload", "fullscan", "presets", "best_speedup"}

    def test_oracle_hits_exist(self, report):
        # The planted homologs guarantee the zero-hits-lost check is
        # not vacuous.
        assert report["fullscan"]["oracle_hits"] >= 1

    def test_presets_measured(self, report):
        assert set(report["presets"]) == {"sensitive", "default", "strict"}
        for r in report["presets"].values():
            assert r["seconds"] > 0
            assert r["effective_gcups"] > 0
            assert 0.0 <= r["filter_rate"] <= 1.0
            assert set(r["stages"]) == {
                "subjects_scanned",
                "seeds_found",
                "banded_survivors",
                "rescored",
                "reported",
            }

    def test_scores_exact_everywhere(self, report):
        # run_pipeline_bench raises OracleDivergence otherwise; the
        # flag records that the check ran.
        assert all(r["scores_exact"] for r in report["presets"].values())

    def test_no_hits_lost_on_smoke_workload(self, report):
        # Planted homologs at 15% divergence are far above the seed
        # cutoffs of every preset.
        assert all(r["hits_lost"] == 0 for r in report["presets"].values())

    def test_json_serialisable(self, report):
        json.dumps(report)


class TestStamp:
    def test_stamp_fields(self):
        stamp = bench_stamp()
        assert stamp["schema_version"] == BENCH_SCHEMA_VERSION
        assert stamp["numpy_version"] == np.__version__
        assert stamp["cpu_count"] >= 1
        assert stamp["python_version"].count(".") == 2

    def test_stamp_report_preserves_existing(self):
        original = {"bench": "x", "provenance": {"schema_version": 0}}
        assert stamp_report(original)["provenance"] == {"schema_version": 0}

    def test_stamp_report_does_not_mutate(self):
        report = {"bench": "x"}
        stamped = stamp_report(report)
        assert "provenance" not in report
        assert stamped["provenance"]["schema_version"] == BENCH_SCHEMA_VERSION

    def test_write_bench_report_stamps(self, tmp_path, report):
        path = tmp_path / "BENCH_pipeline.json"
        write_bench_report(report, str(path))
        on_disk = json.loads(path.read_text())
        prov = on_disk["provenance"]
        assert prov["schema_version"] == BENCH_SCHEMA_VERSION
        assert prov["numpy_version"] == np.__version__
        assert prov["cpu_count"] >= 1
        assert "python_version" in prov and "git_revision" in prov
