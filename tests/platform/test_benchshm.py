"""Shape and validation tests for the ``swdual bench shm`` report.

The timed sections run real pools, so the full-report test is marked
``slow`` (deselect with ``-m "not slow"``); numbers are machine-
dependent and never asserted on, only the report's structure.
"""

import pytest

from repro.platform import run_shm_bench
from repro.platform.benchshm import BENCH_CHUNK_CELLS, BENCH_OVERSUBSCRIBE
from repro.sequences.shm import shm_available

needs_shm = pytest.mark.skipif(
    not shm_available(), reason="POSIX shared memory unavailable"
)


class TestValidation:
    def test_bad_params_rejected(self):
        with pytest.raises(ValueError, match="repeats"):
            run_shm_bench(repeats=0)
        with pytest.raises(ValueError, match="max_workers"):
            run_shm_bench(max_workers=0)


@needs_shm
@pytest.mark.slow
class TestReportShape:
    def test_tiny_run_produces_full_report(self):
        report = run_shm_bench(
            num_subjects=30,
            min_len=30,
            max_len=60,
            query_len=50,
            num_queries=2,
            repeats=1,
            max_workers=1,
            chunk_cells=2_000,
            warmup_subjects=60,
        )
        assert report["bench"] == "shm"
        wl = report["workload"]
        assert wl["num_subjects"] == 30
        assert wl["warmup_subjects"] == 60
        assert wl["oversubscribe"] == BENCH_OVERSUBSCRIBE
        assert set(report["rates_gcups"]) == {"cpu", "gpu"}
        warm = report["warmup"]
        assert len(warm["scan"]) == 1
        assert warm["marginal_pickle_s"] > 0
        assert warm["marginal_shm_s"] > 0
        assert warm["marginal_speedup"] > 0
        for variant in ("calibrated", "miscalibrated"):
            section = report["batch"][variant]
            for mode in ("pickle", "shm_chunk"):
                pct = section[mode]
                assert pct["samples"] >= 5
                assert 0 < pct["p50_s"] <= pct["p99_s"] <= pct["max_s"]
            assert section["p99_speedup"] > 0
            assert section["steals"] >= 0
        assert report["scores_identical"] is True

    def test_default_chunk_bound_is_finer_than_library_default(self):
        from repro.sequences.packed import DEFAULT_CHUNK_CELLS

        assert BENCH_CHUNK_CELLS < DEFAULT_CHUNK_CELLS
