"""Tests for paper calibration, platform factory and performance model."""

import numpy as np
import pytest

from repro.platform import (
    PAPER,
    PEKind,
    PerformanceModel,
    cpu_rate_model,
    gpu_rate_model,
    idgraf_platform,
    live_rate_model,
    measure_kernel_gcups,
    peak_from_workload_time,
    swdual_worker_mix,
)
from repro.sequences import PAPER_DATABASES, standard_query_set


class TestCalibration:
    def test_cpu_model_reproduces_swipe_t1(self):
        cpu = cpu_rate_model()
        R = PAPER.uniprot_residues
        total = sum(
            cpu.task_seconds(int(q), R) for q in standard_query_set().lengths
        )
        assert total == pytest.approx(PAPER.swipe_t1, rel=1e-6)

    def test_gpu_model_reproduces_cudasw_t1(self):
        gpu = gpu_rate_model()
        R = PAPER.uniprot_residues
        total = sum(
            gpu.task_seconds(int(q), R) for q in standard_query_set().lengths
        )
        assert total == pytest.approx(PAPER.cudasw_t1, rel=1e-6)

    def test_gpu_faster_than_cpu_for_standard_queries(self):
        cpu, gpu = cpu_rate_model(), gpu_rate_model()
        R = PAPER.uniprot_residues
        for q in standard_query_set().lengths:
            assert gpu.task_seconds(int(q), R) < cpu.task_seconds(int(q), R)

    def test_tiny_queries_favour_cpu(self):
        # The GPU ramp means a 4-residue query (heterogeneous set
        # minimum) runs faster on a CPU — the general scheduling case.
        cpu, gpu = cpu_rate_model(), gpu_rate_model()
        R = PAPER.uniprot_residues
        assert cpu.task_seconds(4, R) < gpu.task_seconds(4, R)

    def test_peak_inversion_guards(self):
        with pytest.raises(ValueError, match="exceed"):
            peak_from_workload_time(1.0, 0.0, 10.0)

    def test_paper_db_constant_matches_synthetic(self):
        assert (
            PAPER.uniprot_residues
            == PAPER_DATABASES["uniprot"].total_residues
        )


class TestPlatformFactory:
    def test_idgraf_counts(self):
        p = idgraf_platform(4, 4)
        assert p.num_gpus == 4
        assert p.num_cpus == 4
        assert len(p) == 8

    def test_gpu_only(self):
        p = idgraf_platform(2, 0)
        assert p.num_cpus == 0
        assert p.num_gpus == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            idgraf_platform(0, 0)
        with pytest.raises(ValueError):
            idgraf_platform(-1, 2)

    def test_pe_lookup(self):
        p = idgraf_platform(1, 1)
        assert p.pe_by_name("gpu0").is_gpu
        with pytest.raises(KeyError):
            p.pe_by_name("tpu0")

    def test_worker_mix_matches_section5a(self):
        # 2 -> 1G+1C, 3 -> 2G+1C, 4 -> 3G+1C, 5 -> 4G+1C, 8 -> 4G+4C.
        assert swdual_worker_mix(2) == (1, 1)
        assert swdual_worker_mix(3) == (2, 1)
        assert swdual_worker_mix(4) == (3, 1)
        assert swdual_worker_mix(5) == (4, 1)
        assert swdual_worker_mix(8) == (4, 4)

    def test_worker_mix_minimum(self):
        with pytest.raises(ValueError, match="at least"):
            swdual_worker_mix(1)


class TestPerformanceModel:
    def test_single_worker_efficiency_is_one(self):
        pm = PerformanceModel(idgraf_platform(1, 1), gpu_cpu_service_fraction=0.0)
        assert pm.class_efficiency(PEKind.GPU) == 1.0
        assert pm.class_efficiency(PEKind.CPU) == 1.0

    def test_efficiency_decreases_with_workers(self):
        pm1 = PerformanceModel(idgraf_platform(1, 1))
        pm4 = PerformanceModel(idgraf_platform(4, 4))
        assert pm4.class_efficiency(PEKind.GPU) < pm1.class_efficiency(PEKind.GPU)
        assert pm4.class_efficiency(PEKind.CPU) < pm1.class_efficiency(PEKind.CPU)

    def test_gpu_service_drains_cpu(self):
        base = PerformanceModel(
            idgraf_platform(4, 4), gpu_cpu_service_fraction=0.0
        )
        drained = PerformanceModel(
            idgraf_platform(4, 4), gpu_cpu_service_fraction=0.2
        )
        assert drained.class_efficiency(PEKind.CPU) < base.class_efficiency(
            PEKind.CPU
        )
        assert drained.class_efficiency(PEKind.GPU) == base.class_efficiency(
            PEKind.GPU
        )

    def test_task_times_vectors(self):
        pm = PerformanceModel(idgraf_platform(2, 2))
        lengths = np.array([100, 1000, 5000])
        # Paper-scale database: the GPU wins on every standard-range task.
        p, pbar = pm.task_times(lengths, PAPER.uniprot_residues)
        assert p.shape == pbar.shape == (3,)
        assert (pbar < p).all()

    def test_task_times_matches_scalar(self):
        pm = PerformanceModel(idgraf_platform(2, 3))
        lengths = np.array([123, 4567])
        p, pbar = pm.task_times(lengths, 5_000_000)
        cpu0 = pm.platform.cpus[0]
        gpu0 = pm.platform.gpus[0]
        for i, q in enumerate(lengths):
            assert p[i] == pytest.approx(pm.task_seconds(cpu0, int(q), 5_000_000))
            assert pbar[i] == pytest.approx(pm.task_seconds(gpu0, int(q), 5_000_000))

    def test_task_times_requires_hybrid(self):
        pm = PerformanceModel(idgraf_platform(2, 0))
        with pytest.raises(ValueError, match="hybrid"):
            pm.task_times(np.array([100]), 1000)

    def test_task_times_validation(self):
        pm = PerformanceModel(idgraf_platform(1, 1))
        with pytest.raises(ValueError):
            pm.task_times(np.array([0]), 1000)
        with pytest.raises(ValueError):
            pm.task_times(np.array([]), 1000)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            PerformanceModel(idgraf_platform(1, 1), cpu_parallel_efficiency=0)
        with pytest.raises(ValueError):
            PerformanceModel(idgraf_platform(1, 1), gpu_cpu_service_fraction=1.0)


class TestLiveMeasurement:
    def test_measure_kernel_gcups(self):
        from repro.align import default_scheme, sw_score_batch
        from repro.sequences import small_database, standard_query_set

        db = small_database(num_sequences=10, mean_length=60, seed=3)
        query = standard_query_set(count=1).scaled(0.02).materialize(seed=1)[0]
        rate = measure_kernel_gcups(
            lambda q, subjects, sch: sw_score_batch(q, list(subjects), sch),
            query,
            list(db),
            default_scheme(),
        )
        assert rate > 0

    def test_live_rate_model(self):
        r = live_rate_model(3.5, task_overhead_s=0.1)
        assert r.peak_gcups == 3.5
        assert r.rate_gcups(10) == 3.5

    def test_measure_repeats_validation(self):
        with pytest.raises(ValueError):
            measure_kernel_gcups(lambda *a: None, None, [], None, repeats=0)
