"""Tests for PE and rate models."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.platform import PEKind, ProcessingElement, RateModel


class TestRateModel:
    def test_rate_saturates(self):
        r = RateModel(peak_gcups=20.0, half_length=100.0)
        assert r.rate_gcups(100) == pytest.approx(10.0)
        assert r.rate_gcups(10_000) == pytest.approx(20.0 * 10_000 / 10_100)

    def test_zero_half_length_is_flat(self):
        r = RateModel(peak_gcups=5.0)
        assert r.rate_gcups(1) == 5.0
        assert r.rate_gcups(100_000) == 5.0

    def test_task_seconds(self):
        r = RateModel(peak_gcups=1.0, half_length=0.0, task_overhead_s=2.0)
        # 1e9 cells at 1 GCUPS = 1 s, plus 2 s overhead.
        assert r.task_seconds(1000, 1_000_000) == pytest.approx(3.0)

    def test_efficiency_slows_rate_not_overhead(self):
        r = RateModel(peak_gcups=1.0, task_overhead_s=2.0)
        t_full = r.task_seconds(1000, 1_000_000, efficiency=1.0)
        t_half = r.task_seconds(1000, 1_000_000, efficiency=0.5)
        assert t_half == pytest.approx(2.0 + 2 * (t_full - 2.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            RateModel(peak_gcups=0)
        with pytest.raises(ValueError):
            RateModel(peak_gcups=1, half_length=-1)
        with pytest.raises(ValueError):
            RateModel(peak_gcups=1).rate_gcups(0)
        with pytest.raises(ValueError):
            RateModel(peak_gcups=1).task_seconds(1, -5)
        with pytest.raises(ValueError):
            RateModel(peak_gcups=1).task_seconds(1, 5, efficiency=0)

    def test_scaled(self):
        r = RateModel(peak_gcups=10.0, half_length=5.0, task_overhead_s=1.0)
        s = r.scaled(2.0)
        assert s.peak_gcups == 20.0
        assert s.half_length == 5.0
        assert s.task_overhead_s == 1.0

    @given(
        q1=st.integers(1, 10_000),
        q2=st.integers(1, 10_000),
        half=st.floats(0, 1000),
    )
    def test_rate_monotone_in_length(self, q1, q2, half):
        r = RateModel(peak_gcups=10.0, half_length=half)
        lo, hi = sorted((q1, q2))
        assert r.rate_gcups(lo) <= r.rate_gcups(hi) + 1e-12

    @given(q=st.integers(1, 100_000))
    def test_rate_bounded_by_peak(self, q):
        r = RateModel(peak_gcups=10.0, half_length=50.0)
        assert 0 < r.rate_gcups(q) <= 10.0


class TestProcessingElement:
    def test_is_gpu(self):
        r = RateModel(peak_gcups=1.0)
        assert ProcessingElement("g", PEKind.GPU, r).is_gpu
        assert not ProcessingElement("c", PEKind.CPU, r).is_gpu
