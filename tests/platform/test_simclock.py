"""Tests for the discrete-event clock and queue."""

import pytest

from repro.platform import EventQueue, SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_advance(self):
        c = SimClock()
        c.advance_to(5.0)
        assert c.now == 5.0

    def test_no_time_travel(self):
        c = SimClock(start=10.0)
        with pytest.raises(ValueError, match="backwards"):
            c.advance_to(4.0)

    def test_advance_to_same_time_ok(self):
        c = SimClock(start=3.0)
        c.advance_to(3.0)
        assert c.now == 3.0

    def test_negative_start(self):
        with pytest.raises(ValueError):
            SimClock(start=-1.0)


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        q.push(3.0, "c")
        q.push(1.0, "a")
        q.push(2.0, "b")
        assert [q.pop().tag for _ in range(3)] == ["a", "b", "c"]

    def test_fifo_tie_break(self):
        q = EventQueue()
        q.push(1.0, "first")
        q.push(1.0, "second")
        q.push(1.0, "third")
        assert [q.pop().tag for _ in range(3)] == ["first", "second", "third"]

    def test_peek(self):
        q = EventQueue()
        q.push(7.0, "x")
        assert q.peek_time() == 7.0
        assert len(q) == 1

    def test_payload(self):
        q = EventQueue()
        q.push(1.0, "t", payload={"k": 1})
        assert q.pop().payload == {"k": 1}

    def test_empty_errors(self):
        q = EventQueue()
        with pytest.raises(IndexError):
            q.pop()
        with pytest.raises(IndexError):
            q.peek_time()

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, "x")

    def test_bool(self):
        q = EventQueue()
        assert not q
        q.push(0.0, "x")
        assert q
