"""Tests for the swdual command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.sequences import Sequence, small_database, standard_query_set, write_fasta


@pytest.fixture()
def files(tmp_path):
    db = small_database(num_sequences=8, mean_length=50, seed=3)
    queries = standard_query_set(count=2).scaled(0.01).materialize(seed=4)
    db_path = tmp_path / "db.fasta"
    q_path = tmp_path / "q.fasta"
    db.to_fasta(db_path)
    write_fasta(queries, q_path)
    return str(q_path), str(db_path), tmp_path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.db == "uniprot"
        assert args.workers == 8


class TestCommands:
    def test_convert_and_info(self, files, capsys):
        q, db, tmp = files
        swdb = str(tmp / "db.swdb")
        assert main(["convert", db, swdb]) == 0
        out = capsys.readouterr().out
        assert "wrote 8 sequences" in out
        assert main(["info", swdb]) == 0
        out = capsys.readouterr().out
        assert "8" in out

    def test_info_fasta(self, files, capsys):
        _, db, _ = files
        assert main(["info", db]) == 0
        assert "Residues" in capsys.readouterr().out

    def test_search(self, files, capsys):
        q, db, _ = files
        assert main(["search", q, db, "--cpus", "1", "--gpus", "0",
                     "--policy", "self", "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert "GCUPS" in out
        assert "standard@0.01_q00" in out

    def test_simulate(self, capsys):
        assert main(["simulate", "--db", "ensembl_dog", "--workers", "4"]) == 0
        out = capsys.readouterr().out
        assert "swdual" in out
        assert "util=" in out

    def test_search_json(self, files, capsys):
        import json

        q, db, _ = files
        assert main(["search", q, db, "--cpus", "1", "--gpus", "0",
                     "--policy", "self", "--json"]) == 0
        parsed = json.loads(capsys.readouterr().out)
        assert parsed["label"] == "live-self"
        assert len(parsed["queries"]) == 2

    def test_simulate_json(self, capsys):
        import json

        assert main(["simulate", "--db", "ensembl_dog", "--workers", "2",
                     "--json"]) == 0
        parsed = json.loads(capsys.readouterr().out)
        assert parsed["label"] == "swdual"
        assert parsed["gcups"] > 0

    def test_align(self, files, capsys):
        q, db, _ = files
        assert main(["align", q, db]) == 0
        out = capsys.readouterr().out
        assert "score=" in out
        assert "CIGAR:" in out

    def test_align_linear_space(self, files, capsys):
        q, db, _ = files
        assert main(["align", q, db, "--linear-space"]) == 0
        assert "CIGAR:" in capsys.readouterr().out

    def test_align_missing_records(self, tmp_path, capsys):
        empty = tmp_path / "empty.fasta"
        empty.write_text("")
        assert main(["align", str(empty), str(empty)]) == 1

    def test_simulate_gantt(self, capsys):
        assert main(
            ["simulate", "--db", "ensembl_dog", "--workers", "2", "--gantt"]
        ) == 0
        out = capsys.readouterr().out
        assert "|" in out  # gantt rows

    def test_experiment_table3(self, capsys):
        assert main(["experiment", "table3"]) == 0
        assert "Table III" in capsys.readouterr().out

    def test_experiment_ablations(self, capsys):
        assert main(["experiment", "ablations"]) == 0
        out = capsys.readouterr().out
        assert "A1" in out and "A2" in out and "A3" in out

    def test_search_processes(self, files, capsys):
        q, db, _ = files
        assert main(["search", q, db, "--processes", "2", "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert "process-self" in out

    def test_experiment_robustness(self, capsys):
        assert main(["experiment", "robustness"]) == 0
        out = capsys.readouterr().out
        assert "A4" in out
        assert "winner=" in out

    def test_bench_kernels(self, tmp_path, capsys):
        out_path = tmp_path / "bench.json"
        args = [
            "bench", "kernels",
            "--subjects", "12", "--min-len", "10", "--max-len", "40",
            "--query-len", "20", "--queries", "1", "--repeats", "1",
            "--out", str(out_path),
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "packed + dtype ladder" in out
        assert "speedup packed vs seed" in out
        import json

        report = json.loads(out_path.read_text())
        assert report["bench"] == "kernels"
        gcups = report["gcups"]
        for key in (
            "seed_int64_per_call",
            "packed_ladder",
            "wavefront_per_subject",
            "wavefront_batched",
        ):
            assert gcups[key] > 0
        assert set(gcups["levels"]) == {"int16", "int32", "int64"}
        assert report["speedup_packed_vs_seed"] > 0
        telemetry = report["telemetry"]
        assert telemetry["spans_per_pass"] == 1
        for key in ("baseline_s", "disabled_s", "enabled_s"):
            assert telemetry[key] > 0
        # Overheads are noise-dominated at this toy size; just assert
        # the guard numbers exist and printed.
        assert "overhead_enabled_pct" in telemetry
        assert "telemetry overhead:" in out

    def test_bench_no_write(self, capsys):
        args = [
            "bench", "kernels",
            "--subjects", "6", "--min-len", "5", "--max-len", "20",
            "--query-len", "10", "--queries", "1", "--repeats", "1",
            "--out", "-",
        ]
        assert main(args) == 0
        assert "wrote" not in capsys.readouterr().out


class TestExitCodes:
    def test_version(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert f"swdual {__version__}" in capsys.readouterr().out

    def test_unknown_command_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["frobnicate"])
        assert exc.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_bad_flag_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["search", "--no-such-flag"])
        assert exc.value.code == 2

    def test_missing_database_file_returns_2(self, capsys):
        assert main(["info", "/nonexistent/db.fasta"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unreachable_service_returns_2(self, capsys):
        # Nothing listens on this port: connection must fail cleanly.
        assert main(["stats", "--port", "1"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_simulate_db_returns_2(self, capsys):
        assert main(["simulate", "--db", "not_a_db"]) == 2
        assert "error:" in capsys.readouterr().err


class TestServiceCommands:
    def test_serve_query_stats_roundtrip(self, files, capsys, monkeypatch):
        """Drive serve/query/stats through the CLI entry point against a
        service running in a background thread."""
        import threading

        from repro.service import SearchClient

        q, db, _ = files
        started = threading.Event()
        address = {}

        from repro.service import SearchService

        real_start = SearchService.start

        def capturing_start(self):
            real_start(self)
            address["addr"] = self.address
            started.set()

        monkeypatch.setattr(SearchService, "start", capturing_start)
        server = threading.Thread(
            target=main, args=(["serve", db, "--port", "0", "--gpus", "0"],)
        )
        server.start()
        try:
            assert started.wait(timeout=30)
            host, port = address["addr"]
            rc = main(["query", q, "--host", host, "--port", str(port), "--top", "2"])
            assert rc == 0
            out = capsys.readouterr().out
            assert "standard@0.01_q00" in out
            rc = main(["stats", "--host", host, "--port", str(port)])
            assert rc == 0
            out = capsys.readouterr().out
            assert "completed" in out
            assert "cpu" in out
        finally:
            host, port = address["addr"]
            with SearchClient(host, port) as client:
                client.shutdown_server()
            server.join(timeout=30)
        assert not server.is_alive()
        assert "service stopped" in capsys.readouterr().out

    def test_query_no_records(self, tmp_path, capsys):
        empty = tmp_path / "empty.fasta"
        empty.write_text("")
        assert main(["query", str(empty), "--port", "1"]) == 1

    def test_serve_db_admin_roundtrip(self, files, capsys, monkeypatch):
        """`swdual db append/retire/info` against a live `swdual serve`
        — the acceptance criterion: mutations land without a restart."""
        import json
        import threading

        from repro.sequences import read_fasta
        from repro.service import SearchClient, SearchService

        q, db, tmp = files
        template = read_fasta(db)[0]
        extra = tmp / "extra.fasta"
        write_fasta(
            [
                Sequence.from_text("cli_a", template.text, alphabet=template.alphabet),
                Sequence.from_text("cli_b", template.text, alphabet=template.alphabet),
            ],
            extra,
        )
        started = threading.Event()
        address = {}
        real_start = SearchService.start

        def capturing_start(self):
            real_start(self)
            address["addr"] = self.address
            started.set()

        monkeypatch.setattr(SearchService, "start", capturing_start)
        server = threading.Thread(
            target=main, args=(["serve", db, "--port", "0", "--gpus", "0"],)
        )
        server.start()
        try:
            assert started.wait(timeout=30)
            host, port = address["addr"]
            at = ["--host", host, "--port", str(port)]
            assert main(["db", "info", *at]) == 0
            assert "generation 0" in capsys.readouterr().out
            assert main(["db", "append", str(extra), *at]) == 0
            out = capsys.readouterr().out
            assert "generation 1" in out and "+2 appended" in out
            assert main(["db", "retire", "cli_a", *at]) == 0
            assert "generation 2" in capsys.readouterr().out
            # Unknown id: clean error, exit 1, generation unmoved.
            assert main(["db", "retire", "never_existed", *at]) == 1
            capsys.readouterr()
            assert main(["db", "info", "--json", *at]) == 0
            answer = json.loads(capsys.readouterr().out)
            assert answer["generation"]["ordinal"] == 2
            assert answer["generation"]["num_sequences"] == 9  # 8 seeds + 2 - 1
        finally:
            host, port = address["addr"]
            with SearchClient(host, port) as client:
                client.shutdown_server()
            server.join(timeout=30)
        assert not server.is_alive()

    def test_db_append_empty_fasta_returns_1(self, tmp_path, capsys):
        empty = tmp_path / "empty.fasta"
        empty.write_text("")
        assert main(["db", "append", str(empty), "--port", "1"]) == 1
        assert "no records" in capsys.readouterr().err


class TestTraceCommand:
    def test_trace_writes_chrome_and_timeline(self, files, capsys):
        import json
        import re

        q, db, tmp = files
        prefix = str(tmp / "run")
        rc = main(
            ["trace", "--queries", q, "--db", db, "--cpus", "1", "--gpus", "1",
             "--out", prefix]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert f"wrote {prefix}.chrome.json" in out
        assert f"wrote {prefix}.timeline.json" in out

        chrome = json.loads((tmp / "run.chrome.json").read_text())
        names = {e["name"] for e in chrome["traceEvents"]}
        assert "task.kernel" in names
        assert "sched.binary_search" in names
        assert all(e["ph"] == "X" for e in chrome["traceEvents"])

        timeline = json.loads((tmp / "run.timeline.json").read_text())
        assert timeline["makespan_s"] > 0
        assert sum(r["tasks"] for r in timeline["roles"].values()) == 2
        # Acceptance bar: per-role span sums agree with the ServiceStats
        # busy-seconds within ±5% (the CLI prints the drift per role).
        drifts = [float(m) for m in re.findall(r"(\d+\.\d+)%", out)]
        assert drifts
        assert all(d <= 5.0 for d in drifts)

    def test_trace_missing_queries_errors(self, files, capsys):
        _, db, tmp = files
        empty = tmp / "empty.fasta"
        empty.write_text("")
        rc = main(["trace", "--queries", str(empty), "--db", db])
        assert rc == 1
        assert "no query records" in capsys.readouterr().err

    def test_trace_leaves_tracing_disabled(self, files, tmp_path):
        from repro.telemetry import tracing

        q, db, _ = files
        assert not tracing.enabled()
        assert main(["trace", "--queries", q, "--db", db,
                     "--out", str(tmp_path / "t")]) == 0
        assert not tracing.enabled()
        assert tracing.drain() == []
