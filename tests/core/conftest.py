"""Shared fixtures/strategies for scheduler tests."""

import numpy as np
from hypothesis import strategies as st

from repro.core import TaskSet


def random_taskset(rng: np.random.Generator, n: int) -> TaskSet:
    """Random heterogeneous task set (not necessarily accelerated)."""
    return TaskSet(
        cpu_times=rng.uniform(0.1, 10.0, n),
        gpu_times=rng.uniform(0.1, 10.0, n),
    )


def accelerated_taskset(rng: np.random.Generator, n: int) -> TaskSet:
    """Task set where every task is faster on a GPU (the paper's case)."""
    pbar = rng.uniform(0.1, 5.0, n)
    speedup = rng.uniform(1.0, 4.0, n)
    return TaskSet(cpu_times=pbar * speedup, gpu_times=pbar)


@st.composite
def taskset_strategy(draw, max_n=25, accelerated=False):
    """Hypothesis strategy producing a TaskSet."""
    n = draw(st.integers(1, max_n))
    times = st.floats(0.1, 50.0, allow_nan=False, allow_infinity=False)
    pbar = draw(st.lists(times, min_size=n, max_size=n))
    if accelerated:
        factors = draw(
            st.lists(st.floats(1.0, 5.0), min_size=n, max_size=n)
        )
        p = [b * f for b, f in zip(pbar, factors)]
    else:
        p = draw(st.lists(times, min_size=n, max_size=n))
    return TaskSet(cpu_times=np.array(p), gpu_times=np.array(pbar))


@st.composite
def platform_strategy(draw, max_m=5, max_k=5):
    return draw(st.integers(1, max_m)), draw(st.integers(1, max_k))
