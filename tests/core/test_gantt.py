"""Tests for ASCII Gantt rendering."""

import pytest

from repro.core import Schedule, ScheduledTask, render_gantt, render_utilization


@pytest.fixture()
def schedule():
    return Schedule(
        slots=[
            ScheduledTask(0, "cpu0", 0.0, 4.0),
            ScheduledTask(1, "gpu0", 0.0, 8.0),
            ScheduledTask(2, "cpu0", 4.0, 6.0),
        ],
        pe_names=["cpu0", "gpu0"],
        num_tasks=3,
    )


class TestGantt:
    def test_one_row_per_pe(self, schedule):
        out = render_gantt(schedule, width=40)
        lines = out.splitlines()
        assert len(lines) == 3  # 2 PEs + scale
        assert lines[0].strip().startswith("cpu0")
        assert lines[1].strip().startswith("gpu0")

    def test_idle_marks(self, schedule):
        out = render_gantt(schedule, width=40)
        cpu_row = out.splitlines()[0]
        # cpu0 finishes at 6 of 8: the tail must show idle dots.
        assert "." in cpu_row

    def test_task_digits_present(self, schedule):
        out = render_gantt(schedule, width=40)
        assert "0" in out.splitlines()[0]
        assert "1" in out.splitlines()[1]

    def test_scale_shows_makespan(self, schedule):
        assert "8.00s" in render_gantt(schedule, width=40)

    def test_width_validation(self, schedule):
        with pytest.raises(ValueError):
            render_gantt(schedule, width=5)


class TestUtilization:
    def test_fractions(self, schedule):
        out = render_utilization(schedule, width=20)
        assert "75.0%" in out  # cpu0: 6 of 8
        assert "100.0%" in out  # gpu0

    def test_total_idle_line(self, schedule):
        out = render_utilization(schedule)
        assert "idle 2.00s" in out

    def test_width_validation(self, schedule):
        with pytest.raises(ValueError):
            render_utilization(schedule, width=0)
