"""Tests for the high-level SWDUAL scheduler API."""

import numpy as np
import pytest

from repro.core import (
    BASELINES,
    SWDualScheduler,
    tasks_from_queries,
)
from repro.platform import PerformanceModel, idgraf_platform
from repro.sequences import PAPER_DATABASES, standard_query_set

from .conftest import accelerated_taskset, random_taskset

UNIPROT = PAPER_DATABASES["uniprot"].total_residues


@pytest.fixture(scope="module")
def paper_plan():
    pm = PerformanceModel(idgraf_platform(4, 4))
    return SWDualScheduler("2approx").schedule_queries(
        standard_query_set(), UNIPROT, pm
    )


class TestSWDualScheduler:
    def test_variant_validation(self):
        with pytest.raises(ValueError, match="variant"):
            SWDualScheduler("4approx")
        with pytest.raises(ValueError, match="tolerance"):
            SWDualScheduler(tolerance=0)

    def test_plan_close_to_lower_bound(self, paper_plan):
        # On the paper workload the plan lands well under the 2x
        # guarantee — the binary search pushes it near-optimal.
        assert paper_plan.makespan <= 1.15 * paper_plan.lower_bound

    def test_plan_completeness(self, paper_plan):
        assert paper_plan.schedule.num_tasks == 40
        assert len(paper_plan.schedule.assignment_vector()) == 40

    def test_schedule_durations_match_tasks(self, paper_plan):
        gpu_names = {n for n in paper_plan.schedule.pe_names if n.startswith("gpu")}
        paper_plan.schedule.verify_against(paper_plan.tasks, gpu_names)

    def test_long_queries_favour_gpu(self, paper_plan):
        # With ratio-ordered filling, the longest queries (best GPU
        # speedup) must be on GPUs; the shortest land on CPUs.
        assignment = paper_plan.schedule.assignment_vector()
        lengths = paper_plan.tasks.query_lengths
        longest = int(np.argmax(lengths))
        assert assignment[longest].startswith("gpu")

    def test_beats_all_baselines_on_paper_workload(self, paper_plan):
        pm = PerformanceModel(idgraf_platform(4, 4))
        tasks = tasks_from_queries(standard_query_set(), UNIPROT, pm)
        for name, fn in BASELINES.items():
            if name in ("eft", "hetero-lpt"):
                continue  # near-optimal greedy heuristics can tie
            baseline = fn(tasks, 4, 4)
            assert paper_plan.makespan < baseline.makespan, name

    def test_low_idle_time(self, paper_plan):
        # The paper: "the execution on each of the processing elements
        # finished with almost no idle time."
        s = paper_plan.schedule
        assert s.mean_utilization > 0.85

    def test_dp_variant_runs(self):
        pm = PerformanceModel(idgraf_platform(2, 2))
        plan = SWDualScheduler("3/2dp").schedule_queries(
            standard_query_set(count=10), UNIPROT, pm
        )
        assert plan.schedule.num_tasks == 10
        assert plan.makespan <= 1.5 * plan.result.final_guess + 1e-9

    def test_summary_string(self, paper_plan):
        text = paper_plan.summary()
        assert "makespan" in text
        assert "lower bound" in text

    def test_schedule_tasks_direct(self):
        rng = np.random.default_rng(3)
        tasks = random_taskset(rng, 20)
        plan = SWDualScheduler().schedule_tasks(tasks, 2, 2)
        assert plan.schedule.makespan <= 2 * plan.result.final_guess + 1e-9

    def test_accelerated_instances(self):
        rng = np.random.default_rng(5)
        tasks = accelerated_taskset(rng, 30)
        assert tasks.all_accelerated
        plan = SWDualScheduler().schedule_tasks(tasks, 4, 4)
        assert plan.makespan <= 1.2 * plan.lower_bound * 2  # sanity

    def test_more_workers_never_hurt_much(self):
        # Adding GPUs to the platform must not increase the makespan.
        pm_small = PerformanceModel(idgraf_platform(1, 1))
        pm_big = PerformanceModel(idgraf_platform(4, 4))
        qs = standard_query_set()
        small = SWDualScheduler().schedule_queries(qs, UNIPROT, pm_small)
        big = SWDualScheduler().schedule_queries(qs, UNIPROT, pm_big)
        assert big.makespan < small.makespan
