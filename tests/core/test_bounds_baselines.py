"""Tests for makespan bounds and baseline schedulers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BASELINES,
    TaskSet,
    area_lower_bound,
    earliest_finish_time,
    eft_upper_bound,
    equal_power_split,
    hetero_lpt,
    makespan_bounds,
    max_task_lower_bound,
    proportional_split,
    self_scheduling,
)

from .conftest import accelerated_taskset, random_taskset, taskset_strategy


class TestBounds:
    def test_max_task_bound(self):
        ts = TaskSet([5.0, 2.0], [1.0, 8.0])
        assert max_task_lower_bound(ts) == 2.0

    def test_area_bound_single_class(self):
        ts = TaskSet([4.0, 4.0], [1.0, 1.0])
        assert area_lower_bound(ts, m=2, k=0) == pytest.approx(4.0)
        assert area_lower_bound(ts, m=0, k=2) == pytest.approx(1.0)

    def test_area_bound_hybrid_balanced(self):
        # Two identical tasks, one CPU one GPU: fractional optimum
        # splits so both sides finish together.
        ts = TaskSet([2.0, 2.0], [2.0, 2.0])
        assert area_lower_bound(ts, 1, 1) == pytest.approx(2.0)

    def test_invalid_platform(self):
        ts = TaskSet([1.0], [1.0])
        with pytest.raises(ValueError):
            area_lower_bound(ts, 0, 0)
        with pytest.raises(ValueError):
            eft_upper_bound(ts, 0, 0)

    @settings(max_examples=40, deadline=None)
    @given(tasks=taskset_strategy(max_n=20), m=st.integers(1, 4), k=st.integers(1, 4))
    def test_property_bounds_ordered(self, tasks, m, k):
        lo, hi = makespan_bounds(tasks, m, k)
        assert 0 < lo <= hi

    @settings(max_examples=30, deadline=None)
    @given(tasks=taskset_strategy(max_n=14), m=st.integers(1, 3), k=st.integers(1, 3))
    def test_property_every_baseline_within_bounds(self, tasks, m, k):
        lo, _ = makespan_bounds(tasks, m, k)
        for name, fn in BASELINES.items():
            sched = fn(tasks, m, k)
            assert sched.makespan >= lo - 1e-9, name

    @settings(max_examples=30, deadline=None)
    @given(tasks=taskset_strategy(max_n=15), m=st.integers(1, 3), k=st.integers(1, 3))
    def test_property_eft_upper_bound_is_achievable(self, tasks, m, k):
        hi = eft_upper_bound(tasks, m, k)
        sched = hetero_lpt(tasks, m, k)
        assert sched.makespan <= hi + 1e-9


class TestBaselines:
    def setup_method(self):
        self.rng = np.random.default_rng(42)

    def test_all_baselines_schedule_every_task(self):
        tasks = random_taskset(self.rng, 25)
        for name, fn in BASELINES.items():
            sched = fn(tasks, 2, 3)
            assert sched.num_tasks == 25, name
            assert len(sched.assignment_vector()) == 25, name

    def test_self_scheduling_no_early_idle(self):
        # With dynamic assignment, no PE idles while tasks remain: each
        # PE's last task starts before every other PE's completion.
        tasks = random_taskset(self.rng, 30)
        sched = self_scheduling(tasks, 2, 2)
        completions = {n: sched.completion_time(n) for n in sched.pe_names}
        for name in sched.pe_names:
            tl = sched.timeline(name)
            if not tl:
                continue
            last_start = tl[-1].start
            for other, done in completions.items():
                if other != name:
                    assert last_start <= done + 1e-9

    def test_equal_power_round_robin(self):
        tasks = TaskSet([1.0] * 4, [1.0] * 4)
        sched = equal_power_split(tasks, 2, 2)
        assignment = sched.assignment_vector()
        assert assignment[0] == "cpu0"
        assert assignment[1] == "cpu1"
        assert assignment[2] == "gpu0"
        assert assignment[3] == "gpu1"

    def test_proportional_sends_more_to_faster_class(self):
        # GPUs 4x faster: they should receive ~80% of tasks (1 CPU, 1 GPU).
        tasks = TaskSet([4.0] * 20, [1.0] * 20)
        sched = proportional_split(tasks, 1, 1)
        gpu_count = sum(
            1 for pe in sched.assignment_vector().values() if pe.startswith("gpu")
        )
        assert 14 <= gpu_count <= 18

    def test_eft_prefers_faster_pe(self):
        tasks = TaskSet([10.0], [1.0])
        sched = earliest_finish_time(tasks, 1, 1)
        assert sched.assignment_vector()[0] == "gpu0"

    def test_hetero_lpt_beats_or_matches_arbitrary_eft_often(self):
        # Not a theorem, but on accelerated instances LPT ordering
        # should not lose badly; check it stays within 1.5x.
        tasks = accelerated_taskset(self.rng, 40)
        a = earliest_finish_time(tasks, 2, 2).makespan
        b = hetero_lpt(tasks, 2, 2).makespan
        assert b <= 1.5 * a

    def test_invalid_platform_rejected(self):
        tasks = TaskSet([1.0], [1.0])
        for fn in (self_scheduling, equal_power_split, proportional_split):
            with pytest.raises(ValueError):
                fn(tasks, 0, 0)

    def test_custom_order_self_scheduling(self):
        tasks = TaskSet([1.0, 2.0, 3.0], [1.0, 2.0, 3.0])
        sched = self_scheduling(tasks, 1, 1, order=[2, 1, 0])
        # Task 2 starts first (t=0).
        assignment = {s.task_index: s for n in sched.pe_names for s in sched.timeline(n)}
        assert assignment[2].start == 0.0
