"""Tests for the task model and schedule representation."""

import numpy as np
import pytest

from repro.core import Schedule, ScheduledTask, Task, TaskSet, tasks_from_queries
from repro.platform import PerformanceModel, idgraf_platform
from repro.sequences import standard_query_set


class TestTask:
    def test_acceleration(self):
        t = Task(index=0, query_id="q", query_length=10, cpu_time=6.0, gpu_time=2.0)
        assert t.acceleration == 3.0

    def test_time_on(self):
        t = Task(index=0, query_id="q", query_length=10, cpu_time=6.0, gpu_time=2.0)
        assert t.time_on(is_gpu=True) == 2.0
        assert t.time_on(is_gpu=False) == 6.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Task(index=0, query_id="q", query_length=0, cpu_time=1, gpu_time=1)
        with pytest.raises(ValueError):
            Task(index=0, query_id="q", query_length=1, cpu_time=0, gpu_time=1)


class TestTaskSet:
    def test_basic(self):
        ts = TaskSet([2.0, 4.0], [1.0, 1.0])
        assert len(ts) == 2
        assert ts.acceleration.tolist() == [2.0, 4.0]
        assert ts.all_accelerated

    def test_not_all_accelerated(self):
        ts = TaskSet([2.0, 0.5], [1.0, 1.0])
        assert not ts.all_accelerated

    def test_indexing(self):
        ts = TaskSet([2.0, 4.0], [1.0, 3.0], query_ids=["a", "b"])
        assert ts[1].query_id == "b"
        assert ts[1].gpu_time == 3.0
        with pytest.raises(IndexError):
            ts[2]

    def test_iteration(self):
        ts = TaskSet([2.0, 4.0], [1.0, 3.0])
        assert [t.index for t in ts] == [0, 1]

    def test_validation(self):
        with pytest.raises(ValueError, match="non-empty"):
            TaskSet([], [])
        with pytest.raises(ValueError, match="shape"):
            TaskSet([1.0], [1.0, 2.0])
        with pytest.raises(ValueError, match="positive"):
            TaskSet([0.0], [1.0])
        with pytest.raises(ValueError, match="query_ids"):
            TaskSet([1.0], [1.0], query_ids=["a", "b"])

    def test_arrays_readonly(self):
        ts = TaskSet([2.0], [1.0])
        with pytest.raises(ValueError):
            ts.cpu_times[0] = 5.0

    def test_total_cells(self):
        ts = TaskSet([1.0], [1.0], query_lengths=np.array([100]), db_residues=1000)
        assert ts.total_cells == 100_000

    def test_from_queries(self):
        pm = PerformanceModel(idgraf_platform(2, 2))
        qs = standard_query_set(count=5)
        ts = tasks_from_queries(qs, 1_000_000, pm)
        assert len(ts) == 5
        assert ts.db_residues == 1_000_000
        assert (ts.query_lengths == qs.lengths).all()

    def test_from_queries_validation(self):
        pm = PerformanceModel(idgraf_platform(1, 1))
        with pytest.raises(ValueError):
            tasks_from_queries(standard_query_set(count=2), 0, pm)


class TestSchedule:
    def make(self, slots, pes=("cpu0", "gpu0"), n=None):
        n = n if n is not None else len(slots)
        return Schedule(slots=slots, pe_names=list(pes), num_tasks=n)

    def test_makespan_and_idle(self):
        s = self.make(
            [
                ScheduledTask(0, "cpu0", 0.0, 4.0),
                ScheduledTask(1, "gpu0", 0.0, 10.0),
            ]
        )
        assert s.makespan == 10.0
        assert s.idle_time("cpu0") == 6.0
        assert s.idle_time("gpu0") == 0.0
        assert s.total_idle_time == 6.0

    def test_gap_counts_as_idle(self):
        s = self.make(
            [
                ScheduledTask(0, "cpu0", 0.0, 2.0),
                ScheduledTask(1, "cpu0", 5.0, 6.0),
            ],
            pes=("cpu0",),
        )
        assert s.idle_time("cpu0") == pytest.approx(3.0)

    def test_duplicate_task_rejected(self):
        with pytest.raises(ValueError, match="twice"):
            self.make(
                [
                    ScheduledTask(0, "cpu0", 0.0, 1.0),
                    ScheduledTask(0, "gpu0", 0.0, 1.0),
                ],
                n=1,
            )

    def test_missing_task_rejected(self):
        with pytest.raises(ValueError, match="not scheduled"):
            self.make([ScheduledTask(0, "cpu0", 0.0, 1.0)], n=2)

    def test_overlap_rejected(self):
        with pytest.raises(ValueError, match="overlapping"):
            self.make(
                [
                    ScheduledTask(0, "cpu0", 0.0, 2.0),
                    ScheduledTask(1, "cpu0", 1.0, 3.0),
                ]
            )

    def test_unknown_pe_rejected(self):
        with pytest.raises(ValueError, match="unknown PE"):
            self.make([ScheduledTask(0, "tpu0", 0.0, 1.0)])

    def test_mean_utilization(self):
        s = self.make(
            [
                ScheduledTask(0, "cpu0", 0.0, 5.0),
                ScheduledTask(1, "gpu0", 0.0, 10.0),
            ]
        )
        assert s.mean_utilization == pytest.approx(0.75)

    def test_assignment_vector(self):
        s = self.make(
            [
                ScheduledTask(0, "cpu0", 0.0, 1.0),
                ScheduledTask(1, "gpu0", 0.0, 1.0),
            ]
        )
        assert s.assignment_vector() == {0: "cpu0", 1: "gpu0"}

    def test_verify_against(self):
        ts = TaskSet([4.0, 7.0], [1.0, 2.0])
        s = self.make(
            [
                ScheduledTask(0, "cpu0", 0.0, 4.0),
                ScheduledTask(1, "gpu0", 0.0, 2.0),
            ]
        )
        s.verify_against(ts, gpu_names={"gpu0"})
        bad = self.make(
            [
                ScheduledTask(0, "cpu0", 0.0, 4.0),
                ScheduledTask(1, "gpu0", 0.0, 3.0),
            ]
        )
        with pytest.raises(ValueError, match="duration"):
            bad.verify_against(ts, gpu_names={"gpu0"})

    def test_gantt_rows(self):
        s = self.make(
            [
                ScheduledTask(0, "cpu0", 0.0, 1.0),
                ScheduledTask(1, "gpu0", 2.0, 3.0),
            ]
        )
        rows = dict(s.gantt_rows())
        assert rows["gpu0"] == [(2.0, 3.0, 1)]

    def test_slot_validation(self):
        with pytest.raises(ValueError):
            ScheduledTask(0, "cpu0", -1.0, 1.0)
        with pytest.raises(ValueError):
            ScheduledTask(0, "cpu0", 2.0, 1.0)

    def test_empty_platform_idle(self):
        s = self.make([ScheduledTask(0, "cpu0", 0.0, 1.0)], pes=("cpu0", "cpu1"))
        assert s.idle_time("cpu1") == 1.0
        assert s.completion_time("cpu1") == 0.0
