"""Tests for the exact branch-and-bound scheduler."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    OptimalSearchBudgetExceeded,
    TaskSet,
    dual_approx_schedule,
    hetero_lpt,
    optimal_makespan,
)

from .conftest import random_taskset


def brute_force(tasks: TaskSet, m: int, k: int) -> float:
    """Independent exhaustive check (assignments + machine loads)."""
    n = len(tasks)
    p, pbar = tasks.cpu_times, tasks.gpu_times
    best = np.inf

    def pack(durations, machines):
        if not durations:
            return 0.0
        best_inner = [np.inf]
        loads = [0.0] * machines

        def rec(i):
            if i == len(durations):
                best_inner[0] = min(best_inner[0], max(loads))
                return
            if max(loads) >= best_inner[0]:
                return
            for mach in range(machines):
                loads[mach] += durations[i]
                rec(i + 1)
                loads[mach] -= durations[i]
                if loads[mach] == 0.0:
                    break
        rec(0)
        return best_inner[0]

    for mask in itertools.product([0, 1], repeat=n):
        cm = pack([p[j] for j in range(n) if mask[j]], m)
        gm = pack([pbar[j] for j in range(n) if not mask[j]], k)
        best = min(best, max(cm, gm))
    return float(best)


class TestOptimalMakespan:
    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(1, 7),
        m=st.integers(1, 2),
        k=st.integers(1, 2),
        seed=st.integers(0, 5000),
    )
    def test_matches_brute_force(self, n, m, k, seed):
        rng = np.random.default_rng(seed)
        tasks = random_taskset(rng, n)
        assert optimal_makespan(tasks, m, k) == pytest.approx(
            brute_force(tasks, m, k)
        )

    def test_single_task(self):
        tasks = TaskSet([5.0], [2.0])
        assert optimal_makespan(tasks, 1, 1) == 2.0

    def test_upper_bound_seed_does_not_change_result(self):
        rng = np.random.default_rng(3)
        tasks = random_taskset(rng, 8)
        plain = optimal_makespan(tasks, 2, 2)
        seeded = optimal_makespan(tasks, 2, 2, upper_bound=plain * 1.5)
        assert seeded == pytest.approx(plain)

    def test_dual_approx_within_guarantee_of_optimum(self):
        rng = np.random.default_rng(7)
        for _ in range(10):
            tasks = random_taskset(rng, 10)
            opt = optimal_makespan(tasks, 2, 2)
            got = dual_approx_schedule(tasks, 2, 2).schedule.makespan
            assert opt - 1e-9 <= got <= 2 * opt + 1e-9

    def test_lpt_never_beats_optimum(self):
        rng = np.random.default_rng(9)
        for _ in range(10):
            tasks = random_taskset(rng, 9)
            opt = optimal_makespan(tasks, 2, 1)
            assert hetero_lpt(tasks, 2, 1).makespan >= opt - 1e-9

    def test_budget_exceeded(self):
        rng = np.random.default_rng(11)
        tasks = random_taskset(rng, 16)
        with pytest.raises(OptimalSearchBudgetExceeded):
            optimal_makespan(tasks, 3, 3, node_budget=50)

    def test_validation(self):
        tasks = TaskSet([1.0], [1.0])
        with pytest.raises(ValueError):
            optimal_makespan(tasks, 0, 0)

    def test_cpu_only(self):
        tasks = TaskSet([3.0, 3.0, 2.0], [99.0, 99.0, 99.0])
        # m=2, k=1: optimum splits 3/3+2 or uses GPU? GPU times are
        # terrible, so optimum = 5 on CPUs... actually {3},{3,2} -> 5,
        # or {3,2},{3} -> 5; with the GPU idle.
        assert optimal_makespan(tasks, 2, 1) == pytest.approx(5.0)
