"""Tests for the minimisation knapsack and list scheduling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    dp_min_knapsack,
    greedy_min_knapsack,
    list_schedule,
    lpt_order,
)


class TestGreedyKnapsack:
    def test_ratio_order_filling(self):
        # Task 1 has the best p/pbar ratio and must be taken first.
        p = np.array([2.0, 9.0, 4.0])
        pbar = np.array([2.0, 3.0, 4.0])  # ratios 1, 3, 1
        res = greedy_min_knapsack(p, pbar, capacity=2.0)
        assert not res.on_cpu[1]  # best ratio on GPU
        assert res.on_cpu[0] and res.on_cpu[2]
        assert res.gpu_area == 3.0
        assert res.last_gpu_task == 1

    def test_overflow_past_capacity(self):
        # Greedy keeps adding while area < capacity, so it finishes
        # with area >= capacity (Figure 4's overflow).
        p = np.array([4.0, 4.0, 4.0])
        pbar = np.array([1.0, 1.0, 1.0])
        res = greedy_min_knapsack(p, pbar, capacity=2.5)
        assert res.gpu_area == pytest.approx(3.0)
        assert (~res.on_cpu).sum() == 3

    def test_zero_capacity(self):
        p = np.array([1.0, 2.0])
        pbar = np.array([1.0, 1.0])
        res = greedy_min_knapsack(p, pbar, capacity=0.0)
        assert res.on_cpu.all()
        assert res.gpu_area == 0.0
        assert res.last_gpu_task is None

    def test_forced_gpu_counts_against_capacity(self):
        p = np.array([10.0, 2.0])
        pbar = np.array([3.0, 1.0])
        forced = np.array([True, False])
        res = greedy_min_knapsack(p, pbar, capacity=3.0, forced_gpu=forced)
        assert not res.on_cpu[0]
        assert res.on_cpu[1]  # capacity already reached by the forced task

    def test_forced_cpu_skipped(self):
        p = np.array([9.0, 2.0])
        pbar = np.array([1.0, 1.0])
        forced_cpu = np.array([True, False])
        res = greedy_min_knapsack(p, pbar, capacity=10.0, forced_cpu=forced_cpu)
        assert res.on_cpu[0]
        assert not res.on_cpu[1]

    def test_conflicting_forces_rejected(self):
        p = np.array([1.0])
        pbar = np.array([1.0])
        with pytest.raises(ValueError, match="both classes"):
            greedy_min_knapsack(
                p, pbar, 1.0, forced_gpu=np.array([True]), forced_cpu=np.array([True])
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            greedy_min_knapsack(np.array([1.0]), np.array([1.0, 2.0]), 1.0)
        with pytest.raises(ValueError):
            greedy_min_knapsack(np.array([-1.0]), np.array([1.0]), 1.0)
        with pytest.raises(ValueError):
            greedy_min_knapsack(np.array([1.0]), np.array([1.0]), -1.0)

    @settings(max_examples=50, deadline=None)
    @given(
        n=st.integers(1, 20),
        seed=st.integers(0, 10_000),
        cap_frac=st.floats(0.0, 1.5),
    )
    def test_property_area_reached_or_exhausted(self, n, seed, cap_frac):
        rng = np.random.default_rng(seed)
        p = rng.uniform(0.1, 5.0, n)
        pbar = rng.uniform(0.1, 5.0, n)
        capacity = cap_frac * pbar.sum()
        res = greedy_min_knapsack(p, pbar, capacity)
        # Either the capacity was reached or every task is on the GPU.
        assert res.gpu_area >= min(capacity, pbar.sum()) - 1e-9
        assert res.cpu_area == pytest.approx(p[res.on_cpu].sum())


class TestDPKnapsack:
    def test_beats_or_matches_greedy_cpu_area_at_capacity(self):
        rng = np.random.default_rng(3)
        for _ in range(20):
            n = int(rng.integers(2, 15))
            p = rng.uniform(0.1, 5.0, n)
            pbar = rng.uniform(0.1, 5.0, n)
            cap = float(rng.uniform(0.2, 1.0) * pbar.sum())
            dp = dp_min_knapsack(p, pbar, cap, resolution=500)
            assert dp is not None
            # DP respects the capacity strictly.
            assert dp.gpu_area <= cap + 1e-9

    def test_exact_small_instance(self):
        # Optimal: put task 0 (pbar=2) on GPU, saving p=10.
        p = np.array([10.0, 1.0])
        pbar = np.array([2.0, 2.0])
        res = dp_min_knapsack(p, pbar, capacity=2.0, resolution=100)
        assert not res.on_cpu[0]
        assert res.on_cpu[1]
        assert res.cpu_area == 1.0

    def test_infeasible_forced(self):
        p = np.array([1.0])
        pbar = np.array([5.0])
        res = dp_min_knapsack(
            p, pbar, capacity=1.0, forced_gpu=np.array([True])
        )
        assert res is None

    def test_zero_capacity(self):
        p = np.array([1.0, 2.0])
        pbar = np.array([1.0, 1.0])
        res = dp_min_knapsack(p, pbar, capacity=0.0)
        assert res.on_cpu.all()
        res2 = dp_min_knapsack(
            p, pbar, capacity=0.0, forced_gpu=np.array([True, False])
        )
        assert res2 is None

    def test_forced_cpu(self):
        p = np.array([10.0, 1.0])
        pbar = np.array([1.0, 1.0])
        res = dp_min_knapsack(
            p, pbar, capacity=10.0, forced_cpu=np.array([True, False])
        )
        assert res.on_cpu[0]

    def test_resolution_validation(self):
        with pytest.raises(ValueError):
            dp_min_knapsack(np.array([1.0]), np.array([1.0]), 1.0, resolution=0)

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(1, 12), seed=st.integers(0, 10_000))
    def test_property_dp_no_worse_than_greedy_at_inflated_capacity(self, n, seed):
        # Conservative rounding can cost up to one unit per task, so
        # give the DP the greedy's used area plus that slack; then its
        # (exact) optimum cannot be worse than the greedy's split.
        rng = np.random.default_rng(seed)
        p = rng.uniform(0.5, 5.0, n)
        pbar = rng.uniform(0.5, 5.0, n)
        cap = float(0.6 * pbar.sum())
        greedy = greedy_min_knapsack(p, pbar, cap)
        resolution = 800
        inflated = greedy.gpu_area * (1 + (n + 1) / resolution) + 1e-9
        dp = dp_min_knapsack(p, pbar, inflated, resolution=resolution)
        assert dp is not None
        assert dp.cpu_area <= greedy.cpu_area + 1e-6


class TestListSchedule:
    def test_least_loaded_placement(self):
        slots = list_schedule([0, 1, 2], [4.0, 3.0, 2.0], ["a", "b"])
        by_task = {s.task_index: s for s in slots}
        assert by_task[0].pe_name == "a"
        assert by_task[1].pe_name == "b"
        # Task 2 goes to b (load 3) not a (load 4).
        assert by_task[2].pe_name == "b"
        assert by_task[2].start == 3.0

    def test_deterministic_tie_break(self):
        slots = list_schedule([0, 1], [1.0, 1.0], ["a", "b"])
        assert slots[0].pe_name == "a"
        assert slots[1].pe_name == "b"

    def test_empty_tasks(self):
        assert list_schedule([], [], ["a"]) == []
        assert list_schedule([], [], []) == []

    def test_no_machines_with_tasks(self):
        with pytest.raises(ValueError, match="zero machines"):
            list_schedule([0], [1.0], [])

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            list_schedule([0, 1], [1.0], ["a"])

    def test_nonpositive_duration(self):
        with pytest.raises(ValueError):
            list_schedule([0], [0.0], ["a"])

    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(1, 30),
        machines=st.integers(1, 6),
        seed=st.integers(0, 10_000),
    )
    def test_property_graham_bound(self, n, machines, seed):
        rng = np.random.default_rng(seed)
        d = rng.uniform(0.1, 5.0, n)
        names = [f"m{i}" for i in range(machines)]
        slots = list_schedule(list(range(n)), list(d), names)
        makespan = max(s.end for s in slots)
        # Graham: Cmax <= area/m + max duration.
        assert makespan <= d.sum() / machines + d.max() + 1e-9

    def test_lpt_order(self):
        order = lpt_order(np.array([1.0, 5.0, 3.0]))
        assert order.tolist() == [1, 2, 0]

    def test_lpt_order_ties_stable(self):
        order = lpt_order(np.array([2.0, 2.0, 2.0]))
        assert order.tolist() == [0, 1, 2]
