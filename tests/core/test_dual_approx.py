"""Tests for the dual-approximation steps and binary search.

The load-bearing properties:

* the 2-approx step never returns a schedule longer than ``2λ``;
* the 3/2 DP step never exceeds ``1.5λ``;
* a "NO" from the 2-approx step is never wrong (validated against a
  brute-force optimal makespan on small instances);
* the binary search converges and its result beats the baselines'
  worst cases.
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    TaskSet,
    dual_approx_dp_step,
    dual_approx_schedule,
    dual_approx_step,
    make_dp_step,
    makespan_bounds,
)

from .conftest import random_taskset, taskset_strategy


def brute_force_makespan(tasks: TaskSet, m: int, k: int) -> float:
    """Exact optimal makespan by enumerating all class assignments and
    machine partitions (tiny instances only)."""
    n = len(tasks)
    p, pbar = tasks.cpu_times, tasks.gpu_times
    best = np.inf

    def partition_makespan(durations, machines):
        # Optimal multiprocessor scheduling by enumeration over machine
        # choices (durations tiny).
        if not durations:
            return 0.0
        best_inner = [np.inf]
        loads = [0.0] * machines

        def rec(i):
            if i == len(durations):
                best_inner[0] = min(best_inner[0], max(loads))
                return
            if max(loads) >= best_inner[0]:
                return
            for mach in range(machines):
                loads[mach] += durations[i]
                rec(i + 1)
                loads[mach] -= durations[i]
                if loads[mach] == 0.0:
                    break  # symmetry: first empty machine only
        rec(0)
        return best_inner[0]

    for mask in itertools.product([0, 1], repeat=n):
        cpu_tasks = [p[j] for j in range(n) if mask[j]]
        gpu_tasks = [pbar[j] for j in range(n) if not mask[j]]
        cm = partition_makespan(cpu_tasks, m)
        gm = partition_makespan(gpu_tasks, k)
        best = min(best, max(cm, gm))
    return float(best)


class TestDualApproxStepGuarantee:
    @settings(max_examples=60, deadline=None)
    @given(
        tasks=taskset_strategy(max_n=20),
        m=st.integers(1, 4),
        k=st.integers(1, 4),
        lam_factor=st.floats(0.05, 3.0),
    )
    def test_2lambda_guarantee(self, tasks, m, k, lam_factor):
        lam = lam_factor * float(
            np.maximum(tasks.cpu_times, tasks.gpu_times).max()
        )
        step = dual_approx_step(tasks, m, k, lam)
        if step is not None:
            assert step.schedule.makespan <= 2 * lam + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(
        tasks=taskset_strategy(max_n=12),
        m=st.integers(1, 3),
        k=st.integers(1, 3),
        lam_factor=st.floats(0.1, 3.0),
    )
    def test_3half_lambda_guarantee(self, tasks, m, k, lam_factor):
        lam = lam_factor * float(
            np.maximum(tasks.cpu_times, tasks.gpu_times).max()
        )
        step = dual_approx_dp_step(tasks, m, k, lam)
        if step is not None:
            assert step.schedule.makespan <= 1.5 * lam + 1e-9

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(1, 6),
        m=st.integers(1, 2),
        k=st.integers(1, 2),
        seed=st.integers(0, 5000),
        lam_factor=st.floats(0.3, 2.0),
    )
    def test_no_answers_are_correct(self, n, m, k, seed, lam_factor):
        # A NO at λ must mean OPT > λ (checked by brute force).
        rng = np.random.default_rng(seed)
        tasks = random_taskset(rng, n)
        opt = brute_force_makespan(tasks, m, k)
        lam = lam_factor * opt
        step = dual_approx_step(tasks, m, k, lam)
        if step is None:
            assert lam < opt - 1e-9

    def test_accepts_above_opt(self):
        rng = np.random.default_rng(11)
        for _ in range(10):
            tasks = random_taskset(rng, 5)
            opt = brute_force_makespan(tasks, 2, 2)
            step = dual_approx_step(tasks, 2, 2, opt * 1.0001)
            assert step is not None
            assert step.schedule.makespan <= 2 * opt * 1.0001 + 1e-9


class TestDualApproxStepMechanics:
    def test_forced_gpu_placement(self):
        # Task 0 cannot run on a CPU within λ=5 (p=8), so it must be
        # on the GPU even though its ratio is poor.
        tasks = TaskSet([8.0, 2.0], [7.0, 0.5])
        step = dual_approx_step(tasks, m=1, k=1, lam=7.5)
        assert step is not None
        assert not step.knapsack.on_cpu[0]

    def test_forced_cpu_placement(self):
        # Task 0 cannot run on a GPU within λ (pbar > λ).
        tasks = TaskSet([3.0, 2.0], [8.0, 0.5])
        step = dual_approx_step(tasks, m=1, k=1, lam=4.0)
        assert step is not None
        assert step.knapsack.on_cpu[0]

    def test_no_when_task_fits_nowhere(self):
        tasks = TaskSet([8.0], [9.0])
        assert dual_approx_step(tasks, 1, 1, lam=7.0) is None

    def test_no_when_forced_gpu_overflows(self):
        # Both tasks forced to the single GPU; their area > kλ.
        tasks = TaskSet([10.0, 10.0], [4.0, 4.0])
        assert dual_approx_step(tasks, 1, 1, lam=5.0) is None

    def test_no_when_cpu_area_too_big(self):
        # GPU-pinned tasks fill capacity; the rest exceed mλ on CPUs.
        tasks = TaskSet([3.0, 3.0, 3.0, 3.0], [1.0, 1.0, 10.0, 10.0])
        assert dual_approx_step(tasks, 1, 1, lam=4.0) is None

    def test_cpu_only_platform(self):
        tasks = TaskSet([2.0, 3.0], [1.0, 1.0])
        step = dual_approx_step(tasks, m=2, k=0, lam=3.0)
        assert step is not None
        assert step.knapsack.on_cpu.all()
        assert dual_approx_step(tasks, 2, 0, lam=1.0) is None

    def test_gpu_only_platform(self):
        tasks = TaskSet([2.0, 3.0], [1.0, 1.0])
        step = dual_approx_step(tasks, m=0, k=1, lam=2.0)
        assert step is not None
        assert not step.knapsack.on_cpu.any()

    def test_invalid_inputs(self):
        tasks = TaskSet([1.0], [1.0])
        with pytest.raises(ValueError):
            dual_approx_step(tasks, 1, 1, lam=0.0)
        with pytest.raises(ValueError):
            dual_approx_step(tasks, 0, 0, lam=1.0)

    def test_jlast_runs_last_on_gpus(self):
        rng = np.random.default_rng(5)
        tasks = random_taskset(rng, 15)
        lam = float(np.maximum(tasks.cpu_times, tasks.gpu_times).max()) * 1.5
        step = dual_approx_step(tasks, 2, 2, lam)
        if step is None or step.knapsack.last_gpu_task is None:
            pytest.skip("degenerate instance")
        jlast = step.knapsack.last_gpu_task
        # j_last must be the last task to *start* among GPU tasks.
        gpu_slots = [
            s
            for name in step.schedule.pe_names
            if name.startswith("gpu")
            for s in step.schedule.timeline(name)
        ]
        latest_start = max(gpu_slots, key=lambda s: s.start)
        assert latest_start.task_index == jlast


class TestBinarySearch:
    def test_converges_and_improves(self):
        rng = np.random.default_rng(7)
        tasks = random_taskset(rng, 30)
        result = dual_approx_schedule(tasks, 3, 2, tolerance=1e-4)
        lo, hi = makespan_bounds(tasks, 3, 2)
        assert result.lower_bound >= lo - 1e-9
        assert result.schedule.makespan <= 2 * result.final_guess + 1e-9
        assert result.iterations <= 60

    def test_iteration_count_logarithmic(self):
        rng = np.random.default_rng(9)
        tasks = random_taskset(rng, 20)
        r_fine = dual_approx_schedule(tasks, 2, 2, tolerance=1e-5)
        r_coarse = dual_approx_schedule(tasks, 2, 2, tolerance=1e-1)
        assert r_coarse.iterations < r_fine.iterations

    def test_trace_records_all_steps(self):
        rng = np.random.default_rng(13)
        tasks = random_taskset(rng, 10)
        result = dual_approx_schedule(tasks, 2, 2)
        assert len(result.trace) == result.iterations
        assert result.trace[0][1] is True  # Bmax accepted

    def test_single_task(self):
        tasks = TaskSet([5.0], [2.0])
        result = dual_approx_schedule(tasks, 1, 1)
        # One task: it lands on the GPU, makespan = 2.
        assert result.schedule.makespan == pytest.approx(2.0)

    def test_dp_step_pluggable(self):
        rng = np.random.default_rng(17)
        tasks = random_taskset(rng, 15)
        r2 = dual_approx_schedule(tasks, 2, 2)
        r32 = dual_approx_schedule(tasks, 2, 2, step_fn=make_dp_step())
        # The 3/2 variant's guarantee is tighter relative to its final λ.
        assert r32.schedule.makespan <= 1.5 * r32.final_guess + 1e-9
        assert r2.schedule.makespan <= 2.0 * r2.final_guess + 1e-9

    def test_validation(self):
        tasks = TaskSet([1.0], [1.0])
        with pytest.raises(ValueError):
            dual_approx_schedule(tasks, 1, 1, tolerance=0)
        with pytest.raises(ValueError):
            dual_approx_schedule(tasks, 1, 1, max_iterations=0)

    @settings(max_examples=20, deadline=None)
    @given(tasks=taskset_strategy(max_n=15), m=st.integers(1, 3), k=st.integers(1, 3))
    def test_property_result_within_2x_lower_bound(self, tasks, m, k):
        result = dual_approx_schedule(tasks, m, k, tolerance=1e-3)
        # C_max <= 2·Bmax and Bmax -> lower_bound, so the gap is ~2.
        assert result.schedule.makespan <= 2 * result.lower_bound * (1 + 5e-3) + 1e-9
