"""Tests for the scheduling-instance generators."""

import numpy as np
import pytest

from repro.core import (
    INSTANCE_FAMILIES,
    accelerated_instance,
    anticorrelated_instance,
    bimodal_instance,
    uniform_instance,
)


class TestFamilies:
    @pytest.mark.parametrize("name", sorted(INSTANCE_FAMILIES))
    def test_shape_and_determinism(self, name):
        gen = INSTANCE_FAMILIES[name]
        a = gen(30, seed=7)
        b = gen(30, seed=7)
        assert len(a) == 30
        assert np.array_equal(a.cpu_times, b.cpu_times)
        assert np.array_equal(a.gpu_times, b.gpu_times)

    @pytest.mark.parametrize("name", sorted(INSTANCE_FAMILIES))
    def test_positive_times(self, name):
        ts = INSTANCE_FAMILIES[name](50, seed=1)
        assert (ts.cpu_times > 0).all()
        assert (ts.gpu_times > 0).all()

    def test_accelerated_property(self):
        ts = accelerated_instance(100, seed=2)
        assert ts.all_accelerated

    def test_uniform_not_necessarily_accelerated(self):
        ts = uniform_instance(200, seed=3)
        assert not ts.all_accelerated  # overwhelmingly likely

    def test_anticorrelated_structure(self):
        ts = anticorrelated_instance(200, seed=4)
        # Speedup decreases with CPU time: check rank correlation < 0.
        speedup = ts.acceleration
        p = ts.cpu_times
        rank_corr = np.corrcoef(np.argsort(np.argsort(p)), np.argsort(np.argsort(speedup)))[0, 1]
        assert rank_corr < -0.8

    def test_bimodal_has_huge_tasks(self):
        ts = bimodal_instance(300, seed=5, huge_fraction=0.1, huge_scale=20.0)
        ratio = ts.gpu_times.max() / np.median(ts.gpu_times)
        assert ratio > 10

    def test_bimodal_zero_fraction(self):
        ts = bimodal_instance(50, seed=6, huge_fraction=0.0)
        assert ts.gpu_times.max() <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            uniform_instance(0)
        with pytest.raises(ValueError):
            uniform_instance(5, lo=2.0, hi=1.0)
        with pytest.raises(ValueError):
            accelerated_instance(5, min_speedup=0.5)
        with pytest.raises(ValueError):
            bimodal_instance(5, huge_fraction=2.0)
        with pytest.raises(ValueError):
            bimodal_instance(5, huge_scale=0.5)
