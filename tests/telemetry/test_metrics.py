"""Unit tests for counters, gauges, histograms, and the registry."""

import threading

import pytest

from repro.telemetry.metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("x_total")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative_increment(self):
        c = Counter("x_total")
        with pytest.raises(ValueError, match="only go up"):
            c.inc(-1)

    def test_rejects_invalid_name(self):
        with pytest.raises(ValueError, match="invalid metric name"):
            Counter("bad-name")


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("depth")
        g.set(5)
        g.inc(2)
        g.dec(3)
        assert g.value == 4.0


class TestHistogramBuckets:
    def test_value_equal_to_bound_lands_in_that_bucket(self):
        """Prometheus ``le`` semantics: v == bound counts in the bound's
        bucket, not the next one up."""
        h = Histogram("lat", buckets=(1.0, 2.0, 4.0))
        h.observe(2.0)
        assert h.bucket_counts() == [0, 1, 0, 0]

    def test_overflow_bucket_catches_values_above_last_bound(self):
        h = Histogram("lat", buckets=(1.0, 2.0))
        h.observe(2.0000001)
        h.observe(1e9)
        assert h.bucket_counts() == [0, 0, 2]

    def test_first_bucket_includes_everything_at_or_below(self):
        h = Histogram("lat", buckets=(1.0, 2.0))
        h.observe(0.0)
        h.observe(-5.0)
        h.observe(1.0)
        assert h.bucket_counts() == [3, 0, 0]

    def test_cumulative_counts_match_exposition_series(self):
        h = Histogram("lat", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 100.0):
            h.observe(v)
        assert h.cumulative_counts() == [1, 2, 3, 4]
        assert h.cumulative_counts()[-1] == h.count

    def test_bucket_validation(self):
        with pytest.raises(ValueError, match="at least one bucket"):
            Histogram("lat", buckets=())
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("lat", buckets=(1.0, 1.0))
        with pytest.raises(ValueError, match="finite"):
            Histogram("lat", buckets=(1.0, float("inf")))

    def test_default_buckets_are_the_time_buckets(self):
        h = Histogram("lat")
        assert h.bounds == DEFAULT_TIME_BUCKETS


class TestHistogramSummary:
    def test_empty_snapshot_is_all_zero(self):
        snap = Histogram("lat", buckets=(1.0,)).snapshot()
        assert snap == {
            "count": 0,
            "sum": 0.0,
            "mean": 0.0,
            "min": 0.0,
            "max": 0.0,
            "p50": 0.0,
            "p90": 0.0,
            "p99": 0.0,
        }

    def test_sum_mean_min_max(self):
        h = Histogram("lat", buckets=(1.0, 10.0))
        for v in (0.5, 2.0, 9.5):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(12.0)
        assert h.mean == pytest.approx(4.0)
        assert h.min == 0.5
        assert h.max == 9.5

    def test_percentiles_bounded_by_observations(self):
        h = Histogram("lat", buckets=(0.01, 0.1, 1.0))
        for v in (0.02, 0.03, 0.05, 0.5):
            h.observe(v)
        assert 0.02 <= h.percentile(0.5) <= 0.5
        assert h.percentile(0.99) <= 0.5  # clamped to the observed max
        assert h.percentile(1.0) == pytest.approx(0.5)

    def test_percentiles_are_monotone_in_q(self):
        h = Histogram("lat")
        for i in range(100):
            h.observe(0.001 * (i + 1))
        p50, p90, p99 = h.percentile(0.5), h.percentile(0.9), h.percentile(0.99)
        assert p50 <= p90 <= p99
        assert 0.02 <= p50 <= 0.08  # true median is 0.0505

    def test_percentile_rejects_bad_quantile(self):
        h = Histogram("lat")
        with pytest.raises(ValueError):
            h.percentile(0.0)
        with pytest.raises(ValueError):
            h.percentile(1.5)


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", "help")
        b = reg.counter("x_total")
        assert a is b

    def test_labels_distinguish_family_members(self):
        reg = MetricsRegistry()
        cpu = reg.counter("tasks_total", labels={"role": "cpu"})
        gpu = reg.counter("tasks_total", labels={"role": "gpu"})
        assert cpu is not gpu
        cpu.inc(3)
        assert gpu.value == 0.0

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ValueError, match="already registered as counter"):
            reg.gauge("x_total")
        with pytest.raises(ValueError, match="already registered"):
            reg.histogram("x_total", labels={"role": "cpu"})

    def test_collect_keeps_family_members_adjacent(self):
        reg = MetricsRegistry()
        reg.counter("a_total", labels={"role": "cpu"})
        reg.gauge("b")
        reg.counter("a_total", labels={"role": "gpu"})
        names = [m.name for m in reg.collect()]
        assert names == ["a_total", "a_total", "b"]

    def test_snapshot_plain_dict(self):
        reg = MetricsRegistry()
        reg.counter("a_total").inc(2)
        reg.histogram("lat", buckets=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert snap["a_total"] == 2.0
        assert snap["lat"]["count"] == 1


class TestConcurrency:
    def test_histogram_observe_race_is_consistent(self):
        """N threads observing concurrently: count, sum, and bucket
        totals must all agree afterwards."""
        h = Histogram("lat", buckets=(0.25, 0.5, 0.75))
        per_thread, threads = 500, 8

        def hammer(offset):
            for i in range(per_thread):
                h.observe((i % 10) / 10.0)

        ts = [threading.Thread(target=hammer, args=(i,)) for i in range(threads)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        total = per_thread * threads
        assert h.count == total
        assert sum(h.bucket_counts()) == total
        assert h.cumulative_counts()[-1] == total
        assert h.sum == pytest.approx(threads * per_thread * 0.45)
