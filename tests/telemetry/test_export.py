"""Tests for the Prometheus / Chrome-trace / timeline exporters."""

import json
import math

import pytest

from repro.telemetry.export import (
    chrome_trace,
    prometheus_text,
    schedule_timeline,
    write_chrome_trace,
    write_schedule_timeline,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracing import Span


def parse_prometheus(text: str) -> dict:
    """Minimal text-exposition parser: {series-with-labels: value}.

    Raises on structurally invalid lines, so using it in a test also
    validates the format.
    """
    samples: dict[str, float] = {}
    assert text.endswith("\n"), "exposition must end with a newline"
    for line in text.splitlines():
        if not line or line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            assert len(parts) == 4
            assert parts[3] in ("counter", "gauge", "histogram", "untyped")
            continue
        assert not line.startswith("#"), f"unknown comment line: {line!r}"
        series, value = line.rsplit(" ", 1)
        assert series not in samples, f"duplicate series {series!r}"
        samples[series] = float(value)
    return samples


def make_span(name, start, end, **attrs):
    return Span(name, start_s=start, end_s=end, attrs=attrs)


class TestPrometheusText:
    def test_counters_and_gauges(self):
        reg = MetricsRegistry()
        reg.counter("swdual_requests_total", "Requests.").inc(3)
        reg.gauge("swdual_queue_depth").set(2)
        samples = parse_prometheus(prometheus_text(reg))
        assert samples["swdual_requests_total"] == 3
        assert samples["swdual_queue_depth"] == 2

    def test_labeled_family_emits_header_once(self):
        reg = MetricsRegistry()
        reg.counter("tasks_total", "Tasks.", labels={"role": "cpu"}).inc(4)
        reg.counter("tasks_total", "Tasks.", labels={"role": "gpu"}).inc(6)
        text = prometheus_text(reg)
        assert text.count("# TYPE tasks_total counter") == 1
        assert text.count("# HELP tasks_total") == 1
        samples = parse_prometheus(text)
        assert samples['tasks_total{role="cpu"}'] == 4
        assert samples['tasks_total{role="gpu"}'] == 6

    def test_histogram_series_are_cumulative_with_inf(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds", "Latency.", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        samples = parse_prometheus(prometheus_text(reg))
        assert samples['lat_seconds_bucket{le="0.1"}'] == 1
        assert samples['lat_seconds_bucket{le="1"}'] == 2
        assert samples['lat_seconds_bucket{le="+Inf"}'] == 3
        assert samples["lat_seconds_count"] == 3
        assert samples["lat_seconds_sum"] == pytest.approx(5.55)

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("x_total", labels={"name": 'a"b\\c'}).inc()
        text = prometheus_text(reg)
        assert 'name="a\\"b\\\\c"' in text

    def test_every_value_is_finite(self):
        reg = MetricsRegistry()
        reg.histogram("lat_seconds", buckets=(0.1,)).observe(0.2)
        for value in parse_prometheus(prometheus_text(reg)).values():
            assert math.isfinite(value)


class TestChromeTrace:
    def test_events_relative_sorted_complete(self):
        spans = [
            make_span("b", 10.002, 10.005, worker="cpu0"),
            make_span("a", 10.000, 10.010),
        ]
        doc = chrome_trace(spans)
        events = doc["traceEvents"]
        assert [e["name"] for e in events] == ["a", "b"]
        assert events[0]["ts"] == 0.0
        assert events[1]["ts"] == pytest.approx(2000.0)
        assert events[1]["dur"] == pytest.approx(3000.0)
        assert all(e["ph"] == "X" for e in events)
        assert events[1]["args"]["worker"] == "cpu0"
        assert "span_id" in events[0]["args"]

    def test_parent_id_rides_in_args(self):
        parent = make_span("outer", 0.0, 1.0)
        child = Span("inner", start_s=0.1, end_s=0.2, parent_id=parent.span_id)
        doc = chrome_trace([parent, child])
        inner = next(e for e in doc["traceEvents"] if e["name"] == "inner")
        assert inner["args"]["parent_id"] == parent.span_id

    def test_write_round_trips_as_json(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace([make_span("a", 0.0, 1.0)], str(path))
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert len(doc["traceEvents"]) == 1


class TestScheduleTimeline:
    def test_empty_input(self):
        assert schedule_timeline([]) == {"makespan_s": 0.0, "lanes": [], "roles": {}}

    def test_non_kernel_spans_ignored(self):
        spans = [make_span("sched.knapsack", 0.0, 1.0)]
        assert schedule_timeline(spans)["lanes"] == []

    def test_lanes_roles_and_makespan(self):
        spans = [
            make_span("task.kernel", 1.0, 1.4, worker="cpu0", kind="cpu", query="q0"),
            make_span("task.kernel", 1.4, 1.6, worker="cpu0", kind="cpu", query="q2"),
            make_span("task.kernel", 1.0, 1.9, worker="gpu0", kind="gpu", query="q1"),
        ]
        doc = schedule_timeline(spans)
        assert doc["makespan_s"] == pytest.approx(0.9)
        lanes = {lane["worker"]: lane for lane in doc["lanes"]}
        assert set(lanes) == {"cpu0", "gpu0"}
        assert lanes["cpu0"]["busy_seconds"] == pytest.approx(0.6)
        assert [s["query"] for s in lanes["cpu0"]["slots"]] == ["q0", "q2"]
        assert lanes["cpu0"]["slots"][0]["start_s"] == pytest.approx(0.0)
        assert doc["roles"]["cpu"] == {
            "workers": 1,
            "tasks": 2,
            "busy_seconds": pytest.approx(0.6),
        }
        assert doc["roles"]["gpu"]["busy_seconds"] == pytest.approx(0.9)

    def test_role_busy_equals_lane_sum(self):
        spans = [
            make_span("task.kernel", 0.0, 0.5, worker="cpu0", kind="cpu", query="a"),
            make_span("task.kernel", 0.0, 0.25, worker="cpu1", kind="cpu", query="b"),
        ]
        doc = schedule_timeline(spans)
        lane_sum = sum(lane["busy_seconds"] for lane in doc["lanes"])
        assert doc["roles"]["cpu"]["busy_seconds"] == pytest.approx(lane_sum)

    def test_write_round_trips_as_json(self, tmp_path):
        path = tmp_path / "timeline.json"
        spans = [make_span("task.kernel", 0.0, 0.5, worker="cpu0", kind="cpu", query="a")]
        write_schedule_timeline(spans, str(path))
        doc = json.loads(path.read_text())
        assert doc["makespan_s"] == pytest.approx(0.5)
