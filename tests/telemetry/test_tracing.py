"""Unit tests for the span/tracing primitives."""

import os
import threading

import pytest

from repro.telemetry import tracing


@pytest.fixture(autouse=True)
def clean_tracing():
    """Every test starts disabled with an empty buffer."""
    tracing.disable()
    tracing.drain()
    yield
    tracing.disable()
    tracing.drain()


class TestDisabledPath:
    def test_disabled_returns_null_span_singleton(self):
        assert tracing.span("x", a=1) is tracing.NULL_SPAN
        assert tracing.span("y") is tracing.NULL_SPAN

    def test_disabled_records_nothing(self):
        with tracing.span("x", a=1):
            pass
        assert tracing.drain() == []

    def test_null_span_yields_none(self):
        with tracing.span("x") as s:
            assert s is None

    def test_null_span_propagates_exceptions(self):
        with pytest.raises(RuntimeError):
            with tracing.span("x"):
                raise RuntimeError("boom")


class TestEnabledPath:
    def test_span_records_name_attrs_and_duration(self):
        with tracing.enabled_tracing():
            with tracing.span("task.kernel", worker="cpu0", query="q1") as s:
                assert s.name == "task.kernel"
            spans = tracing.drain()
        assert len(spans) == 1
        (span,) = spans
        assert span.attrs == {"worker": "cpu0", "query": "q1"}
        assert span.end_s is not None and span.end_s >= span.start_s
        assert span.duration_s >= 0.0
        assert span.pid == os.getpid()

    def test_attrs_mutable_inside_block(self):
        with tracing.enabled_tracing():
            with tracing.span("sched.binary_search") as s:
                s.attrs["iterations"] = 7
            (span,) = tracing.drain()
        assert span.attrs["iterations"] == 7

    def test_exception_sets_error_attr_and_closes_span(self):
        with tracing.enabled_tracing():
            with pytest.raises(ValueError):
                with tracing.span("x"):
                    raise ValueError("boom")
            (span,) = tracing.drain()
        assert span.attrs["error"] == "ValueError"
        assert span.end_s is not None

    def test_enabled_tracing_restores_prior_state(self):
        assert not tracing.enabled()
        with tracing.enabled_tracing():
            assert tracing.enabled()
        assert not tracing.enabled()
        tracing.enable()
        with tracing.enabled_tracing():
            pass
        assert tracing.enabled()

    def test_span_ids_unique_and_pid_prefixed(self):
        with tracing.enabled_tracing():
            for _ in range(5):
                with tracing.span("x"):
                    pass
            spans = tracing.drain()
        ids = [s.span_id for s in spans]
        assert len(set(ids)) == 5
        assert all(i.startswith(f"{os.getpid()}-") for i in ids)


class TestNesting:
    def test_parent_child_linkage(self):
        with tracing.enabled_tracing():
            with tracing.span("outer") as outer:
                with tracing.span("inner") as inner:
                    assert inner.parent_id == outer.span_id
            spans = tracing.drain()
        by_name = {s.name: s for s in spans}
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert by_name["outer"].parent_id is None

    def test_sibling_spans_share_parent(self):
        with tracing.enabled_tracing():
            with tracing.span("outer") as outer:
                with tracing.span("a"):
                    pass
                with tracing.span("b"):
                    pass
            spans = tracing.drain()
        children = [s for s in spans if s.name in ("a", "b")]
        assert all(c.parent_id == outer.span_id for c in children)

    def test_threads_nest_independently(self):
        """Each thread has its own current-span context: a span opened
        in one thread is never the parent of another thread's span."""
        parents = {}

        def worker(name):
            with tracing.span(f"{name}.outer") as outer:
                with tracing.span(f"{name}.inner") as inner:
                    parents[name] = (outer.span_id, inner.parent_id)

        with tracing.enabled_tracing():
            threads = [
                threading.Thread(target=worker, args=(f"t{i}",)) for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            spans = tracing.drain()
        assert len(spans) == 8
        for name, (outer_id, inner_parent) in parents.items():
            assert inner_parent == outer_id
        outer_ids = {s.span_id for s in spans if s.name.endswith(".outer")}
        for s in spans:
            if s.name.endswith(".outer"):
                assert s.parent_id is None
            else:
                assert s.parent_id in outer_ids


class TestSerialization:
    def test_dict_round_trip(self):
        with tracing.enabled_tracing():
            with tracing.span("task.kernel", worker="cpu0", cells=123):
                pass
            spans = tracing.drain()
        dicts = tracing.spans_to_dicts(spans)
        back = tracing.spans_from_dicts(dicts)
        assert len(back) == 1
        assert back[0].name == spans[0].name
        assert back[0].span_id == spans[0].span_id
        assert back[0].attrs == spans[0].attrs
        assert back[0].start_s == spans[0].start_s
        assert back[0].end_s == spans[0].end_s
        assert back[0].pid == spans[0].pid

    def test_ingest_accepts_spans_and_dicts(self):
        with tracing.enabled_tracing():
            with tracing.span("x"):
                pass
            spans = tracing.drain()
            tracing.ingest(spans)
            tracing.ingest(tracing.spans_to_dicts(spans))
            merged = tracing.drain()
        assert len(merged) == 2
        assert all(s.name == "x" for s in merged)

    def test_buffer_drain_clears(self):
        buf = tracing.get_buffer()
        with tracing.enabled_tracing():
            with tracing.span("x"):
                pass
            assert len(buf) == 1
            assert len(tracing.drain()) == 1
            assert len(buf) == 0
            assert tracing.drain() == []
