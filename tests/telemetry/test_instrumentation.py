"""Integration tests: the engine's instrumentation feeds the exporters.

The acceptance bar for the telemetry subsystem: per-role kernel-span
sums agree with the engine's own busy-seconds accounting (both read
``tracing.clock`` around the same kernel call), spans recorded inside
worker *processes* are shipped back to the master, and everything is
silent when tracing is off.
"""

import os

import pytest

from repro.engine import live_search
from repro.sequences import small_database, standard_query_set
from repro.service import WarmPool
from repro.telemetry import tracing
from repro.telemetry.export import schedule_timeline


@pytest.fixture(autouse=True)
def clean_tracing():
    tracing.disable()
    tracing.drain()
    yield
    tracing.disable()
    tracing.drain()


@pytest.fixture(scope="module")
def db():
    return small_database(num_sequences=16, mean_length=50, seed=7)


@pytest.fixture(scope="module")
def queries():
    return list(standard_query_set(count=6).scaled(0.01).materialize(seed=8))


def role_busy_from_report(report) -> dict:
    busy: dict[str, float] = {}
    for ws in report.worker_stats:
        busy[ws.kind] = busy.get(ws.kind, 0.0) + ws.busy_seconds
    return busy


class TestDisabledByDefault:
    def test_search_records_no_spans(self, db, queries):
        live_search(queries, db, num_cpu_workers=1, num_gpu_workers=1)
        assert tracing.drain() == []


class TestThreadEngine:
    def test_kernel_spans_match_busy_seconds(self, db, queries):
        # Pinned to the numpy tier: the ±5 % span-vs-stats agreement
        # bar needs per-task kernel times well above timer-placement
        # skew, and compiled tiers push tasks into the sub-millisecond
        # range where a few tens of µs of fixed skew breaks the ratio.
        with tracing.enabled_tracing():
            report = live_search(
                queries, db, num_cpu_workers=2, num_gpu_workers=1,
                policy="swdual", backend="numpy",
            )
            spans = tracing.drain()
        timeline = schedule_timeline(spans)
        busy = role_busy_from_report(report)
        assert set(timeline["roles"]) == set(busy)
        for kind, role in timeline["roles"].items():
            # Both sides read tracing.clock around the same kernel call;
            # the acceptance bar is ±5 %.
            assert role["busy_seconds"] == pytest.approx(busy[kind], rel=0.05)
        assert sum(r["tasks"] for r in timeline["roles"].values()) == len(queries)

    def test_scheduler_spans_present_and_nested(self, db, queries):
        with tracing.enabled_tracing():
            live_search(queries, db, num_cpu_workers=1, num_gpu_workers=1, policy="swdual")
            spans = tracing.drain()
        names = {s.name for s in spans}
        assert {
            "master.run",
            "sched.allocate",
            "sched.binary_search",
            "sched.knapsack",
            "sched.listsched",
            "task.kernel",
        } <= names
        by_id = {s.span_id: s for s in spans}
        search = next(s for s in spans if s.name == "sched.binary_search")
        assert by_id[search.parent_id].name == "sched.allocate"
        assert search.attrs["iterations"] >= 1
        knap = next(s for s in spans if s.name == "sched.knapsack")
        assert by_id[knap.parent_id].name == "sched.binary_search"


class TestProcessPool:
    def test_worker_process_spans_shipped_to_master(self, db, queries):
        # numpy tier for the same reason as the thread-engine test: the
        # busy-seconds comparison needs tasks long enough that fixed
        # timer-placement skew stays inside the ±5 % bar.
        with tracing.enabled_tracing():
            with WarmPool(
                db, num_cpu_workers=1, num_gpu_workers=1,
                backend="processes", kernel_backend="numpy",
            ) as pool:
                report = pool.run_batch(queries)
            spans = tracing.drain()
        kernel = [s for s in spans if s.name == "task.kernel"]
        assert len(kernel) == len(queries)
        # Kernel spans were recorded inside the worker processes …
        assert all(s.pid != os.getpid() for s in kernel)
        # … and the batch span in the master, on the same timeline.
        batch = next(s for s in spans if s.name == "pool.batch")
        assert batch.pid == os.getpid()
        assert all(
            batch.start_s <= s.start_s and s.end_s <= batch.end_s + 1e-6
            for s in kernel
        )
        timeline = schedule_timeline(spans)
        busy = role_busy_from_report(report)
        for kind, role in timeline["roles"].items():
            assert role["busy_seconds"] == pytest.approx(busy[kind], rel=0.05)

    def test_no_span_shipping_overhead_when_disabled(self, db, queries):
        with WarmPool(
            db, num_cpu_workers=1, num_gpu_workers=1, backend="processes"
        ) as pool:
            pool.run_batch(queries)
        assert tracing.drain() == []
