"""End-to-end chaos runs: seeded kill schedules against real worker
processes, bit-identical recovery, JSON-able artifacts, and the
``swdual chaos`` CLI wrapper."""

import json

import pytest

from repro.cli import main
from repro.engine import ChaosReport, run_chaos


class TestRunChaos:
    def test_default_seed_survives(self):
        report = run_chaos(seed=7, num_workers=4)
        assert isinstance(report, ChaosReport)
        assert report.identical
        assert report.survived
        assert report.quarantined == ()
        assert len(report.faults) == 1
        # The injected fault produced a visible recovery trace unless
        # the victim finished before its fault ordinal came up.
        if report.events:
            kinds = {e["kind"] for e in report.events}
            assert kinds <= {
                "worker_lost",
                "requeue",
                "retry",
                "quarantine",
                "reallocate",
            }

    def test_chunk_dispatch_survives(self):
        report = run_chaos(seed=3, num_workers=3, dispatch="chunk", num_faults=1)
        assert report.survived

    def test_report_round_trips_through_json(self):
        report = run_chaos(seed=5, num_workers=3)
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["seed"] == 5
        assert payload["survived"] == report.survived
        assert payload["identical"] == report.identical
        assert isinstance(payload["events"], list)
        assert "SURVIVED" in report.summary() or "FAILED" in report.summary()

    def test_same_seed_same_faults(self):
        a = run_chaos(seed=9, num_workers=3)
        b = run_chaos(seed=9, num_workers=3)
        assert a.faults == b.faults
        assert a.identical and b.identical


class TestChaosCli:
    def test_chaos_command(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        code = main(
            ["chaos", "--seed", "7", "--workers", "3", "--out", str(out)]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "SURVIVED" in captured.out
        trace = json.loads(out.read_text())
        assert trace["seed"] == 7
        assert trace["survived"] is True

    def test_chaos_json_output(self, capsys):
        code = main(["chaos", "--seed", "7", "--workers", "3", "--json"])
        captured = capsys.readouterr()
        assert code == 0
        payload = json.loads(captured.out)
        assert payload["identical"] is True

    @pytest.mark.parametrize("kinds", ["kill", "corrupt"])
    def test_chaos_kind_filter(self, kinds, capsys):
        code = main(
            ["chaos", "--seed", "2", "--workers", "3", "--kinds", kinds]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "SURVIVED" in captured.out
