"""Process-pool database retargeting: generation swaps on both data
planes must be bit-identical to a fresh pool on the new database, must
never leak a ``/dev/shm`` segment — across repeated swaps and a worker
SIGKILLed mid-swap — and must drop stale affinity state."""

import glob
import os

import pytest

from repro.engine import AllWorkersDeadError, ProtocolError, live_search
from repro.engine.transport import ProcessWorkerPool
from repro.sequences import Sequence, small_database
from repro.sequences import standard_query_set
from repro.sequences.mutate_db import apply_append, apply_retire
from repro.sequences.shm import SHM_PREFIX, shm_available

CHUNK_CELLS = 1_500
TOP_HITS = 4

needs_shm = pytest.mark.skipif(
    not shm_available(), reason="POSIX shared memory unavailable"
)


def _live_segments() -> set[str]:
    return {os.path.basename(p) for p in glob.glob(f"/dev/shm/{SHM_PREFIX}*")}


def _hits(report):
    return [
        [(h.subject_id, h.score) for h in qr.hits]
        for qr in report.query_results
    ]


def _reference(queries, db):
    return _hits(live_search(queries, db, 1, 0, policy="self", top_hits=TOP_HITS))


@pytest.fixture(scope="module")
def workload():
    db = small_database(num_sequences=18, mean_length=50, seed=81)
    queries = list(standard_query_set(count=3).scaled(0.015).materialize(seed=82))
    return db, queries


@pytest.fixture(scope="module")
def mutated(workload):
    """The generation after one append + one retire."""
    db, _ = workload
    template = next(iter(db))
    extra = [
        Sequence.from_text(f"gen1_{i}", template.text, alphabet=template.alphabet)
        for i in range(3)
    ]
    return apply_retire(apply_append(db, extra), [template.id])


class TestRetargetConformance:
    @pytest.mark.parametrize(
        "plane", ["pickle", pytest.param("shm", marks=needs_shm)]
    )
    def test_swap_matches_fresh_pool(self, workload, mutated, plane):
        db, queries = workload
        want = _reference(queries, mutated)
        with ProcessWorkerPool(
            db,
            num_cpu_workers=2,
            data_plane=plane,
            chunk_cells=CHUNK_CELLS,
            top_hits=TOP_HITS,
        ) as pool:
            before = _hits(pool.run_batch(queries))
            seconds = pool.retarget_database(mutated)
            assert seconds >= 0
            after = _hits(pool.run_batch(queries))
            assert pool.database is mutated
            assert pool.alive_workers == ["proc0", "proc1"]
            assert len(pool.recovery.of_kind("db_retarget")) == 1
        assert after == want
        assert after != before  # the mutation is visible

    @needs_shm
    def test_swap_with_chunk_dispatch_and_stealing(self, workload, mutated):
        db, queries = workload
        want = _reference(queries, mutated)
        with ProcessWorkerPool(
            db,
            num_cpu_workers=2,
            data_plane="shm",
            dispatch="chunk",
            chunk_cells=CHUNK_CELLS,
            top_hits=TOP_HITS,
        ) as pool:
            pool.run_batch(queries)
            pool.retarget_database(mutated)
            assert _hits(pool.run_batch(queries)) == want

    def test_unstarted_pool_rejected(self, workload, mutated):
        db, _ = workload
        pool = ProcessWorkerPool(db, num_cpu_workers=1, data_plane="pickle")
        with pytest.raises(ProtocolError, match="not started"):
            pool.retarget_database(mutated)

    def test_closed_pool_rejected(self, workload, mutated):
        db, _ = workload
        with ProcessWorkerPool(
            db, num_cpu_workers=1, data_plane="pickle"
        ) as pool:
            pass
        with pytest.raises(ProtocolError, match="closed"):
            pool.retarget_database(mutated)


@needs_shm
class TestLeakProofSwaps:
    """The issue's leak criterion: repeated swaps — including one with a
    worker SIGKILLed mid-swap — leave zero stale segments."""

    def test_old_segment_unlinked_after_swap(self, workload, mutated):
        db, queries = workload
        before = _live_segments()
        pool = ProcessWorkerPool(
            db, num_cpu_workers=2, data_plane="shm", chunk_cells=CHUNK_CELLS
        )
        pool.start()
        old_segments = _live_segments() - before
        assert len(old_segments) == 1
        pool.retarget_database(mutated)
        now = _live_segments() - before
        # The old generation's arena died at refcount zero; exactly the
        # new generation's segment remains.
        assert len(now) == 1
        assert not (now & old_segments)
        pool.run_batch(queries)
        pool.close()
        assert _live_segments() == before

    def test_repeated_swaps_do_not_accumulate(self, workload):
        db, queries = workload
        template = next(iter(db))
        before = _live_segments()
        pool = ProcessWorkerPool(
            db, num_cpu_workers=2, data_plane="shm", chunk_cells=CHUNK_CELLS
        )
        pool.start()
        current = db
        for round_no in range(4):
            extra = [
                Sequence.from_text(
                    f"r{round_no}_{i}", template.text, alphabet=template.alphabet
                )
                for i in range(2)
            ]
            current = apply_append(current, extra)
            if round_no % 2:
                current = apply_retire(current, [f"r{round_no - 1}_0"])
            pool.retarget_database(current)
            assert len(_live_segments() - before) == 1
            report = pool.run_batch(queries)
            assert len(report.query_results) == len(queries)
        pool.close()
        assert _live_segments() == before

    def test_sigkill_mid_swap_tolerated_and_leak_free(self, workload, mutated):
        db, queries = workload
        before = _live_segments()
        pool = ProcessWorkerPool(
            db,
            num_cpu_workers=2,
            data_plane="shm",
            chunk_cells=CHUNK_CELLS,
            top_hits=TOP_HITS,
        )
        pool.start()
        # Dead before the retarget ack can ever arrive: the master must
        # treat the loss like a mid-batch death, release the victim's
        # generation reference, and finish the swap on the survivor.
        pool._processes[0].kill()
        pool._processes[0].join(timeout=10)
        pool.retarget_database(mutated)
        assert pool.alive_workers == ["proc1"]
        assert len(_live_segments() - before) == 1
        report = pool.run_batch(queries)
        assert _hits(report) == _reference(queries, mutated)
        pool.close()
        assert _live_segments() == before

    def test_losing_every_worker_breaks_pool_without_leaks(self, workload, mutated):
        db, _ = workload
        before = _live_segments()
        pool = ProcessWorkerPool(
            db, num_cpu_workers=2, data_plane="shm", chunk_cells=CHUNK_CELLS
        )
        pool.start()
        for proc in pool._processes:
            proc.kill()
            proc.join(timeout=10)
        with pytest.raises(AllWorkersDeadError):
            pool.retarget_database(mutated)
        pool.close()
        assert _live_segments() == before
