"""Tests for the discrete-event master-slave simulation."""

import pytest

from repro.core import SWDualScheduler, TaskSet, tasks_from_queries
from repro.engine import (
    MessageType,
    simulate_plan,
    simulate_search,
    simulate_self_scheduling,
)
from repro.platform import PerformanceModel, idgraf_platform
from repro.sequences import paper_database_profile, standard_query_set


@pytest.fixture(scope="module")
def setup():
    perf = PerformanceModel(idgraf_platform(2, 2))
    queries = standard_query_set(count=12)
    database = paper_database_profile("ensembl_dog")
    tasks = tasks_from_queries(queries, database.total_residues, perf)
    return perf, queries, database, tasks


class TestSimulatePlan:
    def test_matches_planned_makespan(self, setup):
        perf, queries, database, tasks = setup
        plan = SWDualScheduler().schedule_tasks(tasks, 2, 2)
        outcome = simulate_plan(tasks, plan.schedule, perf.platform, perf)
        assert outcome.report.wall_seconds == pytest.approx(
            plan.schedule.makespan, rel=1e-9
        )

    def test_protocol_trace_complete(self, setup):
        perf, queries, database, tasks = setup
        plan = SWDualScheduler().schedule_tasks(tasks, 2, 2)
        outcome = simulate_plan(tasks, plan.schedule, perf.platform, perf)
        log = outcome.log
        n_workers = len(perf.platform)
        assert len(log.of_type(MessageType.REGISTER)) == n_workers
        assert len(log.of_type(MessageType.REGISTER_ACK)) == n_workers
        assert len(log.of_type(MessageType.ASSIGN_TASKS)) == n_workers
        assert len(log.of_type(MessageType.TASK_DONE)) == len(tasks)
        assert len(log.of_type(MessageType.SHUTDOWN)) == n_workers

    def test_task_done_in_time_order(self, setup):
        perf, queries, database, tasks = setup
        plan = SWDualScheduler().schedule_tasks(tasks, 2, 2)
        outcome = simulate_plan(tasks, plan.schedule, perf.platform, perf)
        dones = outcome.log.of_type(MessageType.TASK_DONE)
        # The simulation pops events in time order; completion messages
        # of any single worker must preserve its batch order.
        per_worker: dict[str, list[int]] = {}
        for m in dones:
            per_worker.setdefault(m.sender, []).append(m.payload["task"])
        for name, order in per_worker.items():
            assert order == outcome.schedule.tasks_on(name)

    def test_cells_accounted(self, setup):
        perf, queries, database, tasks = setup
        plan = SWDualScheduler().schedule_tasks(tasks, 2, 2)
        outcome = simulate_plan(tasks, plan.schedule, perf.platform, perf)
        assert outcome.report.total_cells == tasks.total_cells
        assert sum(w.cells for w in outcome.report.worker_stats) == tasks.total_cells

    def test_plan_size_mismatch(self, setup):
        perf, queries, database, tasks = setup
        plan = SWDualScheduler().schedule_tasks(tasks, 2, 2)
        small = TaskSet([1.0], [1.0])
        with pytest.raises(ValueError, match="plan covers"):
            simulate_plan(small, plan.schedule, perf.platform, perf)


class TestSelfScheduling:
    def test_no_worker_idles_while_queue_nonempty(self, setup):
        perf, queries, database, tasks = setup
        outcome = simulate_self_scheduling(tasks, perf.platform, perf)
        sched = outcome.schedule
        # Every worker's last task must start no later than any other
        # worker's completion (otherwise it idled with work remaining).
        completions = [sched.completion_time(n) for n in sched.pe_names]
        for name in sched.pe_names:
            tl = sched.timeline(name)
            if tl:
                assert tl[-1].start <= min(
                    c for n, c in zip(sched.pe_names, completions) if n != name
                ) + 1e-9

    def test_custom_order(self, setup):
        perf, queries, database, tasks = setup
        order = list(range(len(tasks)))[::-1]
        outcome = simulate_self_scheduling(tasks, perf.platform, perf, order=order)
        first_assigned = outcome.log.of_type(MessageType.ASSIGN_TASKS)[0]
        assert first_assigned.payload["tasks"] == [len(tasks) - 1]

    def test_bad_order_rejected(self, setup):
        perf, queries, database, tasks = setup
        with pytest.raises(ValueError, match="permutation"):
            simulate_self_scheduling(tasks, perf.platform, perf, order=[0, 0])


class TestSimulateSearch:
    def test_swdual_beats_self(self):
        db = paper_database_profile("uniprot")
        qs = standard_query_set()
        sw = simulate_search(qs, db, 4, 4, policy="swdual")
        ss = simulate_search(qs, db, 4, 4, policy="self")
        assert sw.report.wall_seconds < ss.report.wall_seconds

    def test_all_policies_run(self):
        db = paper_database_profile("ensembl_dog")
        qs = standard_query_set(count=8)
        from repro.engine import SIM_POLICIES

        times = {}
        for policy in SIM_POLICIES:
            out = simulate_search(qs, db, 2, 2, policy=policy)
            times[policy] = out.report.wall_seconds
            assert out.report.total_cells == qs.total_residues * db.total_residues
        assert times["swdual"] <= times["equal-power"]

    def test_unknown_policy(self):
        db = paper_database_profile("ensembl_dog")
        with pytest.raises(ValueError, match="policy"):
            simulate_search(standard_query_set(count=2), db, 1, 1, policy="magic")

    def test_gcups_scale_with_workers(self):
        db = paper_database_profile("uniprot")
        qs = standard_query_set()
        g2 = simulate_search(qs, db, 1, 1).report.gcups
        g8 = simulate_search(qs, db, 4, 4).report.gcups
        assert g8 > 2.5 * g2

    def test_deterministic(self):
        db = paper_database_profile("ensembl_rat")
        qs = standard_query_set(count=10)
        a = simulate_search(qs, db, 2, 2).report.wall_seconds
        b = simulate_search(qs, db, 2, 2).report.wall_seconds
        assert a == b
