"""Calibration memoisation: repeated calibrate_live() calls against the
same database content skip the measurement entirely."""

import pytest

from repro.align import GapModel, ScoringScheme, default_scheme
from repro.engine import calibrate_live, clear_calibration_cache
from repro.sequences import SequenceDatabase, matrix_by_name, small_database


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_calibration_cache()
    yield
    clear_calibration_cache()


@pytest.fixture()
def db():
    return small_database(num_sequences=6, mean_length=30, seed=51)


def _count_measurements(monkeypatch):
    import repro.engine.search as search_mod

    calls = {"n": 0}
    real = search_mod.measure_kernel_gcups

    def counting(*args, **kwargs):
        calls["n"] += 1
        return real(*args, **kwargs)

    monkeypatch.setattr(search_mod, "measure_kernel_gcups", counting)
    return calls


class TestCalibrationCache:
    def test_second_call_is_cached(self, db, monkeypatch):
        calls = _count_measurements(monkeypatch)
        first = calibrate_live(db)
        assert calls["n"] == 2  # one probe per role
        second = calibrate_live(db)
        assert calls["n"] == 2
        assert second == first

    def test_same_content_different_object_hits_cache(self, db, monkeypatch):
        calls = _count_measurements(monkeypatch)
        calibrate_live(db)
        clone = SequenceDatabase("same-content-other-name", list(db))
        calibrate_live(clone)
        assert calls["n"] == 2

    def test_different_database_misses(self, db, monkeypatch):
        calls = _count_measurements(monkeypatch)
        calibrate_live(db)
        other = small_database(num_sequences=6, mean_length=30, seed=52)
        calibrate_live(other)
        assert calls["n"] == 4

    def test_different_scheme_misses(self, db, monkeypatch):
        calls = _count_measurements(monkeypatch)
        calibrate_live(db, default_scheme())
        other = ScoringScheme(
            matrix=matrix_by_name("blosum62"), gaps=GapModel.affine(12, 2)
        )
        calibrate_live(db, other)
        assert calls["n"] == 4

    def test_use_cache_false_remeasures_and_refreshes(self, db, monkeypatch):
        calls = _count_measurements(monkeypatch)
        calibrate_live(db)
        calibrate_live(db, use_cache=False)
        assert calls["n"] == 4
        calibrate_live(db)  # refreshed entry serves this one
        assert calls["n"] == 4

    def test_cached_result_is_a_copy(self, db):
        first = calibrate_live(db)
        first["cpu"] = -1.0
        assert calibrate_live(db)["cpu"] != -1.0

    def test_rates_look_sane(self, db):
        rates = calibrate_live(db)
        assert set(rates) == {"cpu", "gpu"}
        assert all(v > 0 for v in rates.values())


class TestFingerprint:
    def test_stable_and_content_addressed(self, db):
        clone = SequenceDatabase("other-name", list(db))
        assert db.fingerprint() == clone.fingerprint()
        assert db.fingerprint() == db.fingerprint()

    def test_changes_with_content(self, db):
        shorter = SequenceDatabase("subset", list(db)[:-1])
        assert db.fingerprint() != shorter.fingerprint()

    def test_changes_with_ids(self, db):
        from repro.sequences import Sequence

        renamed = SequenceDatabase(
            db.name,
            [Sequence(id=f"renamed_{s.id}", codes=s.codes) for s in db],
        )
        assert db.fingerprint() != renamed.fingerprint()
