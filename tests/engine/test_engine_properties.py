"""Hypothesis property tests on engine invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TaskSet
from repro.engine import (
    simulate_self_scheduling,
    simulate_with_failures,
)
from repro.engine.sharded import shard_database
from repro.platform import PerformanceModel, RateModel, HybridPlatform, PEKind, ProcessingElement
from repro.sequences import small_database


def tiny_platform(m: int, k: int) -> HybridPlatform:
    cpu = RateModel(peak_gcups=1.0)
    gpu = RateModel(peak_gcups=3.0)
    pes = tuple(
        [ProcessingElement(f"gpu{i}", PEKind.GPU, gpu) for i in range(k)]
        + [ProcessingElement(f"cpu{i}", PEKind.CPU, cpu) for i in range(m)]
    )
    return HybridPlatform(pes=pes)


def taskset(rng: np.random.Generator, n: int) -> TaskSet:
    lengths = rng.integers(50, 500, n)
    return TaskSet(
        cpu_times=lengths / 10.0,
        gpu_times=lengths / 30.0,
        query_lengths=lengths,
        db_residues=1_000_000,
    )


class TestSimulationProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(1, 25),
        m=st.integers(1, 3),
        k=st.integers(1, 3),
        seed=st.integers(0, 1000),
    )
    def test_self_scheduling_conserves_work(self, n, m, k, seed):
        rng = np.random.default_rng(seed)
        tasks = taskset(rng, n)
        platform = tiny_platform(m, k)
        perf = PerformanceModel(platform)
        out = simulate_self_scheduling(tasks, platform, perf)
        # Busy time equals the sum of executed slot durations; each
        # task appears exactly once; makespan >= longest busy PE.
        total_busy = sum(out.schedule.busy_time(p) for p in out.schedule.pe_names)
        slot_total = sum(
            s.duration for p in out.schedule.pe_names for s in out.schedule.timeline(p)
        )
        assert total_busy == pytest.approx(slot_total)
        assert len(out.schedule.assignment_vector()) == n

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(2, 20),
        fail_frac=st.floats(0.05, 0.9),
        seed=st.integers(0, 1000),
    )
    def test_failures_never_lose_tasks(self, n, fail_frac, seed):
        rng = np.random.default_rng(seed)
        tasks = taskset(rng, n)
        platform = tiny_platform(2, 2)
        perf = PerformanceModel(platform)
        healthy = simulate_self_scheduling(tasks, platform, perf)
        fail_time = fail_frac * healthy.report.wall_seconds
        # Kill one worker mid-run; everything still completes.
        out = simulate_with_failures(
            tasks, platform, perf, failures={"gpu0": fail_time}
        )
        assert len(out.schedule.assignment_vector()) == n
        for slot in out.schedule.timeline("gpu0"):
            assert slot.start < fail_time + 1e-9

    @settings(max_examples=15, deadline=None)
    @given(num_shards=st.integers(1, 10), seed=st.integers(0, 100))
    def test_sharding_partitions_database(self, num_shards, seed):
        db = small_database(num_sequences=12, mean_length=40, seed=seed)
        if num_shards > len(db):
            with pytest.warns(UserWarning, match="clamping"):
                shards = shard_database(db, num_shards)
            assert len(shards) == len(db)
        else:
            shards = shard_database(db, num_shards)
            assert len(shards) == num_shards
        ids = [s.id for shard in shards for s in shard]
        assert ids == [s.id for s in db]
        assert sum(s.total_residues for s in shards) == db.total_residues
