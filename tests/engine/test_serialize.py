"""Tests for JSON serialisation of schedules and reports."""

import json

import pytest

from repro.core import Schedule, ScheduledTask
from repro.engine import (
    Hit,
    QueryResult,
    SearchReport,
    WorkerStats,
    report_to_dict,
    report_to_json,
    schedule_to_dict,
    schedule_to_json,
)


@pytest.fixture()
def schedule():
    return Schedule(
        slots=[
            ScheduledTask(0, "cpu0", 0.0, 2.0),
            ScheduledTask(1, "gpu0", 0.0, 3.0),
        ],
        pe_names=["cpu0", "gpu0"],
        num_tasks=2,
        label="demo",
    )


@pytest.fixture()
def report():
    return SearchReport(
        label="run",
        wall_seconds=3.0,
        total_cells=3_000_000_000,
        worker_stats=(
            WorkerStats("cpu0", "cpu", 1, 2.0, 1_000_000_000),
            WorkerStats("gpu0", "gpu", 1, 3.0, 2_000_000_000),
        ),
        query_results=(
            QueryResult("q0", (Hit("s1", 42, evalue=1e-5), Hit("s2", 10))),
        ),
        scheduler_info="dual2",
    )


class TestScheduleSerialization:
    def test_fields(self, schedule):
        d = schedule_to_dict(schedule)
        assert d["label"] == "demo"
        assert d["num_tasks"] == 2
        assert d["makespan"] == 3.0
        assert d["timelines"]["gpu0"] == [{"task": 1, "start": 0.0, "end": 3.0}]

    def test_json_roundtrip(self, schedule):
        parsed = json.loads(schedule_to_json(schedule))
        assert parsed == schedule_to_dict(schedule)


class TestReportSerialization:
    def test_fields(self, report):
        d = report_to_dict(report)
        assert d["label"] == "run"
        assert d["gcups"] == pytest.approx(1.0)
        assert d["workers"][0]["utilization"] == pytest.approx(2 / 3)

    def test_evalue_included_only_when_present(self, report):
        d = report_to_dict(report)
        hits = d["queries"][0]["hits"]
        assert hits[0]["evalue"] == 1e-5
        assert "evalue" not in hits[1]

    def test_json_parses(self, report):
        parsed = json.loads(report_to_json(report))
        assert parsed["queries"][0]["query_id"] == "q0"

    def test_compact_json(self, report):
        text = report_to_json(report, indent=None)
        assert "\n" not in text
