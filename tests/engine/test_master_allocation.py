"""Tests for the live master's prediction-driven static allocation."""

import pytest

from repro.align import default_scheme
from repro.engine import KernelWorker, Master, predict_static_allocation
from repro.sequences import small_database, standard_query_set


@pytest.fixture(scope="module")
def setup():
    db = small_database(num_sequences=20, mean_length=60, seed=81)
    queries = standard_query_set(count=8).scaled(0.02).materialize(seed=82)
    return db, queries


def build_master(db, queries, measured, policy="swdual"):
    master = Master(queries, policy=policy, measured_gcups=measured)
    master.register_worker(KernelWorker("gpu0", "gpu", db, default_scheme()))
    master.register_worker(KernelWorker("cpu0", "cpu", db, default_scheme()))
    return master


class TestPredictedAllocation:
    def test_faster_class_gets_more_work(self, setup):
        db, queries = setup
        master = build_master(db, queries, {"gpu0": 10.0, "cpu0": 1.0})
        batches = master._static_allocation()
        assert len(batches["gpu0"]) > len(batches["cpu0"])
        assert sorted(batches["gpu0"] + batches["cpu0"]) == list(range(len(queries)))

    def test_balanced_rates_split_work(self, setup):
        db, queries = setup
        master = build_master(db, queries, {"gpu0": 1.0, "cpu0": 1.0})
        batches = master._static_allocation()
        assert batches["gpu0"] and batches["cpu0"]

    def test_unmeasured_workers_get_mean_rate(self, setup):
        db, queries = setup
        workers = [("gpu0", "gpu"), ("cpu0", "cpu")]
        # Only gpu0 measured: cpu0 inherits the mean (same value), so
        # the allocation behaves like the balanced case.
        partial, _ = predict_static_allocation(
            queries, db.total_residues, workers, "swdual", {"gpu0": 2.0}
        )
        balanced, _ = predict_static_allocation(
            queries, db.total_residues, workers, "swdual", {"gpu0": 2.0, "cpu0": 2.0}
        )
        assert partial == balanced

    def test_no_measurements_defaults_to_equal(self, setup):
        db, queries = setup
        workers = [("gpu0", "gpu"), ("cpu0", "cpu")]
        default, _ = predict_static_allocation(
            queries, db.total_residues, workers, "swdual", None
        )
        balanced, _ = predict_static_allocation(
            queries, db.total_residues, workers, "swdual", {"gpu0": 1.0, "cpu0": 1.0}
        )
        assert default == balanced

    def test_predictions_scale_with_query_length(self, setup):
        db, queries = setup
        # Rates scale task predictions linearly, so doubling both rates
        # must leave the allocation unchanged.
        workers = [("gpu0", "gpu"), ("cpu0", "cpu")]
        a, _ = predict_static_allocation(
            queries, db.total_residues, workers, "swdual", {"gpu0": 4.0, "cpu0": 1.0}
        )
        b, _ = predict_static_allocation(
            queries, db.total_residues, workers, "swdual", {"gpu0": 8.0, "cpu0": 2.0}
        )
        assert a == b
