"""Tests for the live master's prediction-driven static allocation."""

import pytest

from repro.align import default_scheme
from repro.engine import KernelWorker, Master
from repro.sequences import small_database, standard_query_set


@pytest.fixture(scope="module")
def setup():
    db = small_database(num_sequences=20, mean_length=60, seed=81)
    queries = standard_query_set(count=8).scaled(0.02).materialize(seed=82)
    return db, queries


def build_master(db, queries, measured, policy="swdual"):
    master = Master(queries, policy=policy, measured_gcups=measured)
    master.register_worker(KernelWorker("gpu0", "gpu", db, default_scheme()))
    master.register_worker(KernelWorker("cpu0", "cpu", db, default_scheme()))
    return master


class TestPredictedAllocation:
    def test_faster_class_gets_more_work(self, setup):
        db, queries = setup
        master = build_master(db, queries, {"gpu0": 10.0, "cpu0": 1.0})
        batches = master._static_allocation()
        assert len(batches["gpu0"]) > len(batches["cpu0"])
        assert sorted(batches["gpu0"] + batches["cpu0"]) == list(range(len(queries)))

    def test_balanced_rates_split_work(self, setup):
        db, queries = setup
        master = build_master(db, queries, {"gpu0": 1.0, "cpu0": 1.0})
        batches = master._static_allocation()
        assert batches["gpu0"] and batches["cpu0"]

    def test_unmeasured_workers_get_mean_rate(self, setup):
        db, queries = setup
        # Only gpu0 measured: cpu0 inherits the mean (same value), so
        # the allocation behaves like the balanced case.
        master = build_master(db, queries, {"gpu0": 2.0})
        tasks = master._predicted_taskset()
        assert tasks.cpu_times == pytest.approx(tasks.gpu_times)

    def test_no_measurements_defaults_to_equal(self, setup):
        db, queries = setup
        master = build_master(db, queries, None)
        tasks = master._predicted_taskset()
        assert tasks.cpu_times == pytest.approx(tasks.gpu_times)

    def test_predictions_scale_with_query_length(self, setup):
        db, queries = setup
        master = build_master(db, queries, {"gpu0": 4.0, "cpu0": 1.0})
        tasks = master._predicted_taskset()
        lengths = tasks.query_lengths
        # Longer query -> proportionally longer prediction.
        i, j = int(lengths.argmin()), int(lengths.argmax())
        assert tasks.cpu_times[j] / tasks.cpu_times[i] == pytest.approx(
            lengths[j] / lengths[i]
        )
