"""Tests for duration noise and iterative (multi-round) SWDUAL."""

import numpy as np
import pytest

from repro.core import SWDualScheduler, tasks_from_queries
from repro.engine import (
    DurationNoise,
    simulate_plan,
    simulate_self_scheduling,
    simulate_swdual_rounds,
)
from repro.platform import PerformanceModel, idgraf_platform
from repro.sequences import paper_database_profile, standard_query_set


@pytest.fixture(scope="module")
def setup():
    perf = PerformanceModel(idgraf_platform(2, 2))
    db = paper_database_profile("ensembl_rat")
    tasks = tasks_from_queries(standard_query_set(), db.total_residues, perf)
    return perf, tasks


class TestDurationNoise:
    def test_zero_sigma_identity(self):
        noise = DurationNoise(0.0, seed=1)
        assert noise.factor(0) == 1.0
        assert noise.factor(99) == 1.0

    def test_deterministic_and_order_independent(self):
        a = DurationNoise(0.3, seed=2)
        b = DurationNoise(0.3, seed=2)
        assert a.factor(5) == b.factor(5)
        # Query in a different order: same factors.
        assert a.factor(7) == DurationNoise(0.3, seed=2).factor(7)

    def test_different_tasks_differ(self):
        noise = DurationNoise(0.3, seed=3)
        factors = {noise.factor(j) for j in range(20)}
        assert len(factors) == 20

    def test_mean_one_correction(self):
        noise = DurationNoise(0.5, seed=4)
        factors = np.array([noise.factor(j) for j in range(4000)])
        assert factors.mean() == pytest.approx(1.0, abs=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            DurationNoise(-0.1)


class TestNoisyExecution:
    def test_plan_makespan_degrades_with_noise(self, setup):
        perf, tasks = setup
        plan = SWDualScheduler().schedule_tasks(tasks, 2, 2).schedule
        clean = simulate_plan(tasks, plan, perf.platform, perf)
        noisy = [
            simulate_plan(
                tasks, plan, perf.platform, perf, noise=DurationNoise(0.6, seed=s)
            ).report.wall_seconds
            for s in range(5)
        ]
        assert np.mean(noisy) > clean.report.wall_seconds

    def test_self_scheduling_invariant_holds_under_noise(self, setup):
        # The no-early-idle property of dynamic allocation is exactly
        # what absorbs prediction error; it must survive noise.
        perf, tasks = setup
        out = simulate_self_scheduling(
            tasks, perf.platform, perf, noise=DurationNoise(0.8, seed=3)
        )
        sched = out.schedule
        completions = {n: sched.completion_time(n) for n in sched.pe_names}
        for name in sched.pe_names:
            tl = sched.timeline(name)
            if tl:
                others = [c for n, c in completions.items() if n != name]
                assert tl[-1].start <= min(others) + 1e-9

    def test_same_noise_same_factors_across_policies(self, setup):
        # Different policies see identical per-task errors for a seed:
        # busy time per task is policy-independent on the same PE class.
        perf, tasks = setup
        noise = DurationNoise(0.5, seed=9)
        plan = SWDualScheduler().schedule_tasks(tasks, 2, 2).schedule
        static = simulate_plan(tasks, plan, perf.platform, perf, noise=noise)
        dyn = simulate_self_scheduling(tasks, perf.platform, perf, noise=noise)
        static_assign = static.schedule.assignment_vector()
        dyn_assign = dyn.schedule.assignment_vector()
        static_durations = {
            s.task_index: s.duration
            for n in static.schedule.pe_names
            for s in static.schedule.timeline(n)
        }
        dyn_durations = {
            s.task_index: s.duration
            for n in dyn.schedule.pe_names
            for s in dyn.schedule.timeline(n)
        }
        for j in range(len(tasks)):
            if static_assign[j][:3] == dyn_assign[j][:3]:  # same class
                assert static_durations[j] == pytest.approx(dyn_durations[j])


class TestSWDualRounds:
    def test_one_round_matches_plan_shape(self, setup):
        perf, tasks = setup
        one = simulate_swdual_rounds(tasks, perf.platform, perf, rounds=1)
        plan = SWDualScheduler().schedule_tasks(tasks, 2, 2).schedule
        static = simulate_plan(tasks, plan, perf.platform, perf)
        assert one.report.wall_seconds == pytest.approx(
            static.report.wall_seconds, rel=0.02
        )

    def test_all_tasks_executed(self, setup):
        perf, tasks = setup
        out = simulate_swdual_rounds(tasks, perf.platform, perf, rounds=4)
        assert out.schedule.num_tasks == len(tasks)
        assert len(out.schedule.assignment_vector()) == len(tasks)

    def test_rounds_add_barrier_cost_when_clean(self, setup):
        perf, tasks = setup
        one = simulate_swdual_rounds(tasks, perf.platform, perf, rounds=1)
        four = simulate_swdual_rounds(tasks, perf.platform, perf, rounds=4)
        assert four.report.wall_seconds >= one.report.wall_seconds

    def test_rounds_respect_barriers(self, setup):
        perf, tasks = setup
        out = simulate_swdual_rounds(tasks, perf.platform, perf, rounds=2)
        # Round-1 tasks (odd indices, r=1 chunk) never start before all
        # round-0 sibling starts... simpler: no slot of round 1 starts
        # before the latest round-0 completion on its own PE timeline
        # is consistent by construction; here check global barrier:
        slots = [
            s for name in out.schedule.pe_names for s in out.schedule.timeline(name)
        ]
        round0_end = max(s.end for s in slots if s.task_index % 2 == 0)
        round1_start = min(s.start for s in slots if s.task_index % 2 == 1)
        assert round1_start >= round0_end - 1e-9

    def test_validation(self, setup):
        perf, tasks = setup
        with pytest.raises(ValueError):
            simulate_swdual_rounds(tasks, perf.platform, perf, rounds=0)
        with pytest.raises(ValueError):
            simulate_swdual_rounds(tasks, perf.platform, perf, rounds=1000)
