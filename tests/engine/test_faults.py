"""Unit tests for the fault-injection machinery and the supervised
pool's failure surface: plan determinism and validation, injector
ordinal counting, recovery-log bookkeeping, named timeout errors, and
the teardown regressions (SIGKILL mid-batch, double-join)."""

import os
import pickle
import signal

import numpy as np
import pytest

from repro.engine import ProtocolError
from repro.engine.faults import (
    FAULT_KINDS,
    AllWorkersDeadError,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    RecoveryLog,
    TaskFault,
    WorkerCrashed,
    WorkerTimeoutError,
    payload_checksum,
)
from repro.engine.transport import ProcessWorkerPool
from repro.sequences import small_database, standard_query_set


class TestFaultPlan:
    def test_random_is_seed_deterministic(self):
        workers = ["proc0", "proc1", "proc2"]
        a = FaultPlan.random(9, workers, num_faults=2, kinds=FAULT_KINDS)
        b = FaultPlan.random(9, workers, num_faults=2, kinds=FAULT_KINDS)
        assert a.worker_faults == b.worker_faults
        c = FaultPlan.random(10, workers, num_faults=2, kinds=FAULT_KINDS)
        assert a.worker_faults != c.worker_faults or a.victims() != c.victims()

    def test_random_faults_distinct_workers(self):
        plan = FaultPlan.random(1, ["a", "b", "c"], num_faults=3)
        assert plan.victims() == ("a", "b", "c")

    def test_random_validation(self):
        with pytest.raises(ValueError, match="distinct workers"):
            FaultPlan.random(0, ["a"], num_faults=2)
        with pytest.raises(ValueError, match="kind"):
            FaultPlan.random(0, ["a"], kinds=("meteor",))

    def test_duplicate_fault_rejected(self):
        spec = FaultSpec("w", 0, "kill")
        with pytest.raises(ValueError, match="duplicate"):
            FaultPlan([spec, FaultSpec("w", 0, "stall")])
        with pytest.raises(ValueError, match="duplicate"):
            FaultPlan(task_faults=[TaskFault(1), TaskFault(1)])

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="kind"):
            FaultSpec("w", 0, "explode")
        with pytest.raises(ValueError, match="task_ordinal"):
            FaultSpec("w", -1, "kill")
        with pytest.raises(ValueError, match="fail_times"):
            TaskFault(0, fail_times=0)

    def test_plan_is_picklable(self):
        """Plans ride the spawn payload to worker processes."""
        plan = FaultPlan(
            [FaultSpec("w", 1, "stall")], [TaskFault(2, fail_times=1)]
        )
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.worker_action("w", 1).kind == "stall"
        assert clone.task_action(2).fail_times == 1

    def test_lookup_and_len(self):
        plan = FaultPlan.single("w", 2, "corrupt")
        assert plan.worker_action("w", 2).kind == "corrupt"
        assert plan.worker_action("w", 1) is None
        assert plan.worker_action("other", 2) is None
        assert len(plan) == 1 and plan
        assert not FaultPlan()


class TestFaultInjector:
    def test_counts_ordinals(self):
        plan = FaultPlan.single("w", 2, "kill")
        injector = FaultInjector(plan, "w")
        assert injector.next_task() is None
        assert injector.next_task() is None
        assert injector.next_task().kind == "kill"
        assert injector.next_task() is None

    def test_other_worker_untouched(self):
        injector = FaultInjector(FaultPlan.single("w", 0, "kill"), "other")
        assert all(injector.next_task() is None for _ in range(4))

    def test_poison_honours_fail_times(self):
        injector = FaultInjector(FaultPlan.poison(5, fail_times=2), "w")
        assert injector.task_fault(5) is not None
        assert injector.task_fault(5) is not None
        assert injector.task_fault(5) is None  # budget spent
        assert injector.task_fault(6) is None

    def test_poison_forever_by_default(self):
        injector = FaultInjector(FaultPlan.poison(0), "w")
        assert all(injector.task_fault(0) is not None for _ in range(10))


class TestRecoveryLog:
    def test_records_in_order_with_seq(self):
        log = RecoveryLog()
        log.record("worker_lost", worker="w0", detail="boom")
        log.record("requeue", task=3, attempt=1)
        log.record("retry", worker="w1", task=3, attempt=1)
        kinds = [e.kind for e in log.all()]
        assert kinds == ["worker_lost", "requeue", "retry"]
        seqs = [e.seq for e in log.all()]
        assert seqs == sorted(seqs)
        assert log.counts() == {"worker_lost": 1, "requeue": 1, "retry": 1}
        assert len(log.of_kind("requeue")) == 1
        assert log.to_dicts()[0]["worker"] == "w0"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            RecoveryLog().record("shrug")


class TestChecksum:
    def test_detects_mutation(self):
        hits = [("s1", 40), ("s2", 17)]
        good = payload_checksum(hits)
        assert payload_checksum([("s1", 41), ("s2", 17)]) != good
        assert payload_checksum(hits) == good

    def test_numpy_payloads(self):
        a = np.array([1, 2, 3], dtype=np.int64)
        assert payload_checksum(a) == payload_checksum(a.copy())
        assert payload_checksum(a) != payload_checksum(a[::-1].copy())


class TestErrorSurface:
    def test_timeout_error_names_the_worker(self):
        err = WorkerTimeoutError("proc1", pending_task="q7", timeout=30.0)
        assert isinstance(err, ProtocolError)
        assert err.worker == "proc1"
        assert err.pending_task == "q7"
        assert "proc1" in str(err)
        assert "q7" in str(err)
        assert "30" in str(err)

    def test_crash_and_all_dead(self):
        crash = WorkerCrashed("proc0", reason="exit 13")
        assert "proc0" in str(crash) and "exit 13" in str(crash)
        dead = AllWorkersDeadError(4, last_worker="proc2")
        assert dead.pending == 4
        assert "proc2" in str(dead)


@pytest.fixture(scope="module")
def workload():
    db = small_database(num_sequences=12, mean_length=50, seed=61)
    queries = list(standard_query_set(count=3).scaled(0.015).materialize(seed=62))
    return db, queries


class TestTeardownRegressions:
    """The satellite regressions: reaping dead children must never
    raise, and a SIGKILLed worker mid-batch must not cost any query."""

    def test_sigkill_mid_batch_recovers(self, workload):
        db, queries = workload
        reference = None
        with ProcessWorkerPool(
            db, num_cpu_workers=2, top_hits=4, heartbeat_timeout=5.0
        ) as pool:
            reference = pool.run_batch(queries)
            os.kill(pool._processes[0].pid, signal.SIGKILL)
            report = pool.run_batch(queries)
        assert [qr.hits for qr in report.query_results] == [
            qr.hits for qr in reference.query_results
        ]
        assert report.quarantined == ()

    def test_close_reaps_dead_children_without_raising(self, workload):
        db, _queries = workload
        pool = ProcessWorkerPool(db, num_cpu_workers=2, top_hits=4)
        pool.start()
        for proc in pool._processes:
            proc.kill()
            proc.join(timeout=5)
        pool.close()  # must reap, not raise
        pool.close()  # idempotent second close (double-join path)
        assert all(not p.is_alive() for p in pool._processes)

    def test_double_join_after_batch(self, workload):
        db, queries = workload
        pool = ProcessWorkerPool(db, num_cpu_workers=1, top_hits=4)
        pool.start()
        pool.run_batch(queries)
        pool.close()
        pool.close()
        with pytest.raises(ProtocolError):
            pool.run_batch(queries)
