"""Tests for the protocol messages and result containers."""

import pytest

from repro.engine import (
    Hit,
    MessageLog,
    MessageType,
    QueryResult,
    SearchReport,
    WorkerStats,
    assign_tasks,
    register,
    register_ack,
    shutdown,
    task_done,
)


class TestMessages:
    def test_register_payload(self):
        m = register("gpu0", "gpu")
        assert m.type is MessageType.REGISTER
        assert m.sender == "gpu0"
        assert m.recipient == "master"
        assert m.payload == {"kind": "gpu"}

    def test_assign_tasks_copies_list(self):
        batch = [1, 2]
        m = assign_tasks("cpu0", batch)
        batch.append(3)
        assert m.payload["tasks"] == [1, 2]

    def test_sequence_numbers_increase(self):
        a = register("w", "cpu")
        b = register_ack("w")
        assert b.seq > a.seq

    def test_task_done_payload(self):
        m = task_done("cpu0", 7, 1.5, result="hits")
        assert m.payload == {"task": 7, "elapsed": 1.5, "result": "hits"}

    def test_log_filtering(self):
        log = MessageLog()
        log.record(register("w", "cpu"))
        log.record(register_ack("w"))
        log.record(shutdown("w"))
        assert len(log) == 3
        assert len(log.of_type(MessageType.REGISTER)) == 1
        assert [m.type for m in log.all()] == [
            MessageType.REGISTER,
            MessageType.REGISTER_ACK,
            MessageType.SHUTDOWN,
        ]


class TestResults:
    def test_hit_validation(self):
        with pytest.raises(ValueError):
            Hit("s", -1)

    def test_query_result_sorted(self):
        QueryResult("q", (Hit("a", 9), Hit("b", 5)))
        with pytest.raises(ValueError, match="sorted"):
            QueryResult("q", (Hit("a", 5), Hit("b", 9)))

    def test_best_hit(self):
        qr = QueryResult("q", (Hit("a", 9), Hit("b", 5)))
        assert qr.best.subject_id == "a"
        assert QueryResult("q", ()).best is None

    def test_worker_stats_utilization(self):
        ws = WorkerStats("cpu0", "cpu", 3, busy_seconds=5.0, cells=100)
        assert ws.utilization(10.0) == 0.5
        with pytest.raises(ValueError):
            ws.utilization(0.0)

    def make_report(self):
        return SearchReport(
            label="test",
            wall_seconds=10.0,
            total_cells=20_000_000_000,
            worker_stats=(
                WorkerStats("a", "cpu", 1, 8.0, 10_000_000_000),
                WorkerStats("b", "gpu", 1, 10.0, 10_000_000_000),
            ),
            query_results=(QueryResult("q0", (Hit("s", 3),)),),
        )

    def test_report_gcups(self):
        assert self.make_report().gcups == pytest.approx(2.0)

    def test_report_idle(self):
        assert self.make_report().total_idle_seconds == pytest.approx(2.0)

    def test_report_mean_utilization(self):
        assert self.make_report().mean_utilization == pytest.approx(0.9)

    def test_result_lookup(self):
        report = self.make_report()
        assert report.result_for("q0").best.score == 3
        with pytest.raises(KeyError):
            report.result_for("nope")

    def test_report_validation(self):
        with pytest.raises(ValueError):
            SearchReport("x", 0.0, 0, ())

    def test_summary(self):
        assert "GCUPS" in self.make_report().summary()
