"""Process-pool data planes and dispatch modes: shm vs pickle, query
vs chunk dispatch with stealing, and the /dev/shm leak guarantees of
every teardown path (close, ``__exit__``, worker crash, SIGTERM)."""

import glob
import os
import signal

import pytest

from repro.engine import ProtocolError, live_search
from repro.engine.transport import (
    ProcessWorkerPool,
    START_METHOD_ENV,
    resolve_data_plane,
    resolve_start_method,
)
from repro.sequences import small_database, standard_query_set
from repro.sequences.shm import SHM_PREFIX, shm_available
from repro.telemetry.export import prometheus_text
from repro.telemetry.metrics import MetricsRegistry

#: Small enough that the 18-sequence workload packs into several
#: chunks, so chunk dispatch has real ranges to split and steal.
CHUNK_CELLS = 1_500

needs_shm = pytest.mark.skipif(
    not shm_available(), reason="POSIX shared memory unavailable"
)


def _live_segments() -> set[str]:
    return {os.path.basename(p) for p in glob.glob(f"/dev/shm/{SHM_PREFIX}*")}


def _hits(report):
    return [
        [(h.subject_id, h.score) for h in qr.hits]
        for qr in report.query_results
    ]


@pytest.fixture(scope="module")
def workload():
    db = small_database(num_sequences=18, mean_length=50, seed=51)
    queries = standard_query_set(count=3).scaled(0.015).materialize(seed=52)
    return db, queries


@pytest.fixture(scope="module")
def reference_hits(workload):
    db, queries = workload
    return _hits(live_search(queries, db, 1, 0, policy="self", top_hits=4))


class TestResolvers:
    def test_auto_honours_env(self, monkeypatch):
        monkeypatch.setenv(START_METHOD_ENV, "spawn")
        assert resolve_start_method("auto") == "spawn"

    def test_auto_prefers_fork_without_env(self, monkeypatch):
        monkeypatch.delenv(START_METHOD_ENV, raising=False)
        import multiprocessing as mp

        if "fork" in mp.get_all_start_methods():
            assert resolve_start_method("auto") == "fork"

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="not available"):
            resolve_start_method("teleport")

    def test_data_plane_validation(self):
        with pytest.raises(ValueError, match="data_plane"):
            resolve_data_plane("carrier-pigeon")

    @needs_shm
    def test_auto_plane_prefers_shm(self):
        assert resolve_data_plane("auto") == "shm"
        assert resolve_data_plane("shm") == "shm"
        assert resolve_data_plane("pickle") == "pickle"


class TestPlanesAndDispatchIdentity:
    """Scores must be bit-for-bit identical on every plane x dispatch
    combination — the tentpole's correctness contract."""

    @pytest.mark.parametrize("plane", ["pickle", pytest.param("shm", marks=needs_shm)])
    @pytest.mark.parametrize("dispatch", ["query", "chunk"])
    def test_matches_threaded_reference(
        self, workload, reference_hits, plane, dispatch
    ):
        db, queries = workload
        with ProcessWorkerPool(
            db,
            num_cpu_workers=2,
            top_hits=4,
            chunk_cells=CHUNK_CELLS,
            data_plane=plane,
            dispatch=dispatch,
        ) as pool:
            report = pool.run_batch(queries)
        assert _hits(report) == reference_hits

    @needs_shm
    def test_chunk_dispatch_accounting(self, workload):
        db, queries = workload
        with ProcessWorkerPool(
            db,
            num_cpu_workers=2,
            top_hits=4,
            chunk_cells=CHUNK_CELLS,
            data_plane="shm",
            dispatch="chunk",
        ) as pool:
            report = pool.run_batch(queries)
        # Whole-query completions still sum to the query count, the
        # subtask grains exceed it, and the cell total is exact.
        assert sum(w.tasks_executed for w in report.worker_stats) == len(queries)
        assert sum(w.subtasks for w in report.worker_stats) > len(queries)
        expected = sum(len(q) for q in queries) * db.total_residues
        assert report.total_cells == expected
        assert "chunk dispatch" in report.scheduler_info
        assert "steals" in report.scheduler_info

    @needs_shm
    def test_skewed_rates_force_steals_and_metrics(self, workload):
        db, queries = workload
        registry = MetricsRegistry()
        with ProcessWorkerPool(
            db,
            num_cpu_workers=1,
            num_gpu_workers=1,
            top_hits=4,
            chunk_cells=CHUNK_CELLS,
            data_plane="shm",
            dispatch="chunk",
            oversubscribe=8,
            registry=registry,
        ) as pool:
            # Absurd rates seed every grain onto proc0; gproc0 can only
            # make progress by stealing.
            report = pool.run_batch(
                queries,
                policy="swdual",
                measured_gcups={"cpu": 1e6, "gpu": 1e-6},
            )
            stolen = {w.name: w.steals for w in report.worker_stats}
            assert stolen["gproc0"] > 0
            assert pool.steals["gproc0"] == stolen["gproc0"]
        text = prometheus_text(registry)
        assert 'swdual_steals_total{role="gpu"}' in text
        assert "swdual_shm_attach_seconds" in text
        assert "swdual_subtask_queue_depth" in text
        assert _hits(report) == _hits(
            live_search(queries, db, 1, 0, policy="self", top_hits=4)
        )

    @pytest.mark.skipif(
        "spawn" not in __import__("multiprocessing").get_all_start_methods(),
        reason="spawn unavailable",
    )
    def test_spawn_start_method(self, workload, reference_hits):
        db, queries = workload
        before = _live_segments()
        with ProcessWorkerPool(
            db,
            num_cpu_workers=1,
            top_hits=4,
            chunk_cells=CHUNK_CELLS,
            start_method="spawn",
            dispatch="chunk",
        ) as pool:
            assert pool.start_method == "spawn"
            report = pool.run_batch(queries)
        assert _hits(report) == reference_hits
        assert _live_segments() == before


@needs_shm
class TestLeakProofTeardown:
    """No ``/dev/shm`` segment with our prefix may survive any exit
    path — the issue's teardown acceptance criterion."""

    def test_normal_close(self, workload):
        db, queries = workload
        before = _live_segments()
        pool = ProcessWorkerPool(db, num_cpu_workers=2, data_plane="shm")
        pool.start()
        assert _live_segments() != before  # the segment really exists
        pool.run_batch(queries)
        pool.close()
        assert _live_segments() == before

    def test_context_manager_exit_on_error(self, workload):
        db, queries = workload
        before = _live_segments()
        with pytest.raises(RuntimeError, match="boom"):
            with ProcessWorkerPool(db, num_cpu_workers=1, data_plane="shm") as pool:
                pool.run_batch(queries)
                raise RuntimeError("boom")
        assert _live_segments() == before

    def test_worker_crash_mid_batch(self, workload):
        db, queries = workload
        before = _live_segments()
        pool = ProcessWorkerPool(
            db,
            num_cpu_workers=2,
            data_plane="shm",
            dispatch="chunk",
            chunk_cells=CHUNK_CELLS,
        )
        pool.start()
        pool._processes[0].kill()  # simulate an abrupt worker death
        report = pool.run_batch(queries)
        assert len(report.query_results) == len(queries)
        assert report.quarantined == ()
        # The survivor keeps serving batches on the shared segment.
        report = pool.run_batch(queries)
        assert len(report.query_results) == len(queries)
        pool.close()
        assert _live_segments() == before
        # A closed pool refuses further batches instead of hanging.
        with pytest.raises(ProtocolError):
            pool.run_batch(queries)

    def test_worker_sigterm(self, workload):
        db, queries = workload
        before = _live_segments()
        pool = ProcessWorkerPool(db, num_cpu_workers=2, data_plane="shm")
        pool.start()
        os.kill(pool._processes[1].pid, signal.SIGTERM)
        pool._processes[1].join(timeout=5)
        report = pool.run_batch(queries)
        assert len(report.query_results) == len(queries)
        assert pool.alive_workers == ["proc0"]
        pool.close()
        assert _live_segments() == before

    def test_close_is_idempotent(self, workload):
        db, _queries = workload
        before = _live_segments()
        pool = ProcessWorkerPool(db, num_cpu_workers=1, data_plane="shm")
        pool.start()
        pool.close()
        pool.close()
        assert _live_segments() == before
