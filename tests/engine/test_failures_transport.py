"""Tests for failure injection and the process transport."""

import pytest

from repro.align import fit_evalue_model, default_scheme
from repro.core import tasks_from_queries
from repro.engine import (
    ProtocolError,
    live_search,
    process_search,
    simulate_self_scheduling,
    simulate_with_failures,
)
from repro.platform import PerformanceModel, idgraf_platform
from repro.sequences import (
    paper_database_profile,
    small_database,
    standard_query_set,
)


@pytest.fixture(scope="module")
def setup():
    perf = PerformanceModel(idgraf_platform(2, 2))
    db = paper_database_profile("ensembl_dog")
    tasks = tasks_from_queries(standard_query_set(), db.total_residues, perf)
    return perf, tasks


class TestFailureInjection:
    def test_no_failures_matches_self_scheduling(self, setup):
        perf, tasks = setup
        plain = simulate_self_scheduling(tasks, perf.platform, perf)
        with_none = simulate_with_failures(tasks, perf.platform, perf, failures={})
        assert with_none.report.wall_seconds == pytest.approx(
            plain.report.wall_seconds
        )

    def test_all_tasks_complete_despite_failure(self, setup):
        perf, tasks = setup
        out = simulate_with_failures(
            tasks, perf.platform, perf, failures={"gpu0": 5.0}
        )
        assert out.schedule.num_tasks == len(tasks)
        assert len(out.schedule.assignment_vector()) == len(tasks)

    def test_dead_worker_takes_no_tasks_after_failure(self, setup):
        perf, tasks = setup
        out = simulate_with_failures(
            tasks, perf.platform, perf, failures={"gpu0": 5.0}
        )
        for slot in out.schedule.timeline("gpu0"):
            assert slot.start < 5.0

    def test_failure_slows_the_run(self, setup):
        perf, tasks = setup
        healthy = simulate_with_failures(tasks, perf.platform, perf, failures={})
        degraded = simulate_with_failures(
            tasks, perf.platform, perf, failures={"gpu0": 1.0, "gpu1": 1.0}
        )
        assert degraded.report.wall_seconds > healthy.report.wall_seconds

    def test_lost_task_rerun_elsewhere(self, setup):
        perf, tasks = setup
        out = simulate_with_failures(
            tasks, perf.platform, perf, failures={"gpu0": 5.0}
        )
        # Whatever gpu0 was running at t=5 must appear on another PE.
        assignment = out.schedule.assignment_vector()
        assert all(0 <= j < len(tasks) for j in assignment)
        # gpu0's timeline slots all completed before the failure.
        for slot in out.schedule.timeline("gpu0"):
            assert slot.end <= 5.0 + 1e-9 or assignment[slot.task_index] != "gpu0"

    def test_all_workers_dead_raises(self, setup):
        perf, tasks = setup
        failures = {pe.name: 0.5 for pe in perf.platform}
        with pytest.raises(ProtocolError, match="dead"):
            simulate_with_failures(tasks, perf.platform, perf, failures=failures)

    def test_validation(self, setup):
        perf, tasks = setup
        with pytest.raises(ValueError):
            simulate_with_failures(
                tasks, perf.platform, perf, failures={"gpu0": -1.0}
            )
        with pytest.raises(KeyError):
            simulate_with_failures(
                tasks, perf.platform, perf, failures={"tpu9": 1.0}
            )


class TestProcessTransport:
    @pytest.fixture(scope="class")
    def workload(self):
        db = small_database(num_sequences=12, mean_length=50, seed=21)
        queries = standard_query_set(count=3).scaled(0.015).materialize(seed=22)
        return db, queries

    def test_results_match_threaded_engine(self, workload):
        db, queries = workload
        proc = process_search(queries, db, num_workers=2, top_hits=4)
        ref = live_search(queries, db, 1, 0, policy="self", top_hits=4)
        for q in queries:
            a = [(h.subject_id, h.score) for h in proc.result_for(q.id).hits]
            b = [(h.subject_id, h.score) for h in ref.result_for(q.id).hits]
            assert a == b

    def test_worker_accounting(self, workload):
        db, queries = workload
        report = process_search(queries, db, num_workers=2)
        assert sum(w.tasks_executed for w in report.worker_stats) == len(queries)
        expected = sum(len(q) for q in queries) * db.total_residues
        assert report.total_cells == expected

    def test_validation(self, workload):
        db, queries = workload
        with pytest.raises(ValueError):
            process_search([], db)
        with pytest.raises(ValueError):
            process_search(queries, db, num_workers=0)


class TestEvalueIntegration:
    def test_hits_carry_evalues(self):
        db = small_database(num_sequences=10, mean_length=60, seed=31)
        queries = standard_query_set(count=2).scaled(0.02).materialize(seed=32)
        model = fit_evalue_model(
            default_scheme(), query_length=60, subject_length=60, samples=40, seed=33
        )
        report = live_search(
            queries, db, 1, 0, policy="self", top_hits=3, evalue_model=model
        )
        for qr in report.query_results:
            for hit in qr.hits:
                assert hit.evalue is not None
                assert hit.evalue >= 0
                assert "E=" in hit.format()

    def test_no_model_no_evalues(self):
        db = small_database(num_sequences=5, mean_length=40, seed=41)
        queries = standard_query_set(count=1).scaled(0.01).materialize(seed=42)
        report = live_search(queries, db, 1, 0, policy="self", top_hits=2)
        for hit in report.query_results[0].hits:
            assert hit.evalue is None
            assert "E=" not in hit.format()
