"""Chunk-granular dispatch units: subtask planning, the stealing
scheduler, and the bit-for-bit partial-maxima merge contract."""

import numpy as np
import pytest

from repro.align import ScoringScheme, default_scheme
from repro.align.scoring import GapModel
from repro.align.sw_batch import DTYPE_LADDER, sw_score_packed
from repro.engine import KernelWorker
from repro.engine.subtasks import (
    ChunkScheduler,
    ScoreMerger,
    Subtask,
    plan_subtasks,
)
from repro.sequences import matrix_by_name, small_database
from repro.sequences.alphabet import PROTEIN
from repro.sequences.packed import PackedDatabase
from repro.sequences.sequence import Sequence


def _workload(seed=11, num=24, mean=40, chunk_cells=1_200):
    db = small_database(num_sequences=num, mean_length=mean, seed=seed)
    packed = PackedDatabase.from_database(db, chunk_cells=chunk_cells)
    queries = list(small_database(num_sequences=3, mean_length=30, seed=seed + 1))
    return db, packed, queries


class TestPlanSubtasks:
    def test_partitions_every_chunk_once_per_query(self):
        _db, packed, queries = _workload()
        subs = plan_subtasks(queries, packed, num_workers=2)
        for qi in range(len(queries)):
            ranges = sorted(
                (s.chunk_lo, s.chunk_hi) for s in subs if s.query_index == qi
            )
            covered = []
            for lo, hi in ranges:
                assert lo < hi
                covered.extend(range(lo, hi))
            assert covered == list(range(len(packed.chunks)))

    def test_cells_are_exact_dp_areas(self):
        _db, packed, queries = _workload()
        residues = [c.residues for c in packed.chunks]
        for s in plan_subtasks(queries, packed, num_workers=3):
            expected = len(queries[s.query_index]) * sum(
                residues[s.chunk_lo : s.chunk_hi]
            )
            assert s.cells == expected

    def test_sids_index_the_list(self):
        _db, packed, queries = _workload()
        subs = plan_subtasks(queries, packed, num_workers=2)
        assert [s.sid for s in subs] == list(range(len(subs)))

    def test_oversubscription_creates_more_grains(self):
        _db, packed, queries = _workload()
        few = plan_subtasks(queries, packed, num_workers=1, oversubscribe=1)
        many = plan_subtasks(queries, packed, num_workers=1, oversubscribe=8)
        assert len(many) > len(few)

    def test_empty_database_degenerates(self):
        packed = PackedDatabase([], name="empty")
        queries = list(small_database(num_sequences=2, mean_length=10, seed=1))
        subs = plan_subtasks(queries, packed, num_workers=2)
        assert [(s.query_index, s.chunk_lo, s.chunk_hi) for s in subs] == [
            (0, 0, 0),
            (1, 0, 0),
        ]

    def test_validation(self):
        _db, packed, queries = _workload()
        with pytest.raises(ValueError, match="num_workers"):
            plan_subtasks(queries, packed, num_workers=0)
        with pytest.raises(ValueError, match="oversubscribe"):
            plan_subtasks(queries, packed, num_workers=1, oversubscribe=0)


class TestChunkScheduler:
    def _subs(self, cells):
        return [
            Subtask(sid=i, query_index=0, chunk_lo=i, chunk_hi=i + 1, cells=c)
            for i, c in enumerate(cells)
        ]

    def test_own_deque_drains_fifo(self):
        sched = ChunkScheduler(self._subs([10, 10, 10]), [("w0", "cpu")])
        sids = []
        while (nxt := sched.next_for("w0")) is not None:
            sub, stolen = nxt
            assert not stolen
            sids.append(sub.sid)
        assert sids == [0, 1, 2]
        assert sched.pending == 0

    def test_seed_follows_rates(self):
        subs = self._subs([100] * 12)
        sched = ChunkScheduler(
            subs,
            [("fast", "cpu"), ("slow", "gpu")],
            rates={"fast": 3.0, "slow": 1.0},
        )
        assert len(sched._deques["fast"]) == 9
        assert len(sched._deques["slow"]) == 3

    def test_idle_worker_steals_largest_from_most_loaded(self):
        subs = self._subs([100] * 12)
        sched = ChunkScheduler(
            subs,
            [("fast", "cpu"), ("slow", "gpu")],
            rates={"fast": 1e9, "slow": 1e-9},
        )
        # Everything seeds to `fast`; `slow` must steal immediately.
        sub, stolen = sched.next_for("slow")
        assert stolen
        assert sched.steals == {"fast": 0, "slow": 1}
        assert sched.steals_by_kind() == {"cpu": 0, "gpu": 1}

    def test_steal_prefers_largest_grain(self):
        subs = self._subs([10, 500, 20])
        sched = ChunkScheduler(
            subs, [("a", "cpu"), ("b", "cpu")], rates={"a": 1e9, "b": 1e-9}
        )
        sub, stolen = sched.next_for("b")
        assert stolen and sub.cells == 500

    def test_exhaustion_returns_none(self):
        sched = ChunkScheduler(self._subs([5]), [("a", "cpu"), ("b", "cpu")])
        assert sched.next_for("a") is not None
        assert sched.next_for("a") is None
        assert sched.next_for("b") is None

    def test_every_subtask_dispatched_exactly_once_under_stealing(self):
        subs = self._subs(list(range(1, 30)))
        sched = ChunkScheduler(
            subs,
            [("a", "cpu"), ("b", "gpu"), ("c", "cpu")],
            rates={"a": 2.0, "b": 0.5, "c": 1.0},
        )
        seen = []
        workers = ["c", "a", "b"]
        i = 0
        while sched.pending:
            nxt = sched.next_for(workers[i % 3])
            i += 1
            if nxt is not None:
                seen.append(nxt[0].sid)
        assert sorted(seen) == [s.sid for s in subs]

    def test_needs_workers(self):
        with pytest.raises(ValueError, match="worker"):
            ChunkScheduler([], [])

    def test_whole_class_death_recosts_onto_survivors(self):
        """Both GPU-role workers die mid-batch: their queued grains must
        migrate to the CPU survivors — re-costed under CPU rates — and
        every grain still dispatches exactly once."""
        subs = self._subs([100] * 12)
        sched = ChunkScheduler(
            subs,
            [("cpu0", "cpu"), ("cpu1", "cpu"), ("gpu0", "gpu"), ("gpu1", "gpu")],
            rates={"cpu": 1.0, "gpu": 3.0},
        )
        # The fast class seeded most of the work; kill all of it.
        gpu_queued = len(sched._deques["gpu0"]) + len(sched._deques["gpu1"])
        assert gpu_queued > len(subs) // 2
        # gpu0's orphans may transit through gpu1 before it too dies, so
        # the sum of redistributions is at least the original backlog.
        moved = sched.remove_worker("gpu0") + sched.remove_worker("gpu1")
        assert moved >= gpu_queued
        assert set(sched._deques) == {"cpu0", "cpu1"}
        # Orphans spread across survivors, accounted at CPU rates: the
        # two deques stay balanced within one grain.
        assert abs(len(sched._deques["cpu0"]) - len(sched._deques["cpu1"])) <= 1
        assert sched.pending == len(subs)
        seen = []
        i = 0
        while sched.pending:
            nxt = sched.next_for(["cpu0", "cpu1"][i % 2])
            i += 1
            if nxt is not None:
                seen.append(nxt[0].sid)
        assert sorted(seen) == [s.sid for s in subs]

    def test_remove_unknown_worker_raises(self):
        sched = ChunkScheduler(self._subs([5]), [("a", "cpu")])
        with pytest.raises(KeyError):
            sched.remove_worker("ghost")

    def test_remove_last_worker_with_queued_work_rejected(self):
        sched = ChunkScheduler(self._subs([5, 5]), [("a", "cpu")])
        with pytest.raises(ValueError, match="last worker"):
            sched.remove_worker("a")
        # The refusal left the schedule intact.
        assert sched.pending == 2
        assert sched.next_for("a") is not None


class TestScoreMergerBitForBit:
    """The tentpole contract: any chunk-range split, merged in any
    order, reproduces whole-database scores and ranking exactly."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize(
        "scheme",
        [
            default_scheme(),
            ScoringScheme(
                matrix=matrix_by_name("blosum62"),
                gaps=GapModel.affine(5, 2),
            ),
        ],
        ids=["default", "affine52"],
    )
    def test_random_splits_match_whole_database(self, seed, scheme):
        rng = np.random.default_rng(seed)
        db, packed, queries = _workload(seed=20 + seed)
        merger = ScoreMerger(queries, packed, top_hits=8)
        for qi, q in enumerate(queries):
            # Random chunk-range split, merged in shuffled (stolen) order.
            bounds = sorted(
                rng.choice(
                    range(1, len(packed.chunks)),
                    size=min(3, len(packed.chunks) - 1),
                    replace=False,
                )
            )
            edges = [0, *bounds, len(packed.chunks)]
            ranges = list(zip(edges[:-1], edges[1:]))
            rng.shuffle(ranges)
            done = False
            for lo, hi in ranges:
                part = sw_score_packed(q, packed, scheme, chunk_range=(lo, hi))
                done = merger.add(qi, lo, hi, part)
            assert done
            np.testing.assert_array_equal(
                merger._scores[qi], sw_score_packed(q, packed, scheme)
            )

    def test_ranking_matches_kernel_worker(self):
        db, packed, queries = _workload(seed=33)
        scheme = default_scheme()
        worker = KernelWorker(
            name="ref", kind="cpu", database=db, scheme=scheme,
            packed=packed, top_hits=6,
        )
        merger = ScoreMerger(queries, packed, top_hits=6)
        for qi, q in enumerate(queries):
            for k in range(len(packed.chunks)):
                part = sw_score_packed(q, packed, scheme, chunk_range=(k, k + 1))
                merger.add(qi, k, k + 1, part)
            expected = worker.execute(q).result
            got = merger.result(qi)
            assert [(h.subject_id, h.score) for h in got.hits] == [
                (h.subject_id, h.score) for h in expected.hits
            ]

    def test_dtype_escalation_inside_a_range(self):
        # An identical long query/subject pair saturates int16 (score
        # ~ 3500 x 11 for a tryptophan run) so the ladder must escalate
        # inside the chunk-range path exactly as it does whole-database.
        scheme = default_scheme()
        hot = Sequence.from_text("hot", "W" * 3500, alphabet=PROTEIN)
        cold = list(small_database(num_sequences=6, mean_length=30, seed=9))
        packed = PackedDatabase([hot, *cold], chunk_cells=4_000, name="esc")
        assert len(packed.chunks) > 1
        whole_exact = sw_score_packed(
            hot, packed, scheme, levels=(DTYPE_LADDER[-1],)
        )
        assert whole_exact.max() > np.iinfo(np.int16).max  # escalation real
        merger = ScoreMerger([hot], packed, top_hits=3)
        for k in range(len(packed.chunks)):
            part = sw_score_packed(hot, packed, scheme, chunk_range=(k, k + 1))
            merger.add(0, k, k + 1, part)
        np.testing.assert_array_equal(merger._scores[0], whole_exact)

    def test_over_merge_rejected(self):
        _db, packed, queries = _workload()
        scheme = default_scheme()
        merger = ScoreMerger(queries, packed, top_hits=3)
        part = sw_score_packed(
            queries[0], packed, scheme, chunk_range=(0, len(packed.chunks))
        )
        assert merger.add(0, 0, len(packed.chunks), part)
        with pytest.raises(RuntimeError, match="over-merged"):
            merger.add(0, 0, len(packed.chunks), part)

    def test_result_before_done_rejected(self):
        _db, packed, queries = _workload()
        merger = ScoreMerger(queries, packed, top_hits=3)
        with pytest.raises(RuntimeError, match="pending"):
            merger.result(0)

    def test_wrong_row_count_rejected(self):
        _db, packed, queries = _workload()
        merger = ScoreMerger(queries, packed, top_hits=3)
        with pytest.raises(ValueError, match="rows"):
            merger.add(0, 0, 1, np.zeros(packed.num_sequences + 5, dtype=np.int64))
