"""Engine-side pipeline plumbing: counter names, presets, registry
recording, and the ServiceStats/Prometheus surface.

The counter names are part of the observable surface — Prometheus
scrape configs and dashboards reference them — so they are pinned
verbatim here; renaming one is a breaking change, not a refactor.
"""

import pytest

from repro.align.pipeline import StageCounts
from repro.engine.pipeline import (
    PIPELINE_PRESETS,
    STAGE_COUNTER_HELP,
    STAGE_COUNTER_NAMES,
    STAGE_NAMES,
    preset_config,
    record_stage_counts,
    stage_counters,
)
from repro.service import ServiceStats
from repro.telemetry.export import prometheus_text
from repro.telemetry.metrics import MetricsRegistry

ROSTER = [("cpu0", "cpu")]


class TestCounterNameStability:
    def test_stage_names_pinned(self):
        assert STAGE_NAMES == (
            "subjects_scanned",
            "seeds_found",
            "banded_survivors",
            "rescored",
            "reported",
        )

    def test_counter_names_pinned(self):
        assert STAGE_COUNTER_NAMES == {
            "subjects_scanned": "swdual_pipeline_subjects_scanned_total",
            "seeds_found": "swdual_pipeline_seeds_found_total",
            "banded_survivors": "swdual_pipeline_banded_survivors_total",
            "rescored": "swdual_pipeline_rescored_total",
            "reported": "swdual_pipeline_reported_total",
        }

    def test_every_stage_has_help_text(self):
        assert set(STAGE_COUNTER_HELP) == set(STAGE_NAMES)
        assert all(STAGE_COUNTER_HELP[s] for s in STAGE_NAMES)

    def test_exposition_uses_pinned_names(self):
        registry = MetricsRegistry()
        record_stage_counts(
            registry, StageCounts(subjects_scanned=7, reported=1)
        )
        text = prometheus_text(registry)
        assert "swdual_pipeline_subjects_scanned_total 7" in text
        assert "swdual_pipeline_reported_total 1" in text


class TestPresets:
    def test_known_presets(self):
        assert set(PIPELINE_PRESETS) == {"exact", "sensitive", "default", "strict"}

    def test_exact_preset_filters_nothing(self):
        cfg = PIPELINE_PRESETS["exact"]
        assert cfg.filters_disabled and cfg.band_disabled and cfg.zdrop is None

    def test_strictness_ordering(self):
        s = PIPELINE_PRESETS
        assert (
            s["exact"].min_diag_score
            < s["sensitive"].min_diag_score
            < s["default"].min_diag_score
            < s["strict"].min_diag_score
        )
        assert s["sensitive"].bandwidth > s["default"].bandwidth > s["strict"].bandwidth

    def test_preset_config_threshold_override(self):
        cfg = preset_config("default", threshold=77)
        assert cfg.threshold == 77
        base = preset_config("default")
        assert base == PIPELINE_PRESETS["default"]

    def test_unknown_preset(self):
        with pytest.raises(ValueError, match="unknown pipeline preset"):
            preset_config("turbo")


class TestRegistryRecording:
    def test_record_accumulates(self):
        registry = MetricsRegistry()
        record_stage_counts(registry, StageCounts(subjects_scanned=5, seeds_found=9))
        record_stage_counts(registry, {"subjects_scanned": 3})
        record_stage_counts(registry, None)  # no-op
        counters = stage_counters(registry)
        assert counters["subjects_scanned"].value == 8
        assert counters["seeds_found"].value == 9
        assert counters["reported"].value == 0


class TestServiceStatsSurface:
    def test_snapshot_pipeline_section_zero_by_default(self):
        snap = ServiceStats(ROSTER).snapshot()
        assert snap["pipeline"] == {
            "subjects_scanned": 0,
            "seeds_found": 0,
            "banded_survivors": 0,
            "rescored": 0,
            "reported": 0,
            "filter_rate": 0.0,
        }

    def test_snapshot_reflects_recorded_counts(self):
        stats = ServiceStats(ROSTER)
        record_stage_counts(
            stats.registry,
            StageCounts(
                subjects_scanned=100,
                seeds_found=40,
                banded_survivors=10,
                rescored=4,
                reported=2,
            ),
        )
        snap = stats.snapshot()
        assert snap["pipeline"]["subjects_scanned"] == 100
        assert snap["pipeline"]["filter_rate"] == pytest.approx(0.9)

    def test_prometheus_includes_stage_counters(self):
        stats = ServiceStats(ROSTER)
        record_stage_counts(stats.registry, StageCounts(subjects_scanned=12))
        text = stats.prometheus()
        for name in STAGE_COUNTER_NAMES.values():
            assert name in text
        assert "swdual_pipeline_subjects_scanned_total 12" in text
