"""Sharded-search merge determinism: tie ordering and shard-count
edge cases must reproduce the unsharded hit lists exactly."""

import itertools

import numpy as np
import pytest

from repro.engine import Hit, QueryResult, live_search, merge_query_results, sharded_search
from repro.sequences import Sequence, SequenceDatabase, small_database, standard_query_set


def _hits(report, query_id):
    return [(h.subject_id, h.score) for h in report.result_for(query_id).hits]


@pytest.fixture(scope="module")
def tie_workload():
    """A database full of duplicated sequences → guaranteed score ties
    that land in different shards."""
    rng = np.random.default_rng(55)
    base = [
        Sequence(id=f"uniq{i}", codes=rng.integers(0, 20, size=40).astype(np.uint8))
        for i in range(4)
    ]
    # Three copies of each sequence under different ids, interleaved so
    # duplicates are spread across contiguous shards.
    clones = [
        Sequence(id=f"tie{i}_{c}", codes=base[i % 4].codes)
        for c in range(3)
        for i in range(4)
    ]
    db = SequenceDatabase("ties", clones)
    queries = [
        Sequence(id=f"q{i}", codes=rng.integers(0, 20, size=60).astype(np.uint8))
        for i in range(3)
    ]
    return db, queries


class TestTieOrdering:
    def test_sharded_equals_unsharded_under_ties(self, tie_workload):
        db, queries = tie_workload
        plain = live_search(queries, db, 1, 0, policy="self", top_hits=8)
        for workers in (2, 3, 5):
            sharded = sharded_search(queries, db, num_workers=workers, top_hits=8)
            for q in queries:
                assert _hits(sharded, q.id) == _hits(plain, q.id), (
                    f"num_workers={workers}, query={q.id}"
                )

    def test_merge_is_deterministic_across_runs(self, tie_workload):
        db, queries = tie_workload
        first = sharded_search(queries, db, num_workers=4, top_hits=8)
        second = sharded_search(queries, db, num_workers=4, top_hits=8)
        for q in queries:
            assert _hits(first, q.id) == _hits(second, q.id)

    def test_ties_sorted_by_subject_id(self, tie_workload):
        db, queries = tie_workload
        report = sharded_search(queries, db, num_workers=3, top_hits=12)
        for q in queries:
            hits = _hits(report, q.id)
            for (id_a, score_a), (id_b, score_b) in zip(hits, hits[1:]):
                assert score_a >= score_b
                if score_a == score_b:
                    assert id_a < id_b


class TestPartialShardMerge:
    """merge_query_results over shard *subsets* — the contract the
    cluster router leans on when a shard dies and the result degrades
    to partial: the survivors' merge must be exactly the full merge
    with the lost shard's exclusive subjects removed, in the same
    deterministic ``(-score, subject_id)`` order."""

    def _parts(self):
        def qr(*hits):
            return QueryResult(
                query_id="q",
                hits=tuple(Hit(subject_id=s, score=v) for s, v in hits),
            )

        # Equal scores spread across parts: ties between different
        # subject ids land in different "shards".
        a = qr(("s_03", 90), ("s_10", 70), ("s_20", 70))
        b = qr(("s_01", 90), ("s_11", 70), ("s_30", 50))
        c = qr(("s_02", 90), ("s_12", 70), ("s_03", 60))
        return a, b, c

    def test_equal_scores_order_by_subject_id(self):
        a, b, c = self._parts()
        merged = merge_query_results([a, b, c], top=6)
        assert [(h.subject_id, h.score) for h in merged.hits] == [
            ("s_01", 90), ("s_02", 90), ("s_03", 90),
            ("s_10", 70), ("s_11", 70), ("s_12", 70),
        ]

    def test_part_order_never_matters(self):
        a, b, c = self._parts()
        baseline = merge_query_results([a, b, c], top=8).hits
        for permutation in itertools.permutations([a, b, c]):
            assert merge_query_results(list(permutation), top=8).hits == baseline

    def test_duplicate_subject_keeps_best_score(self):
        a, b, c = self._parts()
        merged = merge_query_results([a, c], top=10)
        scores = {h.subject_id: h.score for h in merged.hits}
        # s_03 appears in both parts (90 and 60): best wins, once.
        assert scores["s_03"] == 90
        assert [h.subject_id for h in merged.hits].count("s_03") == 1

    def test_quarantined_shard_subset_merge(self):
        """Dropping any one part (a quarantined/dead shard) yields the
        merge of the survivors — same rule, smaller input — and stays
        deterministically ordered."""
        a, b, c = self._parts()
        parts = {"a": a, "b": b, "c": c}
        for lost in parts:
            survivors = [p for name, p in parts.items() if name != lost]
            merged = merge_query_results(survivors, top=10)
            hits = [(h.subject_id, h.score) for h in merged.hits]
            assert hits == sorted(hits, key=lambda h: (-h[1], h[0]))
            surviving_subjects = {h.subject_id for p in survivors for h in p.hits}
            assert {s for s, _ in hits} <= surviving_subjects

    def test_mismatched_query_ids_rejected(self):
        a = QueryResult(query_id="q1", hits=(Hit(subject_id="s", score=1),))
        b = QueryResult(query_id="q2", hits=(Hit(subject_id="t", score=1),))
        with pytest.raises(ValueError):
            merge_query_results([a, b])


class TestOversizedShardCounts:
    def test_more_shards_than_sequences_clamps(self):
        db = small_database(num_sequences=3, mean_length=40, seed=9)
        queries = standard_query_set(count=2).scaled(0.01).materialize(seed=10)
        plain = live_search(list(queries), db, 1, 0, policy="self", top_hits=3)
        report = sharded_search(list(queries), db, num_workers=10, top_hits=3)
        # Clamped to one worker per sequence.
        assert len(report.worker_stats) == len(db)
        for q in queries:
            assert _hits(report, q.id) == _hits(plain, q.id)

    def test_exactly_len_db_shards(self):
        db = small_database(num_sequences=4, mean_length=30, seed=11)
        queries = standard_query_set(count=2).scaled(0.01).materialize(seed=12)
        plain = live_search(list(queries), db, 1, 0, policy="self", top_hits=4)
        report = sharded_search(list(queries), db, num_workers=len(db), top_hits=4)
        assert len(report.worker_stats) == len(db)
        for q in queries:
            assert _hits(report, q.id) == _hits(plain, q.id)

    def test_single_sequence_database(self):
        db = SequenceDatabase(
            "one",
            [Sequence(id="only", codes=np.arange(20, dtype=np.uint8) % 20)],
        )
        queries = standard_query_set(count=1).scaled(0.01).materialize(seed=13)
        report = sharded_search(list(queries), db, num_workers=6, top_hits=1)
        assert len(report.worker_stats) == 1
        assert _hits(report, queries[0].id)[0][0] == "only"
