"""Tests for sharded search and top-hit alignment reconstruction."""

import pytest

from repro.align import default_scheme
from repro.engine import (
    KernelWorker,
    live_search,
    shard_database,
    sharded_search,
)
from repro.sequences import small_database, standard_query_set


@pytest.fixture(scope="module")
def workload():
    db = small_database(num_sequences=24, mean_length=80, seed=71)
    queries = standard_query_set(count=3).scaled(0.02).materialize(seed=72)
    return db, queries


class TestShardDatabase:
    def test_covers_all_sequences(self, workload):
        db, _ = workload
        shards = shard_database(db, 5)
        assert sum(len(s) for s in shards) == len(db)
        ids = [seq.id for shard in shards for seq in shard]
        assert ids == [seq.id for seq in db]

    def test_residue_balance(self, workload):
        db, _ = workload
        shards = shard_database(db, 4)
        sizes = [s.total_residues for s in shards]
        assert max(sizes) < 2.5 * min(sizes)

    def test_single_shard_is_whole_db(self, workload):
        db, _ = workload
        shards = shard_database(db, 1)
        assert len(shards) == 1
        assert len(shards[0]) == len(db)

    def test_validation(self, workload):
        db, _ = workload
        with pytest.raises(ValueError):
            shard_database(db, 0)

    def test_oversized_count_clamps_with_warning(self, workload):
        db, _ = workload
        with pytest.warns(UserWarning, match="clamping"):
            shards = shard_database(db, len(db) + 1)
        assert len(shards) == len(db)
        assert all(len(s) == 1 for s in shards)


class TestShardedSearch:
    def test_matches_unsharded(self, workload):
        db, queries = workload
        sharded = sharded_search(queries, db, num_workers=3, top_hits=5)
        plain = live_search(queries, db, 1, 0, policy="self", top_hits=5)
        for q in queries:
            a = [(h.subject_id, h.score) for h in sharded.result_for(q.id).hits]
            b = [(h.subject_id, h.score) for h in plain.result_for(q.id).hits]
            assert a == b

    def test_cells_cover_whole_database(self, workload):
        db, queries = workload
        report = sharded_search(queries, db, num_workers=4)
        expected = sum(len(q) for q in queries) * db.total_residues
        assert report.total_cells == expected

    def test_each_worker_scored_every_query(self, workload):
        db, queries = workload
        report = sharded_search(queries, db, num_workers=3)
        for ws in report.worker_stats:
            assert ws.tasks_executed == len(queries)

    def test_validation(self, workload):
        db, queries = workload
        with pytest.raises(ValueError):
            sharded_search([], db)
        with pytest.raises(ValueError):
            sharded_search(queries, db, num_workers=0)


class TestAlignTop:
    def test_alignments_match_hit_scores(self, workload):
        db, queries = workload
        worker = KernelWorker(
            "w", "cpu", db, default_scheme(), top_hits=5, align_top=3
        )
        execution = worker.execute(queries[0])
        assert len(execution.alignments) == 3
        for hit, alignment in zip(execution.result.hits, execution.alignments):
            assert alignment.score == hit.score
            assert alignment.subject_id == hit.subject_id
            assert alignment.query_id == queries[0].id

    def test_align_top_zero_default(self, workload):
        db, queries = workload
        worker = KernelWorker("w", "cpu", db, default_scheme())
        execution = worker.execute(queries[0])
        assert execution.alignments == []

    def test_validation(self, workload):
        db, _ = workload
        with pytest.raises(ValueError):
            KernelWorker("w", "cpu", db, default_scheme(), align_top=-1)
