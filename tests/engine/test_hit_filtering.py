"""Tests for hit filtering and shard merging."""

import pytest

from repro.engine import Hit, QueryResult, filter_hits, merge_query_results


@pytest.fixture()
def result():
    return QueryResult(
        "q",
        (
            Hit("a", 100, evalue=1e-20),
            Hit("b", 60, evalue=1e-6),
            Hit("c", 30, evalue=0.5),
            Hit("d", 10),  # no E-value annotation
        ),
    )


class TestFilterHits:
    def test_min_score(self, result):
        out = filter_hits(result, min_score=50)
        assert [h.subject_id for h in out.hits] == ["a", "b"]

    def test_max_evalue(self, result):
        out = filter_hits(result, max_evalue=1e-3)
        assert [h.subject_id for h in out.hits] == ["a", "b"]

    def test_max_evalue_drops_unannotated(self, result):
        out = filter_hits(result, max_evalue=1000.0)
        assert "d" not in [h.subject_id for h in out.hits]

    def test_top(self, result):
        out = filter_hits(result, top=2)
        assert len(out.hits) == 2

    def test_combined(self, result):
        out = filter_hits(result, min_score=20, max_evalue=1.0, top=1)
        assert [h.subject_id for h in out.hits] == ["a"]

    def test_no_filters_identity(self, result):
        assert filter_hits(result).hits == result.hits

    def test_validation(self, result):
        with pytest.raises(ValueError):
            filter_hits(result, top=-1)


class TestMergeQueryResults:
    def test_merge_disjoint_shards(self):
        a = QueryResult("q", (Hit("s1", 50), Hit("s2", 20)))
        b = QueryResult("q", (Hit("s3", 40),))
        merged = merge_query_results([a, b])
        assert [h.subject_id for h in merged.hits] == ["s1", "s3", "s2"]

    def test_duplicates_keep_best(self):
        a = QueryResult("q", (Hit("s1", 50),))
        b = QueryResult("q", (Hit("s1", 70),))
        merged = merge_query_results([a, b])
        assert merged.hits == (Hit("s1", 70),)

    def test_top_truncation(self):
        a = QueryResult("q", (Hit("s1", 50), Hit("s2", 20)))
        b = QueryResult("q", (Hit("s3", 40),))
        merged = merge_query_results([a, b], top=2)
        assert len(merged.hits) == 2

    def test_tie_break_deterministic(self):
        a = QueryResult("q", (Hit("zz", 50),))
        b = QueryResult("q", (Hit("aa", 50),))
        merged = merge_query_results([a, b])
        assert [h.subject_id for h in merged.hits] == ["aa", "zz"]

    def test_mixed_queries_rejected(self):
        a = QueryResult("q1", ())
        b = QueryResult("q2", ())
        with pytest.raises(ValueError, match="different queries"):
            merge_query_results([a, b])

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="nothing"):
            merge_query_results([])
