"""Persistent process-pool tests: batch reuse, exception-safe
teardown (no orphan processes), and the warm-vs-cold latency win that
motivates the resident service."""

import time

import pytest

from repro.engine import ProcessWorkerPool, ProtocolError, live_search, process_search
from repro.sequences import small_database, standard_query_set


@pytest.fixture(scope="module")
def workload():
    db = small_database(num_sequences=12, mean_length=50, seed=41)
    queries = list(standard_query_set(count=3).scaled(0.01).materialize(seed=42))
    return db, queries


def _hits(report):
    return [
        [(h.subject_id, h.score) for h in qr.hits] for qr in report.query_results
    ]


class TestLifecycle:
    def test_double_start_rejected(self, workload):
        db, _ = workload
        with ProcessWorkerPool(db, num_cpu_workers=1) as pool:
            with pytest.raises(ProtocolError, match="started"):
                pool.start()

    def test_close_is_idempotent(self, workload):
        db, queries = workload
        pool = ProcessWorkerPool(db, num_cpu_workers=1)
        pool.start()
        pool.run_batch(queries)
        pool.close()
        pool.close()
        assert not pool.started

    def test_batch_on_unstarted_pool(self, workload):
        db, queries = workload
        pool = ProcessWorkerPool(db, num_cpu_workers=1)
        with pytest.raises(ProtocolError, match="not started"):
            pool.run_batch(queries)

    def test_batch_on_closed_pool(self, workload):
        db, queries = workload
        with ProcessWorkerPool(db, num_cpu_workers=1) as pool:
            pass
        with pytest.raises(ProtocolError, match="closed"):
            pool.run_batch(queries)

    def test_lifetime_cells_collected_on_graceful_close(self, workload):
        db, queries = workload
        pool = ProcessWorkerPool(db, num_cpu_workers=1)
        pool.start()
        pool.run_batch(queries)
        pool.run_batch(queries)
        pool.close()
        expected = 2 * sum(len(q) for q in queries) * db.total_residues
        assert sum(pool.lifetime_cells.values()) == expected


class TestBatches:
    def test_many_batches_match_threaded_engine(self, workload):
        db, queries = workload
        reference = live_search(
            queries, db, num_cpu_workers=1, num_gpu_workers=0,
            policy="self", top_hits=5,
        )
        with ProcessWorkerPool(db, num_cpu_workers=1, num_gpu_workers=1) as pool:
            for policy in ("self", "swdual", "swdual-dp"):
                report = pool.run_batch(queries, policy=policy)
                assert _hits(report) == _hits(reference), policy

    def test_streaming_callback(self, workload):
        db, queries = workload
        seen = []
        with ProcessWorkerPool(db, num_cpu_workers=2) as pool:
            pool.run_batch(
                queries,
                on_result=lambda j, result, worker, elapsed: seen.append(j),
            )
        assert sorted(seen) == list(range(len(queries)))


class TestExceptionSafety:
    def test_dead_worker_batch_recovers_and_leaves_no_orphans(self, workload):
        db, queries = workload
        reference = live_search(
            queries, db, num_cpu_workers=1, num_gpu_workers=0,
            policy="self", top_hits=5,
        )
        pool = ProcessWorkerPool(db, num_cpu_workers=2)
        pool.start()
        victims = list(pool._processes)
        # Kill one worker mid-pool: the batch must complete on the
        # survivor, bit-identical to the fault-free run...
        victims[0].terminate()
        victims[0].join(timeout=10)
        report = pool.run_batch(queries)
        assert _hits(report) == _hits(reference)
        assert report.quarantined == ()
        assert pool.recovery.of_kind("worker_lost")
        assert pool.alive_workers == ["proc1"]
        # ...and teardown must reap the dead child without raising.
        pool.close()
        for proc in victims:
            assert not proc.is_alive()

    def test_last_worker_death_fails_loudly(self, workload):
        db, queries = workload
        pool = ProcessWorkerPool(db, num_cpu_workers=1)
        pool.start()
        victims = list(pool._processes)
        victims[0].terminate()
        victims[0].join(timeout=10)
        with pytest.raises(ProtocolError):
            pool.run_batch(queries)
        # Every child must already be torn down (no orphans).
        for proc in victims:
            assert not proc.is_alive()
        pool.close()  # still safe to call
        for proc in victims:
            assert not proc.is_alive()

    def test_one_shot_search_leaves_no_processes(self, workload):
        import multiprocessing as mp

        db, queries = workload
        before = set(id(c) for c in mp.active_children())
        process_search(queries, db, num_workers=2, top_hits=3)
        leftover = [c for c in mp.active_children() if id(c) not in before]
        for child in leftover:  # pragma: no cover - only on leak
            child.terminate()
        assert not leftover


class TestWarmLatency:
    def test_warm_pool_beats_one_shot_by_2x(self, workload):
        """The resident-runtime claim: on repeated queries a warm pool's
        per-query latency must beat one-shot process_search (which pays
        spawn + pack every call) by at least 2x."""
        db, queries = workload
        query = queries[0]

        cold = min(
            _timed(lambda: process_search([query], db, num_workers=1, top_hits=3))
            for _ in range(3)
        )
        with ProcessWorkerPool(db, num_cpu_workers=1, top_hits=3) as pool:
            pool.run_batch([query])  # warm-up round
            warm = min(
                _timed(lambda: pool.run_batch([query])) for _ in range(3)
            )
        assert warm * 2 <= cold, f"warm {warm * 1e3:.2f}ms vs cold {cold * 1e3:.2f}ms"


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
