"""Execution backends of the live engine: threads vs processes, live
calibration, and the shared static-allocation predictor."""

import pytest

from repro.engine import (
    LIVE_EXECUTION_MODES,
    calibrate_live,
    live_search,
    predict_static_allocation,
    process_search,
)
from repro.sequences import small_database, standard_query_set


@pytest.fixture(scope="module")
def workload():
    database = small_database(num_sequences=16, mean_length=50, seed=15)
    queries = standard_query_set(count=4).scaled(0.02).materialize(seed=16)
    return database, queries


def hits_of(report):
    return [
        [(h.subject_id, h.score) for h in qr.hits] for qr in report.query_results
    ]


class TestProcessExecution:
    def test_processes_match_threads(self, workload):
        database, queries = workload
        threaded = live_search(queries, database, 2, 0, policy="self")
        processed = live_search(
            queries, database, 2, 0, policy="self", execution="processes"
        )
        assert processed.label == "process-self"
        assert hits_of(processed) == hits_of(threaded)

    def test_gpu_process_workers_static_policy(self, workload):
        database, queries = workload
        threaded = live_search(queries, database, 1, 1, policy="swdual")
        processed = live_search(
            queries,
            database,
            1,
            1,
            policy="swdual",
            execution="processes",
            measured_gcups={"cpu": 1.0, "gpu": 2.0},
        )
        assert processed.label == "process-swdual"
        assert hits_of(processed) == hits_of(threaded)
        kinds = {w.name: w.kind for w in processed.worker_stats}
        assert kinds == {"proc0": "cpu", "gproc0": "gpu"}
        assert (
            sum(w.tasks_executed for w in processed.worker_stats) == len(queries)
        )

    def test_execution_mode_validation(self, workload):
        database, queries = workload
        assert LIVE_EXECUTION_MODES == ("threads", "processes")
        with pytest.raises(ValueError, match="execution"):
            live_search(queries, database, 1, 0, execution="carrier-pigeon")

    def test_evalue_model_rejected_over_processes(self, workload):
        database, queries = workload
        with pytest.raises(ValueError, match="evalue_model"):
            live_search(
                queries,
                database,
                1,
                0,
                execution="processes",
                evalue_model=object(),
            )

    def test_process_search_policy_validation(self, workload):
        database, queries = workload
        with pytest.raises(ValueError, match="policy"):
            process_search(queries, database, num_workers=1, policy="chaos")


class TestCalibrateLive:
    def test_returns_positive_rates_for_both_roles(self, workload):
        database, _ = workload
        rates = calibrate_live(database)
        assert set(rates) == {"cpu", "gpu"}
        assert all(v > 0 for v in rates.values())

    def test_feeds_live_search(self, workload):
        database, queries = workload
        report = live_search(
            queries, database, 1, 1, policy="swdual", calibrate=True
        )
        assert sum(w.tasks_executed for w in report.worker_stats) == len(queries)


class TestPredictStaticAllocation:
    def test_covers_all_queries_once(self, workload):
        _, queries = workload
        workers = [("a", "cpu"), ("b", "cpu"), ("c", "gpu")]
        batches, summary = predict_static_allocation(
            queries, 10_000, workers, "swdual", {"cpu": 1.0, "gpu": 3.0}
        )
        assert set(batches) == {"a", "b", "c"}
        assigned = sorted(j for batch in batches.values() for j in batch)
        assert assigned == list(range(len(queries)))
        assert summary

    def test_class_keys_equal_name_keys(self, workload):
        _, queries = workload
        workers = [("w0", "cpu"), ("w1", "gpu")]
        by_class, _ = predict_static_allocation(
            queries, 10_000, workers, "swdual", {"cpu": 1.0, "gpu": 4.0}
        )
        by_name, _ = predict_static_allocation(
            queries, 10_000, workers, "swdual", {"w0": 1.0, "w1": 4.0}
        )
        assert by_class == by_name
