"""Kernel-backend resolution across the process transport.

Only the *requested* backend name crosses the spawn/pickle boundary;
every worker process re-runs the capability probe locally and reports
its own outcome in the register message.  These tests force divergent
outcomes with ``SWDUAL_DISABLE_BACKENDS`` (env vars are inherited by
worker processes, so the knob reaches where monkeypatching cannot) and
check that mixed masters/workers still merge bit-identically.
"""

import pytest

from repro.align.backend import clear_backend_cache, resolve_backend
from repro.engine import ProcessWorkerPool, live_search, process_search
from repro.sequences import small_database, standard_query_set


@pytest.fixture(scope="module")
def workload():
    db = small_database(num_sequences=12, mean_length=50, seed=41)
    queries = list(standard_query_set(count=3).scaled(0.01).materialize(seed=42))
    return db, queries


@pytest.fixture(autouse=True)
def _fresh_probe(monkeypatch):
    monkeypatch.delenv("SWDUAL_KERNEL_BACKEND", raising=False)
    monkeypatch.delenv("SWDUAL_DISABLE_BACKENDS", raising=False)
    clear_backend_cache()
    yield
    clear_backend_cache()


def _hits(report):
    return [
        [(h.subject_id, h.score) for h in qr.hits] for qr in report.query_results
    ]


@pytest.mark.parametrize("start_method", ["fork", "spawn"])
def test_workers_reprobe_after_spawn_and_report_fallback(
    workload, monkeypatch, start_method
):
    """Children disabled down to numpy must say so in WorkerStats, even
    when the master's own probe resolved a compiled tier."""
    db, queries = workload
    master_info = resolve_backend("auto")  # master-side outcome, any tier
    monkeypatch.setenv("SWDUAL_DISABLE_BACKENDS", "numba,cc")
    report = process_search(
        queries,
        db,
        num_workers=2,
        start_method=start_method,
        kernel_backend="auto",
    )
    backends = {w.backend for w in report.worker_stats}
    assert backends == {"numpy"}
    # The forced-fallback run still matches the in-process engine.
    del master_info  # outcome is irrelevant to correctness — that's the point
    threaded = live_search(queries, db, num_cpu_workers=1, num_gpu_workers=0,
                           top_hits=5, policy="self", backend="numpy")
    assert _hits(report) == _hits(threaded)


def test_workers_report_their_local_tier(workload):
    """Without forcing, each process worker's register message carries
    the tier its *own* probe picked — the same one the master resolves
    for this machine (identical container, identical outcome)."""
    db, queries = workload
    expected = resolve_backend("auto").name
    pool = ProcessWorkerPool(db, num_cpu_workers=2, kernel_backend="auto")
    pool.start()
    try:
        assert set(pool.worker_backends) == {name for name, _ in pool.roster}
        assert set(pool.worker_backends.values()) == {expected}
        report = pool.run_batch(queries)
        assert {w.backend for w in report.worker_stats} == {expected}
    finally:
        pool.close()


def test_mixed_master_worker_tiers_merge_bitexact(workload, monkeypatch):
    """A numpy-forced pool must return exactly what an unforced pool
    returns: scores are backend-independent by the conformance grid, so
    a heterogeneous fleet (master on one tier, workers on another) is
    semantically invisible."""
    db, queries = workload
    monkeypatch.setenv("SWDUAL_DISABLE_BACKENDS", "numba,cc")
    forced = process_search(queries, db, num_workers=2, kernel_backend="auto")
    monkeypatch.delenv("SWDUAL_DISABLE_BACKENDS")
    unforced = process_search(queries, db, num_workers=2, kernel_backend="auto")
    assert _hits(forced) == _hits(unforced)


def test_data_planes_identical_across_tiers(workload, monkeypatch):
    """shm-attached and pickled-copy workers, compiled and forced-numpy
    tiers: four corners, one answer.  The compiled chunk kernels read
    attached SharedArena views in place, so zero-copy must not change a
    single score."""
    from repro.sequences.shm import shm_available

    if not shm_available():
        pytest.skip("no POSIX shared memory on this platform")
    db, queries = workload
    corners = []
    for plane in ("shm", "pickle"):
        for disable in ("", "numba,cc"):
            if disable:
                monkeypatch.setenv("SWDUAL_DISABLE_BACKENDS", disable)
            else:
                monkeypatch.delenv("SWDUAL_DISABLE_BACKENDS", raising=False)
            report = process_search(
                queries, db, num_workers=2, data_plane=plane,
                dispatch="chunk", kernel_backend="auto",
            )
            corners.append(_hits(report))
    assert all(c == corners[0] for c in corners[1:])


def test_requested_name_not_resolved_object_is_shipped(workload):
    """The pool ships the requested *name*; pinning numpy on the master
    pins every worker regardless of what the machine could run."""
    db, queries = workload
    pool = ProcessWorkerPool(db, num_cpu_workers=1, kernel_backend="numpy")
    pool.start()
    try:
        assert set(pool.worker_backends.values()) == {"numpy"}
    finally:
        pool.close()
