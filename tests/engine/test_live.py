"""Tests for the live master-slave engine (real kernels, threads)."""

import pytest

from repro.align import default_scheme, sw_score
from repro.engine import (
    KernelWorker,
    Master,
    ProtocolError,
    live_search,
)
from repro.sequences import small_database, standard_query_set


@pytest.fixture(scope="module")
def workload():
    database = small_database(num_sequences=20, mean_length=60, seed=5)
    queries = standard_query_set(count=4).scaled(0.02).materialize(seed=6)
    return database, queries


class TestKernelWorker:
    def test_execute_returns_sorted_hits(self, workload):
        database, queries = workload
        worker = KernelWorker("cpu0", "cpu", database, default_scheme(), top_hits=5)
        execution = worker.execute(queries[0])
        scores = [h.score for h in execution.result.hits]
        assert scores == sorted(scores, reverse=True)
        assert len(scores) == 5

    def test_scores_match_scalar_reference(self, workload):
        database, queries = workload
        worker = KernelWorker("cpu0", "cpu", database, default_scheme(), top_hits=3)
        execution = worker.execute(queries[0])
        scheme = default_scheme()
        by_id = {s.id: s for s in database}
        for hit in execution.result.hits:
            assert hit.score == sw_score(queries[0], by_id[hit.subject_id], scheme)

    def test_cells_accounting(self, workload):
        database, queries = workload
        worker = KernelWorker("cpu0", "cpu", database, default_scheme())
        execution = worker.execute(queries[0])
        assert execution.cells == len(queries[0]) * database.total_residues
        assert worker.counter.total_cells == execution.cells

    def test_validation(self, workload):
        database, _ = workload
        with pytest.raises(ValueError):
            KernelWorker("w", "tpu", database, default_scheme())
        with pytest.raises(ValueError):
            KernelWorker("w", "cpu", database, default_scheme(), top_hits=0)


class TestMaster:
    def test_duplicate_registration_rejected(self, workload):
        database, queries = workload
        master = Master(queries)
        worker = KernelWorker("cpu0", "cpu", database, default_scheme())
        master.register_worker(worker)
        with pytest.raises(ProtocolError, match="already registered"):
            master.register_worker(
                KernelWorker("cpu0", "cpu", database, default_scheme())
            )

    def test_run_without_workers(self, workload):
        _, queries = workload
        with pytest.raises(ProtocolError, match="no workers"):
            Master(queries).run()

    def test_mismatched_databases_rejected(self, workload):
        database, queries = workload
        other = small_database(num_sequences=5, mean_length=30, seed=9)
        master = Master(queries)
        master.register_worker(KernelWorker("a", "cpu", database, default_scheme()))
        master.register_worker(KernelWorker("b", "cpu", other, default_scheme()))
        with pytest.raises(ProtocolError, match="different databases"):
            master.run()

    def test_policy_validation(self, workload):
        _, queries = workload
        with pytest.raises(ValueError):
            Master(queries, policy="chaos")
        with pytest.raises(ValueError):
            Master([])


class TestLiveSearch:
    def test_all_queries_answered(self, workload):
        database, queries = workload
        report = live_search(queries, database, 1, 1, policy="swdual")
        assert len(report.query_results) == len(queries)
        assert {qr.query_id for qr in report.query_results} == {
            q.id for q in queries
        }

    def test_results_independent_of_policy_and_workers(self, workload):
        database, queries = workload
        a = live_search(queries, database, 1, 1, policy="swdual")
        b = live_search(queries, database, 2, 0, policy="self")
        for q in queries:
            ha = [(h.subject_id, h.score) for h in a.result_for(q.id).hits]
            hb = [(h.subject_id, h.score) for h in b.result_for(q.id).hits]
            assert ha == hb

    def test_gpu_and_cpu_kernels_agree(self, workload):
        database, queries = workload
        gpu_only = live_search(queries, database, 0, 1, policy="self")
        cpu_only = live_search(queries, database, 1, 0, policy="self")
        for q in queries:
            assert [
                (h.subject_id, h.score) for h in gpu_only.result_for(q.id).hits
            ] == [(h.subject_id, h.score) for h in cpu_only.result_for(q.id).hits]

    def test_cells_total(self, workload):
        database, queries = workload
        report = live_search(queries, database, 1, 0, policy="self")
        expected = sum(len(q) for q in queries) * database.total_residues
        assert report.total_cells == expected

    def test_validation(self, workload):
        database, queries = workload
        with pytest.raises(ValueError):
            live_search(queries, database, 0, 0)
        with pytest.raises(ValueError):
            live_search(queries, database, -1, 1)

    def test_swdual_static_allocation_covers_all(self, workload):
        database, queries = workload
        report = live_search(
            queries,
            database,
            num_cpu_workers=2,
            num_gpu_workers=1,
            policy="swdual",
            measured_gcups={"cpu0": 1.0, "cpu1": 1.0, "gpu0": 3.0},
        )
        assert sum(w.tasks_executed for w in report.worker_stats) == len(queries)
