"""ServiceStats: percentile snapshots, Prometheus rendering, and
consistency under concurrent recording."""

import threading

import pytest

from repro.service import ServiceStats

ROSTER = [("cpu0", "cpu"), ("cpu1", "cpu"), ("gpu0", "gpu")]


class _FakeWorkerStats:
    def __init__(self, kind, tasks, busy, cells):
        self.kind = kind
        self.tasks_executed = tasks
        self.busy_seconds = busy
        self.cells = cells


class _FakeReport:
    def __init__(self, worker_stats, num_queries):
        self.worker_stats = worker_stats
        self.query_results = [object()] * num_queries


class TestSnapshot:
    def test_empty_snapshot_shape(self):
        snap = ServiceStats(ROSTER).snapshot()
        assert snap["requests"] == {
            "received": 0,
            "completed": 0,
            "rejected": 0,
            "errors": 0,
            "queue_depth": 0,
            "in_flight": 0,
        }
        assert snap["latency"]["p50_s"] == 0.0
        assert snap["queue_wait"]["p99_s"] == 0.0
        assert snap["roles"]["cpu"]["workers"] == 2
        assert snap["roles"]["gpu"]["workers"] == 1
        assert snap["throughput_qps"] == 0.0

    def test_latency_percentiles_from_histogram(self):
        stats = ServiceStats(ROSTER)
        for i in range(100):
            stats.record_result(latency_s=0.001 * (i + 1), queue_wait_s=0.0005)
        snap = stats.snapshot()
        lat = snap["latency"]
        assert lat["mean_s"] == pytest.approx(0.0505)
        assert lat["max_s"] == pytest.approx(0.1)
        assert 0.02 <= lat["p50_s"] <= 0.08
        assert lat["p50_s"] <= lat["p90_s"] <= lat["p99_s"] <= lat["max_s"]
        assert snap["queue_wait"]["max_s"] == pytest.approx(0.0005)

    def test_record_batch_accumulates_roles(self):
        stats = ServiceStats(ROSTER)
        report = _FakeReport(
            [
                _FakeWorkerStats("cpu", 3, 0.5, 1_000_000),
                _FakeWorkerStats("gpu", 2, 0.25, 2_000_000),
            ],
            num_queries=5,
        )
        stats.record_batch(report)
        stats.record_batch(report)
        snap = stats.snapshot()
        assert snap["batches"] == {"count": 2, "mean_size": 5.0}
        assert snap["roles"]["cpu"]["tasks"] == 6
        assert snap["roles"]["cpu"]["busy_seconds"] == pytest.approx(1.0)
        assert snap["roles"]["gpu"]["cells"] == 4_000_000
        assert snap["roles"]["gpu"]["gcups"] > 0

    def test_gauges_passed_through(self):
        snap = ServiceStats(ROSTER).snapshot(queue_depth=3, in_flight=2)
        assert snap["requests"]["queue_depth"] == 3
        assert snap["requests"]["in_flight"] == 2


class TestPrometheus:
    def test_exposition_contains_all_families(self):
        stats = ServiceStats(ROSTER)
        stats.record_received()
        stats.record_result(0.01, 0.001)
        stats.record_rejected()
        stats.record_error()
        text = stats.prometheus(queue_depth=1, in_flight=1)
        assert text.endswith("\n")
        assert "# TYPE swdual_requests_received_total counter" in text
        assert "swdual_requests_received_total 1" in text
        assert "swdual_requests_completed_total 1" in text
        assert "swdual_requests_rejected_total 1" in text
        assert "swdual_requests_errors_total 1" in text
        assert "# TYPE swdual_request_latency_seconds histogram" in text
        assert 'swdual_request_latency_seconds_bucket{le="+Inf"} 1' in text
        assert "swdual_request_latency_seconds_count 1" in text
        assert 'swdual_role_workers{role="cpu"} 2' in text
        assert 'swdual_role_workers{role="gpu"} 1' in text
        assert "swdual_queue_depth 1" in text
        assert "swdual_in_flight 1" in text

    def test_instances_do_not_share_registries(self):
        a, b = ServiceStats(ROSTER), ServiceStats(ROSTER)
        a.record_received()
        assert b.snapshot()["requests"]["received"] == 0


class TestConcurrentRecording:
    def test_snapshot_consistent_under_hammer(self):
        """Threads hammer every record path while snapshot() runs; the
        final totals must be exact and intermediate snapshots sane."""
        stats = ServiceStats(ROSTER)
        per_thread, num_threads = 300, 6
        report = _FakeReport([_FakeWorkerStats("cpu", 1, 0.001, 1000)], 1)
        stop = threading.Event()
        snapshot_errors = []

        def hammer():
            for i in range(per_thread):
                stats.record_received()
                stats.record_result(0.001 * (i % 50 + 1), 0.0001 * (i % 10))
                stats.record_rejected()
                stats.record_error()
                stats.record_batch(report)

        def snapshotter():
            while not stop.is_set():
                try:
                    snap = stats.snapshot()
                    assert snap["requests"]["completed"] <= per_thread * num_threads
                    lat = snap["latency"]
                    assert 0.0 <= lat["p50_s"] <= lat["max_s"] + 1e-12
                    stats.prometheus()
                except Exception as exc:  # pragma: no cover
                    snapshot_errors.append(exc)
                    return

        reader = threading.Thread(target=snapshotter)
        writers = [threading.Thread(target=hammer) for _ in range(num_threads)]
        reader.start()
        for w in writers:
            w.start()
        for w in writers:
            w.join()
        stop.set()
        reader.join()
        assert not snapshot_errors
        total = per_thread * num_threads
        snap = stats.snapshot()
        assert snap["requests"]["received"] == total
        assert snap["requests"]["completed"] == total
        assert snap["requests"]["rejected"] == total
        assert snap["requests"]["errors"] == total
        assert snap["batches"]["count"] == total
        assert snap["roles"]["cpu"]["tasks"] == total
        assert snap["roles"]["cpu"]["busy_seconds"] == pytest.approx(0.001 * total)
