"""Service-layer integration of the shm data plane and chunk dispatch:
steal telemetry in :class:`ServiceStats`, `WarmPool` pass-through to
the process transport, and an end-to-end service on the chunk path."""

import pytest

from repro.engine import live_search
from repro.service import SearchClient, SearchService, ServiceStats, WarmPool
from repro.sequences import small_database, standard_query_set
from repro.sequences.shm import shm_available

needs_shm = pytest.mark.skipif(
    not shm_available(), reason="POSIX shared memory unavailable"
)

ROSTER = [("proc0", "cpu"), ("gproc0", "gpu")]


class _FakeWorkerStats:
    def __init__(self, kind, tasks, busy, cells, steals=0):
        self.kind = kind
        self.tasks_executed = tasks
        self.busy_seconds = busy
        self.cells = cells
        self.steals = steals


class _FakeReport:
    def __init__(self, worker_stats, num_queries):
        self.worker_stats = worker_stats
        self.query_results = [object()] * num_queries


class TestStealTelemetry:
    def test_record_batch_accumulates_steals(self):
        stats = ServiceStats(ROSTER)
        report = _FakeReport(
            [
                _FakeWorkerStats("cpu", 2, 0.5, 1_000_000, steals=1),
                _FakeWorkerStats("gpu", 1, 0.25, 500_000, steals=3),
            ],
            num_queries=3,
        )
        stats.record_batch(report)
        stats.record_batch(report)
        snap = stats.snapshot()
        assert snap["roles"]["cpu"]["steals"] == 2
        assert snap["roles"]["gpu"]["steals"] == 6

    def test_whole_query_stats_report_zero_steals(self):
        stats = ServiceStats(ROSTER)
        stats.record_batch(
            _FakeReport([_FakeWorkerStats("cpu", 2, 0.5, 1_000)], num_queries=2)
        )
        assert stats.snapshot()["roles"]["cpu"]["steals"] == 0

    def test_prometheus_exposes_role_steals(self):
        stats = ServiceStats(ROSTER)
        stats.record_batch(
            _FakeReport(
                [_FakeWorkerStats("gpu", 1, 0.1, 1_000, steals=4)], num_queries=1
            )
        )
        text = stats.prometheus()
        assert "# TYPE swdual_role_steals_total counter" in text
        assert 'swdual_role_steals_total{role="gpu"} 4' in text
        assert 'swdual_role_steals_total{role="cpu"} 0' in text


@needs_shm
class TestWarmPoolPassThrough:
    @pytest.fixture(scope="class")
    def workload(self):
        db = small_database(num_sequences=16, mean_length=50, seed=71)
        queries = standard_query_set(count=3).scaled(0.012).materialize(seed=72)
        return db, queries

    def test_chunk_dispatch_matches_threads_backend(self, workload):
        db, queries = workload
        with WarmPool(
            db, 1, 1, backend="threads", policy="self", top_hits=4
        ) as ref_pool:
            ref = ref_pool.run_batch(queries)
        with WarmPool(
            db,
            1,
            1,
            backend="processes",
            policy="self",
            top_hits=4,
            chunk_cells=1_500,
            data_plane="shm",
            dispatch="chunk",
        ) as pool:
            report = pool.run_batch(queries)
        for a, b in zip(ref.query_results, report.query_results):
            assert [(h.subject_id, h.score) for h in a.hits] == [
                (h.subject_id, h.score) for h in b.hits
            ]

    def test_registry_reaches_process_pool(self, workload):
        db, queries = workload
        stats = ServiceStats(ROSTER)
        with WarmPool(
            db,
            1,
            1,
            backend="processes",
            top_hits=4,
            chunk_cells=1_500,
            data_plane="shm",
            dispatch="chunk",
            registry=stats.registry,
        ) as pool:
            pool.run_batch(queries)
        text = stats.prometheus()
        # The transport's metrics land in the service registry.
        assert "swdual_steals_total" in text
        assert "swdual_shm_attach_seconds" in text
        assert "swdual_subtask_queue_depth" in text


@needs_shm
class TestServiceOnChunkPath:
    def test_end_to_end_results_and_stats(self):
        db = small_database(num_sequences=16, mean_length=50, seed=81)
        queries = list(
            standard_query_set(count=4).scaled(0.012).materialize(seed=82)
        )
        ref = live_search(
            queries, db, num_cpu_workers=1, num_gpu_workers=1,
            policy="self", top_hits=4,
        )
        expected = {
            qr.query_id: [[h.subject_id, h.score] for h in qr.hits]
            for qr in ref.query_results
        }
        svc = SearchService(
            db,
            num_cpu_workers=1,
            num_gpu_workers=1,
            backend="processes",
            policy="self",
            top_hits=4,
            chunk_cells=1_500,
            data_plane="shm",
            dispatch="chunk",
        )
        svc.start()
        try:
            with SearchClient(*svc.address) as client:
                outs = client.search(queries, top=4)
            for q, out in zip(queries, outs):
                assert out["hits"] == expected[q.id]
            snap = svc.stats.snapshot()
            assert "steals" in snap["roles"]["cpu"]
            text = svc.stats.prometheus()
            assert "swdual_role_steals_total" in text
            assert "swdual_steals_total" in text
        finally:
            svc.shutdown()
