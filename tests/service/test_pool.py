"""Warm-pool tests: both backends, batch reuse, streaming callback."""

import pytest

from repro.engine import ProtocolError, live_search
from repro.service import WarmPool
from repro.sequences import small_database, standard_query_set


@pytest.fixture(scope="module")
def workload():
    db = small_database(num_sequences=16, mean_length=60, seed=21)
    queries = list(standard_query_set(count=4).scaled(0.01).materialize(seed=22))
    return db, queries


def _hits(report):
    return [
        [(h.subject_id, h.score) for h in qr.hits] for qr in report.query_results
    ]


class TestValidation:
    def test_bad_backend(self, workload):
        db, _ = workload
        with pytest.raises(ValueError, match="backend"):
            WarmPool(db, backend="quantum")

    def test_bad_policy(self, workload):
        db, _ = workload
        with pytest.raises(ValueError, match="policy"):
            WarmPool(db, policy="chaos")

    def test_no_workers(self, workload):
        db, _ = workload
        with pytest.raises(ValueError, match="worker"):
            WarmPool(db, num_cpu_workers=0, num_gpu_workers=0)

    def test_must_start_before_batch(self, workload):
        db, queries = workload
        pool = WarmPool(db, num_cpu_workers=1, num_gpu_workers=0)
        with pytest.raises(ProtocolError, match="not started"):
            pool.run_batch(queries)

    def test_closed_pool_rejects_batches(self, workload):
        db, queries = workload
        with WarmPool(db, num_cpu_workers=1, num_gpu_workers=0) as pool:
            pass
        with pytest.raises(ProtocolError, match="closed"):
            pool.run_batch(queries)

    def test_empty_batch(self, workload):
        db, _ = workload
        with WarmPool(db, num_cpu_workers=1, num_gpu_workers=0) as pool:
            with pytest.raises(ValueError, match="query"):
                pool.run_batch([])


@pytest.mark.parametrize("backend", ["threads", "processes"])
class TestBatches:
    def test_matches_live_search(self, workload, backend):
        db, queries = workload
        reference = live_search(
            queries, db, num_cpu_workers=1, num_gpu_workers=1,
            policy="swdual", top_hits=5,
        )
        with WarmPool(
            db, num_cpu_workers=1, num_gpu_workers=1, backend=backend, top_hits=5
        ) as pool:
            report = pool.run_batch(queries)
        assert _hits(report) == _hits(reference)

    def test_pool_survives_many_batches(self, workload, backend):
        db, queries = workload
        with WarmPool(
            db, num_cpu_workers=1, num_gpu_workers=1, backend=backend, top_hits=5
        ) as pool:
            first = pool.run_batch(queries)
            second = pool.run_batch(queries[:2])
            third = pool.run_batch(list(reversed(queries)))
        assert _hits(first)[:2] == _hits(second)
        assert _hits(third) == list(reversed(_hits(first)))

    def test_streaming_callback_sees_every_query(self, workload, backend):
        db, queries = workload
        seen = []
        with WarmPool(
            db, num_cpu_workers=1, num_gpu_workers=1, backend=backend, top_hits=5
        ) as pool:
            report = pool.run_batch(
                queries,
                on_result=lambda j, result, worker, elapsed: seen.append(
                    (j, result.query_id, worker, elapsed)
                ),
            )
        assert sorted(j for j, *_ in seen) == list(range(len(queries)))
        for j, query_id, worker, elapsed in seen:
            assert query_id == queries[j].id
            assert report.query_results[j].query_id == query_id
            assert elapsed >= 0

    def test_worker_stats_account_all_tasks(self, workload, backend):
        db, queries = workload
        with WarmPool(
            db, num_cpu_workers=1, num_gpu_workers=1, backend=backend
        ) as pool:
            report = pool.run_batch(queries)
        assert sum(ws.tasks_executed for ws in report.worker_stats) == len(queries)
        expected_cells = sum(len(q) for q in queries) * db.total_residues
        assert report.total_cells == expected_cells


class TestSingleWorkerFallback:
    def test_single_worker_self_schedules(self, workload):
        db, queries = workload
        with WarmPool(db, num_cpu_workers=1, num_gpu_workers=0, policy="swdual") as pool:
            report = pool.run_batch(queries)
        assert "self" in report.label
        assert len(report.query_results) == len(queries)
