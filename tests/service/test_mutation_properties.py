"""Property test for the swap barrier: queries *admitted before* a
database mutation always complete on the generation that admitted them,
and queries submitted after the swap acknowledgement always see the new
generation — under process workers with chunk dispatch (stealing), the
plane where a torn swap would be most visible.

The scheduler's :meth:`~repro.service.server.SearchService.hold` gate
makes the interleaving deterministic: held, the scheduler drains a
batch and parks *before* running it, so a swap requested while queries
sit in flight must queue behind the admission watermark; released, the
old-generation batch runs first and only then may the swap apply.
Hypothesis drives the schedule — how many queries ride ahead of each
swap, and which mutation each swap performs."""

import functools
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import live_search
from repro.sequences import Sequence, SequenceDatabase, small_database
from repro.sequences import standard_query_set
from repro.sequences.shm import shm_available
from repro.service import SearchClient, SearchService

TOP_HITS = 4
CHUNK_CELLS = 1_500

needs_shm = pytest.mark.skipif(
    not shm_available(), reason="POSIX shared memory unavailable"
)

DB = small_database(num_sequences=14, mean_length=40, seed=91)
QUERIES = list(standard_query_set(count=3).scaled(0.012).materialize(seed=92))

_ORACLE_CACHE: dict = {}


def _oracle(db: SequenceDatabase, query) -> list:
    """Reference hits for one query against *db*, JSON-shaped."""
    key = (db.fingerprint(), query.id)
    if key not in _ORACLE_CACHE:
        report = live_search([query], db, 1, 0, policy="self", top_hits=TOP_HITS)
        _ORACLE_CACHE[key] = [
            [h.subject_id, h.score] for h in report.query_results[0].hits
        ]
    return _ORACLE_CACHE[key]


def _wait_for(predicate, timeout: float = 30.0) -> None:
    stop = threading.Event()
    deadline_timer = threading.Timer(timeout, stop.set)
    deadline_timer.start()
    try:
        while not predicate():
            if stop.is_set():
                raise AssertionError("timed out waiting for service state")
            stop.wait(0.01)
    finally:
        deadline_timer.cancel()


# One swap step: how many of the three standard queries ride ahead of
# it (0 = the swap applies against an idle scheduler), and what it
# mutates (append n novel sequences, or retire the oldest appendee /
# a seed sequence).
_STEP = st.tuples(
    st.integers(min_value=0, max_value=3),
    st.sampled_from(["append1", "append2", "retire_seed", "retire_new"]),
)


@needs_shm
class TestSwapBarrierProperty:
    @settings(max_examples=5, deadline=None)
    @given(schedule=st.lists(_STEP, min_size=1, max_size=3))
    def test_pre_swap_queries_complete_on_old_generation(self, schedule):
        service = SearchService(
            DB,
            num_cpu_workers=2,
            num_gpu_workers=0,
            backend="processes",
            dispatch="chunk",
            data_plane="shm",
            chunk_cells=CHUNK_CELLS,
            top_hits=TOP_HITS,
            max_batch=2,  # smaller than the ride-ahead, so swaps span batches
        )
        service.start()
        current_db = DB
        appended: list[str] = []
        retired_seeds = 0
        try:
            with SearchClient(*service.address) as runner, SearchClient(
                *service.address
            ) as admin:
                for step_no, (n_ahead, mutation) in enumerate(schedule):
                    old_db = current_db

                    # 1. Park the scheduler and put queries in flight.
                    service.hold()
                    admitted_before = service._admitted_seq
                    ids = []
                    for i in range(n_ahead):
                        query = QUERIES[i]
                        ids.append(
                            runner.submit(query, id=f"s{step_no}_{query.id}")
                        )
                    _wait_for(
                        lambda: service._admitted_seq == admitted_before + n_ahead
                    )

                    # 2. Decide and request the mutation (blocking verb,
                    #    so it runs on a helper thread).
                    if mutation == "retire_new" and not appended:
                        mutation = "append1"
                    if mutation.startswith("append"):
                        count = int(mutation[-1])
                        fresh = [
                            Sequence.from_text(
                                f"app{step_no}_{i}",
                                QUERIES[0].text,
                                alphabet=DB.alphabet,
                            )
                            for i in range(count)
                        ]
                        current_db = SequenceDatabase(
                            old_db.name, list(old_db) + fresh
                        )
                        appended.extend(s.id for s in fresh)
                        request = functools.partial(admin.db_append, fresh)
                    elif mutation == "retire_new":
                        victim = appended.pop(0)
                        current_db = SequenceDatabase(
                            old_db.name,
                            [s for s in old_db if s.id != victim],
                        )
                        request = functools.partial(admin.db_retire, [victim])
                    else:  # retire one of the original seed sequences
                        victim = f"toy_{retired_seeds}"
                        retired_seeds += 1
                        current_db = SequenceDatabase(
                            old_db.name,
                            [s for s in old_db if s.id != victim],
                        )
                        request = functools.partial(admin.db_retire, [victim])

                    answer: dict = {}

                    def swap_request():
                        answer.update(request())

                    swapper = threading.Thread(target=swap_request)
                    swapper.start()
                    # The mutation is registered (tip advanced) before we
                    # let the scheduler move: its watermark now fences
                    # every query admitted above.
                    _wait_for(lambda: service._tip.ordinal == step_no + 1)

                    # 3. Release; old-generation work must drain first.
                    service.release()
                    outs = runner.collect(n_ahead)
                    swapper.join(timeout=60)
                    assert not swapper.is_alive()
                    assert answer.get("type") == "db_info", answer
                    assert answer.get("swapped") is True
                    assert answer["generation"]["ordinal"] == step_no + 1

                    by_id = {out["id"]: out for out in outs}
                    for qid, query in zip(ids, QUERIES):
                        out = by_id[qid]
                        assert out["type"] == "result", out
                        # The property: pre-swap admissions scored
                        # against the generation that admitted them.
                        assert out["hits"] == _oracle(old_db, query)

                    # 4. A query after the acknowledged swap sees the
                    #    new generation.
                    post = runner.query(QUERIES[0], top=TOP_HITS)
                    assert post["type"] == "result"
                    assert post["hits"] == _oracle(current_db, QUERIES[0])

                info = admin.db_info()
                assert info["ordinal"] == len(schedule)
                assert info["fingerprint"] == current_db.fingerprint()
        finally:
            service.release()
            service.shutdown()
