"""Resident-pool retargeting: scheme/pipeline switches must rebuild
workers, evict the stale calibration memo, and drop rates measured
against the old target."""

import pytest

from repro.align import GapModel, ScoringScheme
from repro.engine import (
    ProtocolError,
    calibrate_live,
    clear_calibration_cache,
    invalidate_calibration,
    live_search,
)
from repro.engine.pipeline import preset_config
from repro.sequences import matrix_by_name, small_database, standard_query_set
from repro.service import WarmPool


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_calibration_cache()
    yield
    clear_calibration_cache()


@pytest.fixture(scope="module")
def workload():
    db = small_database(num_sequences=12, mean_length=50, seed=61)
    queries = list(standard_query_set(count=3).scaled(0.01).materialize(seed=62))
    return db, queries


def _hits(report):
    return [
        [(h.subject_id, h.score) for h in qr.hits] for qr in report.query_results
    ]


def _other_scheme():
    return ScoringScheme(
        matrix=matrix_by_name("blosum62"), gaps=GapModel.affine(12, 3)
    )


def _count_measurements(monkeypatch):
    import repro.engine.search as search_mod

    calls = {"n": 0}
    real = search_mod.measure_kernel_gcups

    def counting(*args, **kwargs):
        calls["n"] += 1
        return real(*args, **kwargs)

    monkeypatch.setattr(search_mod, "measure_kernel_gcups", counting)
    return calls


class TestInvalidateCalibration:
    def test_evicts_exactly_once(self, workload):
        db, _ = workload
        calibrate_live(db)
        assert invalidate_calibration(db)
        assert not invalidate_calibration(db)  # already gone

    def test_scheme_scoped(self, workload):
        db, _ = workload
        calibrate_live(db)
        assert not invalidate_calibration(db, _other_scheme())
        assert invalidate_calibration(db)


class TestRetarget:
    def test_noop_returns_false(self, workload):
        db, queries = workload
        with WarmPool(db, num_cpu_workers=1, num_gpu_workers=0) as pool:
            assert pool.retarget() is False
            assert pool.retarget(scheme=pool.scheme, pipeline=None) is False

    def test_closed_pool_rejected(self, workload):
        db, _ = workload
        with WarmPool(db, num_cpu_workers=1, num_gpu_workers=0) as pool:
            pass
        with pytest.raises(ProtocolError, match="closed"):
            pool.retarget(scheme=_other_scheme())

    def test_scheme_change_reprices_results(self, workload):
        db, queries = workload
        other = _other_scheme()
        reference = live_search(
            queries, db, 1, 0, policy="self", scheme=other, top_hits=5
        )
        with WarmPool(
            db, num_cpu_workers=1, num_gpu_workers=1, backend="threads", top_hits=5
        ) as pool:
            before = pool.run_batch(queries)
            packed_before = pool._workers[0].packed
            assert pool.retarget(scheme=other) is True
            after = pool.run_batch(queries)
            # Workers were rebuilt around the same packed database.
            assert pool._workers[0].packed is packed_before
        assert _hits(after) == _hits(reference)
        assert _hits(after) != _hits(before)

    def test_scheme_change_drops_operator_rates(self, workload):
        db, _ = workload
        with WarmPool(
            db,
            num_cpu_workers=1,
            num_gpu_workers=1,
            measured_gcups={"cpu": 1.0, "gpu": 2.0},
        ) as pool:
            assert pool.retarget(scheme=_other_scheme()) is True
            assert pool.measured_gcups is None

    def test_pipeline_change_keeps_workers_and_operator_rates(self, workload):
        db, queries = workload
        with WarmPool(
            db,
            num_cpu_workers=1,
            num_gpu_workers=1,
            measured_gcups={"cpu": 1.0, "gpu": 2.0},
        ) as pool:
            workers_before = list(pool._workers)
            assert pool.retarget(pipeline=preset_config("default")) is True
            assert pool._workers == workers_before  # same objects, no rebuild
            assert pool.measured_gcups == {"cpu": 1.0, "gpu": 2.0}
            assert pool.pipeline is not None
            assert len(pool.run_batch(queries).query_results) == len(queries)

    def test_pipeline_change_invalidates_auto_rates(self, workload, monkeypatch):
        db, _ = workload
        calls = _count_measurements(monkeypatch)
        with WarmPool(
            db, num_cpu_workers=1, num_gpu_workers=1, calibrate=True
        ) as pool:
            assert calls["n"] == 2  # one probe per role at start
            assert pool.retarget(pipeline=preset_config("default")) is True
            # Auto-calibrated rates were evicted and re-measured (the
            # memo entry for the unchanged scheme was dropped too, so
            # the re-measurement is real, not a cache hit).
            assert calls["n"] == 4
            assert pool.measured_gcups is not None

    def test_scheme_memo_evicted_for_old_target(self, workload, monkeypatch):
        db, _ = workload
        calls = _count_measurements(monkeypatch)
        with WarmPool(
            db, num_cpu_workers=1, num_gpu_workers=1, calibrate=True
        ) as pool:
            old_scheme = pool.scheme
            assert calls["n"] == 2
            pool.retarget(scheme=_other_scheme())
            assert calls["n"] == 4  # re-measured against the new kernels
            # The old target's memo is gone: calibrating it re-measures.
            calibrate_live(db, old_scheme)
            assert calls["n"] == 6

    def test_started_processes_scheme_change_rejected(self, workload):
        db, queries = workload
        with WarmPool(
            db, num_cpu_workers=1, num_gpu_workers=0, backend="processes"
        ) as pool:
            with pytest.raises(ProtocolError, match="restart"):
                pool.retarget(scheme=_other_scheme())
            # Pipeline-only retargeting stays legal on processes.
            assert pool.retarget(pipeline=preset_config("default")) is True
            assert len(pool.run_batch(queries).query_results) == len(queries)

    def test_unstarted_pool_retargets_cheaply(self, workload):
        db, _ = workload
        pool = WarmPool(db, num_cpu_workers=1, num_gpu_workers=0)
        assert pool.retarget(scheme=_other_scheme()) is True
        assert pool.scheme == _other_scheme()
