"""End-to-end tests of the resident search service.

Covers the acceptance bar for the service subsystem: concurrent
submissions from several client connections come back bit-identical to
a direct ``live_search``, a full admission queue answers with
backpressure instead of hanging, ``stats`` reports request counts and
per-role utilisation, and shutdown drains cleanly.
"""

import threading

import pytest

from repro.engine import live_search
from repro.service import SearchClient, SearchService
from repro.sequences import small_database, standard_query_set

TOP = 5


@pytest.fixture(scope="module")
def db():
    return small_database(num_sequences=20, mean_length=60, seed=31)


@pytest.fixture(scope="module")
def queries(db):
    return list(standard_query_set(count=8).scaled(0.01).materialize(seed=32))


@pytest.fixture(scope="module")
def reference(db, queries):
    """Ground truth: a direct one-shot live search of the same queries."""
    report = live_search(
        queries, db, num_cpu_workers=1, num_gpu_workers=1,
        policy="swdual", top_hits=TOP,
    )
    return {
        qr.query_id: [[h.subject_id, h.score] for h in qr.hits]
        for qr in report.query_results
    }


@pytest.fixture()
def service(db):
    svc = SearchService(
        db,
        num_cpu_workers=1,
        num_gpu_workers=1,
        top_hits=TOP,
        max_queue=32,
        max_batch=4,
    )
    svc.start()
    yield svc
    svc.shutdown()


class TestEndToEnd:
    def test_concurrent_clients_match_live_search(self, service, queries, reference):
        """≥ 8 concurrent queries over multiple connections, every
        result bit-identical to the direct engine."""
        outcomes: dict[str, list[dict]] = {}
        errors: list[BaseException] = []
        lock = threading.Lock()

        def client_run(chunk):
            try:
                with SearchClient(*service.address) as client:
                    outs = client.search(chunk, top=TOP)
                with lock:
                    for q, out in zip(chunk, outs):
                        outcomes.setdefault(q.id, []).append(out)
            except BaseException as exc:  # pragma: no cover
                with lock:
                    errors.append(exc)

        # 3 connections × (8, 8, 4) submissions = 20 concurrent queries.
        chunks = [queries, list(reversed(queries)), queries[:4]]
        threads = [threading.Thread(target=client_run, args=(c,)) for c in chunks]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        assert sum(len(v) for v in outcomes.values()) == 20
        for query_id, outs in outcomes.items():
            for out in outs:
                assert out["type"] == "result", out
                assert out["hits"] == reference[query_id]
                assert out["latency_s"] >= out["queue_wait_s"] >= 0

    def test_single_query_roundtrip(self, service, queries, reference):
        with SearchClient(*service.address) as client:
            out = client.query(queries[0])
        assert out["type"] == "result"
        assert out["id"] == queries[0].id
        assert out["hits"] == reference[queries[0].id]

    def test_top_truncates_but_never_exceeds_service_cap(self, service, queries):
        with SearchClient(*service.address) as client:
            short = client.query(queries[0], top=2)
            long = client.query(queries[0], top=50)
        assert len(short["hits"]) == 2
        assert len(long["hits"]) == TOP  # capped at the pool's depth

    def test_plain_text_submission(self, service, queries, reference):
        with SearchClient(*service.address) as client:
            out = client.query(queries[0].text)
        assert out["hits"] == reference[queries[0].id]


class TestBackpressure:
    def test_full_queue_rejects_instead_of_hanging(self, db, queries):
        svc = SearchService(
            db, num_cpu_workers=1, num_gpu_workers=0,
            top_hits=TOP, max_queue=3, max_batch=2,
        )
        svc.start()
        try:
            svc.hold()  # park the scheduler: admissions can only queue
            n = 12  # > max_queue + max_batch, so rejections are certain
            with SearchClient(*svc.address) as client:
                for i in range(n):
                    client.submit(queries[i % len(queries)], id=f"bp{i}")
                svc.release()
                outs = client.collect(n)
            rejected = [o for o in outs if o["type"] == "rejected"]
            completed = [o for o in outs if o["type"] == "result"]
            # Every submission got an answer, none hung.
            assert len(rejected) + len(completed) == n
            assert rejected, "full queue must produce backpressure responses"
            for out in rejected:
                assert out["reason"] == "admission queue full"
                assert out["retry_after_s"] > 0
            # Everything that was admitted completed after release.
            assert completed
            snapshot = svc.stats.snapshot()
            assert snapshot["requests"]["rejected"] == len(rejected)
            assert snapshot["requests"]["completed"] == len(completed)
        finally:
            svc.shutdown()


class TestStatsVerb:
    def test_stats_reports_counts_and_role_utilisation(self, service, queries):
        import time

        with SearchClient(*service.address) as client:
            client.search(queries, top=TOP)
            # Batch/role accounting lands just after the last streamed
            # result; give the scheduler thread a moment to fold it in.
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                snapshot = client.stats()
                done = sum(r["tasks"] for r in snapshot["roles"].values())
                if done >= len(queries):
                    break
                time.sleep(0.02)
        requests = snapshot["requests"]
        assert requests["received"] >= len(queries)
        assert requests["completed"] >= len(queries)
        assert requests["rejected"] == 0
        assert snapshot["latency"]["mean_s"] > 0
        assert snapshot["batches"]["count"] >= 1
        roles = snapshot["roles"]
        assert set(roles) == {"cpu", "gpu"}
        for role in roles.values():
            assert role["workers"] == 1
            assert 0.0 <= role["utilization"] <= 1.0
        executed = sum(role["tasks"] for role in roles.values())
        assert executed >= len(queries)

    def test_ping(self, service):
        with SearchClient(*service.address) as client:
            assert client.ping()


class TestProtocolErrors:
    def test_bad_sequence_text(self, service):
        with SearchClient(*service.address) as client:
            out = client.query("NOT A SEQUENCE !!!")
        assert out["type"] == "error"

    def test_unknown_verb(self, service):
        import socket

        from repro.service import protocol

        with socket.create_connection(service.address, timeout=10) as sock:
            sock.sendall(protocol.encode_message({"verb": "dance"}))
            reader = sock.makefile("rb")
            out = protocol.read_message(reader)
        assert out["type"] == "error"
        assert "dance" in out["reason"]

    def test_malformed_line(self, service):
        import socket

        from repro.service import protocol

        with socket.create_connection(service.address, timeout=10) as sock:
            sock.sendall(b"this is not json\n")
            reader = sock.makefile("rb")
            out = protocol.read_message(reader)
        assert out["type"] == "error"


class TestShutdown:
    def test_shutdown_verb_drains_and_stops(self, db, queries):
        svc = SearchService(db, num_cpu_workers=1, num_gpu_workers=0, top_hits=TOP)
        svc.start()
        with SearchClient(*svc.address) as client:
            assert client.query(queries[0])["type"] == "result"
            client.shutdown_server()
        svc._stopped.wait(timeout=30)
        assert svc._stopped.is_set()
        assert not svc.pool.started
        # Idempotent from another thread too.
        svc.shutdown()

    def test_queries_after_shutdown_are_rejected(self, db, queries):
        svc = SearchService(db, num_cpu_workers=1, num_gpu_workers=0, top_hits=TOP)
        svc.start()
        address = svc.address
        svc.shutdown()
        with pytest.raises(OSError):
            SearchClient(*address, timeout=2).connect()


class TestMetricsEndpoint:
    def test_metrics_verb_returns_prometheus_text(self, service, queries):
        from tests.telemetry.test_export import parse_prometheus

        with SearchClient(*service.address) as client:
            client.search(queries[:2], top=TOP)
            text = client.metrics()
        samples = parse_prometheus(text)  # raises on malformed exposition
        assert samples["swdual_requests_completed_total"] >= 2
        assert samples['swdual_role_workers{role="cpu"}'] == 1
        assert samples['swdual_role_workers{role="gpu"}'] == 1
        assert (
            samples['swdual_request_latency_seconds_bucket{le="+Inf"}']
            == samples["swdual_request_latency_seconds_count"]
        )

    def test_http_get_one_shot_serves_metrics(self, service):
        import socket

        from tests.telemetry.test_export import parse_prometheus

        with socket.create_connection(service.address, timeout=10) as sock:
            sock.sendall(b"GET /metrics HTTP/1.1\r\nHost: x\r\nAccept: */*\r\n\r\n")
            data = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                data += chunk
        head, _, body = data.partition(b"\r\n\r\n")
        lines = head.split(b"\r\n")
        assert lines[0] == b"HTTP/1.0 200 OK"
        assert b"Content-Type: text/plain; version=0.0.4; charset=utf-8" in lines
        samples = parse_prometheus(body.decode())
        assert "swdual_uptime_seconds" in samples

    def test_http_get_unknown_path_is_404(self, service):
        import socket

        with socket.create_connection(service.address, timeout=10) as sock:
            sock.sendall(b"GET /nope HTTP/1.0\r\n\r\n")
            data = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                data += chunk
        assert data.startswith(b"HTTP/1.0 404 Not Found\r\n")


class TestStartupLine:
    def test_serve_logs_bound_address_and_roster_to_stderr(self, db, capsys):
        svc = SearchService(db, num_cpu_workers=2, num_gpu_workers=1, top_hits=TOP)
        svc.start()
        try:
            err = capsys.readouterr().err
            host, port = svc.address
            assert f"listening on {host}:{port}" in err
            assert "cpu0(cpu)" in err
            assert "cpu1(cpu)" in err
            assert "gpu0(gpu)" in err
        finally:
            svc.shutdown()
