"""Wire-protocol framing and message-shape tests."""

import io

import pytest

from repro.service import protocol
from repro.service.protocol import (
    MAX_LINE_BYTES,
    WireError,
    decode_message,
    encode_message,
    read_message,
)


class TestFraming:
    def test_roundtrip(self):
        message = {"verb": "query", "id": "q1", "sequence": "MKVL", "top": 3}
        assert decode_message(encode_message(message)) == message

    def test_one_line_per_message(self):
        payload = encode_message({"verb": "ping"})
        assert payload.endswith(b"\n")
        assert payload.count(b"\n") == 1

    def test_newlines_in_values_stay_escaped(self):
        payload = encode_message({"type": "error", "reason": "line1\nline2"})
        assert payload.count(b"\n") == 1
        assert decode_message(payload)["reason"] == "line1\nline2"

    def test_non_dict_rejected(self):
        with pytest.raises(WireError):
            encode_message(["not", "a", "dict"])
        with pytest.raises(WireError):
            decode_message(b'["not", "a", "dict"]\n')

    def test_bad_json_rejected(self):
        with pytest.raises(WireError):
            decode_message(b"{nope}\n")

    def test_non_utf8_rejected(self):
        with pytest.raises(WireError):
            decode_message(b"\xff\xfe{}\n")

    def test_oversized_line_rejected(self):
        with pytest.raises(WireError):
            decode_message(b"x" * (MAX_LINE_BYTES + 1))
        with pytest.raises(WireError):
            encode_message({"sequence": "A" * MAX_LINE_BYTES})


class TestStreamReading:
    def test_reads_messages_in_order(self):
        stream = io.BytesIO(
            encode_message({"verb": "ping"}) + encode_message({"verb": "stats"})
        )
        assert read_message(stream)["verb"] == "ping"
        assert read_message(stream)["verb"] == "stats"
        assert read_message(stream) is None

    def test_eof_returns_none(self):
        assert read_message(io.BytesIO(b"")) is None

    def test_oversized_stream_line_raises(self):
        stream = io.BytesIO(b"{" + b"a" * (MAX_LINE_BYTES + 10) + b"}\n")
        with pytest.raises(WireError):
            read_message(stream)


class TestMessageShapes:
    def test_query_request_optional_fields(self):
        assert protocol.query_request("MKV") == {"verb": "query", "sequence": "MKV"}
        full = protocol.query_request("MKV", id="a", top=2)
        assert full["id"] == "a" and full["top"] == 2

    def test_result_response_casts_scores(self):
        import numpy as np

        message = protocol.result_response(
            "q1", [("s1", np.int64(7))], latency_s=0.1, queue_wait_s=0.0, worker="cpu0"
        )
        assert message["hits"] == [["s1", 7]]
        # Must survive the wire (numpy ints are not JSON-serialisable).
        assert decode_message(encode_message(message))["hits"] == [["s1", 7]]

    def test_rejected_response_has_retry_hint(self):
        message = protocol.rejected_response("q1", "admission queue full", 0.25)
        assert message["type"] == "rejected"
        assert message["retry_after_s"] == 0.25

    def test_known_verbs_and_types(self):
        assert set(protocol.REQUEST_VERBS) == {
            "query",
            "stats",
            "metrics",
            "ping",
            "shutdown",
            "db_append",
            "db_retire",
            "db_info",
        }
        for t in (
            "result", "rejected", "error", "stats", "metrics", "pong", "bye",
            "db_info",
        ):
            assert t in protocol.RESPONSE_TYPES
