"""Rolling calibration on the resident service: results stay exact,
stats/metrics expose the live estimates, retargeting resets them."""

import pytest

from repro.engine import live_search
from repro.engine.pipeline import preset_config
from repro.service import SearchClient, SearchService
from repro.sequences import small_database, standard_query_set

TOP = 5


@pytest.fixture(scope="module")
def db():
    return small_database(num_sequences=16, mean_length=50, seed=71)


@pytest.fixture(scope="module")
def queries(db):
    return list(standard_query_set(count=4).scaled(0.01).materialize(seed=72))


@pytest.fixture(scope="module")
def reference(db, queries):
    report = live_search(
        queries, db, num_cpu_workers=1, num_gpu_workers=1,
        policy="swdual", top_hits=TOP,
    )
    return {
        qr.query_id: [[h.subject_id, h.score] for h in qr.hits]
        for qr in report.query_results
    }


@pytest.fixture()
def rolling_service(db):
    svc = SearchService(
        db,
        num_cpu_workers=1,
        num_gpu_workers=1,
        top_hits=TOP,
        calibration="rolling",
        measured_gcups={"cpu": 1.0, "gpu": 2.0},
    )
    svc.start()
    yield svc
    svc.shutdown()


class TestRollingService:
    def test_bad_mode_rejected(self, db):
        with pytest.raises(ValueError, match="calibration"):
            SearchService(db, calibration="psychic")

    def test_results_exact_and_estimates_live(
        self, rolling_service, queries, reference
    ):
        with SearchClient(*rolling_service.address) as client:
            for _ in range(3):  # several batches so estimates move
                for q, out in zip(queries, client.search(queries, top=TOP)):
                    assert out["type"] == "result"
                    assert out["hits"] == reference[q.id]
            snapshot = client.stats()
            body = client.metrics()
        calib = snapshot["calibration"]
        # The seed rated the very first batch: at least one reallocation,
        # and both roles have accepted real samples since.
        assert calib["reallocations"] >= 1
        assert set(calib["roles"]) == {"cpu", "gpu"}
        for role in calib["roles"].values():
            assert role["samples"] >= 1
            assert role["gcups"] > 0
            assert role["staleness_s"] >= 0
        assert 'swdual_calibrated_gcups{role="cpu"}' in body
        assert "swdual_calibration_staleness_seconds" in body
        assert "swdual_calibration_samples_total" in body
        assert "swdual_reallocations_total" in body

    def test_retarget_resets_estimates(self, rolling_service, queries, reference):
        with SearchClient(*rolling_service.address) as client:
            client.search(queries[:2], top=TOP)
        assert rolling_service._allocator.reallocations >= 1
        old_allocator = rolling_service._allocator
        assert rolling_service.retarget(pipeline=preset_config("default")) is True
        # Fresh calibrator/allocator: estimates for the old target die
        # with it, counters restart.
        assert rolling_service._allocator is not old_allocator
        assert rolling_service._allocator.reallocations == 0
        with SearchClient(*rolling_service.address) as client:
            outs = client.search(queries[:2], top=TOP)
        assert all(out["type"] == "result" for out in outs)


class TestOneshotService:
    def test_oneshot_has_no_calibration_section_content(self, db, queries):
        svc = SearchService(db, num_cpu_workers=1, num_gpu_workers=0, top_hits=TOP)
        svc.start()
        try:
            with SearchClient(*svc.address) as client:
                client.search(queries[:1], top=TOP)
                snapshot = client.stats()
            # Oneshot services never record rolling estimates.
            calib = snapshot.get("calibration")
            assert calib is None or calib["roles"] == {}
        finally:
            svc.shutdown()
