"""Service-level fault tolerance (the issue's satellite): when a
worker dies mid-batch, every client sees its query *complete*
(degraded service) or a *retryable error* — never a hung connection.

All assertions run under a short client socket timeout, so a hang
fails the test as ``socket.timeout`` instead of wedging the suite.
"""

import json
import socket

import pytest

from repro.engine.faults import FaultPlan, FaultSpec
from repro.sequences import small_database
from repro.service.server import SearchService

#: Client-side socket timeout: the never-hang budget per response.
CLIENT_TIMEOUT_S = 30.0

QUERY_TEXT = "MKVLATTPRGDEWQ" * 3


@pytest.fixture(scope="module")
def database():
    return small_database(num_sequences=12, mean_length=50, seed=41)


def _client(port):
    sock = socket.create_connection(("127.0.0.1", port), timeout=CLIENT_TIMEOUT_S)
    sock.settimeout(CLIENT_TIMEOUT_S)
    return sock, sock.makefile("rwb")


def _send(stream, message):
    stream.write((json.dumps(message) + "\n").encode())
    stream.flush()


def _recv(stream):
    line = stream.readline()
    assert line, "server closed the connection mid-exchange"
    return json.loads(line)


class TestWorkerDeathDegradesGracefully:
    def test_all_queries_complete_after_worker_loss(self, database):
        """Kill one of three workers on its first task: every query
        still gets a result, and the loss shows up in stats."""
        plan = FaultPlan.single("cpu0", 0, "kill")
        with SearchService(
            database,
            num_cpu_workers=2,
            num_gpu_workers=1,
            backend="threads",
            policy="self",
            fault_plan=plan,
        ) as service:
            sock, stream = _client(service.port)
            try:
                ids = [f"q{i}" for i in range(4)]
                for qid in ids:
                    _send(
                        stream,
                        {"verb": "query", "id": qid, "sequence": QUERY_TEXT},
                    )
                seen = {}
                for _ in ids:
                    resp = _recv(stream)
                    seen[resp["id"]] = resp
                assert set(seen) == set(ids)
                assert all(r["type"] == "result" for r in seen.values())
                assert all(r["hits"] for r in seen.values())
                _send(stream, {"verb": "stats"})
                stats = _recv(stream)["stats"]
                assert stats["recovery"]["worker_deaths"] == 1
                assert stats["recovery"]["task_retries"] >= 1
            finally:
                sock.close()

    def test_poison_query_gets_retryable_error_not_hang(self, database):
        """A query that fails on every worker is quarantined and the
        client gets a terminal retryable error for it; the rest of the
        batch completes normally."""
        plan = FaultPlan.poison(1)  # second query in the batch
        with SearchService(
            database,
            num_cpu_workers=2,
            num_gpu_workers=0,
            backend="threads",
            policy="self",
            fault_plan=plan,
            max_batch=8,
        ) as service:
            service.hold()  # collect all queries into one batch
            sock, stream = _client(service.port)
            try:
                ids = [f"q{i}" for i in range(4)]
                for qid in ids:
                    _send(
                        stream,
                        {"verb": "query", "id": qid, "sequence": QUERY_TEXT},
                    )
                service.release()
                seen = {}
                for _ in ids:
                    resp = _recv(stream)
                    seen[resp["id"]] = resp
                assert set(seen) == set(ids)
                errors = {i: r for i, r in seen.items() if r["type"] == "error"}
                results = {i: r for i, r in seen.items() if r["type"] == "result"}
                assert len(errors) == 1
                (error,) = errors.values()
                assert error["retryable"] is True
                assert "abandoned" in error["reason"]
                assert len(results) == 3
            finally:
                sock.close()

    def test_total_worker_loss_is_retryable_error(self, database):
        """Every worker dead: the batch fails, but each query still
        gets a terminal retryable error instead of a hang."""
        plan = FaultPlan([FaultSpec("cpu0", 0, "kill"), FaultSpec("cpu1", 0, "kill")])
        with SearchService(
            database,
            num_cpu_workers=2,
            num_gpu_workers=0,
            backend="threads",
            policy="self",
            fault_plan=plan,
            max_batch=8,
        ) as service:
            service.hold()
            sock, stream = _client(service.port)
            try:
                ids = [f"q{i}" for i in range(3)]
                for qid in ids:
                    _send(
                        stream,
                        {"verb": "query", "id": qid, "sequence": QUERY_TEXT},
                    )
                service.release()
                for _ in ids:
                    resp = _recv(stream)
                    assert resp["type"] == "error"
                    assert resp["retryable"] is True
                    assert "batch failed" in resp["reason"]
            finally:
                sock.close()

    def test_service_survives_to_next_batch(self, database):
        """After a worker loss, later batches keep completing on the
        survivors (degraded capacity, full service).

        The static allocation hands every worker its own queue, so the
        victim deterministically receives (and faults on) a task.
        """
        plan = FaultPlan.single("cpu1", 0, "kill")
        with SearchService(
            database,
            num_cpu_workers=2,
            num_gpu_workers=1,
            backend="threads",
            policy="swdual",
            measured_gcups={"cpu": 1.0, "gpu": 1.0},
            fault_plan=plan,
            max_batch=8,
        ) as service:
            service.hold()
            sock, stream = _client(service.port)
            try:
                ids = [f"q{i}" for i in range(6)]
                for qid in ids:
                    _send(
                        stream,
                        {"verb": "query", "id": qid, "sequence": QUERY_TEXT},
                    )
                service.release()
                for _ in ids:
                    resp = _recv(stream)
                    assert resp["type"] == "result"
                assert service.pool.alive_workers == ["cpu0", "gpu0"]
                # The degraded pool keeps serving.
                _send(stream, {"verb": "query", "id": "after", "sequence": QUERY_TEXT})
                resp = _recv(stream)
                assert resp["type"] == "result"
                assert resp["id"] == "after"
            finally:
                sock.close()
