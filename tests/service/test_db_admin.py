"""The live database-administration surface of the service: wire
protocol for the ``db_*`` verbs, validation at the server edge, the
stats/metrics generation surface, and the service-level ``/dev/shm``
leak guarantee across swaps (including a worker SIGKILLed under a live
service)."""

import glob
import os

import pytest

from repro.sequences import Sequence, small_database, standard_query_set
from repro.sequences.shm import SHM_PREFIX, shm_available
from repro.service import SearchClient, SearchService, protocol

TOP = 4

needs_shm = pytest.mark.skipif(
    not shm_available(), reason="POSIX shared memory unavailable"
)


def _live_segments() -> set[str]:
    return {os.path.basename(p) for p in glob.glob(f"/dev/shm/{SHM_PREFIX}*")}


@pytest.fixture(scope="module")
def db():
    return small_database(num_sequences=12, mean_length=40, seed=71)


@pytest.fixture(scope="module")
def queries():
    return list(standard_query_set(count=2).scaled(0.012).materialize(seed=72))


@pytest.fixture()
def service(db):
    svc = SearchService(
        db, num_cpu_workers=1, num_gpu_workers=1, top_hits=TOP, max_batch=4
    )
    svc.start()
    yield svc
    svc.shutdown()


class TestProtocol:
    def test_admin_verbs_registered(self):
        for verb in ("db_append", "db_retire", "db_info"):
            assert verb in protocol.REQUEST_VERBS
        assert "db_info" in protocol.RESPONSE_TYPES

    def test_append_request_shape(self):
        message = protocol.db_append_request([("a", "MKV"), ("b", "MRT")])
        assert message == {
            "verb": "db_append",
            "sequences": [
                {"id": "a", "sequence": "MKV"},
                {"id": "b", "sequence": "MRT"},
            ],
        }

    def test_retire_request_shape(self):
        assert protocol.db_retire_request(["x", 7]) == {
            "verb": "db_retire",
            "ids": ["x", "7"],
        }

    def test_requests_survive_the_wire(self):
        for message in (
            protocol.db_append_request([("a", "MKV")]),
            protocol.db_retire_request(["a"]),
            protocol.db_info_request(),
        ):
            assert protocol.decode_message(protocol.encode_message(message)) == message

    def test_info_response_swapped_flag(self):
        info = {"ordinal": 3, "name": "db"}
        plain = protocol.db_info_response(info)
        assert plain["type"] == "db_info"
        assert "swapped" not in plain
        assert protocol.db_info_response(info, swapped=True)["swapped"] is True


class TestAdminValidation:
    def test_db_info_reports_generation_zero(self, service, db):
        with SearchClient(*service.address) as client:
            info = client.db_info()
        assert info["ordinal"] == 0
        assert info["fingerprint"] == db.fingerprint()
        assert info["num_sequences"] == len(db)

    @pytest.mark.parametrize(
        "payload",
        [
            {"verb": "db_append"},
            {"verb": "db_append", "sequences": []},
            {"verb": "db_append", "sequences": ["not-a-dict"]},
            {"verb": "db_append", "sequences": [{"id": "", "sequence": "MKV"}]},
            {"verb": "db_append", "sequences": [{"id": "x", "sequence": ""}]},
            {"verb": "db_append", "sequences": [{"id": "x", "sequence": "M!V"}]},
            {"verb": "db_retire"},
            {"verb": "db_retire", "ids": []},
            {"verb": "db_retire", "ids": ["no_such_id"]},
        ],
    )
    def test_bad_mutations_answer_error_and_do_not_swap(self, service, payload):
        with SearchClient(*service.address) as client:
            client._send(payload)
            answer = client._next_of_types(("db_info", "error"))
            assert answer["type"] == "error"
            assert client.db_info()["ordinal"] == 0  # nothing moved

    def test_append_existing_id_rejected(self, service, db):
        taken = next(iter(db))
        with SearchClient(*service.address) as client:
            answer = client.db_append([(taken.id, taken.text)])
            assert answer["type"] == "error"
            assert "already" in answer["reason"]

    def test_retiring_everything_rejected(self, service, db):
        with SearchClient(*service.address) as client:
            answer = client.db_retire([s.id for s in db])
            assert answer["type"] == "error"
            assert "empty" in answer["reason"]


class TestGenerationSurfaces:
    def test_stats_and_metrics_track_swaps(self, service, db, queries):
        with SearchClient(*service.address) as client:
            stats = client.stats()
            assert stats["database"]["ordinal"] == 0
            assert stats["database"]["swaps"] == 0
            copy = Sequence.from_text("surf_0", queries[0].text, alphabet=db.alphabet)
            answer = client.db_append([copy])
            assert answer["type"] == "db_info"
            stats = client.stats()
            assert stats["database"]["ordinal"] == 1
            assert stats["database"]["swaps"] == 1
            assert stats["database"]["num_sequences"] == len(db) + 1
            body = client.metrics()
        assert "swdual_db_generation 1" in body
        assert "swdual_db_swaps_total 1" in body
        assert f"swdual_db_sequences {len(db) + 1}" in body

    def test_queries_keep_matching_after_swap(self, service, db, queries):
        """The cache-invalidation contract, end to end: the same
        connection queries before and after a swap and sees the planted
        hit appear."""
        query = queries[0]
        with SearchClient(*service.address) as client:
            before = client.query(query, top=TOP)
            assert "planted" not in [h[0] for h in before["hits"]]
            client.db_append(
                [Sequence.from_text("planted", query.text, alphabet=db.alphabet)]
            )
            after = client.query(query, top=TOP)
            assert "planted" in [h[0] for h in after["hits"]]


@needs_shm
class TestServiceLevelLeaks:
    def test_swaps_and_sigkill_leave_no_segments(self, db, queries):
        before = _live_segments()
        service = SearchService(
            db,
            num_cpu_workers=2,
            num_gpu_workers=0,
            backend="processes",
            data_plane="shm",
            top_hits=TOP,
        )
        service.start()
        try:
            with SearchClient(*service.address) as client:
                for i in range(3):
                    answer = client.db_append(
                        [
                            Sequence.from_text(
                                f"leak_{i}", queries[0].text, alphabet=db.alphabet
                            )
                        ]
                    )
                    assert answer["type"] == "db_info"
                    assert len(_live_segments() - before) == 1
                # One worker dies violently under the live service; the
                # next swap must still converge and stay leak-free.
                service.pool._proc_pool._processes[0].kill()
                service.pool._proc_pool._processes[0].join(timeout=10)
                answer = client.db_retire(["leak_0"])
                assert answer["type"] == "db_info"
                assert len(_live_segments() - before) == 1
                result = client.query(queries[0], top=TOP)
                assert result["type"] == "result"
        finally:
            service.shutdown()
        assert _live_segments() == before
