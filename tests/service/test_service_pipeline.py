"""Service-level pipeline behaviour: per-request flags, batch
splitting by mode, the stats/metrics surface, and protocol
validation."""

import time

import numpy as np
import pytest

from repro.engine.pipeline import PIPELINE_PRESETS, preset_config
from repro.sequences import PROTEIN, Sequence, SequenceDatabase, plant_homologs
from repro.service import SearchClient, SearchService
from repro.service import protocol

TOP = 5
THRESHOLD = 60


@pytest.fixture(scope="module")
def db_and_query():
    rng = np.random.default_rng(41)
    background = [
        Sequence(
            id=f"bg{i}",
            codes=rng.integers(0, 20, int(rng.integers(40, 100))).astype(np.uint8),
            alphabet=PROTEIN,
        )
        for i in range(25)
    ]
    query = Sequence(
        id="q", codes=rng.integers(0, 20, 70).astype(np.uint8), alphabet=PROTEIN
    )
    subjects = plant_homologs(background, query, 2, divergence=0.1, seed=rng)
    return SequenceDatabase("svc-pipe", subjects), query


@pytest.fixture()
def service(db_and_query):
    db, _ = db_and_query
    svc = SearchService(
        db,
        num_cpu_workers=1,
        num_gpu_workers=1,
        top_hits=TOP,
        pipeline=preset_config("default", threshold=THRESHOLD),
    )
    svc.start()
    yield svc
    svc.shutdown()


@pytest.fixture()
def fullscan_service(db_and_query):
    db, _ = db_and_query
    svc = SearchService(db, num_cpu_workers=1, num_gpu_workers=0, top_hits=TOP)
    svc.start()
    yield svc
    svc.shutdown()


def _hits_at_threshold(outcome):
    return [(sid, score) for sid, score in outcome["hits"] if score >= THRESHOLD]


def _stats_with_pipeline(client, deadline_s=5.0):
    """Stage counts land when the batch finishes, a moment after its
    results stream back — poll briefly instead of racing it."""
    snap = client.stats()
    end = time.monotonic() + deadline_s
    while not snap["pipeline"]["subjects_scanned"] and time.monotonic() < end:
        time.sleep(0.02)
        snap = client.stats()
    return snap


class TestPerRequestFlag:
    def test_default_follows_service_config(self, service, db_and_query):
        _, query = db_and_query
        with SearchClient(*service.address) as client:
            piped = client.query(query)
            exact = client.query(query, pipeline=False)
            forced = client.query(query, pipeline=True)
        assert piped["type"] == exact["type"] == forced["type"] == "result"
        # Above the threshold the three agree exactly (homologs found
        # either way, scores bit-identical).
        assert _hits_at_threshold(piped) == _hits_at_threshold(exact)
        assert piped["hits"] == forced["hits"]
        assert len(_hits_at_threshold(piped)) >= 1

    def test_opt_in_on_fullscan_service(self, fullscan_service, db_and_query):
        """A service started without --pipeline still honours
        per-request opt-in (with the default preset)."""
        _, query = db_and_query
        with SearchClient(*fullscan_service.address) as client:
            exact = client.query(query)
            piped = client.query(query, pipeline=True)
            snap = _stats_with_pipeline(client)
        assert piped["type"] == "result"
        assert [h for h in piped["hits"] if h[1] >= 100] == [
            h for h in exact["hits"] if h[1] >= 100
        ]
        assert snap["pipeline"]["subjects_scanned"] > 0

    def test_mixed_batch_is_split_by_mode(self, service, db_and_query):
        """Interleaved pipeline/full-scan submissions on one
        connection all complete with consistent top hits."""
        _, query = db_and_query
        with SearchClient(*service.address) as client:
            ids = []
            for i in range(6):
                ids.append(
                    client.submit(query, id=f"m{i}", pipeline=bool(i % 2))
                )
            outcomes = client.collect(len(ids))
        assert all(o["type"] == "result" for o in outcomes)
        tops = {tuple(_hits_at_threshold(o)) for o in outcomes}
        assert len(tops) == 1  # same query -> same reported hits

    def test_non_boolean_pipeline_rejected(self, service):
        with SearchClient(*service.address) as client:
            client._send(
                {"verb": "query", "sequence": "ARNDARND", "pipeline": "yes"}
            )
            outcome = client.collect(1)[0]
        assert outcome["type"] == "error"
        assert "pipeline" in outcome["reason"]


class TestStatsSurface:
    def test_stage_counts_visible_in_stats_and_metrics(self, service, db_and_query):
        db, query = db_and_query
        with SearchClient(*service.address) as client:
            client.query(query)
            snap = _stats_with_pipeline(client)
            text = client.metrics()
        pipe = snap["pipeline"]
        assert pipe["subjects_scanned"] >= len(db)
        assert pipe["reported"] >= 1
        assert 0.0 <= pipe["filter_rate"] <= 1.0
        assert "swdual_pipeline_subjects_scanned_total" in text
        assert "swdual_pipeline_reported_total" in text


class TestProtocolHelpers:
    def test_query_request_pipeline_field(self):
        assert "pipeline" not in protocol.query_request("ARND")
        assert protocol.query_request("ARND", pipeline=True)["pipeline"] is True
        assert protocol.query_request("ARND", pipeline=False)["pipeline"] is False


class TestServeParity:
    def test_pipeline_service_matches_presets(self, db_and_query):
        """Service pipeline scores equal a direct kernel run with the
        same preset config."""
        from repro.align.pipeline import pipeline_score_packed
        from repro.align.scoring import default_scheme
        from repro.sequences.packed import PackedDatabase

        db, query = db_and_query
        config = preset_config("default", threshold=THRESHOLD)
        packed = PackedDatabase.from_database(db)
        scores = pipeline_score_packed(
            query, packed, default_scheme(), config
        )
        subjects = list(db)
        expected = sorted(
            (
                (subjects[i].id, int(scores[i]))
                for i in np.flatnonzero(scores >= THRESHOLD)
            ),
            key=lambda t: (-t[1], t[0]),
        )[:TOP]
        svc = SearchService(
            db, num_cpu_workers=1, num_gpu_workers=0, top_hits=TOP, pipeline=config
        )
        svc.start()
        try:
            with SearchClient(*svc.address) as client:
                outcome = client.query(query)
        finally:
            svc.shutdown()
        got = [(sid, score) for sid, score in outcome["hits"] if score >= THRESHOLD]
        assert got == expected
