"""The shared retry helper: policy validation, delay computation, the
retry loop, and its integration into SearchClient against a live
service under deterministic backpressure."""

import random
import threading
import time

import pytest

from repro.sequences import small_database, standard_query_set
from repro.service import RetryPolicy, SearchClient, SearchService
from repro.service.retry import is_retryable, retry_delay_s, run_with_retry


class TestRetryPolicy:
    def test_defaults(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 3
        assert policy.jitter_cap_s > 0
        assert policy.max_delay_s > 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(max_attempts=0),
            dict(jitter_cap_s=-0.1),
            dict(max_delay_s=0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestIsRetryable:
    @pytest.mark.parametrize(
        "outcome,expected",
        [
            ({"type": "rejected", "retry_after_s": 0.1}, True),
            ({"type": "error", "retryable": True}, True),
            ({"type": "error", "retryable": False}, False),
            ({"type": "error"}, False),
            ({"type": "result", "hits": []}, False),
            ({}, False),
        ],
    )
    def test_classification(self, outcome, expected):
        assert is_retryable(outcome) is expected


class TestRetryDelay:
    def _policy(self, **kwargs):
        kwargs.setdefault("jitter_cap_s", 0.0)
        return RetryPolicy(**kwargs)

    def test_server_hint_honored(self):
        outcome = {"type": "rejected", "retry_after_s": 0.7}
        assert retry_delay_s(outcome, self._policy()) == pytest.approx(0.7)

    def test_hint_capped_at_max_delay(self):
        outcome = {"type": "rejected", "retry_after_s": 600.0}
        policy = self._policy(max_delay_s=1.5)
        assert retry_delay_s(outcome, policy) == pytest.approx(1.5)

    @pytest.mark.parametrize("hint", [None, -1.0, "soon"])
    def test_missing_or_bad_hint_falls_back(self, hint):
        outcome = {"type": "rejected", "retry_after_s": hint}
        assert retry_delay_s(outcome, self._policy()) == pytest.approx(0.05)

    def test_jitter_bounded_and_seedable(self):
        outcome = {"type": "rejected", "retry_after_s": 0.2}
        policy = RetryPolicy(jitter_cap_s=0.1)
        rng = random.Random(5)
        delays = [retry_delay_s(outcome, policy, rng) for _ in range(50)]
        assert all(0.2 <= d <= 0.3 for d in delays)
        assert len(set(delays)) > 1  # jitter actually applied
        rng2 = random.Random(5)
        assert delays == [retry_delay_s(outcome, policy, rng2) for _ in range(50)]


class TestRunWithRetry:
    def _outcomes(self, *outcomes):
        it = iter(outcomes)
        return lambda: next(it)

    def test_terminal_outcome_returns_immediately(self):
        slept = []
        outcome = run_with_retry(
            self._outcomes({"type": "result", "hits": []}),
            RetryPolicy(max_attempts=5, jitter_cap_s=0.0),
            sleep=slept.append,
        )
        assert outcome["type"] == "result"
        assert slept == []

    def test_retries_until_success(self):
        slept = []
        seen = []
        outcome = run_with_retry(
            self._outcomes(
                {"type": "rejected", "retry_after_s": 0.2},
                {"type": "error", "retryable": True, "retry_after_s": 0.4},
                {"type": "result", "hits": [["s", 1]]},
            ),
            RetryPolicy(max_attempts=3, jitter_cap_s=0.0),
            sleep=slept.append,
            on_retry=lambda outcome, n, delay: seen.append((outcome["type"], n, delay)),
        )
        assert outcome["type"] == "result"
        assert slept == [pytest.approx(0.2), pytest.approx(0.4)]
        assert seen == [
            ("rejected", 2, pytest.approx(0.2)),
            ("error", 3, pytest.approx(0.4)),
        ]

    def test_budget_exhaustion_returns_last_outcome(self):
        attempts = []

        def attempt():
            attempts.append(1)
            return {"type": "rejected", "retry_after_s": 0.0}

        outcome = run_with_retry(
            attempt, RetryPolicy(max_attempts=3, jitter_cap_s=0.0), sleep=lambda s: None
        )
        assert outcome["type"] == "rejected"
        assert len(attempts) == 3

    def test_single_attempt_policy_never_retries(self):
        attempts = []

        def attempt():
            attempts.append(1)
            return {"type": "rejected", "retry_after_s": 0.0}

        run_with_retry(attempt, RetryPolicy(max_attempts=1), sleep=lambda s: None)
        assert len(attempts) == 1


def _wait_until(condition, timeout_s: float = 10.0) -> None:
    deadline = time.monotonic() + timeout_s
    while not condition():
        if time.monotonic() > deadline:
            raise AssertionError("condition not reached within timeout")
        time.sleep(0.005)


class TestClientIntegration:
    def test_backpressure_is_retried_to_success(self):
        """Hold the scheduler so the bounded queue rejects, then let a
        retrying client win once the queue drains."""
        db = small_database(num_sequences=10, mean_length=40, seed=91)
        queries = list(standard_query_set(count=3).scaled(0.01).materialize(seed=92))
        service = SearchService(
            db, port=0, num_cpu_workers=1, num_gpu_workers=0,
            backend="threads", top_hits=3, max_queue=1, max_batch=1,
        )
        service.start()
        try:
            service.hold()
            with SearchClient("127.0.0.1", service.port, timeout=30.0) as filler:
                # Submits are fire-and-forget and the held scheduler
                # still makes exactly one pull before parking at the
                # gate, so blindly submitting a burst races: the pull
                # may drain the queue *after* the burst was admitted,
                # leaving room for the query that must bounce.  Drive
                # the service into its stable held state by observing
                # it instead: one query pulled into the scheduler's
                # hand, then one parked in the (now immovable) queue.
                n = 2
                filler.submit(queries[0], id="f0", top=3)
                _wait_until(
                    lambda: service.stats.snapshot()["requests"]["received"] >= 1
                    and service._queue.empty()
                )
                filler.submit(queries[1], id="f1", top=3)
                _wait_until(lambda: service._queue.full())

                with SearchClient("127.0.0.1", service.port, timeout=30.0) as c:
                    bounced = c.query(queries[1], top=3)
                    assert bounced["type"] == "rejected"
                    assert bounced["retry_after_s"] >= 0

                    # Release while the retrying client sleeps out a
                    # delay; a later attempt must succeed.
                    releaser = threading.Timer(0.3, service.release)
                    releaser.start()
                    try:
                        outcome = c.query(
                            queries[2],
                            top=3,
                            retry=RetryPolicy(
                                max_attempts=50, jitter_cap_s=0.0, max_delay_s=0.1
                            ),
                        )
                    finally:
                        releaser.cancel()
                        service.release()
                    assert outcome["type"] == "result"
                outcomes = filler.collect(n)
                assert {o["type"] for o in outcomes} <= {"result", "rejected"}
                assert any(o["type"] == "result" for o in outcomes)
        finally:
            service.shutdown()
