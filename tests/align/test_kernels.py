"""Cross-kernel equivalence: every vectorised kernel must reproduce the
scalar reference exactly, for both gap models.

This is the load-bearing test of the alignment subsystem: the SWIPE-,
STRIPED- and CUDASW-style kernels are only faithful stand-ins for the
compared applications if they compute the same similarity scores.
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.align import (
    DTYPE_LADDER,
    GapModel,
    ScoringScheme,
    default_scheme,
    rowsweep_rows,
    sw_matrices_affine,
    sw_score,
    sw_score_batch,
    sw_score_packed,
    sw_score_rowsweep,
    sw_score_striped,
    sw_score_wavefront,
    sw_score_wavefront_batch,
    sw_score_wavefront_packed,
)
from repro.sequences import BLOSUM62, PackedDatabase, Sequence

from .conftest import protein_seq, random_protein

AFFINE = default_scheme()
LINEAR = ScoringScheme(matrix=BLOSUM62, gaps=GapModel.linear(-4))
SCHEMES = {"affine": AFFINE, "linear": LINEAR}


@pytest.fixture(params=sorted(SCHEMES), ids=str, scope="module")
def scheme(request):
    return SCHEMES[request.param]


KERNELS = {
    "rowsweep": lambda q, s, sch: sw_score_rowsweep(q, s, sch),
    "striped": lambda q, s, sch: sw_score_striped(q, s, sch, lanes=4),
    "striped_wide": lambda q, s, sch: sw_score_striped(q, s, sch, lanes=16),
    "wavefront": lambda q, s, sch: sw_score_wavefront(q, s, sch),
    "batch": lambda q, s, sch: int(sw_score_batch(q, [s], sch)[0]),
}


@pytest.mark.parametrize("kernel", sorted(KERNELS), ids=str)
class TestKernelEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(q=protein_seq("q"), s=protein_seq("s"))
    def test_matches_scalar(self, kernel, scheme, q, s):
        assert KERNELS[kernel](q, s, scheme) == sw_score(q, s, scheme)

    def test_single_residue(self, kernel, scheme):
        q = Sequence.from_text("q", "W")
        s = Sequence.from_text("s", "W")
        assert KERNELS[kernel](q, s, scheme) == 11

    def test_no_similarity(self, kernel, scheme):
        q = Sequence.from_text("q", "WWWW")
        s = Sequence.from_text("s", "PPPP")
        assert KERNELS[kernel](q, s, scheme) == sw_score(q, s, scheme)

    def test_long_random_pair(self, kernel, scheme):
        rng = np.random.default_rng(1234)
        q = random_protein(rng, 150)
        s = random_protein(rng, 200)
        assert KERNELS[kernel](q, s, scheme) == sw_score(q, s, scheme)


class TestKernelEdgeCases:
    def test_empty_sequences(self):
        q = Sequence.from_text("q", "")
        s = Sequence.from_text("s", "ARND")
        assert sw_score_rowsweep(q, s, AFFINE) == 0
        assert sw_score_rowsweep(s, q, AFFINE) == 0
        assert sw_score_striped(q, s, AFFINE) == 0
        assert sw_score_wavefront(q, s, AFFINE) == 0
        assert sw_score_batch(q, [s], AFFINE).tolist() == [0]

    def test_striped_lane_validation(self):
        q = Sequence.from_text("q", "ARND")
        with pytest.raises(ValueError, match="lanes"):
            sw_score_striped(q, q, AFFINE, lanes=0)

    def test_striped_more_lanes_than_query(self):
        q = Sequence.from_text("q", "AR")
        s = Sequence.from_text("s", "ARND")
        assert sw_score_striped(q, s, AFFINE, lanes=16) == sw_score(q, s, AFFINE)

    def test_rowsweep_rows_match_scalar_matrix(self):
        rng = np.random.default_rng(5)
        q = random_protein(rng, 12)
        s = random_protein(rng, 17)
        H_ref, _, _ = sw_matrices_affine(q, s, AFFINE)
        rows = [row for row, _ in rowsweep_rows(q, s, AFFINE)]
        assert len(rows) == len(q)
        for i, row in enumerate(rows, start=1):
            assert np.array_equal(row, H_ref[i].astype(np.int64))


class TestBatch:
    def test_empty_database(self):
        q = Sequence.from_text("q", "ARND")
        assert sw_score_batch(q, [], AFFINE).size == 0

    def test_order_preserved_across_chunks(self):
        rng = np.random.default_rng(7)
        db = [random_protein(rng, int(n)) for n in rng.integers(1, 90, size=40)]
        q = random_protein(rng, 60)
        got = sw_score_batch(q, db, AFFINE, chunk_cells=1500)
        ref = np.array([sw_score(q, s, AFFINE) for s in db])
        assert np.array_equal(got, ref)

    def test_chunk_cells_validation(self):
        q = Sequence.from_text("q", "ARND")
        with pytest.raises(ValueError, match="chunk_cells"):
            sw_score_batch(q, [q], AFFINE, chunk_cells=0)

    def test_tiny_chunks_one_sequence_each(self):
        rng = np.random.default_rng(9)
        db = [random_protein(rng, 30) for _ in range(5)]
        q = random_protein(rng, 25)
        got = sw_score_batch(q, db, AFFINE, chunk_cells=1)
        ref = np.array([sw_score(q, s, AFFINE) for s in db])
        assert np.array_equal(got, ref)

    def test_linear_scheme_batch(self):
        rng = np.random.default_rng(11)
        db = [random_protein(rng, int(n)) for n in rng.integers(1, 50, size=20)]
        q = random_protein(rng, 40)
        got = sw_score_batch(q, db, LINEAR)
        ref = np.array([sw_score(q, s, LINEAR) for s in db])
        assert np.array_equal(got, ref)


class TestDtypeLadder:
    """The adaptive int16→int32→int64 ladder must be bit-for-bit exact."""

    @pytest.mark.parametrize("level", DTYPE_LADDER, ids=lambda lv: np.dtype(lv.dtype).name)
    def test_each_level_matches_scalar(self, scheme, level):
        rng = np.random.default_rng(31)
        db = [random_protein(rng, int(n)) for n in rng.integers(1, 70, size=25)]
        q = random_protein(rng, 50)
        got = sw_score_batch(q, db, scheme, chunk_cells=1500, levels=(level,))
        ref = np.array([sw_score(q, s, scheme) for s in db])
        assert np.array_equal(got, ref)

    def test_int16_saturation_recovers_exact(self, scheme):
        # An all-W pair scores 11 per matched residue: length 3200 gives
        # 35200, past the int16 ceiling (32767 - 11), so the ladder must
        # detect saturation and transparently re-score in a wider dtype.
        rng = np.random.default_rng(32)
        shorts = [random_protein(rng, int(n)) for n in rng.integers(5, 45, size=4)]
        db = shorts + [
            Sequence.from_text("wlong", "W" * 3200),
            Sequence.from_text("wmid", "W" * 1500),
        ]
        q = Sequence.from_text("q", "W" * 3200)
        got = sw_score_batch(q, db, scheme)
        ref = [sw_score(q, s, scheme) for s in shorts] + [11 * 3200, 11 * 1500]
        assert got.tolist() == ref
        assert got.max() > np.iinfo(np.int16).max  # really saturated int16

    def test_forced_narrow_level_on_saturating_pair_stays_capped(self):
        # Pinning the ladder to int16 on a saturating workload cannot be
        # exact, but it must not wrap around either (soundness bound).
        q = Sequence.from_text("q", "W" * 3200)
        got = sw_score_batch(q, [q], AFFINE, levels=(DTYPE_LADDER[0],))
        assert 0 < int(got[0]) <= np.iinfo(np.int16).max

    def test_no_usable_level_raises(self):
        q = Sequence.from_text("q", "ARND")
        with pytest.raises(ValueError, match="usable"):
            sw_score_batch(q, [q], AFFINE, levels=())

    def test_ladder_and_int64_agree_on_random_db(self, scheme):
        rng = np.random.default_rng(33)
        db = [random_protein(rng, int(n)) for n in rng.integers(1, 80, size=30)]
        q = random_protein(rng, 60)
        ladder = sw_score_batch(q, db, scheme, chunk_cells=2000)
        exact = sw_score_batch(q, db, scheme, chunk_cells=2000, levels=(DTYPE_LADDER[-1],))
        assert np.array_equal(ladder, exact)


class TestWavefrontBatched:
    """The whole-chunk anti-diagonal kernel vs its per-subject original."""

    def test_matches_scalar_on_ragged_db(self, scheme):
        rng = np.random.default_rng(41)
        db = [random_protein(rng, int(n)) for n in rng.integers(1, 50, size=15)]
        q = random_protein(rng, 35)
        got = sw_score_wavefront_batch(q, db, scheme, chunk_cells=600)
        ref = np.array([sw_score(q, s, scheme) for s in db])
        assert np.array_equal(got, ref)

    def test_packed_reuse_matches_batch_kernel(self, scheme):
        rng = np.random.default_rng(42)
        db = [random_protein(rng, int(n)) for n in rng.integers(1, 40, size=12)]
        packed = PackedDatabase(db, chunk_cells=500)
        for n in (20, 33):
            q = random_protein(rng, n)
            assert np.array_equal(
                sw_score_wavefront_packed(q, packed, scheme),
                sw_score_packed(q, packed, scheme),
            )

    def test_empty_inputs(self):
        q = Sequence.from_text("q", "ARND")
        assert sw_score_wavefront_batch(q, [], AFFINE).size == 0
        empty_q = Sequence.from_text("e", "")
        s = Sequence.from_text("s", "ARND")
        assert sw_score_wavefront_batch(empty_q, [s], AFFINE).tolist() == [0]


class TestWavefront:
    def test_step_count(self):
        q = Sequence.from_text("q", "ARND")
        s = Sequence.from_text("s", "ARNDAR")
        from repro.align import wavefront_steps

        steps = list(wavefront_steps(q, s, AFFINE))
        assert len(steps) == len(q) + len(s) - 1

    def test_running_max_equals_score(self):
        rng = np.random.default_rng(13)
        q = random_protein(rng, 30)
        s = random_protein(rng, 40)
        from repro.align import wavefront_steps

        assert max(wavefront_steps(q, s, AFFINE)) == sw_score(q, s, AFFINE)
