"""Tests for linear-space (Hirschberg/Myers-Miller) alignment."""

import numpy as np
from hypothesis import given, settings

from repro.align import (
    align_global_linear_space,
    align_local_linear_space,
    align_local,
    nw_score,
    sw_score,
)
from repro.align.linear_space import _score_alignment
from repro.sequences import Sequence

from .conftest import protein_seq, random_protein


class TestGlobalLinearSpace:
    @settings(max_examples=30, deadline=None)
    @given(q=protein_seq("q"), s=protein_seq("s"))
    def test_score_matches_nw(self, affine_scheme, q, s):
        res = align_global_linear_space(q, s, affine_scheme)
        assert res.score == nw_score(q, s, affine_scheme, mode="global")

    @settings(max_examples=30, deadline=None)
    @given(q=protein_seq("q"), s=protein_seq("s"))
    def test_alignment_rescoring_consistent(self, affine_scheme, q, s):
        res = align_global_linear_space(q, s, affine_scheme)
        assert (
            _score_alignment(res.aligned_query, res.aligned_subject, affine_scheme)
            == res.score
        )

    def test_alignment_covers_both_sequences(self, affine_scheme):
        rng = np.random.default_rng(5)
        q = random_protein(rng, 33)
        s = random_protein(rng, 47)
        res = align_global_linear_space(q, s, affine_scheme)
        assert res.aligned_query.replace("-", "") == q.text
        assert res.aligned_subject.replace("-", "") == s.text

    def test_identical_sequences(self, affine_scheme):
        q = Sequence.from_text("q", "ARNDCQEGHILK")
        res = align_global_linear_space(q, q, affine_scheme)
        assert res.aligned_query == q.text
        assert res.aligned_subject == q.text
        assert res.identity == 1.0

    def test_long_sequences(self, affine_scheme):
        # Longer than any base case: exercises deep recursion.
        rng = np.random.default_rng(6)
        q = random_protein(rng, 200)
        s = random_protein(rng, 180)
        res = align_global_linear_space(q, s, affine_scheme)
        assert res.score == nw_score(q, s, affine_scheme, mode="global")

    def test_single_residue_cases(self, affine_scheme):
        a = Sequence.from_text("a", "W")
        b = Sequence.from_text("b", "WARND")
        res = align_global_linear_space(a, b, affine_scheme)
        assert res.score == nw_score(a, b, affine_scheme, mode="global")

    def test_linear_gap_scheme(self, linear_scheme):
        rng = np.random.default_rng(7)
        q = random_protein(rng, 30)
        s = random_protein(rng, 30)
        res = align_global_linear_space(q, s, linear_scheme)
        assert res.score == nw_score(q, s, linear_scheme, mode="global")


class TestLocalLinearSpace:
    @settings(max_examples=30, deadline=None)
    @given(q=protein_seq("q"), s=protein_seq("s"))
    def test_score_matches_quadratic(self, affine_scheme, q, s):
        res = align_local_linear_space(q, s, affine_scheme)
        assert res.score == sw_score(q, s, affine_scheme)

    @settings(max_examples=25, deadline=None)
    @given(q=protein_seq("q"), s=protein_seq("s"))
    def test_alignment_rescoring(self, affine_scheme, q, s):
        res = align_local_linear_space(q, s, affine_scheme)
        if res.score > 0:
            assert (
                _score_alignment(
                    res.aligned_query, res.aligned_subject, affine_scheme
                )
                == res.score
            )

    def test_coordinates_consistent(self, affine_scheme):
        rng = np.random.default_rng(9)
        q = random_protein(rng, 60)
        s = random_protein(rng, 70)
        res = align_local_linear_space(q, s, affine_scheme)
        assert res.aligned_query.replace("-", "") == q.text[
            res.query_start : res.query_end
        ]
        assert res.aligned_subject.replace("-", "") == s.text[
            res.subject_start : res.subject_end
        ]

    def test_no_similarity(self, affine_scheme):
        q = Sequence.from_text("q", "WWWW")
        s = Sequence.from_text("s", "PPPP")
        res = align_local_linear_space(q, s, affine_scheme)
        assert res.score == 0
        assert res.length == 0

    def test_matches_quadratic_result(self, affine_scheme):
        q = Sequence.from_text("q", "PPPARNDCQEGPPP")
        s = Sequence.from_text("s", "WWARNDCQEGWW")
        linear = align_local_linear_space(q, s, affine_scheme)
        quadratic = align_local(q, s, affine_scheme)
        assert linear.score == quadratic.score
