"""Tests for banded SW, NW modes and GCUPS accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align import (
    CellUpdateCounter,
    cell_updates,
    gcups,
    nw_score,
    sw_score,
    sw_score_banded,
)
from repro.sequences import Sequence

from .conftest import protein_seq, random_protein


class TestBanded:
    def test_full_band_is_exact(self, affine_scheme):
        rng = np.random.default_rng(31)
        for _ in range(10):
            q = random_protein(rng, int(rng.integers(1, 50)))
            s = random_protein(rng, int(rng.integers(1, 50)))
            w = max(len(q), len(s))
            assert sw_score_banded(q, s, affine_scheme, w) == sw_score(
                q, s, affine_scheme
            )

    def test_full_band_exact_linear(self, linear_scheme):
        rng = np.random.default_rng(32)
        q = random_protein(rng, 40)
        s = random_protein(rng, 35)
        assert sw_score_banded(q, s, linear_scheme, 45) == sw_score(
            q, s, linear_scheme
        )

    @settings(max_examples=25, deadline=None)
    @given(q=protein_seq("q"), s=protein_seq("s"), w=st.integers(0, 20))
    def test_lower_bound_property(self, affine_scheme, q, s, w):
        assert sw_score_banded(q, s, affine_scheme, w) <= sw_score(
            q, s, affine_scheme
        )

    @settings(max_examples=15, deadline=None)
    @given(q=protein_seq("q"), s=protein_seq("s"))
    def test_monotone_in_bandwidth(self, affine_scheme, q, s):
        scores = [sw_score_banded(q, s, affine_scheme, w) for w in (0, 3, 8, 60)]
        assert scores == sorted(scores)

    def test_band_zero_is_diagonal_only(self, affine_scheme):
        q = Sequence.from_text("q", "ARND")
        # Diagonal-only band on identical sequences still finds the
        # full match.
        assert sw_score_banded(q, q, affine_scheme, 0) == sw_score(
            q, q, affine_scheme
        )

    def test_negative_bandwidth_disables_banding(self, affine_scheme):
        # KSW2 contract: w = -1 (or None) turns the band off entirely,
        # so the result is the exact local score.
        q = Sequence.from_text("q", "ARNDCQEGHI")
        s = Sequence.from_text("s", "PPPPPPPPARNDCQEGHI")
        exact = sw_score(q, s, affine_scheme)
        assert sw_score_banded(q, s, affine_scheme, -1) == exact
        assert sw_score_banded(q, s, affine_scheme, None) == exact

    def test_empty(self, affine_scheme):
        q = Sequence.from_text("q", "")
        s = Sequence.from_text("s", "ARND")
        assert sw_score_banded(q, s, affine_scheme, 5) == 0

    def test_band_excludes_offdiagonal_match(self, affine_scheme):
        # Match sits far off the main diagonal; a narrow band misses it.
        q = Sequence.from_text("q", "WWWWW")
        s = Sequence.from_text("s", "PPPPPPPPPPPPPPPPPPPPWWWWW")
        narrow = sw_score_banded(q, s, affine_scheme, 2)
        wide = sw_score_banded(q, s, affine_scheme, 25)
        assert wide == sw_score(q, s, affine_scheme)
        assert narrow < wide


class TestNWModes:
    def test_global_identical(self, affine_scheme):
        q = Sequence.from_text("q", "ARNDARND")
        from repro.sequences import BLOSUM62

        expected = sum(BLOSUM62.score(c, c) for c in q.text)
        assert nw_score(q, q, affine_scheme, mode="global") == expected

    def test_global_charges_end_gaps(self, affine_scheme):
        q = Sequence.from_text("q", "ARND")
        s = Sequence.from_text("s", "ARNDWWWW")
        g = nw_score(q, s, affine_scheme, mode="global")
        sg = nw_score(q, s, affine_scheme, mode="semiglobal")
        assert sg > g  # trailing subject gaps free in semiglobal

    def test_semiglobal_finds_embedded_query(self, affine_scheme):
        q = Sequence.from_text("q", "ARND")
        s = Sequence.from_text("s", "WWWWARNDWWWW")
        from repro.sequences import BLOSUM62

        expected = sum(BLOSUM62.score(c, c) for c in "ARND")
        assert nw_score(q, s, affine_scheme, mode="semiglobal") == expected

    def test_overlap_mode(self, affine_scheme):
        # Suffix of query overlaps prefix of subject.
        q = Sequence.from_text("q", "WWWWARND")
        s = Sequence.from_text("s", "ARNDPPPP")
        from repro.sequences import BLOSUM62

        expected = sum(BLOSUM62.score(c, c) for c in "ARND")
        assert nw_score(q, s, affine_scheme, mode="overlap") >= expected

    def test_invalid_mode(self, affine_scheme):
        q = Sequence.from_text("q", "AR")
        with pytest.raises(ValueError, match="mode"):
            nw_score(q, q, affine_scheme, mode="fancy")

    def test_linear_global(self, dna_scheme):
        from repro.sequences import DNA

        q = Sequence.from_text("q", "ACGT", alphabet=DNA)
        s = Sequence.from_text("s", "ACG", alphabet=DNA)
        # 3 matches + one trailing gap (-2).
        assert nw_score(q, s, dna_scheme, mode="global") == 1

    @settings(max_examples=20, deadline=None)
    @given(q=protein_seq("q"), s=protein_seq("s"))
    def test_mode_ordering_property(self, affine_scheme, q, s):
        g = nw_score(q, s, affine_scheme, mode="global")
        sg = nw_score(q, s, affine_scheme, mode="semiglobal")
        ov = nw_score(q, s, affine_scheme, mode="overlap")
        local = sw_score(q, s, affine_scheme)
        assert g <= sg <= ov <= local


class TestStats:
    def test_cell_updates_scalar(self):
        assert cell_updates(100, 1000) == 100_000

    def test_cell_updates_array(self):
        lens = np.array([10, 20])
        assert cell_updates(lens, 100).tolist() == [1000, 2000]

    def test_cell_updates_validation(self):
        with pytest.raises(ValueError):
            cell_updates(-1, 10)
        with pytest.raises(ValueError):
            cell_updates(1, -10)

    def test_gcups(self):
        # The paper's headline: 77.7 Tcells less 543.28 s on 2 workers.
        assert gcups(543.28 * 35.81e9, 543.28) == pytest.approx(35.81)

    def test_gcups_validation(self):
        with pytest.raises(ValueError):
            gcups(-1, 1)
        with pytest.raises(ValueError):
            gcups(1, 0)

    def test_counter_accumulates(self):
        c = CellUpdateCounter()
        c.add(100, 1000)
        c.add(200, 1000)
        assert c.total_cells == 300_000
        assert c.comparisons == 2
        assert c.per_task_cells() == [100_000, 200_000]

    def test_counter_merge(self):
        a, b = CellUpdateCounter(), CellUpdateCounter()
        a.add(10, 10)
        b.add(20, 10)
        a.merge(b)
        assert a.total_cells == 300
        assert a.comparisons == 2

    def test_counter_gcups(self):
        c = CellUpdateCounter()
        c.add(1000, 1_000_000)
        assert c.gcups(1.0) == pytest.approx(1.0)
