"""Tests for the scalar Smith-Waterman reference (Equations 1-4)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.align import (
    GapModel,
    ScoringScheme,
    nw_score,
    sw_matrices_affine,
    sw_matrix_linear,
    sw_score,
    sw_score_and_position,
)
from repro.sequences import BLOSUM62, DNA, Sequence, match_mismatch_matrix

from .conftest import protein_seq


def dna(text, name="s"):
    return Sequence.from_text(name, text, alphabet=DNA)


class TestPaperFigure1:
    """The worked example of the paper's Figure 1."""

    SCHEME = ScoringScheme(
        matrix=match_mismatch_matrix(DNA, match=1, mismatch=-1),
        gaps=GapModel.linear(-2),
    )

    def test_global_score_is_4(self):
        # ACTTGTCCG / A-TTGTCAG: 7 matches, 1 mismatch, 1 gap = +4.
        s = dna("ACTTGTCCG")
        t = dna("ATTGTCAG")
        assert nw_score(s, t, self.SCHEME, mode="global") == 4

    def test_local_score_at_least_global(self):
        s = dna("ACTTGTCCG")
        t = dna("ATTGTCAG")
        assert sw_score(s, t, self.SCHEME) >= 4


class TestLinearMatrix:
    SCHEME = ScoringScheme(
        matrix=match_mismatch_matrix(DNA, match=1, mismatch=-1),
        gaps=GapModel.linear(-2),
    )

    def test_boundary_rows_zero(self):
        H = sw_matrix_linear(dna("ACG"), dna("AC"), self.SCHEME)
        assert (H[0, :] == 0).all()
        assert (H[:, 0] == 0).all()

    def test_identical_diagonal(self):
        H = sw_matrix_linear(dna("ACGT"), dna("ACGT"), self.SCHEME)
        assert H[4, 4] == 4

    def test_all_mismatches_zero(self):
        assert sw_score(dna("AAAA"), dna("TTTT"), self.SCHEME) == 0

    def test_internal_gap(self):
        # ACGTACGT vs ACGTTACGT: 8 matches with one 1-residue gap (-2).
        assert sw_score(dna("ACGTACGT"), dna("ACGTTACGT"), self.SCHEME) == 6

    def test_rejects_affine_scheme(self):
        from repro.align import default_scheme

        q = Sequence.from_text("q", "AR")
        with pytest.raises(ValueError, match="linear-gap"):
            sw_matrix_linear(q, q, default_scheme())

    def test_never_negative(self):
        H = sw_matrix_linear(dna("ACGTTGCA"), dna("TTGGAACC"), self.SCHEME)
        assert (H >= 0).all()


class TestAffineMatrices:
    def test_identical_protein(self, affine_scheme):
        q = Sequence.from_text("q", "ARND")
        H, E, F = sw_matrices_affine(q, q, affine_scheme)
        assert H[4, 4] == 4 + 5 + 6 + 6  # self scores A,R,N,D

    def test_gap_costs_open_plus_extend(self):
        # Force a gap of length 2: X + Y vs X + ZZ + Y with residues
        # chosen so cross-matches cannot beat the gapped alignment.
        scheme = ScoringScheme(
            matrix=match_mismatch_matrix(DNA, match=5, mismatch=-8),
            gaps=GapModel.affine(3, 1),
        )
        q = dna("ACGTGTCA")
        s = dna("ACGTTTGTCA")  # 'TT' inserted in the middle
        # 8 matches (+40) minus one gap of length 2 (3 + 2*1 = 5).
        assert sw_score(q, s, scheme) == 40 - 5

    def test_affine_groups_gaps(self):
        # One gap of length 2 must beat two separate length-1 gaps:
        # with Gs=10, Ge=1 a 2-gap costs 12, two 1-gaps cost 22.
        scheme = ScoringScheme(
            matrix=match_mismatch_matrix(DNA, match=5, mismatch=-8),
            gaps=GapModel.affine(10, 1),
        )
        q = dna("ACGTGTCA")
        s = dna("ACGTTTGTCA")
        assert sw_score(q, s, scheme) == 40 - 12

    def test_rejects_linear_scheme(self, linear_scheme):
        q = Sequence.from_text("q", "AR")
        with pytest.raises(ValueError, match="affine-gap"):
            sw_matrices_affine(q, q, linear_scheme)

    def test_h_never_negative_e_f_can_be(self, affine_scheme):
        q = Sequence.from_text("q", "ARNDC")
        s = Sequence.from_text("s", "WWYVL")
        H, E, F = sw_matrices_affine(q, s, affine_scheme)
        assert (H >= 0).all()
        assert (E[1:, 1:] < 0).any()

    def test_score_and_position(self, affine_scheme):
        q = Sequence.from_text("q", "ARND")
        score, (i, j) = sw_score_and_position(q, q, affine_scheme)
        assert score == 21
        assert (i, j) == (4, 4)

    def test_empty_query(self, affine_scheme):
        q = Sequence.from_text("q", "")
        s = Sequence.from_text("s", "ARND")
        assert sw_score(q, s, affine_scheme) == 0

    def test_alphabet_mismatch_rejected(self, affine_scheme):
        q = Sequence.from_text("q", "ARND")
        s = dna("ACGT")
        with pytest.raises(ValueError, match="alphabet"):
            sw_score(q, s, affine_scheme)


class TestScoreProperties:
    """Hypothesis invariants of the SW similarity."""

    @settings(max_examples=30, deadline=None)
    @given(q=protein_seq("q"), s=protein_seq("s"))
    def test_symmetry(self, affine_scheme, q, s):
        assert sw_score(q, s, affine_scheme) == sw_score(s, q, affine_scheme)

    @settings(max_examples=30, deadline=None)
    @given(q=protein_seq("q"), s=protein_seq("s"))
    def test_non_negative(self, affine_scheme, q, s):
        assert sw_score(q, s, affine_scheme) >= 0

    @settings(max_examples=30, deadline=None)
    @given(q=protein_seq("q"))
    def test_self_score_is_diagonal_sum(self, affine_scheme, q):
        expected = sum(BLOSUM62.score(c, c) for c in q.text)
        assert sw_score(q, q, affine_scheme) == expected

    @settings(max_examples=30, deadline=None)
    @given(q=protein_seq("q"), s=protein_seq("s"))
    def test_reversal_invariance(self, affine_scheme, q, s):
        assert sw_score(q, s, affine_scheme) == sw_score(
            q.reversed(), s.reversed(), affine_scheme
        )

    @settings(max_examples=20, deadline=None)
    @given(q=protein_seq("q"), s1=protein_seq("a"), s2=protein_seq("b"))
    def test_concatenation_monotone(self, affine_scheme, q, s1, s2):
        joined = Sequence(
            id="ab",
            codes=np.concatenate([s1.codes, s2.codes]),
            alphabet=s1.alphabet,
        )
        assert sw_score(q, joined, affine_scheme) >= max(
            sw_score(q, s1, affine_scheme), sw_score(q, s2, affine_scheme)
        )

    @settings(max_examples=20, deadline=None)
    @given(q=protein_seq("q"), s=protein_seq("s"))
    def test_local_at_least_global(self, affine_scheme, q, s):
        assert sw_score(q, s, affine_scheme) >= max(
            0, nw_score(q, s, affine_scheme, mode="global")
        )
