"""Tests for local-alignment traceback."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.align import AlignmentResult, align_local, sw_score
from repro.sequences import Sequence

from .conftest import protein_seq, random_protein


def rescore(result, scheme):
    """Independently re-score an alignment from its aligned strings."""
    total = 0
    in_gap_q = in_gap_s = False
    for a, b in zip(result.aligned_query, result.aligned_subject):
        if a == "-":
            total -= scheme.gaps.gap_extend + (
                0 if in_gap_q else scheme.gaps.gap_open
            )
            in_gap_q, in_gap_s = True, False
        elif b == "-":
            total -= scheme.gaps.gap_extend + (
                0 if in_gap_s else scheme.gaps.gap_open
            )
            in_gap_q, in_gap_s = False, True
        else:
            total += scheme.matrix.score(a, b)
            in_gap_q = in_gap_s = False
    return total


class TestAlignLocal:
    def test_identical(self, affine_scheme):
        q = Sequence.from_text("q", "ARNDC")
        res = align_local(q, q, affine_scheme)
        assert res.aligned_query == "ARNDC"
        assert res.aligned_subject == "ARNDC"
        assert res.identity == 1.0
        assert res.cigar() == "5M"
        assert (res.query_start, res.query_end) == (0, 5)

    def test_score_matches_sw(self, affine_scheme):
        rng = np.random.default_rng(21)
        q = random_protein(rng, 35)
        s = random_protein(rng, 42)
        res = align_local(q, s, affine_scheme)
        assert res.score == sw_score(q, s, affine_scheme)

    def test_gap_in_alignment(self, affine_scheme):
        q = Sequence.from_text("q", "MKVLAWFRMKVLAW")
        s = Sequence.from_text("s", "MKVLAWFFFRMKVLAW")
        res = align_local(q, s, affine_scheme)
        assert "-" in res.aligned_query
        assert rescore(res, affine_scheme) == res.score

    def test_coordinates_consistent(self, affine_scheme):
        q = Sequence.from_text("q", "PPPPARNDCPPPP")
        s = Sequence.from_text("s", "WWARNDCWW")
        res = align_local(q, s, affine_scheme)
        # The aligned region of the query must equal the slice it claims.
        assert res.aligned_query.replace("-", "") == q.text[
            res.query_start : res.query_end
        ]
        assert res.aligned_subject.replace("-", "") == s.text[
            res.subject_start : res.subject_end
        ]

    def test_empty_alignment_when_no_similarity(self, affine_scheme):
        q = Sequence.from_text("q", "WWWW")
        s = Sequence.from_text("s", "PPPP")
        res = align_local(q, s, affine_scheme)
        assert res.score == 0
        assert res.length == 0
        assert res.cigar() == ""
        assert res.identity == 0.0

    def test_linear_scheme_traceback(self, linear_scheme):
        rng = np.random.default_rng(3)
        q = random_protein(rng, 30)
        s = random_protein(rng, 30)
        res = align_local(q, s, linear_scheme)
        assert res.score == sw_score(q, s, linear_scheme)

    @settings(max_examples=25, deadline=None)
    @given(q=protein_seq("q"), s=protein_seq("s"))
    def test_property_rescoring(self, affine_scheme, q, s):
        res = align_local(q, s, affine_scheme)
        if res.score > 0:
            assert rescore(res, affine_scheme) == res.score

    @settings(max_examples=25, deadline=None)
    @given(q=protein_seq("q"), s=protein_seq("s"))
    def test_property_coordinates(self, affine_scheme, q, s):
        res = align_local(q, s, affine_scheme)
        assert res.aligned_query.replace("-", "") == q.text[
            res.query_start : res.query_end
        ]
        assert res.aligned_subject.replace("-", "") == s.text[
            res.subject_start : res.subject_end
        ]


class TestAlignmentResult:
    def make(self, aq, asub, score=10):
        return AlignmentResult(
            score=score,
            query_id="q",
            subject_id="s",
            aligned_query=aq,
            aligned_subject=asub,
            query_start=0,
            query_end=len(aq.replace("-", "")),
            subject_start=0,
            subject_end=len(asub.replace("-", "")),
        )

    def test_unequal_lengths_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            self.make("AR", "A")

    def test_cigar_runs(self):
        res = self.make("AR-ND", "ARN-D")
        assert res.cigar() == "2M1I1D1M"

    def test_matches_and_identity(self):
        res = self.make("ARND", "ARNC")
        assert res.matches == 3
        assert res.identity == 0.75

    def test_gap_count(self):
        res = self.make("A-ND", "AR-D")
        assert res.gaps == 2

    def test_pretty_contains_midline(self):
        res = self.make("ARND", "ARNC")
        out = res.pretty()
        assert "|||" in out
        assert "score=10" in out

    def test_pretty_wraps(self):
        res = self.make("A" * 100, "A" * 100)
        out = res.pretty(width=40)
        assert out.count("AAAA") >= 2
