"""Tests for gap models and scoring schemes."""

import pytest

from repro.align import GapModel, default_scheme
from repro.sequences import BLOSUM62, DNA, Sequence


class TestGapModel:
    def test_linear(self):
        g = GapModel.linear(-3)
        assert not g.is_affine
        assert g.gap == -3

    def test_linear_requires_negative(self):
        with pytest.raises(ValueError, match="negative"):
            GapModel.linear(2)

    def test_affine(self):
        g = GapModel.affine(10, 1)
        assert g.is_affine
        assert g.gap_open == 10
        assert g.gap_extend == 1

    def test_affine_requires_both(self):
        with pytest.raises(ValueError, match="requires"):
            GapModel(gap_open=10)

    def test_affine_penalty_signs(self):
        with pytest.raises(ValueError, match="gap_open"):
            GapModel.affine(-1, 1)
        with pytest.raises(ValueError, match="gap_extend"):
            GapModel.affine(10, 0)

    def test_linear_excludes_affine_fields(self):
        with pytest.raises(ValueError, match="must not set"):
            GapModel(gap=-2, gap_open=10, gap_extend=1)

    def test_zero_open_is_valid_affine(self):
        # Gs = 0 is the linear-equivalent affine model.
        g = GapModel.affine(0, 2)
        assert g.is_affine


class TestScoringScheme:
    def test_default_scheme(self):
        s = default_scheme()
        assert s.matrix is BLOSUM62
        assert s.is_affine
        assert s.gaps.gap_open == 10
        assert s.gaps.gap_extend == 1

    def test_alphabet_delegation(self):
        assert default_scheme().alphabet.name == "protein"

    def test_check_sequence_mismatch(self):
        s = default_scheme()
        dna = Sequence.from_text("d", "ACGT", alphabet=DNA)
        with pytest.raises(ValueError, match="alphabet"):
            s.check_sequence(dna)

    def test_profile_shape(self):
        s = default_scheme()
        q = Sequence.from_text("q", "ARND")
        assert s.profile(q).shape == (4, 24)

    def test_profile_wrong_alphabet(self):
        s = default_scheme()
        with pytest.raises(ValueError):
            s.profile(Sequence.from_text("d", "ACGT", alphabet=DNA))

    def test_max_pair_score(self):
        assert default_scheme().max_pair_score() == 11  # W-W in BLOSUM62
