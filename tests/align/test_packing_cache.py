"""The one-shot batch API's transient-packing memo and the shared
query-profile payload used by the process pool's chunk dispatch."""

import numpy as np
import pytest

from repro.align import default_scheme
from repro.align.sw_batch import (
    _PACKED_CACHE,
    _packed_for,
    attach_query_profiles,
    clear_packed_cache,
    query_profile,
    share_query_profiles,
    sw_score_batch,
)
from repro.sequences import small_database
from repro.sequences.shm import shm_available


@pytest.fixture
def subjects():
    return list(small_database(num_sequences=10, mean_length=40, seed=61))


@pytest.fixture
def queries():
    return list(small_database(num_sequences=3, mean_length=25, seed=62))


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_packed_cache()
    yield
    clear_packed_cache()


class TestPackedMemo:
    def test_same_subjects_reuse_one_packing(self, subjects):
        first = _packed_for(subjects, 2_000, "numpy")
        second = _packed_for(list(subjects), 2_000, "numpy")
        assert second is first
        assert len(_PACKED_CACHE) == 1

    def test_chunk_cells_is_part_of_the_key(self, subjects):
        a = _packed_for(subjects, 2_000, "numpy")
        b = _packed_for(subjects, 4_000, "numpy")
        assert a is not b
        assert len(_PACKED_CACHE) == 2

    def test_backend_is_part_of_the_key(self, subjects):
        # Mirrors the PR 8 retarget-eviction fix: switching the kernel
        # backend must not serve a packing primed under the old one.
        a = _packed_for(subjects, 2_000, "numpy")
        b = _packed_for(subjects, 2_000, "cc")
        assert a is not b
        assert len(_PACKED_CACHE) == 2

    def test_sw_score_batch_hits_the_memo(self, subjects, queries):
        scheme = default_scheme()
        q = queries[0]
        first = sw_score_batch(q, subjects, scheme)
        assert len(_PACKED_CACHE) == 1
        second = sw_score_batch(q, subjects, scheme)
        assert len(_PACKED_CACHE) == 1
        np.testing.assert_array_equal(first, second)

    def test_reuse_packing_false_bypasses(self, subjects, queries):
        scheme = default_scheme()
        scores = sw_score_batch(
            queries[0], subjects, scheme, reuse_packing=False
        )
        assert len(_PACKED_CACHE) == 0
        np.testing.assert_array_equal(
            scores, sw_score_batch(queries[0], subjects, scheme)
        )

    def test_clear_hook(self, subjects):
        _packed_for(subjects, 2_000, "numpy")
        assert _PACKED_CACHE
        clear_packed_cache()
        assert not _PACKED_CACHE

    def test_memo_is_bounded_lru(self, subjects):
        for i in range(12):
            _packed_for(subjects, 1_000 + i, "numpy")
        assert len(_PACKED_CACHE) == 8
        # Oldest entries were evicted, newest kept.
        assert (tuple(subjects), 1_011, "numpy") in _PACKED_CACHE
        assert (tuple(subjects), 1_000, "numpy") not in _PACKED_CACHE


@pytest.mark.skipif(not shm_available(), reason="POSIX shared memory unavailable")
class TestSharedQueryProfiles:
    def test_round_trip_matches_local_profiles(self, queries):
        scheme = default_scheme()
        arena = share_query_profiles(queries, scheme)
        try:
            attached, profiles = attach_query_profiles(
                arena.manifest, queries, scheme, unregister=False
            )
            try:
                assert len(profiles) == len(queries)
                for q, prof in zip(queries, profiles):
                    local = query_profile(q, scheme)
                    np.testing.assert_array_equal(prof._base, local._base)
            finally:
                attached.close()
        finally:
            arena.close()

    def test_query_count_mismatch_rejected(self, queries):
        scheme = default_scheme()
        arena = share_query_profiles(queries, scheme)
        try:
            with pytest.raises(ValueError, match="queries"):
                attach_query_profiles(
                    arena.manifest, queries[:-1], scheme, unregister=False
                )
        finally:
            arena.close()
