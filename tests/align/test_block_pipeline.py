"""Tests for the Figure 2 block-pipelined kernel."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align import (
    pipeline_schedule,
    sw_score,
    sw_score_blocked,
)
from repro.sequences import Sequence

from .conftest import protein_seq, random_protein


class TestBlockedKernel:
    @settings(max_examples=30, deadline=None)
    @given(
        q=protein_seq("q"),
        s=protein_seq("s"),
        pes=st.integers(1, 6),
        stripe=st.integers(1, 20),
    )
    def test_matches_scalar(self, affine_scheme, q, s, pes, stripe):
        assert sw_score_blocked(
            q, s, affine_scheme, num_pes=pes, stripe_rows=stripe
        ) == sw_score(q, s, affine_scheme)

    def test_linear_scheme_converted(self, linear_scheme):
        rng = np.random.default_rng(3)
        q = random_protein(rng, 40)
        s = random_protein(rng, 55)
        assert sw_score_blocked(q, s, linear_scheme, num_pes=3) == sw_score(
            q, s, linear_scheme
        )

    def test_single_pe_degenerates(self, affine_scheme):
        rng = np.random.default_rng(4)
        q = random_protein(rng, 25)
        s = random_protein(rng, 30)
        assert sw_score_blocked(q, s, affine_scheme, num_pes=1) == sw_score(
            q, s, affine_scheme
        )

    def test_more_pes_than_columns(self, affine_scheme):
        q = Sequence.from_text("q", "ARND")
        s = Sequence.from_text("s", "AR")
        assert sw_score_blocked(q, s, affine_scheme, num_pes=16) == sw_score(
            q, s, affine_scheme
        )

    def test_empty(self, affine_scheme):
        q = Sequence.from_text("q", "")
        s = Sequence.from_text("s", "ARND")
        assert sw_score_blocked(q, s, affine_scheme) == 0

    def test_validation(self, affine_scheme):
        q = Sequence.from_text("q", "AR")
        with pytest.raises(ValueError, match="num_pes"):
            sw_score_blocked(q, q, affine_scheme, num_pes=0)


class TestPipelineSchedule:
    def test_span_formula(self):
        stats = pipeline_schedule(stripes=10, num_pes=4, tile_seconds=2.0)
        assert stats.span_seconds == (10 + 4 - 1) * 2.0
        assert stats.busy_seconds_per_pe == (20.0,) * 4

    def test_efficiency_improves_with_stripes(self):
        # The paper's imbalance remark: more stripes per PE -> better.
        small = pipeline_schedule(stripes=4, num_pes=4, tile_seconds=1.0)
        big = pipeline_schedule(stripes=64, num_pes=4, tile_seconds=1.0)
        assert big.efficiency > small.efficiency
        assert big.efficiency > 0.9

    def test_single_pe_is_perfect(self):
        stats = pipeline_schedule(stripes=7, num_pes=1, tile_seconds=1.0)
        assert stats.efficiency == pytest.approx(1.0)
        assert stats.idle_seconds == pytest.approx(0.0)

    def test_fill_drain_idle(self):
        stats = pipeline_schedule(stripes=4, num_pes=4, tile_seconds=1.0)
        # span 7, busy 4 each -> idle 3 per PE.
        assert stats.idle_seconds == pytest.approx(12.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            pipeline_schedule(0, 4, 1.0)
        with pytest.raises(ValueError):
            pipeline_schedule(4, 4, 0.0)
