"""The kernel-backend capability probe (:mod:`repro.align.backend`).

The probe must *never* fail the process: any requested tier that is
missing, disabled, or miscompiling resolves to numpy with the reason
recorded in :attr:`KernelBackendInfo.fallback_reason`.  These tests
drive every resolution path — env knobs, explicit requests, forced
fallbacks, memoisation — without assuming which compiled toolchains
the running machine actually has.
"""

import pytest

from repro.align import backend as backend_mod
from repro.align.backend import (
    BACKEND_CHOICES,
    KernelBackendInfo,
    active_backend,
    clear_backend_cache,
    get_kernels,
    resolve_backend,
    set_active_backend,
)


@pytest.fixture(autouse=True)
def _fresh_probe(monkeypatch):
    """Each test resolves from a clean slate and unset env knobs."""
    monkeypatch.delenv("SWDUAL_KERNEL_BACKEND", raising=False)
    monkeypatch.delenv("SWDUAL_DISABLE_BACKENDS", raising=False)
    clear_backend_cache()
    yield
    clear_backend_cache()


class TestResolution:
    def test_numpy_always_resolves_cleanly(self):
        info = resolve_backend("numpy")
        assert info.name == "numpy"
        assert info.requested == "numpy"
        assert not info.compiled
        assert info.fallback_reason is None
        assert info.version is None

    def test_auto_resolves_to_a_known_tier(self):
        info = resolve_backend("auto")
        assert info.name in BACKEND_CHOICES
        assert info.requested == "auto"
        if info.name == "numpy":
            # auto only lands on numpy when every compiled probe failed,
            # and it must say why.
            assert info.fallback_reason

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            resolve_backend("avx512")

    def test_spelling_normalised(self):
        assert resolve_backend("  NumPy ").name == "numpy"

    def test_env_var_sets_default_request(self, monkeypatch):
        monkeypatch.setenv("SWDUAL_KERNEL_BACKEND", "numpy")
        assert resolve_backend(None).requested == "numpy"

    def test_empty_env_var_means_auto(self, monkeypatch):
        monkeypatch.setenv("SWDUAL_KERNEL_BACKEND", "")
        assert resolve_backend(None).requested == "auto"


class TestForcedFallback:
    def test_disable_env_forces_numpy_under_auto(self, monkeypatch):
        monkeypatch.setenv("SWDUAL_DISABLE_BACKENDS", "numba,cc")
        info = resolve_backend("auto")
        assert info.name == "numpy"
        assert "disabled via SWDUAL_DISABLE_BACKENDS" in info.fallback_reason

    def test_explicit_request_still_falls_back_with_reason(self, monkeypatch):
        """A pinned --kernel-backend never crashes the process; the
        refusal is recorded, not raised."""
        monkeypatch.setenv("SWDUAL_DISABLE_BACKENDS", "cc")
        info = resolve_backend("cc")
        assert info.name == "numpy"
        assert info.requested == "cc"
        assert "cc" in info.fallback_reason

    def test_import_error_degrades_to_numpy(self, monkeypatch):
        def broken_probe(tier):
            raise ImportError(f"No module named {tier!r}")

        monkeypatch.setattr(backend_mod, "_probe", broken_probe)
        info = resolve_backend("auto")
        assert info.name == "numpy"
        assert "not importable" in info.fallback_reason

    def test_selfcheck_failure_degrades_to_numpy(self, monkeypatch):
        """A toolchain that imports but miscompiles must not be used."""

        class Miscompiled:
            name = "cc"
            version = "bad 0.0"

            def pair(self, q, d, scheme):
                return -1  # wrong on purpose

        monkeypatch.setattr(backend_mod, "_probe", lambda tier: Miscompiled())
        info = resolve_backend("auto")
        assert info.name == "numpy"
        assert "self-check" in info.fallback_reason


class TestMemoisation:
    def test_same_request_is_cached(self):
        assert resolve_backend("numpy") is resolve_backend("numpy")

    def test_disabled_set_is_part_of_the_key(self, monkeypatch):
        before = resolve_backend("auto")
        monkeypatch.setenv("SWDUAL_DISABLE_BACKENDS", "numba,cc")
        after = resolve_backend("auto")
        assert after.name == "numpy"
        assert after is not before or before.name == "numpy"


class TestActiveBackend:
    def test_default_resolves_lazily(self):
        assert active_backend().name in BACKEND_CHOICES

    def test_set_by_name_mimics_spawn_worker(self):
        """Spawn workers receive a *name* and re-probe locally."""
        info = set_active_backend("numpy")
        assert info.name == "numpy"
        assert active_backend() is info

    def test_set_none_resets_to_env_default(self):
        set_active_backend("numpy")
        reset = set_active_backend(None)
        assert reset.requested == "auto"


class TestGetKernels:
    def test_none_uses_process_active(self):
        set_active_backend("numpy")
        info, kernels = get_kernels(None)
        assert info.name == "numpy"
        assert kernels is None

    def test_string_request(self):
        info, kernels = get_kernels("numpy")
        assert (info.name, kernels) == ("numpy", None)

    def test_resolved_info_passthrough(self):
        info = resolve_backend("auto")
        info2, kernels = get_kernels(info)
        assert info2 is info
        assert (kernels is None) == (not info.compiled)

    def test_compiled_info_survives_cache_clear(self):
        """An info object that crossed a process boundary by name must
        re-bind its adapter even if this process never probed."""
        info = resolve_backend("auto")
        if not info.compiled:
            pytest.skip("no compiled tier on this machine")
        clear_backend_cache()
        _, kernels = get_kernels(KernelBackendInfo(name=info.name, requested="auto"))
        assert kernels is not None


class TestDescribe:
    def test_plain(self):
        assert KernelBackendInfo("numpy", "numpy").describe() == "numpy"

    def test_version_and_fallback(self):
        line = KernelBackendInfo(
            "numpy", "numba", version=None, fallback_reason="numba: not importable"
        ).describe()
        assert line == "numpy [fallback: numba: not importable]"
        line = KernelBackendInfo("cc", "auto", version="gcc 13").describe()
        assert line == "cc (gcc 13)"


class TestCcGapGuard:
    """The C tier's per-rung wrap guard (``chunk_gaps_supported``)."""

    def test_ordinary_schemes_supported_on_every_rung(self):
        import numpy as np

        from repro.align.compiled.cc_kernels import chunk_gaps_supported

        for dtype in (np.int16, np.int32, np.int64):
            assert chunk_gaps_supported(10, 1, dtype, -30)

    def test_pathological_gaps_rejected_on_narrow_rung_only(self):
        import numpy as np

        from repro.align.compiled.cc_kernels import chunk_gaps_supported

        huge = 32_000  # gs+ge wraps int16 but not int32
        assert not chunk_gaps_supported(huge, huge, np.int16, -30)
        assert chunk_gaps_supported(huge, huge, np.int32, -30)
