"""Shared fixtures and strategies for alignment tests."""

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.align import GapModel, ScoringScheme, default_scheme
from repro.sequences import BLOSUM62, DNA, PROTEIN, Sequence, match_mismatch_matrix


@pytest.fixture(scope="session")
def affine_scheme():
    return default_scheme()


@pytest.fixture(scope="session")
def linear_scheme():
    return ScoringScheme(matrix=BLOSUM62, gaps=GapModel.linear(-4))


@pytest.fixture(scope="session")
def dna_scheme():
    # The paper's Figure 1 scoring: ma=+1, mi=-1, g=-2 (linear).
    return ScoringScheme(
        matrix=match_mismatch_matrix(DNA, match=1, mismatch=-1),
        gaps=GapModel.linear(-2),
    )


def protein_seq(name="q"):
    """Hypothesis strategy for a protein Sequence over the 20 standard
    residues."""
    return st.text(alphabet="ARNDCQEGHILKMFPSTWYV", min_size=1, max_size=60).map(
        lambda t: Sequence.from_text(name, t)
    )


def random_protein(rng: np.random.Generator, n: int) -> Sequence:
    codes = rng.integers(0, 20, n).astype(np.uint8)
    return Sequence(id=f"r{n}", codes=codes, alphabet=PROTEIN)
