"""Tests for E-value statistics."""

import numpy as np
import pytest

from repro.align import EValueModel, default_scheme, fit_evalue_model, sample_null_scores


@pytest.fixture(scope="module")
def model():
    return fit_evalue_model(
        default_scheme(), query_length=80, subject_length=120, samples=120, seed=3
    )


class TestNullSampling:
    def test_shape_and_nonneg(self):
        scores = sample_null_scores(default_scheme(), 50, 80, samples=30, seed=1)
        assert scores.shape == (30,)
        assert (scores >= 0).all()

    def test_deterministic(self):
        a = sample_null_scores(default_scheme(), 40, 60, samples=10, seed=7)
        b = sample_null_scores(default_scheme(), 40, 60, samples=10, seed=7)
        assert np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            sample_null_scores(default_scheme(), 40, 60, samples=1)
        with pytest.raises(ValueError):
            sample_null_scores(default_scheme(), 0, 60)


class TestModel:
    def test_parameters_positive(self, model):
        assert model.lambda_ > 0
        assert model.K > 0

    def test_evalue_decreases_with_score(self, model):
        e_low = model.evalue(30, 100, 100_000)
        e_high = model.evalue(80, 100, 100_000)
        assert e_high < e_low

    def test_evalue_scales_with_search_space(self, model):
        small = model.evalue(50, 100, 10_000)
        big = model.evalue(50, 100, 1_000_000)
        assert big == pytest.approx(100 * small)

    def test_typical_null_score_has_large_evalue(self, model):
        # The median null score should be expected by chance in a
        # search space the size of the sampling space.
        scores = sample_null_scores(
            default_scheme(), 80, 120, samples=120, seed=3
        )
        median = float(np.median(scores))
        e = model.evalue(median, 80, 120)
        assert e > 0.2

    def test_huge_score_is_significant(self, model):
        e = model.evalue(500, 80, 120)
        assert e < 1e-10

    def test_bit_score_monotone(self, model):
        assert model.bit_score(100) > model.bit_score(50)

    def test_pvalue_bounds(self, model):
        p = model.pvalue(60, 100, 100_000)
        assert 0.0 <= p <= 1.0

    def test_pvalue_approximates_small_evalue(self, model):
        e = model.evalue(300, 100, 1000)
        p = model.pvalue(300, 100, 1000)
        if e < 1e-3:
            assert p == pytest.approx(e, rel=1e-2)

    def test_validation(self, model):
        with pytest.raises(ValueError):
            EValueModel(lambda_=0, K=1, sample_query_length=1, sample_subject_length=1)
        with pytest.raises(ValueError):
            model.evalue(10, 0, 100)


class TestCalibrationQuality:
    def test_gumbel_fit_tail(self):
        # About the right fraction of null scores should exceed the
        # score whose fitted E-value is 10% of the sample count.
        scheme = default_scheme()
        model = fit_evalue_model(scheme, 60, 100, samples=200, seed=11)
        scores = sample_null_scores(scheme, 60, 100, samples=200, seed=99)
        # Score with expected 20 chance hits in 200 trials of the
        # sampling space: E(s) per pair * 200 = 20 -> per-pair P ~ 0.1.
        target_p = 0.1
        s_star = (
            np.log(model.K * 60 * 100 / target_p) / model.lambda_
        )
        frac = float((scores >= s_star).mean())
        assert 0.02 <= frac <= 0.35  # loose: 200 samples, extreme tail
