"""Unit tests of the filter-cascade building blocks.

Covers the k-mer index, the vectorised prescreen, the cascade config,
stage accounting, and the banded-stage edge cases (short subjects with
wide bands, off-centre diagonals) the cascade relies on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align import sw_score, sw_score_banded
from repro.align.pipeline import (
    STAGE_NAMES,
    KmerIndex,
    PipelineConfig,
    StageCounts,
    clear_kmer_cache,
    encode_kmers,
    kmer_index,
    pipeline_score_packed,
    prescreen_chunk,
)
from repro.align.scoring import default_scheme
from repro.align.sw_batch import sw_score_packed
from repro.sequences import PROTEIN, Sequence, SequenceDatabase
from repro.sequences.packed import PackedDatabase

from .conftest import protein_seq, random_protein


@pytest.fixture(scope="module")
def scheme():
    return default_scheme()


def _make_packed(rng, num=30, min_len=20, max_len=80, chunk_cells=1_500):
    seqs = [
        Sequence(
            id=f"s{i}",
            codes=rng.integers(0, 20, int(rng.integers(min_len, max_len + 1))).astype(
                np.uint8
            ),
            alphabet=PROTEIN,
        )
        for i in range(num)
    ]
    db = SequenceDatabase("t", seqs)
    return db, PackedDatabase.from_database(db, chunk_cells=chunk_cells)


class TestConfig:
    def test_defaults_valid(self):
        cfg = PipelineConfig()
        assert cfg.k == 3 and cfg.bandwidth == 64

    def test_exact_preset_disables_everything(self):
        cfg = PipelineConfig.exact()
        assert cfg.filters_disabled
        assert cfg.band_disabled
        assert cfg.zdrop is None

    def test_validation(self):
        with pytest.raises(ValueError, match="k must"):
            PipelineConfig(k=0)
        with pytest.raises(ValueError, match="min_seeds"):
            PipelineConfig(min_seeds=-1)
        with pytest.raises(ValueError, match="min_diag_score"):
            PipelineConfig(min_diag_score=-1)
        with pytest.raises(ValueError, match="threshold"):
            PipelineConfig(threshold=0)

    def test_roundtrip_dict(self):
        cfg = PipelineConfig(k=4, min_seeds=1, bandwidth=None, zdrop=None)
        assert PipelineConfig.from_dict(cfg.as_dict()) == cfg

    def test_hashable_and_frozen(self):
        cfg = PipelineConfig()
        assert hash(cfg) == hash(PipelineConfig())
        with pytest.raises(AttributeError):
            cfg.k = 5


class TestStageCounts:
    def test_merge_and_add(self):
        a = StageCounts(subjects_scanned=10, seeds_found=5)
        b = StageCounts(subjects_scanned=3, reported=2)
        a.merge(b)
        assert a.subjects_scanned == 13 and a.reported == 2
        c = a + b
        assert c.subjects_scanned == 16
        assert a.subjects_scanned == 13  # __add__ does not mutate

    def test_merge_dict_and_none(self):
        a = StageCounts()
        a.merge(None)
        a.merge({"subjects_scanned": 4, "rescored": 1})
        assert a.subjects_scanned == 4 and a.rescored == 1

    def test_dict_roundtrip_covers_all_stages(self):
        d = StageCounts(*range(1, len(STAGE_NAMES) + 1)).as_dict()
        assert tuple(d) == STAGE_NAMES
        assert StageCounts.from_dict(d).as_dict() == d

    def test_filter_rate(self):
        assert StageCounts().filter_rate() == 0.0
        assert StageCounts(subjects_scanned=10, banded_survivors=2).filter_rate() == pytest.approx(0.8)


class TestKmerIndex:
    def test_counts_and_first_pos(self):
        q = Sequence.from_text("q", "ARNDARND")
        idx = KmerIndex(q, 3)
        codes = encode_kmers(q.codes, 3, idx.base)
        # "ARN" occurs at 0 and 4; "RND" at 1 and 5.
        arn = int(codes[0])
        assert idx.counts[arn] == 2
        assert idx.first_pos[arn] == 0

    def test_query_shorter_than_k(self):
        q = Sequence.from_text("q", "AR")
        idx = KmerIndex(q, 3)
        assert idx.num_kmers == 0

    def test_table_cap(self):
        q = Sequence.from_text("q", "ARND")
        with pytest.raises(ValueError, match="cap"):
            KmerIndex(q, 99)

    def test_cache_returns_same_object(self):
        clear_kmer_cache()
        q = Sequence.from_text("q", "ARNDCQEGHI")
        assert kmer_index(q, 3) is kmer_index(q, 3)
        assert kmer_index(q, 4) is not kmer_index(q, 3)

    def test_encode_2d(self):
        rng = np.random.default_rng(0)
        rows = rng.integers(0, 20, (4, 10)).astype(np.uint8)
        codes = encode_kmers(rows, 3, 21)
        assert codes.shape == (4, 8)
        flat = encode_kmers(rows[2], 3, 21)
        assert np.array_equal(codes[2], flat)


class TestPrescreen:
    def test_identical_sequence_has_strong_diagonal(self):
        rng = np.random.default_rng(5)
        q = random_protein(rng, 40)
        db = SequenceDatabase("t", [q])
        packed = PackedDatabase.from_database(db)
        idx = KmerIndex(q, 3)
        nseeds, diag_best, diag_center = prescreen_chunk(
            idx, packed.chunks[0].codes, len(q)
        )
        assert int(diag_best[0]) == 38  # every k-mer seeds diagonal 0
        assert int(diag_center[0]) == 0

    def test_pad_windows_count_zero_seeds(self):
        # Short subject padded inside a wide chunk row: padding must
        # contribute no seeds even when the pad code is in range.
        rng = np.random.default_rng(6)
        q = random_protein(rng, 30)
        short = Sequence(id="short", codes=q.codes[:8].copy(), alphabet=PROTEIN)
        long = random_protein(rng, 64)
        db = SequenceDatabase("t", [short, long])
        packed = PackedDatabase.from_database(db)
        idx = KmerIndex(q, 3)
        for chunk in packed.chunks:
            nseeds, _, _ = prescreen_chunk(idx, chunk.codes, len(q))
            for r, row_idx in enumerate(chunk.indices):
                if db[int(row_idx)].id == "short":
                    # Only genuine windows of the 8-residue prefix.
                    direct = KmerIndex(q, 3)
                    w = encode_kmers(q.codes[:8], 3, direct.base)
                    assert int(nseeds[r]) == int(direct.counts[w].sum())

    def test_random_background_rarely_passes_diag_filter(self):
        rng = np.random.default_rng(7)
        q = random_protein(rng, 60)
        db, packed = _make_packed(rng, num=50, min_len=40, max_len=80)
        idx = KmerIndex(q, 3)
        best = []
        for chunk in packed.chunks:
            _, diag_best, _ = prescreen_chunk(idx, chunk.codes, len(q))
            best.extend(diag_best.tolist())
        # The default min_diag_score=12 means >= 4 seeds on one
        # diagonal: essentially impossible for random subjects.
        assert max(best) * 3 < 12


class TestBandedEdgeCases:
    """Satellite regression: band clamping at sequence edges."""

    def test_short_subject_wide_band_is_exact(self, scheme):
        # A subject far shorter than the bandwidth used to be able to
        # mis-clamp the window; any wide band must degrade to exact.
        rng = np.random.default_rng(8)
        q = random_protein(rng, 50)
        for n in (1, 2, 3, 5, 8):
            s = random_protein(rng, n)
            exact = sw_score(q, s, scheme)
            for w in (n, 10, 64, 1000):
                assert sw_score_banded(q, s, scheme, w) <= exact
            assert sw_score_banded(q, s, scheme, 1000) == exact
            assert sw_score_banded(q, s, scheme, None) == exact

    def test_short_query_wide_band_is_exact(self, scheme):
        rng = np.random.default_rng(9)
        s = random_protein(rng, 50)
        for m in (1, 2, 4):
            q = random_protein(rng, m)
            assert sw_score_banded(q, s, scheme, 500) == sw_score(q, s, scheme)

    def test_diag_center_covers_offset_match(self, scheme):
        # Match lives on diagonal +20; a narrow band centred there
        # finds it, the same band on the main diagonal misses it.
        q = Sequence.from_text("q", "WWWWW")
        s = Sequence.from_text("s", "PPPPPPPPPPPPPPPPPPPPWWWWW")
        exact = sw_score(q, s, scheme)
        assert sw_score_banded(q, s, scheme, 2, diag_center=20) == exact
        assert sw_score_banded(q, s, scheme, 2, diag_center=0) < exact

    def test_diag_center_clamped_to_matrix(self, scheme):
        q = Sequence.from_text("q", "ARNDC")
        s = Sequence.from_text("s", "ARNDC")
        exact = sw_score(q, s, scheme)
        # Absurd centres must not crash; wide band stays exact.
        for c in (-1000, 1000):
            assert sw_score_banded(q, s, scheme, None, diag_center=c) == exact

    def test_zdrop_is_lower_bound(self, scheme):
        rng = np.random.default_rng(10)
        for _ in range(20):
            q = random_protein(rng, int(rng.integers(5, 40)))
            s = random_protein(rng, int(rng.integers(5, 40)))
            exact = sw_score(q, s, scheme)
            for z in (0, 10, 100):
                assert sw_score_banded(q, s, scheme, None, zdrop=z) <= exact

    def test_zdrop_negative_rejected(self, scheme):
        q = Sequence.from_text("q", "ARND")
        with pytest.raises(ValueError, match="zdrop"):
            sw_score_banded(q, q, scheme, 5, zdrop=-1)

    @settings(max_examples=30, deadline=None)
    @given(q=protein_seq("q"), s=protein_seq("s"), c=st.integers(-25, 25))
    def test_banded_center_lower_bound_property(self, scheme, q, s, c):
        assert sw_score_banded(q, s, scheme, 6, diag_center=c) <= sw_score(
            q, s, scheme
        )


class TestPipelineScorePacked:
    def test_exact_config_matches_full_scan(self, scheme):
        rng = np.random.default_rng(11)
        db, packed = _make_packed(rng)
        q = random_protein(rng, 40)
        full = sw_score_packed(q, packed, scheme)
        pipe = pipeline_score_packed(q, packed, scheme, PipelineConfig.exact())
        assert np.array_equal(full, pipe)

    def test_survivor_scores_are_exact(self, scheme):
        rng = np.random.default_rng(12)
        db, packed = _make_packed(rng)
        # Plant the query itself so something survives.
        q = list(db)[3]
        full = sw_score_packed(q, packed, scheme)
        counts = StageCounts()
        pipe = pipeline_score_packed(
            q, packed, scheme, PipelineConfig(threshold=50), counts=counts
        )
        reported = np.flatnonzero(pipe >= 50)
        assert reported.size >= 1
        assert np.array_equal(pipe[reported], full[reported])
        assert counts.subjects_scanned == len(db)
        assert counts.reported == reported.size

    def test_filtered_subjects_carry_zero(self, scheme):
        rng = np.random.default_rng(13)
        db, packed = _make_packed(rng)
        q = random_protein(rng, 40)
        pipe = pipeline_score_packed(q, packed, scheme, PipelineConfig())
        survivors = pipe != 0
        full = sw_score_packed(q, packed, scheme)
        assert np.array_equal(pipe[survivors], full[survivors])

    def test_chunk_range_concatenates(self, scheme):
        rng = np.random.default_rng(14)
        db, packed = _make_packed(rng, chunk_cells=900)
        assert len(packed.chunks) > 2
        q = list(db)[0]
        cfg = PipelineConfig(threshold=40)
        whole = pipeline_score_packed(q, packed, scheme, cfg)
        parts = []
        for i in range(len(packed.chunks)):
            parts.append(pipeline_score_packed(q, packed, scheme, cfg, chunk_range=(i, i + 1)))
        stitched = np.zeros_like(whole)
        offset = 0
        for i, chunk in enumerate(packed.chunks):
            stitched[chunk.indices] = parts[i]
            offset += len(chunk.indices)
        assert np.array_equal(whole, stitched)

    def test_alphabet_mismatch_rejected(self, scheme):
        rng = np.random.default_rng(15)
        db, packed = _make_packed(rng)
        from repro.sequences import DNA

        q = Sequence.from_text("q", "ACGT", alphabet=DNA)
        with pytest.raises(ValueError):
            pipeline_score_packed(q, packed, scheme, PipelineConfig())

    def test_short_query_bypasses_prescreen(self, scheme):
        rng = np.random.default_rng(16)
        db, packed = _make_packed(rng)
        q = random_protein(rng, 2)  # shorter than k=3
        full = sw_score_packed(q, packed, scheme)
        cfg = PipelineConfig(threshold=1, bandwidth=None, zdrop=None)
        pipe = pipeline_score_packed(q, packed, scheme, cfg)
        reported = pipe >= 1
        assert np.array_equal(pipe[reported], full[reported])

    @settings(max_examples=10, deadline=None)
    @given(q=protein_seq("q"))
    def test_never_reports_wrong_score_property(self, scheme, q):
        rng = np.random.default_rng(17)
        db, packed = _make_packed(rng, num=12, min_len=10, max_len=40)
        cfg = PipelineConfig(threshold=30)
        pipe = pipeline_score_packed(q, packed, scheme, cfg)
        full = sw_score_packed(q, packed, scheme)
        reported = np.flatnonzero(pipe >= cfg.threshold)
        assert np.array_equal(pipe[reported], full[reported])
