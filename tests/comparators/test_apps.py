"""Tests for the comparator application models."""

import numpy as np
import pytest

from repro.align import default_scheme, sw_score
from repro.comparators import (
    BASELINE_APPS,
    CUDASW,
    LIVE_KERNELS,
    STRIPED,
    SWDUAL,
    SWIPE,
    SWPS3,
    table1_rows,
)
from repro.sequences import (
    paper_database_profile,
    small_database,
    standard_query_set,
)


@pytest.fixture(scope="module")
def uniprot():
    return paper_database_profile("uniprot")


@pytest.fixture(scope="module")
def queries():
    return standard_query_set()


class TestSpecs:
    def test_table1_rows(self):
        rows = table1_rows()
        assert [r[0] for r in rows] == ["SWIPE", "STRIPED", "SWPS3", "CUDASW++"]
        assert rows[0][2] == "./swipe -a $T -i $Q -d $D"
        assert rows[3][1] == "2.0"

    def test_single_worker_time_reproduced(self, uniprot, queries):
        # Each baseline's T1 is a calibration target, so the simulated
        # single-worker time must match Table II almost exactly.
        for app in BASELINE_APPS:
            sim = app.simulate(queries, uniprot, 1).report.wall_seconds
            assert sim == pytest.approx(app.spec.t1_seconds, rel=1e-3), app.name

    def test_multi_worker_shape(self, uniprot, queries):
        # Simulated multi-worker times track the measured ones within
        # 15% (self-scheduling adds end-of-run imbalance).
        for app in BASELINE_APPS:
            for w, measured in app.spec.measured_seconds.items():
                sim = app.simulate(queries, uniprot, w).report.wall_seconds
                assert sim == pytest.approx(measured, rel=0.15), (app.name, w)

    def test_efficiency_interpolation_and_extrapolation(self):
        assert SWIPE.efficiency(1) == 1.0
        assert SWIPE.efficiency(4) == pytest.approx(
            2367.24 / (4 * 610.23), rel=1e-6
        )
        # Beyond the table: monotone geometric continuation.
        assert 0.05 <= CUDASW.efficiency(8) <= CUDASW.efficiency(4)
        with pytest.raises(ValueError):
            SWIPE.efficiency(0)

    def test_platform_kind(self):
        assert all(pe.is_gpu for pe in CUDASW.platform(2))
        assert not any(pe.is_gpu for pe in SWPS3.platform(2))


class TestFigure7Shape:
    """The qualitative claims of Figure 7 / Section V-A."""

    @pytest.fixture(scope="class")
    def times(self, uniprot, queries):
        out = {}
        for app in BASELINE_APPS:
            out[app.name] = {
                w: app.simulate(queries, uniprot, w).report.wall_seconds
                for w in (1, 2, 4)
            }
        out["SWDUAL"] = {
            w: SWDUAL.simulate(queries, uniprot, w).report.wall_seconds
            for w in (2, 4, 8)
        }
        return out

    def test_app_ordering_preserved(self, times):
        # SWPS3 slowest, then STRIPED, then SWIPE, then CUDASW++.
        for w in (1, 2, 4):
            assert (
                times["SWPS3"][w]
                > times["STRIPED"][w]
                > times["SWIPE"][w]
                > times["CUDASW++"][w]
            )

    def test_swdual_wins_at_four_workers(self, times):
        # The paper's headline: at 4 workers SWDUAL (3 GPUs + 1 CPU)
        # beats every other application at 4 workers.
        for name in ("SWPS3", "STRIPED", "SWIPE", "CUDASW++"):
            assert times["SWDUAL"][4] < times[name][4], name

    def test_swdual_reduction_vs_swipe(self, times):
        # Paper: ~55% reduction vs SWIPE at matched worker counts.
        reduction = 1 - times["SWDUAL"][4] / times["SWIPE"][4]
        assert reduction > 0.45

    def test_swdual_monotone_decreasing(self, times):
        assert times["SWDUAL"][2] > times["SWDUAL"][4] > times["SWDUAL"][8]

    def test_all_apps_decrease_with_workers(self, times):
        for name, series in times.items():
            ws = sorted(series)
            values = [series[w] for w in ws]
            assert values == sorted(values, reverse=True), name


class TestLiveKernels:
    def test_kernels_registered_for_all_baselines(self):
        assert set(LIVE_KERNELS) == {a.name for a in BASELINE_APPS}

    @pytest.mark.parametrize("name", sorted(LIVE_KERNELS))
    def test_live_kernel_matches_reference(self, name):
        scheme = default_scheme()
        db = small_database(num_sequences=6, mean_length=40, seed=8)
        query = standard_query_set(count=1).scaled(0.01).materialize(seed=9)[0]
        scores = LIVE_KERNELS[name](query, list(db), scheme)
        expected = np.array([sw_score(query, s, scheme) for s in db])
        assert np.array_equal(np.asarray(scores), expected), name


class TestSWDualApp:
    def test_worker_mix(self):
        assert SWDUAL.worker_mix(2) == (1, 1)
        assert SWDUAL.worker_mix(8) == (4, 4)

    def test_simulate_runs(self, uniprot):
        out = SWDUAL.simulate(standard_query_set(), uniprot, 4)
        assert out.report.wall_seconds > 0
        assert len(out.report.worker_stats) == 4

    def test_validation(self):
        from repro.comparators import SWDualApp

        with pytest.raises(ValueError):
            SWDualApp(max_gpus=0)
        with pytest.raises(ValueError):
            SWDUAL.simulate(standard_query_set(), paper_database_profile("ensembl_dog"), 1)
