"""In-memory sequence database abstraction.

A :class:`SequenceDatabase` is what workers search against: an ordered
collection of sequences over one alphabet, plus the summary statistics
the scheduler and the experiment reports need (sequence count, total
residues, length distribution).  It converts to and from FASTA and the
``.swdb`` binary format.

For paper-scale *simulated* experiments, materialising half a million
synthetic sequences would be wasteful: the scheduler only consumes the
length distribution.  :class:`DatabaseProfile` carries exactly that —
name, per-sequence lengths, alphabet — and any profile can be
``materialize()``-d into a real database at reduced scale for live
kernel runs.
"""

from __future__ import annotations

import hashlib
import os
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

import numpy as np

from repro.sequences.alphabet import PROTEIN, Alphabet
from repro.sequences.binarydb import BinaryDatabaseReader, write_binary_db
from repro.sequences.fasta import read_fasta, write_fasta
from repro.sequences.sequence import Sequence
from repro.utils import ensure_rng

__all__ = ["SequenceDatabase", "DatabaseProfile", "DatabaseStats"]


@dataclass(frozen=True)
class DatabaseStats:
    """Summary statistics of a database or profile.

    Mirrors the columns of the paper's Table III (number of sequences,
    smallest and longest sequence) plus totals used for GCUPS
    accounting.
    """

    name: str
    num_sequences: int
    total_residues: int
    min_length: int
    max_length: int
    mean_length: float

    def as_row(self) -> list[object]:
        """Row for :func:`repro.utils.ascii_table` (Table III layout)."""
        return [
            self.name,
            self.num_sequences,
            self.min_length,
            self.max_length,
            f"{self.mean_length:.1f}",
            self.total_residues,
        ]


class SequenceDatabase:
    """An ordered, single-alphabet collection of sequences.

    Parameters
    ----------
    name:
        Database label used in reports (e.g. ``"UniProt"``).
    sequences:
        The records, all over the same alphabet.
    """

    def __init__(self, name: str, sequences: Iterable[Sequence]):
        self.name = name
        self._sequences = list(sequences)
        if not self._sequences:
            raise ValueError(f"database {name!r} has no sequences")
        alphabet = self._sequences[0].alphabet
        for s in self._sequences:
            if s.alphabet.name != alphabet.name:
                raise ValueError(
                    f"database {name!r} mixes alphabets "
                    f"({alphabet.name!r} vs {s.alphabet.name!r})"
                )
        self._alphabet = alphabet
        self._lengths = np.array([len(s) for s in self._sequences], dtype=np.int64)
        self._fingerprint: str | None = None

    # -- container protocol ------------------------------------------

    def __len__(self) -> int:
        return len(self._sequences)

    def __getitem__(self, i: int) -> Sequence:
        return self._sequences[i]

    def __iter__(self) -> Iterator[Sequence]:
        return iter(self._sequences)

    # -- metadata ------------------------------------------------------

    @property
    def alphabet(self) -> Alphabet:
        """Alphabet shared by every record."""
        return self._alphabet

    @property
    def lengths(self) -> np.ndarray:
        """Per-sequence residue counts (read-only view)."""
        view = self._lengths.view()
        view.setflags(write=False)
        return view

    @property
    def total_residues(self) -> int:
        """Total residue count across all records."""
        return int(self._lengths.sum())

    def stats(self) -> DatabaseStats:
        """Summary statistics (Table III row)."""
        return DatabaseStats(
            name=self.name,
            num_sequences=len(self),
            total_residues=self.total_residues,
            min_length=int(self._lengths.min()),
            max_length=int(self._lengths.max()),
            mean_length=float(self._lengths.mean()),
        )

    def fingerprint(self) -> str:
        """Content hash of the database (ids, residues, alphabet).

        Stable across processes and runs — unlike ``id()`` or the
        display ``name`` — so it can key caches of per-database derived
        data (e.g. :func:`repro.engine.search.calibrate_live` results).
        Sequences are immutable, so the digest is computed once and
        memoised.
        """
        if self._fingerprint is None:
            digest = hashlib.sha256()
            digest.update(self._alphabet.name.encode())
            for s in self._sequences:
                digest.update(b"\x00")
                digest.update(s.id.encode())
                digest.update(b"\x01")
                digest.update(s.codes.tobytes())
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def profile(self) -> "DatabaseProfile":
        """Drop the residues, keep the scheduling-relevant shape."""
        return DatabaseProfile(
            name=self.name, lengths=self._lengths.copy(), alphabet=self._alphabet
        )

    # -- persistence -----------------------------------------------------

    @classmethod
    def from_fasta(
        cls,
        path: str | os.PathLike,
        name: str | None = None,
        alphabet: Alphabet = PROTEIN,
    ) -> "SequenceDatabase":
        """Load a database from a FASTA file."""
        seqs = read_fasta(path, alphabet=alphabet)
        return cls(name or os.path.splitext(os.path.basename(path))[0], seqs)

    @classmethod
    def from_binary(cls, path: str | os.PathLike, name: str | None = None) -> "SequenceDatabase":
        """Load a database fully into memory from a ``.swdb`` file."""
        with BinaryDatabaseReader(path) as reader:
            seqs = list(reader)
        return cls(name or os.path.splitext(os.path.basename(path))[0], seqs)

    def to_fasta(self, path: str | os.PathLike, width: int = 60) -> int:
        """Write all records as FASTA; returns record count."""
        return write_fasta(self._sequences, path, width=width)

    def to_binary(self, path: str | os.PathLike) -> int:
        """Write all records in ``.swdb`` format; returns record count."""
        return write_binary_db(self._sequences, path)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SequenceDatabase({self.name!r}, n={len(self)}, "
            f"residues={self.total_residues})"
        )


@dataclass(frozen=True)
class DatabaseProfile:
    """The scheduling-relevant shape of a database: name + lengths.

    Paper-scale experiments (537,505 UniProt sequences) run against
    profiles; live kernel runs materialise a down-scaled database with
    the same length *distribution*.
    """

    name: str
    lengths: np.ndarray
    alphabet: Alphabet = PROTEIN
    composition: np.ndarray | None = field(default=None)

    def __post_init__(self) -> None:
        lengths = np.asarray(self.lengths, dtype=np.int64)
        if lengths.ndim != 1 or lengths.size == 0:
            raise ValueError("lengths must be a non-empty 1-D array")
        if (lengths <= 0).any():
            raise ValueError("all sequence lengths must be positive")
        lengths = lengths.copy()
        lengths.setflags(write=False)
        object.__setattr__(self, "lengths", lengths)
        if self.composition is not None:
            comp = np.asarray(self.composition, dtype=np.float64)
            if comp.shape != (self.alphabet.size,):
                raise ValueError(
                    f"composition must have shape ({self.alphabet.size},), "
                    f"got {comp.shape}"
                )
            comp = comp / comp.sum()
            comp.setflags(write=False)
            object.__setattr__(self, "composition", comp)

    @property
    def num_sequences(self) -> int:
        """Number of sequences in the profiled database."""
        return int(self.lengths.size)

    @property
    def total_residues(self) -> int:
        """Total residue count (SW matrix columns for one task)."""
        return int(self.lengths.sum())

    def stats(self) -> DatabaseStats:
        """Summary statistics (Table III row)."""
        return DatabaseStats(
            name=self.name,
            num_sequences=self.num_sequences,
            total_residues=self.total_residues,
            min_length=int(self.lengths.min()),
            max_length=int(self.lengths.max()),
            mean_length=float(self.lengths.mean()),
        )

    def scaled(self, fraction: float, seed: int | None = 0) -> "DatabaseProfile":
        """Subsample a fraction of the sequences, preserving the length
        distribution (used to build laptop-scale live workloads)."""
        if not 0 < fraction <= 1:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        rng = ensure_rng(seed)
        n = max(1, int(round(self.num_sequences * fraction)))
        idx = rng.choice(self.num_sequences, size=n, replace=False)
        return DatabaseProfile(
            name=f"{self.name}@{fraction:g}",
            lengths=self.lengths[np.sort(idx)],
            alphabet=self.alphabet,
            composition=self.composition,
        )

    def materialize(self, seed: int | None = 0) -> SequenceDatabase:
        """Generate a concrete database with these lengths.

        Residues are drawn i.i.d. from ``composition`` (uniform over the
        20 standard amino acids when absent).  Wildcard/stop codes are
        never emitted.
        """
        rng = ensure_rng(seed)
        comp = self.composition
        if comp is None:
            comp = np.zeros(self.alphabet.size)
            comp[:20] = 1.0 / 20.0  # standard residues only
        seqs = []
        for i, length in enumerate(self.lengths):
            codes = rng.choice(self.alphabet.size, size=int(length), p=comp)
            seqs.append(
                Sequence(
                    id=f"{self.name.replace(' ', '_')}_{i}",
                    codes=codes.astype(np.uint8),
                    alphabet=self.alphabet,
                )
            )
        return SequenceDatabase(self.name, seqs)
