"""Sequence and database composition statistics.

Used to validate the synthetic databases (does the generated
composition match the Swiss-Prot background the generator was given?)
and by examples to characterise workloads: residue composition, Shannon
entropy, and length histograms.
"""

from __future__ import annotations

import numpy as np

from repro.sequences.database import SequenceDatabase
from repro.sequences.sequence import Sequence

__all__ = [
    "composition",
    "database_composition",
    "sequence_entropy",
    "length_histogram",
]


def composition(seq: Sequence) -> np.ndarray:
    """Residue frequency vector over the sequence's alphabet (sums to 1;
    all-zero for an empty sequence)."""
    counts = np.bincount(seq.codes, minlength=seq.alphabet.size).astype(np.float64)
    total = counts.sum()
    return counts / total if total else counts


def database_composition(database: SequenceDatabase) -> np.ndarray:
    """Aggregate residue frequencies across a whole database."""
    counts = np.zeros(database.alphabet.size, dtype=np.float64)
    for seq in database:
        counts += np.bincount(seq.codes, minlength=database.alphabet.size)
    total = counts.sum()
    if total == 0:
        raise ValueError("database has no residues")
    return counts / total


def sequence_entropy(seq: Sequence, base: float = 2.0) -> float:
    """Shannon entropy of the residue distribution (bits by default).

    Low-entropy sequences (repeats, low-complexity regions) inflate
    chance alignment scores — the quantity SEG-style filters threshold.
    """
    if len(seq) == 0:
        return 0.0
    if base <= 1:
        raise ValueError(f"base must be > 1, got {base}")
    freqs = composition(seq)
    nz = freqs[freqs > 0]
    return float(-(nz * np.log(nz)).sum() / np.log(base))


def length_histogram(
    lengths: np.ndarray, num_bins: int = 20
) -> tuple[np.ndarray, np.ndarray]:
    """Histogram of sequence lengths: ``(bin_edges, counts)``.

    Bins are logarithmic when the spread exceeds two orders of
    magnitude (protein databases are heavy-tailed), linear otherwise.
    """
    lengths = np.asarray(lengths)
    if lengths.size == 0:
        raise ValueError("no lengths to histogram")
    if num_bins < 1:
        raise ValueError(f"num_bins must be >= 1, got {num_bins}")
    lo, hi = float(lengths.min()), float(lengths.max())
    if lo <= 0:
        raise ValueError("lengths must be positive")
    if hi / lo > 100:
        edges = np.geomspace(lo, hi, num_bins + 1)
    else:
        edges = np.linspace(lo, hi, num_bins + 1)
    counts, _ = np.histogram(lengths, bins=edges)
    return edges, counts
