"""Substitution matrices for sequence comparison.

The paper's experiments use protein database search, whose scoring is
driven by a substitution matrix (CUDASW++ and SWIPE default to
BLOSUM62).  This module embeds the standard **BLOSUM62** matrix in NCBI
order, plus **BLOSUM50** and **PAM250** companions, and provides a
builder for simple match/mismatch matrices (the paper's Figure 1
example scores DNA with ``ma=+1, mi=-1``).

All matrices are indexed by residue *code* (see
:mod:`repro.sequences.alphabet`), so a query-profile lookup is a single
numpy fancy-index.  Matrices are exposed as read-only ``int32`` arrays:
``int32`` keeps the alignment kernels free of overflow concerns while
still letting numpy vectorise cheaply.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sequences.alphabet import DNA, PROTEIN, RNA, Alphabet

__all__ = [
    "SubstitutionMatrix",
    "BLOSUM62",
    "BLOSUM50",
    "PAM250",
    "match_mismatch_matrix",
    "matrix_by_name",
    "parse_ncbi_matrix",
    "format_ncbi_matrix",
]


@dataclass(frozen=True)
class SubstitutionMatrix:
    """A residue-by-residue score matrix tied to an alphabet.

    Parameters
    ----------
    name:
        Matrix identifier (``"blosum62"``, ...).
    alphabet:
        The alphabet whose codes index the matrix.
    scores:
        Square ``(size, size)`` integer array; ``scores[a, b]`` is the
        score of aligning residues with codes *a* and *b*.
    """

    name: str
    alphabet: Alphabet
    scores: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        scores = np.asarray(self.scores, dtype=np.int32)
        n = self.alphabet.size
        if scores.shape != (n, n):
            raise ValueError(
                f"matrix {self.name!r} has shape {scores.shape}, "
                f"expected ({n}, {n}) for alphabet {self.alphabet.name!r}"
            )
        scores = scores.copy()
        scores.setflags(write=False)
        object.__setattr__(self, "scores", scores)

    def score(self, a: str, b: str) -> int:
        """Score a single residue pair given as letters."""
        return int(
            self.scores[self.alphabet.code_of(a), self.alphabet.code_of(b)]
        )

    def profile(self, query_codes: np.ndarray) -> np.ndarray:
        """Build a *query profile*: row *i* holds the scores of query
        position *i* against every alphabet residue.

        This is the memory layout SWIPE/CUDASW++ precompute so the inner
        DP loop performs one table lookup per cell; our vectorised
        kernels index it as ``profile[:, d_codes]``.
        """
        query_codes = np.asarray(query_codes, dtype=np.uint8)
        return self.scores[query_codes]

    @property
    def is_symmetric(self) -> bool:
        """True when ``scores == scores.T`` (all standard matrices are)."""
        return bool(np.array_equal(self.scores, self.scores.T))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SubstitutionMatrix({self.name!r}, alphabet={self.alphabet.name!r})"


def _parse(rows: str) -> np.ndarray:
    """Parse whitespace-separated integer rows into a square array."""
    data = [[int(v) for v in line.split()] for line in rows.strip().splitlines()]
    arr = np.array(data, dtype=np.int32)
    if arr.shape[0] != arr.shape[1]:
        raise ValueError(f"matrix literal is not square: {arr.shape}")
    return arr


# NCBI BLOSUM62, residue order ARNDCQEGHILKMFPSTWYVBZX*.
_BLOSUM62_ROWS = """
 4 -1 -2 -2  0 -1 -1  0 -2 -1 -1 -1 -1 -2 -1  1  0 -3 -2  0 -2 -1  0 -4
-1  5  0 -2 -3  1  0 -2  0 -3 -2  2 -1 -3 -2 -1 -1 -3 -2 -3 -1  0 -1 -4
-2  0  6  1 -3  0  0  0  1 -3 -3  0 -2 -3 -2  1  0 -4 -2 -3  3  0 -1 -4
-2 -2  1  6 -3  0  2 -1 -1 -3 -4 -1 -3 -3 -1  0 -1 -4 -3 -3  4  1 -1 -4
 0 -3 -3 -3  9 -3 -4 -3 -3 -1 -1 -3 -1 -2 -3 -1 -1 -2 -2 -1 -3 -3 -2 -4
-1  1  0  0 -3  5  2 -2  0 -3 -2  1  0 -3 -1  0 -1 -2 -1 -2  0  3 -1 -4
-1  0  0  2 -4  2  5 -2  0 -3 -3  1 -2 -3 -1  0 -1 -3 -2 -2  1  4 -1 -4
 0 -2  0 -1 -3 -2 -2  6 -2 -4 -4 -2 -3 -3 -2  0 -2 -2 -3 -3 -1 -2 -1 -4
-2  0  1 -1 -3  0  0 -2  8 -3 -3 -1 -2 -1 -2 -1 -2 -2  2 -3  0  0 -1 -4
-1 -3 -3 -3 -1 -3 -3 -4 -3  4  2 -3  1  0 -3 -2 -1 -3 -1  3 -3 -3 -1 -4
-1 -2 -3 -4 -1 -2 -3 -4 -3  2  4 -2  2  0 -3 -2 -1 -2 -1  1 -4 -3 -1 -4
-1  2  0 -1 -3  1  1 -2 -1 -3 -2  5 -1 -3 -1  0 -1 -3 -2 -2  0  1 -1 -4
-1 -1 -2 -3 -1  0 -2 -3 -2  1  2 -1  5  0 -2 -1 -1 -1 -1  1 -3 -1 -1 -4
-2 -3 -3 -3 -2 -3 -3 -3 -1  0  0 -3  0  6 -4 -2 -2  1  3 -1 -3 -3 -1 -4
-1 -2 -2 -1 -3 -1 -1 -2 -2 -3 -3 -1 -2 -4  7 -1 -1 -4 -3 -2 -2 -1 -2 -4
 1 -1  1  0 -1  0  0  0 -1 -2 -2  0 -1 -2 -1  4  1 -3 -2 -2  0  0  0 -4
 0 -1  0 -1 -1 -1 -1 -2 -2 -1 -1 -1 -1 -2 -1  1  5 -2 -2  0 -1 -1  0 -4
-3 -3 -4 -4 -2 -2 -3 -2 -2 -3 -2 -3 -1  1 -4 -3 -2 11  2 -3 -4 -3 -2 -4
-2 -2 -2 -3 -2 -1 -2 -3  2 -1 -1 -2 -1  3 -3 -2 -2  2  7 -1 -3 -2 -1 -4
 0 -3 -3 -3 -1 -2 -2 -3 -3  3  1 -2  1 -1 -2 -2  0 -3 -1  4 -3 -2 -1 -4
-2 -1  3  4 -3  0  1 -1  0 -3 -4  0 -3 -3 -2  0 -1 -4 -3 -3  4  1 -1 -4
-1  0  0  1 -3  3  4 -2  0 -3 -3  1 -1 -3 -1  0 -1 -3 -2 -2  1  4 -1 -4
 0 -1 -1 -1 -2 -1 -1 -1 -1 -1 -1 -1 -1 -1 -2  0  0 -2 -1 -1 -1 -1 -1 -4
-4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4  1
"""

# BLOSUM50 (EMBOSS distribution), same residue order.
_BLOSUM50_ROWS = """
 5 -2 -1 -2 -1 -1 -1  0 -2 -1 -2 -1 -1 -3 -1  1  0 -3 -2  0 -2 -1 -1 -5
-2  7 -1 -2 -4  1  0 -3  0 -4 -3  3 -2 -3 -3 -1 -1 -3 -1 -3 -1  0 -1 -5
-1 -1  7  2 -2  0  0  0  1 -3 -4  0 -2 -4 -2  1  0 -4 -2 -3  4  0 -1 -5
-2 -2  2  8 -4  0  2 -1 -1 -4 -4 -1 -4 -5 -1  0 -1 -5 -3 -4  5  1 -1 -5
-1 -4 -2 -4 13 -3 -3 -3 -3 -2 -2 -3 -2 -2 -4 -1 -1 -5 -3 -1 -3 -3 -2 -5
-1  1  0  0 -3  7  2 -2  1 -3 -2  2  0 -4 -1  0 -1 -1 -1 -3  0  4 -1 -5
-1  0  0  2 -3  2  6 -3  0 -4 -3  1 -2 -3 -1 -1 -1 -3 -2 -3  1  5 -1 -5
 0 -3  0 -1 -3 -2 -3  8 -2 -4 -4 -2 -3 -4 -2  0 -2 -3 -3 -4 -1 -2 -2 -5
-2  0  1 -1 -3  1  0 -2 10 -4 -3  0 -1 -1 -2 -1 -2 -3  2 -4  0  0 -1 -5
-1 -4 -3 -4 -2 -3 -4 -4 -4  5  2 -3  2  0 -3 -3 -1 -3 -1  4 -4 -3 -1 -5
-2 -3 -4 -4 -2 -2 -3 -4 -3  2  5 -3  3  1 -4 -3 -1 -2 -1  1 -4 -3 -1 -5
-1  3  0 -1 -3  2  1 -2  0 -3 -3  6 -2 -4 -1  0 -1 -3 -2 -3  0  1 -1 -5
-1 -2 -2 -4 -2  0 -2 -3 -1  2  3 -2  7  0 -3 -2 -1 -1  0  1 -3 -1 -1 -5
-3 -3 -4 -5 -2 -4 -3 -4 -1  0  1 -4  0  8 -4 -3 -2  1  4 -1 -4 -4 -2 -5
-1 -3 -2 -1 -4 -1 -1 -2 -2 -3 -4 -1 -3 -4 10 -1 -1 -4 -3 -3 -2 -1 -2 -5
 1 -1  1  0 -1  0 -1  0 -1 -3 -3  0 -2 -3 -1  5  2 -4 -2 -2  0  0 -1 -5
 0 -1  0 -1 -1 -1 -1 -2 -2 -1 -1 -1 -1 -2 -1  2  5 -3 -2  0  0 -1  0 -5
-3 -3 -4 -5 -5 -1 -3 -3 -3 -3 -2 -3 -1  1 -4 -4 -3 15  2 -3 -5 -2 -3 -5
-2 -1 -2 -3 -3 -1 -2 -3  2 -1 -1 -2  0  4 -3 -2 -2  2  8 -1 -3 -2 -1 -5
 0 -3 -3 -4 -1 -3 -3 -4 -4  4  1 -3  1 -1 -3 -2  0 -3 -1  5 -4 -3 -1 -5
-2 -1  4  5 -3  0  1 -1  0 -4 -4  0 -3 -4 -2  0  0 -5 -3 -4  5  2 -1 -5
-1  0  0  1 -3  4  5 -2  0 -3 -3  1 -1 -4 -1  0 -1 -2 -2 -3  2  5 -1 -5
-1 -1 -1 -1 -2 -1 -1 -2 -1 -1 -1 -1 -1 -2 -2 -1  0 -3 -1 -1 -1 -1 -1 -5
-5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5  1
"""

# PAM250 (Dayhoff), same residue order.
_PAM250_ROWS = """
 2 -2  0  0 -2  0  0  1 -1 -1 -2 -1 -1 -3  1  1  1 -6 -3  0  0  0  0 -8
-2  6  0 -1 -4  1 -1 -3  2 -2 -3  3  0 -4  0  0 -1  2 -4 -2 -1  0 -1 -8
 0  0  2  2 -4  1  1  0  2 -2 -3  1 -2 -3  0  1  0 -4 -2 -2  2  1  0 -8
 0 -1  2  4 -5  2  3  1  1 -2 -4  0 -3 -6 -1  0  0 -7 -4 -2  3  3 -1 -8
-2 -4 -4 -5 12 -5 -5 -3 -3 -2 -6 -5 -5 -4 -3  0 -2 -8  0 -2 -4 -5 -3 -8
 0  1  1  2 -5  4  2 -1  3 -2 -2  1 -1 -5  0 -1 -1 -5 -4 -2  1  3 -1 -8
 0 -1  1  3 -5  2  4  0  1 -2 -3  0 -2 -5 -1  0  0 -7 -4 -2  3  3 -1 -8
 1 -3  0  1 -3 -1  0  5 -2 -3 -4 -2 -3 -5  0  1  0 -7 -5 -1  0  0 -1 -8
-1  2  2  1 -3  3  1 -2  6 -2 -2  0 -2 -2  0 -1 -1 -3  0 -2  1  2 -1 -8
-1 -2 -2 -2 -2 -2 -2 -3 -2  5  2 -2  2  1 -2 -1  0 -5 -1  4 -2 -2 -1 -8
-2 -3 -3 -4 -6 -2 -3 -4 -2  2  6 -3  4  2 -3 -3 -2 -2 -1  2 -3 -3 -1 -8
-1  3  1  0 -5  1  0 -2  0 -2 -3  5  0 -5 -1  0  0 -3 -4 -2  1  0 -1 -8
-1  0 -2 -3 -5 -1 -2 -3 -2  2  4  0  6  0 -2 -2 -1 -4 -2  2 -2 -2 -1 -8
-3 -4 -3 -6 -4 -5 -5 -5 -2  1  2 -5  0  9 -5 -3 -3  0  7 -1 -4 -5 -2 -8
 1  0  0 -1 -3  0 -1  0  0 -2 -3 -1 -2 -5  6  1  0 -6 -5 -1 -1  0 -1 -8
 1  0  1  0  0 -1  0  1 -1 -1 -3  0 -2 -3  1  2  1 -2 -3 -1  0  0  0 -8
 1 -1  0  0 -2 -1  0  0 -1  0 -2  0 -1 -3  0  1  3 -5 -3  0  0 -1  0 -8
-6  2 -4 -7 -8 -5 -7 -7 -3 -5 -2 -3 -4  0 -6 -2 -5 17  0 -6 -5 -6 -4 -8
-3 -4 -2 -4  0 -4 -4 -5  0 -1 -1 -4 -2  7 -5 -3 -3  0 10 -2 -3 -4 -2 -8
 0 -2 -2 -2 -2 -2 -2 -1 -2  4  2 -2  2 -1 -1 -1  0 -6 -2  4 -2 -2 -1 -8
 0 -1  2  3 -4  1  3  0  1 -2 -3  1 -2 -4 -1  0  0 -5 -3 -2  3  2 -1 -8
 0  0  1  3 -5  3  3  0  2 -2 -3  0 -2 -5  0  0 -1 -6 -4 -2  2  3 -1 -8
 0 -1  0 -1 -3 -1 -1 -1 -1 -1 -1 -1 -1 -2 -1  0  0 -4 -2 -1 -1 -1 -1 -8
-8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8 -8  1
"""

#: Standard BLOSUM62 matrix (NCBI), the default for protein search.
BLOSUM62 = SubstitutionMatrix("blosum62", PROTEIN, _parse(_BLOSUM62_ROWS))

#: BLOSUM50 matrix, used by SSEARCH-style sensitive searches.
BLOSUM50 = SubstitutionMatrix("blosum50", PROTEIN, _parse(_BLOSUM50_ROWS))

#: Classic Dayhoff PAM250 matrix.
PAM250 = SubstitutionMatrix("pam250", PROTEIN, _parse(_PAM250_ROWS))


def match_mismatch_matrix(
    alphabet: Alphabet = DNA,
    match: int = 1,
    mismatch: int = -1,
    wildcard_score: int = 0,
    name: str | None = None,
) -> SubstitutionMatrix:
    """Build a simple match/mismatch matrix (the paper's Figure 1 scoring).

    Parameters
    ----------
    alphabet:
        Alphabet to build the matrix for (default DNA).
    match / mismatch:
        Scores for identical / differing residues.
    wildcard_score:
        Score applied whenever either residue is the alphabet wildcard
        (ambiguity codes should neither reward nor punish strongly).
    """
    if match <= mismatch:
        raise ValueError(
            f"match score ({match}) must exceed mismatch score ({mismatch})"
        )
    n = alphabet.size
    scores = np.full((n, n), mismatch, dtype=np.int32)
    np.fill_diagonal(scores, match)
    w = alphabet.wildcard_code
    scores[w, :] = wildcard_score
    scores[:, w] = wildcard_score
    return SubstitutionMatrix(
        name or f"match{match}_mismatch{mismatch}", alphabet, scores
    )


def parse_ncbi_matrix(text: str, name: str = "custom") -> SubstitutionMatrix:
    """Parse an NCBI-format substitution matrix file.

    The format used by BLAST/SWIPE distributions: ``#`` comment lines,
    a header row of residue letters, then one row per residue starting
    with its letter.  The matrix is returned over an alphabet built
    from the file's own letters (wildcard: ``X`` if present, else
    ``N``, else the last letter), so any residue set round-trips.
    """
    rows = [
        line for line in text.splitlines() if line.strip() and not line.lstrip().startswith("#")
    ]
    if not rows:
        raise ValueError("matrix file has no content rows")
    header = rows[0].split()
    letters = "".join(header)
    if any(len(h) != 1 for h in header):
        raise ValueError(f"header must be single letters, got {header}")
    n = len(header)
    if len(rows) != n + 1:
        raise ValueError(f"expected {n} matrix rows after the header, got {len(rows) - 1}")
    scores = np.zeros((n, n), dtype=np.int32)
    for i, line in enumerate(rows[1:]):
        parts = line.split()
        if len(parts) != n + 1:
            raise ValueError(
                f"row {i} has {len(parts) - 1} values, expected {n}"
            )
        if parts[0] != header[i]:
            raise ValueError(
                f"row {i} is labelled {parts[0]!r}, expected {header[i]!r}"
            )
        scores[i] = [int(v) for v in parts[1:]]
    wildcard = "X" if "X" in letters else ("N" if "N" in letters else letters[-1])
    alphabet = Alphabet(name=f"{name}_alphabet", letters=letters, wildcard=wildcard)
    return SubstitutionMatrix(name=name, alphabet=alphabet, scores=scores)


def format_ncbi_matrix(matrix: SubstitutionMatrix, comment: str | None = None) -> str:
    """Serialise a matrix in NCBI format (inverse of
    :func:`parse_ncbi_matrix`)."""
    letters = matrix.alphabet.letters
    lines = []
    if comment:
        lines.extend(f"# {line}" for line in comment.splitlines())
    width = max(len(str(int(v))) for v in matrix.scores.ravel()) + 1
    lines.append("  " + "".join(f"{c:>{width}}" for c in letters))
    for i, letter in enumerate(letters):
        values = "".join(f"{int(v):>{width}}" for v in matrix.scores[i])
        lines.append(f"{letter} {values}")
    return "\n".join(lines) + "\n"


_NAMED = {m.name: m for m in (BLOSUM62, BLOSUM50, PAM250)}


def matrix_by_name(name: str) -> SubstitutionMatrix:
    """Look up one of the embedded matrices by name (case-insensitive)."""
    try:
        return _NAMED[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown matrix {name!r}; expected one of {sorted(_NAMED)}"
        ) from None


# RNA gets the same simple scoring as DNA by default.
_ = RNA  # re-exported via alphabet; kept for discoverability
