"""The SWDUAL binary database format.

Section IV of the paper: FASTA files cannot be read at arbitrary
positions, so SWDUAL introduces "a simple binary format ... with a few
additional fields" that lets both the master and the workers "read
sequences in any position inside the file, directly", and simplifies
memory allocation because "all the sequences sizes are known
beforehand".

This module implements that format (``.swdb``).  Layout, little-endian:

=========  =======================================================
offset     contents
=========  =======================================================
0          magic ``b"SWDB"``
4          ``u32`` format version (currently 1)
8          ``u8`` alphabet name length, then the ASCII name
...        ``u64`` sequence count ``n``
...        index table: ``n`` records of
           ``(u64 residue_offset, u32 residue_len,
           u64 header_offset, u32 header_len)``
...        header pool (ASCII, ``id`` + optional `` description``)
...        residue pool (one byte per residue code)
=========  =======================================================

Because the index stores absolute offsets and lengths, reading sequence
*i* is two ``seek``/``read`` pairs — no scanning, exactly the property
the paper wants.  Total residue count is available without touching the
pools, which is what the scheduler needs to size tasks.
"""

from __future__ import annotations

import io
import os
import struct
from collections.abc import Iterable, Iterator, Sequence as SequenceABC
from dataclasses import dataclass

import numpy as np

from repro.sequences.alphabet import Alphabet, alphabet_by_name
from repro.sequences.sequence import Sequence

__all__ = ["write_binary_db", "BinaryDatabaseReader", "BinaryDBError", "MAGIC"]

MAGIC = b"SWDB"
_VERSION = 1
_INDEX_RECORD = struct.Struct("<QIQI")
_COUNT = struct.Struct("<Q")
_U32 = struct.Struct("<I")


class BinaryDBError(ValueError):
    """Raised on malformed ``.swdb`` input."""


def write_binary_db(
    sequences: Iterable[Sequence],
    path: str | os.PathLike,
) -> int:
    """Serialise *sequences* into a ``.swdb`` file.

    All sequences must share one alphabet.  Returns the number of
    records written.
    """
    seqs = list(sequences)
    if not seqs:
        raise ValueError("cannot write an empty binary database")
    alphabet = seqs[0].alphabet
    for s in seqs:
        if s.alphabet.name != alphabet.name:
            raise ValueError(
                f"mixed alphabets in database: {alphabet.name!r} vs "
                f"{s.alphabet.name!r} (sequence {s.id!r})"
            )

    name_bytes = alphabet.name.encode("ascii")
    headers = []
    for s in seqs:
        header = s.id if not s.description else f"{s.id} {s.description}"
        headers.append(header.encode("ascii"))

    # Fixed-size prefix: magic + version + alphabet + count + index.
    prefix_len = (
        len(MAGIC)
        + _U32.size
        + 1
        + len(name_bytes)
        + _COUNT.size
        + _INDEX_RECORD.size * len(seqs)
    )
    header_pool_len = sum(len(h) for h in headers)
    residue_base = prefix_len + header_pool_len

    with open(path, "wb") as fh:
        fh.write(MAGIC)
        fh.write(_U32.pack(_VERSION))
        fh.write(bytes([len(name_bytes)]))
        fh.write(name_bytes)
        fh.write(_COUNT.pack(len(seqs)))
        header_off = prefix_len
        residue_off = residue_base
        for s, h in zip(seqs, headers):
            fh.write(_INDEX_RECORD.pack(residue_off, len(s), header_off, len(h)))
            header_off += len(h)
            residue_off += len(s)
        for h in headers:
            fh.write(h)
        for s in seqs:
            fh.write(s.codes.tobytes())
    return len(seqs)


@dataclass(frozen=True)
class _IndexEntry:
    residue_offset: int
    residue_len: int
    header_offset: int
    header_len: int


class BinaryDatabaseReader(SequenceABC):
    """Random-access reader over a ``.swdb`` file.

    Behaves as an immutable sequence of :class:`Sequence` objects:
    ``len(db)``, ``db[i]`` and iteration all work, and ``db[i]`` touches
    only the bytes of record *i*.

    Use as a context manager, or call :meth:`close` explicitly.
    """

    def __init__(self, path: str | os.PathLike):
        self._path = os.fspath(path)
        self._fh: io.BufferedReader | None = open(self._path, "rb")
        try:
            self._alphabet, self._index = self._read_prefix(self._fh)
        except Exception:
            self._fh.close()
            self._fh = None
            raise

    @staticmethod
    def _read_prefix(fh: io.BufferedReader) -> tuple[Alphabet, list[_IndexEntry]]:
        magic = fh.read(len(MAGIC))
        if magic != MAGIC:
            raise BinaryDBError(f"bad magic {magic!r}; not a .swdb file")
        (version,) = _U32.unpack(fh.read(_U32.size))
        if version != _VERSION:
            raise BinaryDBError(f"unsupported .swdb version {version}")
        name_len = fh.read(1)
        if not name_len:
            raise BinaryDBError("truncated .swdb header")
        name = fh.read(name_len[0]).decode("ascii")
        alphabet = alphabet_by_name(name)
        raw_count = fh.read(_COUNT.size)
        if len(raw_count) != _COUNT.size:
            raise BinaryDBError("truncated .swdb header (count)")
        (count,) = _COUNT.unpack(raw_count)
        index_bytes = fh.read(_INDEX_RECORD.size * count)
        if len(index_bytes) != _INDEX_RECORD.size * count:
            raise BinaryDBError("truncated .swdb index")
        index = [
            _IndexEntry(*_INDEX_RECORD.unpack_from(index_bytes, i * _INDEX_RECORD.size))
            for i in range(count)
        ]
        return alphabet, index

    # -- resource management -------------------------------------------

    def close(self) -> None:
        """Close the underlying file; further reads raise."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "BinaryDatabaseReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _file(self) -> io.BufferedReader:
        if self._fh is None:
            raise BinaryDBError(f"database {self._path!r} is closed")
        return self._fh

    # -- metadata (no pool reads) ---------------------------------------

    @property
    def path(self) -> str:
        """Filesystem path of the database."""
        return self._path

    @property
    def alphabet(self) -> Alphabet:
        """Alphabet shared by every record."""
        return self._alphabet

    def lengths(self) -> np.ndarray:
        """Residue length of every record, from the index alone.

        This is the only information the scheduler needs to size tasks,
        so the (possibly huge) residue pool is never touched.
        """
        return np.array([e.residue_len for e in self._index], dtype=np.int64)

    @property
    def total_residues(self) -> int:
        """Sum of all record lengths (the SW matrix column count)."""
        return int(sum(e.residue_len for e in self._index))

    # -- record access ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._index)

    def __getitem__(self, i: int) -> Sequence:
        if isinstance(i, slice):
            return [self[j] for j in range(*i.indices(len(self)))]
        if not -len(self) <= i < len(self):
            raise IndexError(f"record {i} out of range [0, {len(self)})")
        entry = self._index[i % len(self)] if i < 0 else self._index[i]
        fh = self._file()
        fh.seek(entry.header_offset)
        header = fh.read(entry.header_len).decode("ascii")
        fh.seek(entry.residue_offset)
        raw = fh.read(entry.residue_len)
        if len(raw) != entry.residue_len:
            raise BinaryDBError(f"truncated residue pool for record {i}")
        parts = header.split(None, 1)
        return Sequence(
            id=parts[0] if parts else f"seq{i}",
            codes=np.frombuffer(raw, dtype=np.uint8),
            alphabet=self._alphabet,
            description=parts[1] if len(parts) > 1 else "",
        )

    def __iter__(self) -> Iterator[Sequence]:
        for i in range(len(self)):
            yield self[i]
