"""Sequence substrate: alphabets, sequences, IO formats, scoring
matrices, and the synthetic databases/query sets used by the paper's
experiments."""

from repro.sequences.alphabet import DNA, PROTEIN, RNA, Alphabet, alphabet_by_name
from repro.sequences.sequence import Sequence
from repro.sequences.fasta import FastaError, iter_fasta, read_fasta, write_fasta
from repro.sequences.binarydb import (
    BinaryDatabaseReader,
    BinaryDBError,
    write_binary_db,
)
from repro.sequences.database import DatabaseProfile, DatabaseStats, SequenceDatabase
from repro.sequences.packed import DEFAULT_CHUNK_CELLS, PackedChunk, PackedDatabase
from repro.sequences.matrices import (
    BLOSUM50,
    BLOSUM62,
    PAM250,
    SubstitutionMatrix,
    format_ncbi_matrix,
    match_mismatch_matrix,
    matrix_by_name,
    parse_ncbi_matrix,
)
from repro.sequences.synthetic import (
    PAPER_DATABASE_ORDER,
    PAPER_DATABASES,
    DatabaseSpec,
    paper_database_profile,
    random_profile,
    small_database,
)
from repro.sequences.mutate import homolog_family, mutate, plant_homologs
from repro.sequences.mutate_db import (
    DatabaseGeneration,
    GenerationHandle,
    GenerationInfo,
    MutationError,
    apply_append,
    apply_retire,
)
from repro.sequences.seqstats import (
    composition,
    database_composition,
    length_histogram,
    sequence_entropy,
)
from repro.sequences.queries import (
    PAPER_QUERY_COUNT,
    QuerySet,
    evenly_spaced_lengths,
    heterogeneous_query_set,
    homogeneous_query_set,
    standard_query_set,
)

__all__ = [
    "Alphabet",
    "DNA",
    "RNA",
    "PROTEIN",
    "alphabet_by_name",
    "Sequence",
    "FastaError",
    "iter_fasta",
    "read_fasta",
    "write_fasta",
    "BinaryDatabaseReader",
    "BinaryDBError",
    "write_binary_db",
    "SequenceDatabase",
    "DatabaseProfile",
    "DatabaseStats",
    "PackedDatabase",
    "PackedChunk",
    "DEFAULT_CHUNK_CELLS",
    "SubstitutionMatrix",
    "BLOSUM62",
    "BLOSUM50",
    "PAM250",
    "match_mismatch_matrix",
    "matrix_by_name",
    "parse_ncbi_matrix",
    "format_ncbi_matrix",
    "DatabaseSpec",
    "PAPER_DATABASES",
    "PAPER_DATABASE_ORDER",
    "paper_database_profile",
    "random_profile",
    "small_database",
    "mutate",
    "composition",
    "database_composition",
    "sequence_entropy",
    "length_histogram",
    "homolog_family",
    "plant_homologs",
    "DatabaseGeneration",
    "GenerationHandle",
    "GenerationInfo",
    "MutationError",
    "apply_append",
    "apply_retire",
    "QuerySet",
    "PAPER_QUERY_COUNT",
    "standard_query_set",
    "homogeneous_query_set",
    "heterogeneous_query_set",
    "evenly_spaced_lengths",
]
