"""Sequence mutation and homolog-family generation.

Purely random databases have no true positives, which makes example
searches uninformative.  This module evolves *homologs* of a parent
sequence — substitutions drawn proportionally to exponentiated
substitution-matrix scores (high-scoring exchanges are likelier, as in
real evolution), plus geometric-length indels — so a database can be
planted with detectable relatives of a query, and tests can assert that
database search actually finds them.
"""

from __future__ import annotations

import numpy as np

from repro.sequences.matrices import BLOSUM62, SubstitutionMatrix
from repro.sequences.sequence import Sequence
from repro.utils import ensure_rng

__all__ = ["mutate", "homolog_family", "plant_homologs"]


def _substitution_probs(matrix: SubstitutionMatrix, temperature: float) -> np.ndarray:
    """Row-stochastic replacement matrix over the 20 standard residues:
    ``P(b | a) ∝ exp(S[a, b] / temperature)`` with the diagonal zeroed
    (a substitution must change the residue)."""
    scores = matrix.scores[:20, :20].astype(np.float64)
    logits = scores / temperature
    logits = logits - logits.max(axis=1, keepdims=True)
    probs = np.exp(logits)
    np.fill_diagonal(probs, 0.0)
    probs /= probs.sum(axis=1, keepdims=True)
    return probs


def mutate(
    parent: Sequence,
    divergence: float,
    indel_rate: float = 0.1,
    mean_indel_length: float = 2.0,
    matrix: SubstitutionMatrix = BLOSUM62,
    temperature: float = 2.0,
    seed: int | np.random.Generator | None = None,
    child_id: str | None = None,
) -> Sequence:
    """Evolve one homolog of *parent*.

    Parameters
    ----------
    divergence:
        Fraction of positions hit by a mutation event (0–1); of these,
        ``indel_rate`` become indels, the rest substitutions.
    mean_indel_length:
        Geometric mean length of each indel.
    temperature:
        Substitution softness; lower = more conservative exchanges.
    """
    if not 0 <= divergence <= 1:
        raise ValueError(f"divergence must be in [0, 1], got {divergence}")
    if not 0 <= indel_rate <= 1:
        raise ValueError(f"indel_rate must be in [0, 1], got {indel_rate}")
    if mean_indel_length < 1:
        raise ValueError(
            f"mean_indel_length must be >= 1, got {mean_indel_length}"
        )
    if (parent.codes >= 20).any():
        raise ValueError("mutate() requires standard-residue sequences")
    rng = ensure_rng(seed)
    probs = _substitution_probs(matrix, temperature)
    geo_p = 1.0 / mean_indel_length

    out: list[int] = []
    for code in parent.codes:
        if rng.random() >= divergence:
            out.append(int(code))
            continue
        if rng.random() < indel_rate:
            if rng.random() < 0.5:  # deletion of a short run
                continue
            # Insertion of a short random run (then keep the residue).
            for _ in range(rng.geometric(geo_p)):
                out.append(int(rng.integers(0, 20)))
            out.append(int(code))
        else:
            out.append(int(rng.choice(20, p=probs[code])))
    if not out:  # fully deleted: keep one residue so the child is valid
        out.append(int(parent.codes[0]))
    return Sequence(
        id=child_id or f"{parent.id}_mut",
        codes=np.array(out, dtype=np.uint8),
        alphabet=parent.alphabet,
        description=f"homolog of {parent.id} (divergence {divergence:g})",
    )


def homolog_family(
    parent: Sequence,
    size: int,
    divergence: float = 0.3,
    seed: int | np.random.Generator | None = None,
    **kwargs,
) -> list[Sequence]:
    """Evolve *size* independent homologs of *parent*."""
    if size < 1:
        raise ValueError(f"size must be >= 1, got {size}")
    rng = ensure_rng(seed)
    return [
        mutate(
            parent,
            divergence,
            seed=rng,
            child_id=f"{parent.id}_h{i:02d}",
            **kwargs,
        )
        for i in range(size)
    ]


def plant_homologs(
    background: list[Sequence],
    parent: Sequence,
    num_homologs: int,
    divergence: float = 0.3,
    seed: int | np.random.Generator | None = None,
) -> list[Sequence]:
    """Return *background* with homologs of *parent* planted at
    deterministic pseudo-random positions (for search examples/tests)."""
    if num_homologs < 0:
        raise ValueError(f"num_homologs must be >= 0, got {num_homologs}")
    rng = ensure_rng(seed)
    family = homolog_family(parent, max(num_homologs, 1), divergence, seed=rng)[
        :num_homologs
    ]
    merged = list(background)
    for member in family:
        merged.insert(int(rng.integers(0, len(merged) + 1)), member)
    return merged
