"""Synthetic stand-ins for the paper's five genomic databases.

The paper searches 40 query sequences against UniProt, Ensembl Dog,
Ensembl Rat, RefSeq Human and RefSeq Mouse (Table III).  We cannot ship
those databases, so this module generates **seeded synthetic profiles**
that match every property the experiments depend on:

* the exact sequence counts of Table III;
* the reported min/max sequence lengths (Table III; for UniProt,
  Section V-C is explicit that the database spans 4 to 35,213 residues);
* the **total residue count implied by the paper's own numbers**: each
  Table IV row reports both seconds and GCUPS for the same run, so
  ``cells = time × GCUPS`` is fixed, and with the standard query set
  (total 102,000 residues, see :mod:`repro.sequences.queries`)
  ``db_residues = cells / 102,000``.  The three worker counts of
  Table IV agree on this value to 4 significant digits for every
  database, which both validates the derivation and pins the target.

Lengths follow a clipped lognormal (protein length distributions are
heavy-tailed), rescaled so the total matches the implied residue count
exactly; residue letters are drawn from the Swiss-Prot background
composition.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sequences.alphabet import PROTEIN
from repro.sequences.database import DatabaseProfile, SequenceDatabase
from repro.utils import ensure_rng

__all__ = [
    "DatabaseSpec",
    "PAPER_DATABASES",
    "PAPER_DATABASE_ORDER",
    "SWISSPROT_COMPOSITION",
    "paper_database_profile",
    "random_profile",
    "small_database",
]

#: Swiss-Prot amino-acid background frequencies (percent), in PROTEIN
#: alphabet order ARNDCQEGHILKMFPSTWYV; ambiguity/stop codes get 0.
_SWISSPROT_PCT = [
    8.25, 5.53, 4.06, 5.45, 1.37, 3.93, 6.75, 7.07, 2.27, 5.96,
    9.66, 5.84, 2.42, 3.86, 4.70, 6.56, 5.34, 1.08, 2.92, 6.87,
]

SWISSPROT_COMPOSITION = np.zeros(PROTEIN.size)
SWISSPROT_COMPOSITION[:20] = np.array(_SWISSPROT_PCT) / sum(_SWISSPROT_PCT)
SWISSPROT_COMPOSITION.setflags(write=False)


@dataclass(frozen=True)
class DatabaseSpec:
    """Shape parameters of one paper database.

    ``total_residues`` is derived from Table IV as described in the
    module docstring; ``min_length``/``max_length`` come from Table III
    (UniProt from Section V-C).
    """

    name: str
    num_sequences: int
    min_length: int
    max_length: int
    total_residues: int

    @property
    def mean_length(self) -> float:
        """Implied mean sequence length."""
        return self.total_residues / self.num_sequences


#: Table III databases with totals implied by Table IV (time × GCUPS).
PAPER_DATABASES: dict[str, DatabaseSpec] = {
    "ensembl_dog": DatabaseSpec("Ensembl Dog Proteins", 25_160, 100, 4_996, 14_526_471),
    "ensembl_rat": DatabaseSpec("Ensembl Rat Proteins", 32_971, 100, 4_992, 17_081_373),
    "refseq_human": DatabaseSpec("RefSeq Human Proteins", 34_705, 100, 4_981, 19_298_039),
    "refseq_mouse": DatabaseSpec("RefSeq Mouse Proteins", 29_437, 100, 5_000, 15_714_706),
    "uniprot": DatabaseSpec("UniProt", 537_505, 4, 35_213, 190_733_333),
}

#: Order the paper's tables list the databases in.
PAPER_DATABASE_ORDER = [
    "ensembl_dog",
    "ensembl_rat",
    "refseq_mouse",
    "refseq_human",
    "uniprot",
]


def _lognormal_lengths(
    n: int,
    total: int,
    min_length: int,
    max_length: int,
    rng: np.random.Generator,
    sigma: float = 0.55,
    pin_extremes: bool = True,
) -> np.ndarray:
    """Draw *n* clipped-lognormal lengths summing exactly to *total*.

    The draw is rescaled multiplicatively (a few fixed-point rounds to
    absorb clipping bias), then the integer residual is spread one
    residue at a time over entries that have slack.  With
    ``pin_extremes`` the min and max lengths are forced to the exact
    bounds so reported extremes match the paper's Table III (only
    sensible when the bounds are observed extremes, not mere caps).
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if not min_length <= max_length:
        raise ValueError(f"min_length {min_length} > max_length {max_length}")
    if not n * min_length <= total <= n * max_length:
        raise ValueError(
            f"total {total} infeasible for {n} lengths in "
            f"[{min_length}, {max_length}]"
        )
    mean = total / n
    raw = rng.lognormal(mean=np.log(mean) - sigma**2 / 2.0, sigma=sigma, size=n)
    lengths = np.clip(np.rint(raw), min_length, max_length).astype(np.int64)
    for _ in range(30):
        current = int(lengths.sum())
        if current == total:
            break
        scale = total / current
        lengths = np.clip(
            np.rint(lengths * scale), min_length, max_length
        ).astype(np.int64)
    # Spread the remaining residual one unit at a time.
    residual = total - int(lengths.sum())
    step = 1 if residual > 0 else -1
    guard = 0
    while residual != 0:
        if step > 0:
            candidates = np.flatnonzero(lengths < max_length)
        else:
            candidates = np.flatnonzero(lengths > min_length)
        take = min(abs(residual), candidates.size)
        if take == 0:  # pragma: no cover - guarded by feasibility check
            raise RuntimeError("length adjustment ran out of slack")
        chosen = rng.choice(candidates, size=take, replace=False)
        lengths[chosen] += step
        residual -= step * take
        guard += 1
        if guard > 10_000:  # pragma: no cover
            raise RuntimeError("length adjustment did not converge")
    # Pin the extremes (swap total-preserving: move the delta elsewhere).
    if pin_extremes and n >= 4:
        lengths = _pin_extreme(lengths, int(np.argmin(lengths)), min_length, min_length, max_length, rng)
        lengths = _pin_extreme(lengths, int(np.argmax(lengths)), max_length, min_length, max_length, rng)
    assert int(lengths.sum()) == total
    return lengths


def _pin_extreme(
    lengths: np.ndarray,
    idx: int,
    target: int,
    min_length: int,
    max_length: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Set ``lengths[idx] = target`` and re-spread the delta elsewhere."""
    delta = int(lengths[idx]) - target  # residues to give back to others
    lengths = lengths.copy()
    lengths[idx] = target
    step = 1 if delta > 0 else -1
    while delta != 0:
        if step > 0:
            candidates = np.flatnonzero(lengths < max_length)
        else:
            candidates = np.flatnonzero(lengths > min_length)
        candidates = candidates[candidates != idx]
        if candidates.size == 0:  # pragma: no cover
            raise RuntimeError("cannot pin extreme length: no slack")
        take = min(abs(delta), candidates.size)
        chosen = rng.choice(candidates, size=take, replace=False)
        lengths[chosen] += step
        delta -= step * take
    return lengths


def paper_database_profile(key: str, seed: int = 2014) -> DatabaseProfile:
    """Build the seeded synthetic profile of one paper database.

    Parameters
    ----------
    key:
        One of ``PAPER_DATABASES`` keys (``"uniprot"``, ...).
    seed:
        Base RNG seed; the key is folded in so each database gets an
        independent stream while remaining reproducible.
    """
    try:
        spec = PAPER_DATABASES[key]
    except KeyError:
        raise ValueError(
            f"unknown database {key!r}; expected one of {sorted(PAPER_DATABASES)}"
        ) from None
    rng = ensure_rng(abs(hash((seed, key))) % (2**63))
    lengths = _lognormal_lengths(
        spec.num_sequences,
        spec.total_residues,
        spec.min_length,
        spec.max_length,
        rng,
    )
    return DatabaseProfile(
        name=spec.name,
        lengths=lengths,
        alphabet=PROTEIN,
        composition=SWISSPROT_COMPOSITION,
    )


def random_profile(
    name: str,
    num_sequences: int,
    mean_length: float,
    min_length: int = 10,
    max_length: int = 40_000,
    seed: int | np.random.Generator | None = None,
) -> DatabaseProfile:
    """Generate an arbitrary synthetic profile (for tests/ablations)."""
    rng = ensure_rng(seed)
    total = int(round(num_sequences * mean_length))
    total = min(max(total, num_sequences * min_length), num_sequences * max_length)
    lengths = _lognormal_lengths(
        num_sequences, total, min_length, max_length, rng, pin_extremes=False
    )
    return DatabaseProfile(
        name=name,
        lengths=lengths,
        alphabet=PROTEIN,
        composition=SWISSPROT_COMPOSITION,
    )


def small_database(
    name: str = "toy",
    num_sequences: int = 50,
    mean_length: float = 120.0,
    seed: int = 7,
) -> SequenceDatabase:
    """A materialised small database for live runs, examples and tests."""
    profile = random_profile(
        name,
        num_sequences,
        mean_length,
        min_length=20,
        max_length=max(60, int(mean_length * 4)),
        seed=seed,
    )
    return profile.materialize(seed=seed + 1)
