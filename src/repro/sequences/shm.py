"""Zero-copy shared-memory backing for packed databases.

The process transport used to ship the whole database through the
pickled pipe at spawn and let every worker pack its **own** copy — so
warm-up time and resident memory grew linearly with the pool size.
This module is the data plane that removes both costs: the parent
packs once, copies the packed payload into one POSIX shared-memory
segment (``multiprocessing.shared_memory``), and every worker attaches
read-only ``np.ndarray`` views — no chunk payload ever crosses a pipe,
and the kernel shares one physical copy of the code matrices across
the whole pool.

Two layers:

* :class:`SharedArena` — a generic "named ndarray slots inside one SHM
  segment" container with an explicit create/attach/close/unlink
  lifecycle.  The creating side owns the segment and unlinks it; the
  attaching side only closes its mapping.  A ``weakref.finalize``
  safety net unlinks owner segments that are garbage-collected without
  an explicit ``close`` (belt-and-braces for crash paths; the OS-level
  resource tracker is the last resort for a SIGKILLed parent).
* :func:`share_packed` / :func:`attach_packed` — the packed-database
  payload on top of the arena: every chunk's ``codes`` / ``indices`` /
  ``lengths`` arrays plus enough metadata to rebuild a
  :class:`~repro.sequences.packed.PackedDatabase` in the attaching
  process via :meth:`~repro.sequences.packed.PackedDatabase.from_chunks`.

Platforms without a usable ``/dev/shm`` (or without the module at all)
are detected by :func:`shm_available`; callers fall back to the
pure-heap pickled path.
"""

from __future__ import annotations

import os
import secrets
import weakref

import numpy as np

from repro.sequences.alphabet import alphabet_by_name
from repro.sequences.packed import PackedChunk, PackedDatabase

__all__ = [
    "SHM_PREFIX",
    "SharedArena",
    "attach_packed",
    "share_packed",
    "shm_available",
]

#: Every segment this repo creates is named ``swdual_<pid>_<nonce>`` so
#: leak checks (tests, CI) can sweep ``/dev/shm`` for the prefix.
SHM_PREFIX = "swdual"

_shm_probe: bool | None = None

#: Segment names created (owned) by *this* process.  A same-process
#: attach must NOT unregister them from the resource tracker — the
#: owner's registration is the crash-path cleanup of last resort.
_OWNED_NAMES: set[str] = set()


def shm_available() -> bool:
    """Whether POSIX shared memory actually works on this platform.

    Probes by creating (and immediately unlinking) a tiny segment the
    first time it is called; the verdict is cached for the process.
    """
    global _shm_probe
    if _shm_probe is None:
        try:
            from multiprocessing import shared_memory

            probe = shared_memory.SharedMemory(create=True, size=16)
            probe.close()
            probe.unlink()
            _shm_probe = True
        except Exception:
            _shm_probe = False
    return _shm_probe


def _new_segment_name(prefix: str) -> str:
    return f"{prefix}_{os.getpid()}_{secrets.token_hex(6)}"


def _unregister_attached(name: str) -> None:
    """Detach an *attached* segment from this process's resource tracker.

    ``SharedMemory(name=...)`` registers the segment with the resource
    tracker even when this process does not own it; on Python < 3.13
    (no ``track=False``) that makes the tracker unlink — and warn
    about — segments the owner is still responsible for.  Attaching
    sides therefore unregister right away; the creating side keeps its
    registration as the crash-path cleanup of last resort.
    """
    try:  # pragma: no cover - platform dependent
        from multiprocessing import resource_tracker

        resource_tracker.unregister(f"/{name}", "shared_memory")
    except Exception:
        pass


class SharedArena:
    """Named read-only ndarray slots inside one shared-memory segment.

    Use :meth:`create` in the owning process and :meth:`attach` (with
    the owner's :attr:`manifest`) everywhere else.  The manifest is a
    plain picklable dict — it is the only thing that crosses a process
    boundary; array payloads live in the segment itself.
    """

    def __init__(self, shm, manifest: dict, owner: bool):
        self._shm = shm
        self._manifest = manifest
        self._owner = owner
        self._closed = False
        self._views: dict[str, np.ndarray] = {}
        # Safety net: close (and for the owner, unlink) if the arena is
        # dropped without an explicit close.  The unlink is pinned to
        # the creating PID so a fork-inherited copy of an owner arena
        # can never unlink the segment out from under the real owner.
        self._finalizer = weakref.finalize(
            self, SharedArena._cleanup, shm, owner, os.getpid()
        )

    # -- construction --------------------------------------------------

    @classmethod
    def create(cls, arrays: dict[str, np.ndarray], prefix: str = SHM_PREFIX) -> "SharedArena":
        """Copy *arrays* into a fresh segment; returns the owning arena.

        Slot order follows the dict; each array is stored C-contiguous
        at an 64-byte aligned offset.
        """
        slots: dict[str, dict] = {}
        offset = 0
        for name, arr in arrays.items():
            arr = np.ascontiguousarray(arr)
            offset = (offset + 63) & ~63
            slots[name] = {
                "offset": offset,
                "shape": tuple(int(s) for s in arr.shape),
                "dtype": np.dtype(arr.dtype).str,
            }
            offset += arr.nbytes
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(
            create=True, size=max(offset, 1), name=_new_segment_name(prefix)
        )
        try:
            for name, arr in arrays.items():
                spec = slots[name]
                view = np.ndarray(
                    spec["shape"], dtype=np.dtype(spec["dtype"]),
                    buffer=shm.buf, offset=spec["offset"],
                )
                view[...] = arr
            manifest = {"segment": shm.name, "slots": slots}
        except BaseException:
            shm.close()
            shm.unlink()
            raise
        _OWNED_NAMES.add(shm.name)
        return cls(shm, manifest, owner=True)

    @classmethod
    def attach(cls, manifest: dict, unregister: bool = True) -> "SharedArena":
        """Attach to an existing segment described by *manifest*.

        *unregister* controls resource-tracker hygiene: attaching
        registers the segment with this process's tracker, which on
        Python < 3.13 would double-clean (and warn about) a segment the
        owner is responsible for — so by default we unregister right
        away.  Pass ``unregister=False`` from multiprocessing children
        of the owner: they share the owner's tracker (inherited under
        fork, shipped in spawn preparation data), and unregistering
        there would strip the owner's own crash-path registration.
        Segments created by this very process are never unregistered,
        whatever the flag says.
        """
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=manifest["segment"], create=False)
        if unregister and shm.name not in _OWNED_NAMES:
            _unregister_attached(shm.name)
        return cls(shm, manifest, owner=False)

    # -- access --------------------------------------------------------

    @property
    def manifest(self) -> dict:
        """Picklable description of the segment (pass to :meth:`attach`)."""
        return self._manifest

    @property
    def name(self) -> str:
        """OS-level segment name (``/dev/shm/<name>`` on Linux)."""
        return self._shm.name

    @property
    def nbytes(self) -> int:
        """Size of the backing segment in bytes."""
        return self._shm.size

    @property
    def closed(self) -> bool:
        return self._closed

    def array(self, slot: str) -> np.ndarray:
        """Read-only ndarray view of one slot (zero-copy)."""
        if self._closed:
            raise ValueError(f"arena {self._shm.name!r} is closed")
        view = self._views.get(slot)
        if view is None:
            spec = self._manifest["slots"][slot]
            view = np.ndarray(
                spec["shape"], dtype=np.dtype(spec["dtype"]),
                buffer=self._shm.buf, offset=spec["offset"],
            )
            view.setflags(write=False)
            self._views[slot] = view
        return view

    # -- lifecycle -----------------------------------------------------

    @staticmethod
    def _cleanup(shm, unlink: bool, pid: int | None = None) -> None:
        try:
            shm.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if unlink and (pid is None or pid == os.getpid()):
            _OWNED_NAMES.discard(shm.name)
            try:
                shm.unlink()
            except (FileNotFoundError, OSError):  # pragma: no cover
                pass

    def close(self) -> None:
        """Release the mapping; the owner also unlinks the segment.

        Idempotent, and safe to call with views still referenced (the
        views die with the arena — callers must not use them after
        close).
        """
        if self._closed:
            return
        self._closed = True
        self._views.clear()
        self._finalizer.detach()
        SharedArena._cleanup(self._shm, unlink=self._owner)

    def __enter__(self) -> "SharedArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        role = "owner" if self._owner else "attached"
        return f"SharedArena({self._shm.name!r}, {role}, {self._shm.size}B)"


def share_packed(packed: PackedDatabase, prefix: str = SHM_PREFIX) -> SharedArena:
    """Export a packed database into shared memory.

    The returned (owning) arena's :attr:`~SharedArena.manifest` carries
    everything :func:`attach_packed` needs: per-chunk array slots plus
    database metadata (name, alphabet, subject ids in original order).
    """
    arrays: dict[str, np.ndarray] = {}
    for k, chunk in enumerate(packed.chunks):
        arrays[f"codes{k}"] = chunk.codes
        arrays[f"indices{k}"] = chunk.indices
        arrays[f"lengths{k}"] = chunk.lengths
    arena = SharedArena.create(arrays, prefix=prefix)
    arena.manifest.update(
        {
            "kind": "packed_database",
            "db_name": packed.name,
            "chunk_cells": packed.chunk_cells,
            "num_chunks": len(packed.chunks),
            "num_sequences": packed.num_sequences,
            "alphabet": packed.alphabet.name if packed.alphabet else None,
            "subject_ids": [s.id for s in packed.subjects],
        }
    )
    return arena


def attach_packed(
    manifest: dict, unregister: bool = True
) -> tuple[SharedArena, PackedDatabase]:
    """Rebuild a read-only packed database from a shared segment.

    Returns ``(arena, packed)``; the packed database's chunk arrays are
    views into the arena, so the arena must stay open for as long as
    the packed database is used (close it afterwards — the segment
    itself is unlinked by the owner).  *unregister* as in
    :meth:`SharedArena.attach` (pass ``False`` from fork children).
    """
    arena = SharedArena.attach(manifest, unregister=unregister)
    chunks = tuple(
        PackedChunk(
            codes=arena.array(f"codes{k}"),
            indices=arena.array(f"indices{k}"),
            lengths=arena.array(f"lengths{k}"),
        )
        for k in range(manifest["num_chunks"])
    )
    alphabet = (
        alphabet_by_name(manifest["alphabet"]) if manifest["alphabet"] else None
    )
    packed = PackedDatabase.from_chunks(
        chunks,
        alphabet=alphabet,
        subject_ids=manifest["subject_ids"],
        chunk_cells=manifest["chunk_cells"],
        name=manifest["db_name"],
    )
    return arena, packed
