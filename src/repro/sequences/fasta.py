"""FASTA reading and writing.

The paper's Section IV points out that FASTA files are plain text with
sequences placed one after another, which makes random access to a
specific sequence impossible — the motivation for the binary format in
:mod:`repro.sequences.binarydb`.  This module provides the plain-text
side: a tolerant streaming parser and a wrapping writer.
"""

from __future__ import annotations

import io
import os
from collections.abc import Iterable, Iterator
from pathlib import Path

from repro.sequences.alphabet import PROTEIN, Alphabet
from repro.sequences.sequence import Sequence

__all__ = ["read_fasta", "write_fasta", "iter_fasta", "FastaError"]


class FastaError(ValueError):
    """Raised on malformed FASTA input."""


def _open_text(path_or_file: str | os.PathLike | io.TextIOBase):
    """Return ``(file, should_close)`` for a path or open text file."""
    if isinstance(path_or_file, (str, os.PathLike)):
        return open(path_or_file, "r", encoding="ascii"), True
    return path_or_file, False


def iter_fasta(
    path_or_file: str | os.PathLike | io.TextIOBase,
    alphabet: Alphabet = PROTEIN,
    strict: bool = False,
) -> Iterator[Sequence]:
    """Stream sequences from FASTA text.

    Parameters
    ----------
    path_or_file:
        Filesystem path or an open text file.
    alphabet:
        Alphabet used to encode residues.
    strict:
        If true, residues outside the alphabet raise
        :class:`FastaError`; otherwise they become the wildcard
        (real-world databases contain occasional odd letters such as
        ``U``/``O`` in proteins).

    Yields
    ------
    Sequence
        One per FASTA record, in file order.
    """
    fh, should_close = _open_text(path_or_file)
    try:
        header: str | None = None
        chunks: list[str] = []
        lineno = 0
        for line in fh:
            lineno += 1
            line = line.rstrip("\r\n")
            if not line:
                continue
            if line.startswith(">"):
                if header is not None:
                    yield _make_record(header, chunks, alphabet, strict)
                header = line[1:].strip()
                if not header:
                    raise FastaError(f"empty FASTA header at line {lineno}")
                chunks = []
            else:
                if header is None:
                    raise FastaError(
                        f"sequence data before any '>' header at line {lineno}"
                    )
                chunks.append(line.strip())
        if header is not None:
            yield _make_record(header, chunks, alphabet, strict)
    finally:
        if should_close:
            fh.close()


def _make_record(
    header: str, chunks: list[str], alphabet: Alphabet, strict: bool
) -> Sequence:
    parts = header.split(None, 1)
    seq_id = parts[0]
    description = parts[1] if len(parts) > 1 else ""
    text = "".join(chunks)
    try:
        codes = alphabet.encode(text, strict=strict)
    except ValueError as exc:
        raise FastaError(f"record {seq_id!r}: {exc}") from exc
    return Sequence(id=seq_id, codes=codes, alphabet=alphabet, description=description)


def read_fasta(
    path_or_file: str | os.PathLike | io.TextIOBase,
    alphabet: Alphabet = PROTEIN,
    strict: bool = False,
) -> list[Sequence]:
    """Read an entire FASTA file into a list (see :func:`iter_fasta`)."""
    return list(iter_fasta(path_or_file, alphabet=alphabet, strict=strict))


def write_fasta(
    sequences: Iterable[Sequence],
    path_or_file: str | os.PathLike | io.TextIOBase,
    width: int = 60,
) -> int:
    """Write *sequences* in FASTA format.

    Parameters
    ----------
    sequences:
        Sequences to serialise.
    path_or_file:
        Destination path or open text file.
    width:
        Residues per line (0 disables wrapping).

    Returns
    -------
    int
        Number of records written.
    """
    if width < 0:
        raise ValueError(f"width must be >= 0, got {width}")
    if isinstance(path_or_file, (str, os.PathLike)):
        fh = open(path_or_file, "w", encoding="ascii")
        should_close = True
    else:
        fh = path_or_file
        should_close = False
    count = 0
    try:
        for seq in sequences:
            header = seq.id if not seq.description else f"{seq.id} {seq.description}"
            fh.write(f">{header}\n")
            text = seq.text
            if width == 0:
                fh.write(text + "\n")
            else:
                for start in range(0, max(len(text), 1), width):
                    fh.write(text[start : start + width] + "\n")
            count += 1
    finally:
        if should_close:
            fh.close()
    return count


def fasta_path_stem(path: str | os.PathLike) -> str:
    """Return the filename stem used to derive binary-DB names."""
    return Path(path).stem
