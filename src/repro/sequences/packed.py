"""Packed database representation for the batched kernels.

SWIPE (Rognes 2011) preprocesses the database once — sequences sorted
by length, converted to residue codes, grouped so SIMD lanes hold
similar-length subjects — and then reuses that layout for every query.
The seed reproduction paid that cost on *every* ``sw_score_batch``
call; a :class:`PackedDatabase` hoists it out of the query hot path:

* subjects are **sorted by length once**, so each chunk pads to a
  similar length and padding waste stays small;
* chunk boundaries are chosen so ``B × L`` (subjects × padded length)
  never exceeds a cell budget, bounding peak DP memory;
* each chunk's ``(B, L)`` code matrix is **materialised once**, stored
  read-only in the narrowest dtype that can hold the pad code, and
  shared by every query and every worker thread without copies.

Kernels that consume the packed layout live in
:mod:`repro.align.sw_batch` (inter-sequence batch) and
:mod:`repro.align.sw_wavefront` (batched anti-diagonal); the packed
format itself is pure sequence-layer data and has no kernel knowledge.
"""

from __future__ import annotations

from collections.abc import Sequence as SequenceABC
from dataclasses import dataclass, field

import numpy as np

from repro.sequences.alphabet import Alphabet
from repro.sequences.sequence import Sequence

__all__ = ["PackedChunk", "PackedDatabase", "DEFAULT_CHUNK_CELLS"]

#: Default ceiling on (subjects × padded length) cells held at once.
DEFAULT_CHUNK_CELLS = 4_000_000


@dataclass(frozen=True)
class PackedChunk:
    """One padded code matrix plus its bookkeeping.

    Parameters
    ----------
    codes:
        ``(B, L)`` read-only matrix of residue codes; positions past a
        subject's true length hold the pad code (``alphabet.size``),
        which kernels map to a strongly negative substitution score.
    indices:
        Positions of the ``B`` subjects in the original database order
        (scores computed on this chunk scatter back through it).
    lengths:
        True (unpadded) length of each subject row.
    """

    codes: np.ndarray = field(repr=False)
    indices: np.ndarray = field(repr=False)
    lengths: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        for name in ("codes", "indices", "lengths"):
            arr = getattr(self, name)
            arr.setflags(write=False)

    @property
    def num_sequences(self) -> int:
        """Number of subject rows (``B``)."""
        return int(self.codes.shape[0])

    @property
    def max_len(self) -> int:
        """Padded row length (``L``)."""
        return int(self.codes.shape[1])

    @property
    def padded_cells(self) -> int:
        """Cells in the padded matrix, ``B × L``."""
        return int(self.codes.size)

    @property
    def residues(self) -> int:
        """True residues held by the chunk (no padding)."""
        return int(self.lengths.sum())


class PackedDatabase:
    """Sorted, chunked, padded code matrices built once per database.

    Parameters
    ----------
    subjects:
        The database sequences (any lengths, single alphabet).  An
        empty collection packs to zero chunks.
    chunk_cells:
        Upper bound on ``B × L`` per chunk.
    name:
        Label for reports.
    """

    def __init__(
        self,
        subjects: SequenceABC[Sequence],
        chunk_cells: int = DEFAULT_CHUNK_CELLS,
        name: str = "packed",
    ):
        if chunk_cells <= 0:
            raise ValueError(f"chunk_cells must be positive, got {chunk_cells}")
        self.name = name
        self.chunk_cells = int(chunk_cells)
        self._subjects: tuple[Sequence, ...] | None = tuple(subjects)
        self._subject_ids: tuple[str, ...] | None = None
        alphabet: Alphabet | None = None
        for s in self._subjects:
            if alphabet is None:
                alphabet = s.alphabet
            elif s.alphabet.name != alphabet.name:
                raise ValueError(
                    f"packed database {name!r} mixes alphabets "
                    f"({alphabet.name!r} vs {s.alphabet.name!r})"
                )
        self._alphabet = alphabet
        self._chunks = self._pack()

    @classmethod
    def from_database(
        cls, database, chunk_cells: int = DEFAULT_CHUNK_CELLS
    ) -> "PackedDatabase":
        """Pack a :class:`~repro.sequences.database.SequenceDatabase`."""
        return cls(list(database), chunk_cells=chunk_cells, name=database.name)

    @classmethod
    def from_chunks(
        cls,
        chunks: tuple[PackedChunk, ...],
        alphabet: Alphabet | None,
        subject_ids: SequenceABC[str],
        chunk_cells: int = DEFAULT_CHUNK_CELLS,
        name: str = "packed",
    ) -> "PackedDatabase":
        """Wrap pre-built chunks without re-packing.

        This is how a worker process reconstructs the database from
        shared-memory chunk views (:mod:`repro.sequences.shm`): the
        chunk arrays are adopted as-is — externally-backed views are
        fine — and :class:`Sequence` objects are only materialised
        lazily if something actually iterates the subjects (the packed
        kernels never do).
        """
        if chunk_cells <= 0:
            raise ValueError(f"chunk_cells must be positive, got {chunk_cells}")
        self = cls.__new__(cls)
        self.name = name
        self.chunk_cells = int(chunk_cells)
        self._subjects = None
        self._subject_ids = tuple(subject_ids)
        self._alphabet = alphabet
        self._chunks = tuple(chunks)
        packed_rows = sum(c.num_sequences for c in self._chunks)
        if packed_rows != len(self._subject_ids):
            raise ValueError(
                f"chunks hold {packed_rows} rows for "
                f"{len(self._subject_ids)} subject ids"
            )
        return self

    def _materialize_subjects(self) -> tuple[Sequence, ...]:
        """Rebuild the subject tuple from the chunk matrices (lazy).

        Rows are trimmed to their true lengths and scattered back to
        original database order through each chunk's ``indices``.
        """
        out: list[Sequence | None] = [None] * len(self._subject_ids)
        for chunk in self._chunks:
            for b in range(chunk.num_sequences):
                i = int(chunk.indices[b])
                codes = np.asarray(
                    chunk.codes[b, : int(chunk.lengths[b])], dtype=np.uint8
                )
                out[i] = Sequence(
                    id=self._subject_ids[i], codes=codes, alphabet=self._alphabet
                )
        return tuple(out)

    def _pack(self) -> tuple[PackedChunk, ...]:
        n = len(self._subjects)
        if n == 0:
            return ()
        pad_code = self.pad_code
        code_dtype = np.uint8 if pad_code <= np.iinfo(np.uint8).max else np.int32
        order = sorted(range(n), key=lambda i: len(self._subjects[i]))
        chunks = []
        start = 0
        while start < n:
            end = start + 1
            max_len = max(1, len(self._subjects[order[start]]))
            while end < n:
                cand_len = max(max_len, len(self._subjects[order[end]]))
                if (end - start + 1) * cand_len > self.chunk_cells:
                    break
                max_len = cand_len
                end += 1
            idx = np.array(order[start:end], dtype=np.int64)
            members = [self._subjects[i] for i in idx]
            codes = np.full((len(members), max_len), pad_code, dtype=code_dtype)
            for b, s in enumerate(members):
                codes[b, : len(s)] = s.codes
            lengths = np.array([len(s) for s in members], dtype=np.int64)
            chunks.append(PackedChunk(codes=codes, indices=idx, lengths=lengths))
            start = end
        return tuple(chunks)

    # -- container protocol -------------------------------------------

    def __len__(self) -> int:
        if self._subjects is None:
            return len(self._subject_ids)
        return len(self._subjects)

    def __iter__(self):
        return iter(self.subjects)

    def __getitem__(self, i: int) -> Sequence:
        return self.subjects[i]

    # -- metadata ------------------------------------------------------

    @property
    def subjects(self) -> tuple[Sequence, ...]:
        """The packed sequences, in original database order."""
        if self._subjects is None:
            self._subjects = self._materialize_subjects()
        return self._subjects

    @property
    def alphabet(self) -> Alphabet | None:
        """Shared alphabet (``None`` for an empty packing)."""
        return self._alphabet

    @property
    def pad_code(self) -> int:
        """Code used for padded positions: one past the alphabet."""
        return self._alphabet.size if self._alphabet is not None else 0

    @property
    def chunks(self) -> tuple[PackedChunk, ...]:
        """The padded chunks, shortest subjects first."""
        return self._chunks

    @property
    def num_sequences(self) -> int:
        """Number of packed sequences."""
        return len(self)

    @property
    def total_residues(self) -> int:
        """True residues across all sequences."""
        return sum(int(c.lengths.sum()) for c in self._chunks)

    @property
    def padded_cells(self) -> int:
        """Total padded matrix cells across all chunks."""
        return sum(c.padded_cells for c in self._chunks)

    @property
    def pack_efficiency(self) -> float:
        """Residues ÷ padded cells — 1.0 means no padding waste."""
        padded = self.padded_cells
        return self.total_residues / padded if padded else 1.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PackedDatabase({self.name!r}, n={self.num_sequences}, "
            f"chunks={len(self._chunks)}, efficiency={self.pack_efficiency:.2f})"
        )
