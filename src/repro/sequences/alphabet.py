"""Biological alphabets and residue encoding.

Sequences are stored internally as ``uint8`` numpy arrays of *residue
codes* (indices into an alphabet), not as Python strings.  This is the
representation every alignment kernel consumes: a substitution matrix
lookup then becomes a single fancy-indexing operation
``S[q_codes[:, None], d_codes[None, :]]`` instead of per-character dict
lookups (see the vectorisation guidance in the scientific-python
optimisation notes).

Three standard alphabets are provided:

* :data:`DNA` — ``ACGT`` plus the ambiguity code ``N``.
* :data:`RNA` — ``ACGU`` plus ``N``.
* :data:`PROTEIN` — the 20 standard amino acids plus ``B``, ``Z``, ``X``
  and ``*`` in the order used by the BLOSUM matrix files, so matrix rows
  can be addressed directly by residue code.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Alphabet", "DNA", "RNA", "PROTEIN", "alphabet_by_name"]


@dataclass(frozen=True)
class Alphabet:
    """An ordered residue alphabet with encode/decode tables.

    Parameters
    ----------
    name:
        Short identifier (``"dna"``, ``"rna"``, ``"protein"``).
    letters:
        The residue letters in code order; code *i* is ``letters[i]``.
    wildcard:
        Letter unknown residues are mapped to when ``encode`` is called
        with ``strict=False`` (e.g. ``"X"`` for proteins, ``"N"`` for
        nucleotides).
    """

    name: str
    letters: str
    wildcard: str
    _lut: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if len(set(self.letters)) != len(self.letters):
            raise ValueError(f"duplicate letters in alphabet {self.name!r}: {self.letters!r}")
        if self.wildcard not in self.letters:
            raise ValueError(
                f"wildcard {self.wildcard!r} not in alphabet {self.name!r}"
            )
        # Byte -> code lookup table; 255 marks an invalid byte.  Upper and
        # lower case map to the same code.
        lut = np.full(256, 255, dtype=np.uint8)
        for code, letter in enumerate(self.letters):
            lut[ord(letter.upper())] = code
            lut[ord(letter.lower())] = code
        lut.setflags(write=False)
        object.__setattr__(self, "_lut", lut)

    def __len__(self) -> int:
        return len(self.letters)

    @property
    def size(self) -> int:
        """Number of residues (codes run ``0 .. size-1``)."""
        return len(self.letters)

    @property
    def wildcard_code(self) -> int:
        """Residue code of the wildcard letter."""
        return self.letters.index(self.wildcard)

    def code_of(self, letter: str) -> int:
        """Return the residue code for a single *letter*.

        Raises ``ValueError`` for letters outside the alphabet.
        """
        if len(letter) != 1:
            raise ValueError(f"expected a single character, got {letter!r}")
        code = int(self._lut[ord(letter) & 0xFF]) if ord(letter) < 256 else 255
        if code == 255:
            raise ValueError(f"letter {letter!r} not in alphabet {self.name!r}")
        return code

    def encode(self, text: str | bytes, strict: bool = True) -> np.ndarray:
        """Encode *text* into a ``uint8`` code array.

        Parameters
        ----------
        text:
            Residue letters (case-insensitive).
        strict:
            If true (default), unknown letters raise ``ValueError``;
            otherwise they are replaced with the wildcard code.
        """
        if isinstance(text, str):
            raw = text.encode("ascii", errors="strict")
        else:
            raw = bytes(text)
        arr = np.frombuffer(raw, dtype=np.uint8)
        codes = self._lut[arr]
        bad = codes == 255
        if bad.any():
            if strict:
                pos = int(np.argmax(bad))
                raise ValueError(
                    f"invalid letter {chr(arr[pos])!r} at position {pos} "
                    f"for alphabet {self.name!r}"
                )
            codes = codes.copy()
            codes[bad] = self.wildcard_code
        return codes.astype(np.uint8, copy=not bad.any())

    def decode(self, codes: np.ndarray) -> str:
        """Decode a code array back into its letter string."""
        codes = np.asarray(codes)
        if codes.size and (codes.min() < 0 or codes.max() >= self.size):
            raise ValueError(
                f"codes out of range [0, {self.size}) for alphabet {self.name!r}"
            )
        return "".join(self.letters[int(c)] for c in codes)

    def is_valid(self, text: str) -> bool:
        """True if every letter of *text* belongs to the alphabet."""
        try:
            self.encode(text, strict=True)
        except ValueError:
            return False
        return True


#: DNA alphabet, ``N`` is the ambiguity wildcard.
DNA = Alphabet(name="dna", letters="ACGTN", wildcard="N")

#: RNA alphabet, ``N`` is the ambiguity wildcard.
RNA = Alphabet(name="rna", letters="ACGUN", wildcard="N")

#: Protein alphabet in NCBI BLOSUM file order (24 symbols: the 20
#: standard amino acids, ambiguity codes B/Z, unknown X, and stop ``*``).
PROTEIN = Alphabet(name="protein", letters="ARNDCQEGHILKMFPSTWYVBZX*", wildcard="X")

_BY_NAME = {a.name: a for a in (DNA, RNA, PROTEIN)}


def alphabet_by_name(name: str) -> Alphabet:
    """Look up a standard alphabet by its ``name`` attribute."""
    try:
        return _BY_NAME[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown alphabet {name!r}; expected one of {sorted(_BY_NAME)}"
        ) from None
