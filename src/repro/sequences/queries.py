"""Query-set generators matching the paper's three workloads.

Section V uses three sets of 40 query sequences:

* the **standard set**, 100–5,000 residues, used for Tables II/IV and
  Figures 7/8;
* the **homogeneous set**, 4,500–5,000 residues (Section V-C);
* the **heterogeneous set**, 4–35,213 residues — the extremes of the
  UniProt database (Section V-C).

Cross-checking the paper's own numbers shows the sets are uniform in
length: with the per-database residue totals fixed by Table IV,
Table V's ``time × GCUPS`` products imply total query lengths of
≈190,000 (homogeneous) and ≈700,000 (heterogeneous) residues — exactly
the sums of 40 lengths **evenly spaced** over [4,500, 5,000] and
[4, 35,213].  We therefore generate evenly spaced lengths, which also
keeps the workloads deterministic.

Each generator returns a :class:`QuerySet`: named lengths that can be
turned into tasks directly (simulated mode) or materialised into real
sequences (live mode).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sequences.alphabet import PROTEIN, Alphabet
from repro.sequences.sequence import Sequence
from repro.sequences.synthetic import SWISSPROT_COMPOSITION
from repro.utils import ensure_rng

__all__ = [
    "QuerySet",
    "standard_query_set",
    "homogeneous_query_set",
    "heterogeneous_query_set",
    "evenly_spaced_lengths",
    "PAPER_QUERY_COUNT",
]

#: The paper always compares 40 query sequences.
PAPER_QUERY_COUNT = 40


@dataclass(frozen=True)
class QuerySet:
    """A named set of query sequences described by their lengths."""

    name: str
    lengths: np.ndarray
    alphabet: Alphabet = PROTEIN

    def __post_init__(self) -> None:
        lengths = np.asarray(self.lengths, dtype=np.int64)
        if lengths.ndim != 1 or lengths.size == 0:
            raise ValueError("lengths must be a non-empty 1-D array")
        if (lengths <= 0).any():
            raise ValueError("all query lengths must be positive")
        lengths = lengths.copy()
        lengths.setflags(write=False)
        object.__setattr__(self, "lengths", lengths)

    def __len__(self) -> int:
        return int(self.lengths.size)

    @property
    def total_residues(self) -> int:
        """Sum of query lengths (the SW matrix row count per task sum)."""
        return int(self.lengths.sum())

    def materialize(self, seed: int | None = 0) -> list[Sequence]:
        """Generate concrete random sequences with these lengths."""
        rng = ensure_rng(seed)
        comp = SWISSPROT_COMPOSITION if self.alphabet is PROTEIN else None
        if comp is None:
            comp = np.zeros(self.alphabet.size)
            comp[: max(1, self.alphabet.size - 1)] = 1.0
            comp /= comp.sum()
        out = []
        for i, length in enumerate(self.lengths):
            codes = rng.choice(self.alphabet.size, size=int(length), p=comp)
            out.append(
                Sequence(
                    id=f"{self.name}_q{i:02d}",
                    codes=codes.astype(np.uint8),
                    alphabet=self.alphabet,
                )
            )
        return out

    def scaled(self, fraction: float) -> "QuerySet":
        """Shrink every query length by *fraction* (live-mode workloads).

        Lengths never drop below 10 residues so kernels stay meaningful.
        """
        if not 0 < fraction <= 1:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        lengths = np.maximum(10, np.rint(self.lengths * fraction)).astype(np.int64)
        return QuerySet(f"{self.name}@{fraction:g}", lengths, self.alphabet)


def evenly_spaced_lengths(count: int, lo: int, hi: int) -> np.ndarray:
    """*count* integer lengths evenly spaced over ``[lo, hi]`` inclusive."""
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    if lo > hi:
        raise ValueError(f"lo {lo} > hi {hi}")
    if count == 1:
        return np.array([round((lo + hi) / 2)], dtype=np.int64)
    return np.rint(np.linspace(lo, hi, count)).astype(np.int64)


def standard_query_set(count: int = PAPER_QUERY_COUNT) -> QuerySet:
    """The Tables II/IV workload: lengths 100–5,000 (total 102,000 for
    the paper's 40 queries)."""
    return QuerySet("standard", evenly_spaced_lengths(count, 100, 5_000))


def homogeneous_query_set(count: int = PAPER_QUERY_COUNT) -> QuerySet:
    """Section V-C homogeneous workload: lengths 4,500–5,000."""
    return QuerySet("homogeneous", evenly_spaced_lengths(count, 4_500, 5_000))


def heterogeneous_query_set(count: int = PAPER_QUERY_COUNT) -> QuerySet:
    """Section V-C heterogeneous workload: lengths 4–35,213 (the UniProt
    extremes)."""
    return QuerySet("heterogeneous", evenly_spaced_lengths(count, 4, 35_213))
