"""The :class:`Sequence` value type.

A sequence couples an identifier, an optional description, the encoded
residue codes and the alphabet they were encoded with.  It is immutable
(the code array is marked read-only) so sequences can be shared freely
between the master, workers and kernels without defensive copies — the
"views, not copies" rule from the optimisation guide.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sequences.alphabet import PROTEIN, Alphabet

__all__ = ["Sequence"]


@dataclass(frozen=True)
class Sequence:
    """An immutable biological sequence.

    Parameters
    ----------
    id:
        Sequence identifier (the first word of a FASTA header).
    codes:
        ``uint8`` residue codes; stored read-only.
    alphabet:
        The :class:`~repro.sequences.alphabet.Alphabet` the codes index.
    description:
        Free-text remainder of the FASTA header (may be empty).
    """

    id: str
    codes: np.ndarray
    alphabet: Alphabet = PROTEIN
    description: str = ""
    _hash: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        codes = np.asarray(self.codes, dtype=np.uint8)
        if codes.ndim != 1:
            raise ValueError(f"codes must be 1-D, got shape {codes.shape}")
        if codes.size and int(codes.max()) >= self.alphabet.size:
            raise ValueError(
                f"residue code {int(codes.max())} out of range for "
                f"alphabet {self.alphabet.name!r} (size {self.alphabet.size})"
            )
        codes = codes.copy()
        codes.setflags(write=False)
        object.__setattr__(self, "codes", codes)
        object.__setattr__(
            self, "_hash", hash((self.id, self.alphabet.name, codes.tobytes()))
        )

    # -- constructors -------------------------------------------------

    @classmethod
    def from_text(
        cls,
        id: str,
        text: str,
        alphabet: Alphabet = PROTEIN,
        description: str = "",
        strict: bool = True,
    ) -> "Sequence":
        """Build a sequence by encoding *text* with *alphabet*."""
        return cls(
            id=id,
            codes=alphabet.encode(text, strict=strict),
            alphabet=alphabet,
            description=description,
        )

    # -- protocol -----------------------------------------------------

    def __len__(self) -> int:
        return int(self.codes.size)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Sequence):
            return NotImplemented
        return (
            self.id == other.id
            and self.alphabet.name == other.alphabet.name
            and np.array_equal(self.codes, other.codes)
        )

    def __getitem__(self, item: slice) -> "Sequence":
        """Slice a sequence; only slices (not scalar indices) are allowed."""
        if not isinstance(item, slice):
            raise TypeError("Sequence only supports slice indexing")
        return Sequence(
            id=self.id,
            codes=self.codes[item],
            alphabet=self.alphabet,
            description=self.description,
        )

    # -- views --------------------------------------------------------

    @property
    def text(self) -> str:
        """The residue letters as a string (decoded on demand)."""
        return self.alphabet.decode(self.codes)

    def reversed(self) -> "Sequence":
        """Return the sequence with residue order reversed."""
        return Sequence(
            id=self.id,
            codes=self.codes[::-1],
            alphabet=self.alphabet,
            description=self.description,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        preview = self.text[:12] + ("..." if len(self) > 12 else "")
        return f"Sequence(id={self.id!r}, len={len(self)}, {preview!r})"
