"""Generation-versioned mutable databases.

The engine packs a database once and keeps it resident — in thread
workers, in worker *processes*, and (on the shm data plane) in one
shared-memory segment the whole pool maps.  That residency is why the
service is fast, and also why it could not take a database update
without a restart: every copy, cache, and calibration is keyed to the
content that was packed at start-up.

This module is the versioning layer that makes updates safe:

* :func:`apply_append` / :func:`apply_retire` — the only two mutations,
  both *pure*: they build a *new* :class:`SequenceDatabase` and never
  touch the old one.  Appends go to the end, retires preserve order, so
  a database reached through any interleaving of mutations is
  element-for-element identical to one built directly from the final
  sequence list — the invariant the swap-conformance suite pins down.
* :class:`DatabaseGeneration` — an immutable (database, ordinal) pair.
  Each mutation returns the next generation; the ordinal is the version
  number operators see in ``db_info`` / ``swdual_db_generation``.
* :class:`GenerationHandle` — a refcounted tie of one generation's
  shared arena to its users.  The swap protocol acquires one reference
  per attached worker before retargeting and releases as each worker
  acknowledges (or dies); the arena is closed — and, for the owner,
  unlinked — only at refcount zero.  No torn reads (nobody unmaps a
  segment a worker may still be scoring from) and no ``/dev/shm``
  leaks (the master's base reference is always released, even when a
  worker was SIGKILLed mid-swap).

The swap itself — draining in-flight queries on the old generation and
atomically pointing warm pools at the new one — lives with the pools
(:meth:`repro.engine.transport.ProcessWorkerPool.retarget_database`,
:meth:`repro.service.pool.WarmPool.retarget_database`) and the service
scheduler (:mod:`repro.service.server`); this module only defines what
a generation *is* and when its arena may die.
"""

from __future__ import annotations

import threading
from collections.abc import Iterable
from dataclasses import asdict, dataclass

from repro.sequences.database import SequenceDatabase
from repro.sequences.sequence import Sequence

__all__ = [
    "DatabaseGeneration",
    "GenerationHandle",
    "GenerationInfo",
    "MutationError",
    "apply_append",
    "apply_retire",
]


class MutationError(ValueError):
    """A database mutation that cannot be applied (unknown id on
    retire, duplicate id on append, alphabet mismatch, empty result)."""


@dataclass(frozen=True)
class GenerationInfo:
    """JSON-able identity of one database generation.

    ``fingerprint`` is the content hash
    (:meth:`~repro.sequences.database.SequenceDatabase.fingerprint`) —
    two services whose info carries the same fingerprint serve
    bit-identical databases, whatever mutation path led there.
    ``appended``/``retired`` count the records of the mutation that
    *produced* this generation (both 0 for generation 0).
    """

    ordinal: int
    name: str
    num_sequences: int
    total_residues: int
    fingerprint: str
    appended: int = 0
    retired: int = 0

    def as_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "GenerationInfo":
        return cls(
            ordinal=int(data["ordinal"]),
            name=str(data["name"]),
            num_sequences=int(data["num_sequences"]),
            total_residues=int(data["total_residues"]),
            fingerprint=str(data["fingerprint"]),
            appended=int(data.get("appended", 0)),
            retired=int(data.get("retired", 0)),
        )


def apply_append(
    database: SequenceDatabase,
    sequences: Iterable[Sequence],
    name: str | None = None,
) -> SequenceDatabase:
    """A new database: *database*'s records plus *sequences* at the end.

    Ids must be new (an existing id would make a later retire
    ambiguous) and unique within the appended batch; alphabets must
    match — the :class:`SequenceDatabase` constructor enforces the
    latter, this function turns both into :class:`MutationError` so
    admin surfaces can answer a clean protocol error.
    """
    additions = list(sequences)
    if not additions:
        raise MutationError("append needs at least one sequence")
    existing = {s.id for s in database}
    seen: set[str] = set()
    for s in additions:
        if s.id in existing:
            raise MutationError(f"sequence id {s.id!r} already in the database")
        if s.id in seen:
            raise MutationError(f"duplicate sequence id {s.id!r} in append batch")
        seen.add(s.id)
    try:
        return SequenceDatabase(
            name or database.name, list(database) + additions
        )
    except ValueError as exc:  # alphabet mismatch
        raise MutationError(str(exc)) from exc


def apply_retire(
    database: SequenceDatabase,
    ids: Iterable[str],
    name: str | None = None,
) -> SequenceDatabase:
    """A new database: *database*'s records minus the named ids, order
    preserved.

    Every id must exist, and at least one record must survive (an
    empty :class:`SequenceDatabase` is invalid — retire everything by
    tearing the service down instead).
    """
    victims = set(ids)
    if not victims:
        raise MutationError("retire needs at least one sequence id")
    present = {s.id for s in database}
    missing = sorted(victims - present)
    if missing:
        raise MutationError(f"cannot retire unknown sequence id(s): {missing}")
    survivors = [s for s in database if s.id not in victims]
    if not survivors:
        raise MutationError("retire would leave the database empty")
    return SequenceDatabase(name or database.name, survivors)


class DatabaseGeneration:
    """One immutable generation of a served database.

    ``append``/``retire`` return the *next* generation (ordinal + 1)
    without touching this one, so a service can keep queries draining
    on the current generation while the successor is packed and shared.
    """

    __slots__ = ("database", "ordinal", "_appended", "_retired")

    def __init__(
        self,
        database: SequenceDatabase,
        ordinal: int = 0,
        appended: int = 0,
        retired: int = 0,
    ):
        if ordinal < 0:
            raise ValueError(f"ordinal must be >= 0, got {ordinal}")
        self.database = database
        self.ordinal = ordinal
        self._appended = appended
        self._retired = retired

    def info(self) -> GenerationInfo:
        """Identity + provenance of this generation."""
        return GenerationInfo(
            ordinal=self.ordinal,
            name=self.database.name,
            num_sequences=len(self.database),
            total_residues=self.database.total_residues,
            fingerprint=self.database.fingerprint(),
            appended=self._appended,
            retired=self._retired,
        )

    def append(self, sequences: Iterable[Sequence]) -> "DatabaseGeneration":
        """Next generation with *sequences* appended."""
        additions = list(sequences)
        return DatabaseGeneration(
            apply_append(self.database, additions),
            ordinal=self.ordinal + 1,
            appended=len(additions),
        )

    def retire(self, ids: Iterable[str]) -> "DatabaseGeneration":
        """Next generation with the named ids retired."""
        victims = list(ids)
        return DatabaseGeneration(
            apply_retire(self.database, victims),
            ordinal=self.ordinal + 1,
            retired=len(victims),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DatabaseGeneration(#{self.ordinal}, {self.database.name!r}, "
            f"n={len(self.database)})"
        )


class GenerationHandle:
    """Refcounted lifetime of one generation's shared arena.

    Created holding one *base* reference (the pool's own).  The swap
    protocol acquires one reference per worker still attached to the
    old generation and releases as each worker acknowledges the
    retarget — or is lost mid-swap; a dead process's mapping dies with
    it, so its reference must be dropped either way.  When the count
    reaches zero the arena is closed, which for the owning side unlinks
    the ``/dev/shm`` segment.  ``arena=None`` (the pickle plane, or a
    threads pool) degrades to pure reference counting — useful for the
    same drain bookkeeping without a segment to free.

    Releasing below zero raises: that is always a protocol bug, and
    silently absorbing it would hide double-release leaks.
    """

    __slots__ = ("_arena", "_count", "_lock")

    def __init__(self, arena=None):
        self._arena = arena
        self._count = 1
        self._lock = threading.Lock()

    @property
    def refcount(self) -> int:
        with self._lock:
            return self._count

    @property
    def finalized(self) -> bool:
        """Whether the count hit zero (and any arena was closed)."""
        with self._lock:
            return self._count == 0

    def acquire(self) -> int:
        """Add one reference; returns the new count."""
        with self._lock:
            if self._count == 0:
                raise ValueError("generation already finalized")
            self._count += 1
            return self._count

    def release(self) -> int:
        """Drop one reference; at zero, close (owner: unlink) the
        arena.  Returns the new count."""
        with self._lock:
            if self._count == 0:
                raise ValueError("generation released more times than acquired")
            self._count -= 1
            count = self._count
            arena, self._arena = (self._arena, None) if count == 0 else (None, self._arena)
        if arena is not None:
            arena.close()
        return count

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GenerationHandle(refs={self.refcount}, arena={self._arena!r})"
