"""Shard lifecycle: partition the database, run one service per shard.

:class:`ShardManager` turns one :class:`~repro.sequences.database.
SequenceDatabase` into N independent :class:`~repro.service.server.
SearchService` processes, each owning one residue-balanced shard cut
by :func:`repro.engine.sharded.shard_database` (shard counts beyond
``len(db)`` clamp-and-warn via
:func:`repro.engine.sharded.clamp_shard_count`, the same rule the
in-process sharded search applies).  Alternatively it *adopts* a
:class:`~repro.cluster.topology.ClusterTopology` of pre-started
endpoints (shards on other hosts) and only health-checks them.

Supervision follows the warm-pool pattern one level up: a background
thread polls shard liveness; a spawned shard that dies (crash,
SIGKILL) is restarted from the parent's copy of its shard — up to
``max_restarts`` times per shard — and the router is told about the
new endpoint through the ``on_change`` callback.  Rolling restarts
(:meth:`ShardManager.rolling_restart`) drain one shard at a time via
the protocol's ``shutdown`` verb, restart it warm, and wait for its
``ping`` before moving on, so a cluster can pick up a new database
revision without ever losing more than one shard of capacity.
"""

from __future__ import annotations

import contextlib
import multiprocessing as mp
import os
import signal
import threading
import time

from repro.cluster.topology import ClusterTopology, ShardEndpoint
from repro.engine.sharded import clamp_shard_count, shard_database
from repro.engine.transport import resolve_start_method
from repro.sequences.database import SequenceDatabase
from repro.service.client import SearchClient

__all__ = ["ShardManager"]

#: Child start-up allowance: pool warm-up dominates (spawn re-imports).
_DEFAULT_SPAWN_TIMEOUT_S = 60.0


def _shard_main(conn, database: SequenceDatabase, host: str, service_kwargs: dict) -> None:
    """Child entry point: serve one shard until told to stop.

    Reports ``("ready", port)`` (or ``("error", reason)``) on *conn*,
    then blocks in ``serve_forever``.  SIGTERM triggers the same
    graceful drain as the protocol's ``shutdown`` verb.
    """
    from repro.service.server import SearchService

    try:
        service = SearchService(database, host=host, port=0, **service_kwargs)
        service.start()
    except Exception as exc:  # pragma: no cover - startup failure path
        with contextlib.suppress(OSError):
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        return
    signal.signal(
        signal.SIGTERM,
        lambda signum, frame: threading.Thread(
            target=service.shutdown, daemon=True
        ).start(),
    )
    conn.send(("ready", service.port))
    conn.close()
    service.serve_forever()


class _ManagedShard:
    """Book-keeping for one shard: its data, process, and endpoint."""

    __slots__ = ("name", "database", "process", "endpoint", "restarts", "state")

    def __init__(self, name: str, database: SequenceDatabase | None):
        self.name = name
        self.database = database  # None for adopted (remote) shards
        self.process = None
        self.endpoint: ShardEndpoint | None = None
        self.restarts = 0
        self.state = "new"  # new -> up -> (draining|down|failed)

    @property
    def owned(self) -> bool:
        return self.database is not None


class ShardManager:
    """Launch and supervise the shard services behind one router.

    Exactly one of *database* (spawn mode: cut and serve locally) or
    *topology* (adopt mode: health-check pre-started endpoints) must
    be given.

    Parameters
    ----------
    database / num_shards:
        Spawn mode: the database to cut into ``num_shards`` shards
        (clamped to ``len(database)`` with a warning) and serve, one
        local process per shard.
    topology:
        Adopt mode: endpoints of already-running services.  Adopted
        shards are pinged but cannot be restarted from here.
    host:
        Bind address for spawned shard services.
    start_method:
        ``multiprocessing`` start method for spawned shards (``auto``
        resolves like the worker transport, honoring
        ``SWDUAL_START_METHOD``).
    service_kwargs:
        Extra :class:`~repro.service.server.SearchService` settings
        applied to every spawned shard (worker counts, backend,
        pipeline config, ...).
    max_restarts:
        Per-shard automatic restart budget; once exhausted the shard
        stays ``failed`` and queries degrade to partial results.
    health_interval_s:
        Supervisor poll period.
    """

    def __init__(
        self,
        database: SequenceDatabase | None = None,
        num_shards: int = 2,
        topology: ClusterTopology | None = None,
        host: str = "127.0.0.1",
        start_method: str = "auto",
        service_kwargs: dict | None = None,
        max_restarts: int = 3,
        health_interval_s: float = 0.5,
        spawn_timeout_s: float = _DEFAULT_SPAWN_TIMEOUT_S,
        name: str = "cluster",
    ):
        if (database is None) == (topology is None):
            raise ValueError("give exactly one of database= or topology=")
        if max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0, got {max_restarts}")
        self.name = name
        self.host = host
        self.start_method = resolve_start_method(start_method)
        self.service_kwargs = dict(service_kwargs or {})
        self.max_restarts = max_restarts
        self.health_interval_s = health_interval_s
        self.spawn_timeout_s = spawn_timeout_s
        self._lock = threading.RLock()
        # Serialises whole supervision passes against explicit restarts:
        # without it, poll_once can observe the processless "down" gap
        # inside restart_shard/close and spawn a duplicate process for
        # the same shard (which then leaks and outlives the manager).
        self._op_lock = threading.Lock()
        self._shards: dict[str, _ManagedShard] = {}
        #: Database generation the owned shards serve; bumped by each
        #: completed :meth:`rollout_database` (0 = the start-up cut).
        self.generation = 0
        self._on_change = None
        self._stopping = threading.Event()
        self._supervisor: threading.Thread | None = None
        self._started = False
        if database is not None:
            count = clamp_shard_count(database, num_shards)
            for i, shard_db in enumerate(shard_database(database, count)):
                shard = _ManagedShard(f"shard{i}", shard_db)
                self._shards[shard.name] = shard
        else:
            self.name = topology.name
            for endpoint in topology:
                shard = _ManagedShard(endpoint.name, None)
                shard.endpoint = endpoint
                self._shards[shard.name] = shard

    # -- lifecycle -----------------------------------------------------

    def __enter__(self) -> "ShardManager":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def shard_names(self) -> list[str]:
        return list(self._shards)

    def on_change(self, callback) -> None:
        """Register ``callback(shard_name)`` fired whenever a shard's
        endpoint or availability changes (restart, death, drain)."""
        self._on_change = callback

    def _notify(self, shard_name: str) -> None:
        callback = self._on_change
        if callback is not None:
            with contextlib.suppress(Exception):
                callback(shard_name)

    def start(self) -> None:
        """Spawn (or verify) every shard, then start the supervisor."""
        if self._started:
            raise RuntimeError("manager already started")
        self._started = True
        try:
            for shard in self._shards.values():
                if shard.owned:
                    self._spawn(shard)
                else:
                    shard.state = "up" if self._ping(shard.endpoint) else "down"
        except BaseException:
            self.close()
            raise
        self._supervisor = threading.Thread(
            target=self._supervise_loop, name=f"{self.name}-supervisor", daemon=True
        )
        self._supervisor.start()

    def close(self) -> None:
        """Stop supervision and shut every owned shard down (drain
        first, SIGTERM stragglers, join).  Idempotent."""
        self._stopping.set()
        if self._supervisor is not None:
            self._supervisor.join(timeout=10)
            self._supervisor = None
        with self._op_lock:
            with self._lock:
                shards = list(self._shards.values())
            for shard in shards:
                self._stop_process(shard)

    # -- spawning / stopping -------------------------------------------

    def _spawn(self, shard: _ManagedShard) -> None:
        ctx = mp.get_context(self.start_method)
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_shard_main,
            args=(child_conn, shard.database, self.host, self.service_kwargs),
            name=f"{self.name}-{shard.name}",
            daemon=False,
        )
        process.start()
        child_conn.close()
        deadline = time.monotonic() + self.spawn_timeout_s
        port = None
        while time.monotonic() < deadline:
            if parent_conn.poll(0.1):
                try:
                    status, payload = parent_conn.recv()
                except EOFError:
                    process.join(timeout=5)
                    raise RuntimeError(
                        f"{shard.name} died during startup"
                    ) from None
                if status != "ready":
                    process.join(timeout=5)
                    raise RuntimeError(f"{shard.name} failed to start: {payload}")
                port = payload
                break
            if not process.is_alive():
                raise RuntimeError(f"{shard.name} died during startup")
        parent_conn.close()
        if port is None:
            process.terminate()
            raise RuntimeError(
                f"{shard.name} did not report a port within {self.spawn_timeout_s}s"
            )
        with self._lock:
            shard.process = process
            shard.endpoint = ShardEndpoint(shard.name, self.host, port)
            shard.state = "up"

    def _stop_process(self, shard: _ManagedShard, drain: bool = True) -> None:
        process = shard.process
        if process is None:
            return
        if drain and process.is_alive() and shard.endpoint is not None:
            with contextlib.suppress(OSError, ConnectionError):
                with SearchClient(*shard.endpoint.address, timeout=5.0) as client:
                    client.shutdown_server()
        process.join(timeout=5)
        if process.is_alive():
            process.terminate()
            process.join(timeout=5)
        if process.is_alive():  # pragma: no cover - last resort
            process.kill()
            process.join(timeout=5)
        with self._lock:
            shard.process = None
            if shard.state not in ("failed", "draining"):
                shard.state = "down"

    # -- health / supervision ------------------------------------------

    @staticmethod
    def _ping(endpoint: ShardEndpoint | None, timeout: float = 2.0) -> bool:
        if endpoint is None:
            return False
        try:
            with SearchClient(*endpoint.address, timeout=timeout) as client:
                return client.ping()
        except (OSError, ConnectionError):
            return False

    def _supervise_loop(self) -> None:
        while not self._stopping.wait(self.health_interval_s):
            with contextlib.suppress(Exception):
                self.poll_once()

    def poll_once(self) -> list[str]:
        """One supervision pass; returns names of shards acted upon.

        Owned shards whose process died are restarted (until the
        restart budget runs out); adopted shards are pinged and their
        up/down state refreshed.
        """
        acted = []
        with self._op_lock:
            with self._lock:
                shards = list(self._shards.values())
            for shard in shards:
                if self._stopping.is_set():
                    break
                if shard.owned:
                    process = shard.process
                    if shard.state in ("up", "down") and (
                        process is None or not process.is_alive()
                    ):
                        acted.append(shard.name)
                        self._restart_dead(shard)
                else:
                    was_up = shard.state == "up"
                    alive = self._ping(shard.endpoint)
                    shard.state = "up" if alive else "down"
                    if was_up != alive:
                        acted.append(shard.name)
                        self._notify(shard.name)
        return acted

    def _restart_dead(self, shard: _ManagedShard) -> None:
        if shard.process is not None:
            shard.process.join(timeout=1)
            shard.process = None
        if shard.restarts >= self.max_restarts:
            shard.state = "failed"
            self._notify(shard.name)
            return
        shard.restarts += 1
        shard.state = "down"
        self._notify(shard.name)
        try:
            self._spawn(shard)
        except RuntimeError:
            shard.state = "failed"
        self._notify(shard.name)

    def restart_shard(self, name: str, drain: bool = True) -> ShardEndpoint:
        """Restart one owned shard: drain (unless ``drain=False``),
        stop, spawn warm, readmit.  Returns the new endpoint."""
        shard = self._shards[name]
        if not shard.owned:
            raise ValueError(f"shard {name!r} is adopted; restart it where it runs")
        with self._op_lock:
            with self._lock:
                shard.state = "draining"
            self._notify(name)
            self._stop_process(shard, drain=drain)
            self._spawn(shard)
            self._notify(name)
        return shard.endpoint

    def rolling_restart(self, settle_timeout_s: float = 30.0) -> None:
        """Restart every owned shard one at a time, waiting for each
        restarted shard to answer ``ping`` before draining the next —
        the cluster never loses more than one shard of capacity."""
        for name in self.shard_names:
            if not self._shards[name].owned:
                continue
            endpoint = self.restart_shard(name, drain=True)
            deadline = time.monotonic() + settle_timeout_s
            while time.monotonic() < deadline:
                if self._ping(endpoint):
                    break
                time.sleep(0.05)
            else:  # pragma: no cover - settle timeout
                raise RuntimeError(f"{name} did not settle after rolling restart")

    def rollout_database(
        self, database: SequenceDatabase, settle_timeout_s: float = 30.0
    ) -> int:
        """Roll every owned shard onto a new database generation,
        drain-first and one shard at a time.

        The new *database* is re-cut into the existing shard count with
        the same residue-balanced partitioner used at start-up
        (:func:`~repro.engine.sharded.shard_database`), each shard's
        parent-side copy is swapped to its new cut, and the shards are
        then restarted in order — drain via the protocol's ``shutdown``
        verb, spawn warm on the new cut, wait for ``ping`` — so the
        cluster serves throughout and never loses more than one shard
        of capacity.  Queries racing the rollout may see a mix of
        generations across shards until the last shard settles (the
        same partial-result contract as a shard failure).

        Requires the new database to still fill the existing shard
        count (the router's scatter set is fixed).  Returns the new
        generation ordinal, also surfaced per shard in
        :meth:`snapshot`.
        """
        with self._lock:
            owned = [s for s in self._shards.values() if s.owned]
        if not owned:
            raise ValueError(
                "no owned shards: adopted shards roll out where they run"
            )
        if clamp_shard_count(database, len(owned)) != len(owned):
            raise ValueError(
                f"database with {len(database)} sequence(s) cannot fill "
                f"{len(owned)} shard(s)"
            )
        cuts = shard_database(database, len(owned))
        with self._lock:
            for shard, cut in zip(owned, cuts):
                shard.database = cut  # picked up by the shard's respawn
        for shard in owned:
            endpoint = self.restart_shard(shard.name, drain=True)
            deadline = time.monotonic() + settle_timeout_s
            while time.monotonic() < deadline:
                if self._ping(endpoint):
                    break
                time.sleep(0.05)
            else:  # pragma: no cover - settle timeout
                raise RuntimeError(
                    f"{shard.name} did not settle during database rollout"
                )
        with self._lock:
            self.generation += 1
            return self.generation

    # -- test / drill hooks --------------------------------------------

    def pid(self, name: str) -> int | None:
        """PID of an owned shard's process (None when not running)."""
        process = self._shards[name].process
        return process.pid if process is not None else None

    def kill_shard(self, name: str) -> None:
        """SIGKILL one owned shard (no drain) — the failure drill the
        supervisor and router must absorb."""
        pid = self.pid(name)
        if pid is None:
            raise ValueError(f"shard {name!r} has no running process")
        os.kill(pid, signal.SIGKILL)

    # -- introspection --------------------------------------------------

    def endpoints(self) -> dict[str, ShardEndpoint | None]:
        """Current ``{shard_name: endpoint}`` map (None before spawn)."""
        with self._lock:
            return {name: shard.endpoint for name, shard in self._shards.items()}

    def topology(self) -> ClusterTopology:
        """The live endpoints as a :class:`ClusterTopology`."""
        with self._lock:
            shards = tuple(
                shard.endpoint
                for shard in self._shards.values()
                if shard.endpoint is not None
            )
        return ClusterTopology(name=self.name, shards=shards)

    def snapshot(self) -> dict:
        """JSON-able supervision state (folded into router stats)."""
        with self._lock:
            return {
                name: {
                    "endpoint": (
                        f"{shard.endpoint.host}:{shard.endpoint.port}"
                        if shard.endpoint
                        else None
                    ),
                    "owned": shard.owned,
                    "state": shard.state,
                    "restarts": shard.restarts,
                    "generation": self.generation if shard.owned else None,
                    "pid": shard.process.pid if shard.process is not None else None,
                }
                for name, shard in self._shards.items()
            }
