"""Cluster plane: many shard services behind one search endpoint.

The service layer (:mod:`repro.service`) makes *one* process with a
warm worker pool resident; this package scales that out the way
SWAPHI-class systems do — by partitioning the **database** across N
independent :class:`~repro.service.server.SearchService` processes and
scatter-gathering each query over all of them:

* :mod:`repro.cluster.topology` — which shard endpoints form one
  logical cluster, loadable from TOML/JSON for pre-started shards.
* :mod:`repro.cluster.manager` — :class:`ShardManager` cuts the
  database with the engine's residue-balanced
  :func:`~repro.engine.sharded.shard_database`, runs one service
  process per shard, supervises and restarts them, and supports
  drain-first rolling restarts.
* :mod:`repro.cluster.router` — :class:`ScatterGatherRouter` speaks
  the same NDJSON protocol as a single service, fans each query out
  to every shard concurrently, and folds the per-shard hit lists with
  :func:`~repro.engine.results.merge_query_results`, so the merged
  top-k is bit-identical to an unsharded search.  Shard failures
  degrade the result to ``partial`` instead of failing the query.

CLI surfaces: ``swdual cluster serve / query / stats`` and ``swdual
bench router``.
"""

from repro.cluster.manager import ShardManager
from repro.cluster.router import RouterStats, ScatterGatherRouter, ShardFailure
from repro.cluster.topology import ClusterTopology, ShardEndpoint, load_topology

__all__ = [
    "ClusterTopology",
    "RouterStats",
    "ScatterGatherRouter",
    "ShardEndpoint",
    "ShardFailure",
    "ShardManager",
    "load_topology",
]
