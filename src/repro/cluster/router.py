"""Scatter-gather router: N shard services behind one endpoint.

:class:`ScatterGatherRouter` listens on the same newline-JSON protocol
as a single :class:`~repro.service.server.SearchService`, so existing
clients (``swdual query``, :class:`~repro.service.client.SearchClient`,
``nc``) work unchanged against a whole cluster.  Each ``query`` is
fanned out to every shard concurrently, per-shard hit lists stream
back as ``partial`` lines when the client asked for them, and the
final ``result`` is folded with
:func:`repro.engine.results.merge_query_results` — the same
``(-score, subject_id)`` tie-ordering as the in-process sharded
search, so a cluster's merged top-k is bit-identical to one unsharded
service over the same database.

Failure degrades instead of failing: a shard that rejects is retried
per its ``retry_after_s`` hint through the shared
:mod:`repro.service.retry` helper; a shard that times out or dies is
dropped from the merge, the result is flagged ``partial`` (the
``SearchReport.quarantined`` pattern lifted to the wire), and the
:class:`~repro.cluster.manager.ShardManager` is nudged so its
supervisor restarts the shard.  Only when *every* shard fails does the
client see a retryable error — never a hang.

Placement credit: the router keeps an EWMA of each shard's observed
latency and, once warmed up, asks slower shard classes for a smaller
*speculative* top-k (the heterogeneous-PE placement idea: don't make
the fastest class wait for the deepest scan of the slowest).  A
truncated shard whose lowest returned score could still reach the
merged top-k is re-queried at full depth before the merge is final,
so speculation never changes the reported hits (tested).
"""

from __future__ import annotations

import contextlib
import math
import signal
import socket
import sys
import threading
import time

from repro.cluster.manager import ShardManager
from repro.cluster.topology import ClusterTopology, ShardEndpoint
from repro.engine.results import Hit, QueryResult, merge_query_results
from repro.service import protocol
from repro.service.client import SearchClient, ServiceUnavailable
from repro.service.retry import RetryPolicy, run_with_retry
from repro.service.server import _ClientConnection
from repro.telemetry.export import prometheus_text
from repro.telemetry.metrics import Histogram, MetricsRegistry

__all__ = ["RouterStats", "ScatterGatherRouter", "ShardFailure"]

#: Fallback retry hint before the router has observed any latency.
_DEFAULT_RETRY_AFTER_S = 0.05

#: EWMA samples required before speculative top-k credit kicks in.
_MIN_CREDIT_SAMPLES = 8


class ShardFailure(ConnectionError):
    """One shard could not answer (dead, unreachable, timed out)."""


class RouterStats:
    """Registry-backed router counters, per-shard series labelled."""

    def __init__(self, shard_names: list[str]):
        self._started = time.monotonic()
        self.registry = MetricsRegistry()
        reg = self.registry
        self.received = reg.counter(
            "swdual_router_queries_total", "Queries accepted by the router."
        )
        self.completed = reg.counter(
            "swdual_router_completed_total", "Queries answered with a merged result."
        )
        self.partial = reg.counter(
            "swdual_router_partial_total",
            "Merged results missing at least one shard's contribution.",
        )
        self.failed = reg.counter(
            "swdual_router_failed_total", "Queries every shard failed to answer."
        )
        self.rejected = reg.counter(
            "swdual_router_rejected_total", "Queries bounced by router backpressure."
        )
        self.errors = reg.counter(
            "swdual_router_errors_total", "Requests the router could not act on."
        )
        self.upstream_retries = reg.counter(
            "swdual_router_upstream_retries_total",
            "Shard submissions retried after a rejected/retryable outcome.",
        )
        self.refinements = reg.counter(
            "swdual_router_refinements_total",
            "Speculative-k shard queries re-issued at full depth.",
        )
        self.latency: Histogram = reg.histogram(
            "swdual_router_latency_seconds",
            "End-to-end latency of merged results (admit to stream-back).",
        )
        self.shards_up = reg.gauge(
            "swdual_router_shards_up", "Shards that answered their last exchange."
        )
        self._shard_queries = {}
        self._shard_failures = {}
        self._shard_latency = {}
        for name in shard_names:
            labels = {"shard": name}
            self._shard_queries[name] = reg.counter(
                "swdual_router_shard_queries_total",
                "Per-shard successful exchanges.",
                labels,
            )
            self._shard_failures[name] = reg.counter(
                "swdual_router_shard_failures_total",
                "Per-shard failed exchanges (timeout, death, reject).",
                labels,
            )
            self._shard_latency[name] = reg.histogram(
                "swdual_router_shard_latency_seconds",
                "Per-shard exchange latency as observed by the router.",
                labels,
            )

    def record_shard_result(self, name: str, latency_s: float) -> None:
        self._shard_queries[name].inc()
        self._shard_latency[name].observe(latency_s)

    def record_shard_failure(self, name: str) -> None:
        self._shard_failures[name].inc()

    def shard_snapshot(self, name: str) -> dict:
        return {
            "queries": int(self._shard_queries[name].value),
            "failures": int(self._shard_failures[name].value),
            "latency": self._shard_latency[name].snapshot(),
        }

    @property
    def uptime_s(self) -> float:
        return max(time.monotonic() - self._started, 1e-9)


class _ShardLink:
    """One persistent, lock-serialised connection to a shard service.

    The lock admits one in-flight exchange at a time, so responses on
    the connection always belong to the exchange that is waiting for
    them; different shards' links are independent, which is what lets
    one query's fan-out overlap another query's.
    """

    def __init__(self, name: str, timeout_s: float):
        self.name = name
        self.timeout_s = timeout_s
        self.lock = threading.Lock()
        self._client: SearchClient | None = None
        self._stale = False

    def invalidate(self) -> None:
        """Force the next exchange to reconnect (endpoint changed);
        wakes an in-flight exchange by closing the socket under it."""
        self._stale = True
        client = self._client
        if client is not None:
            with contextlib.suppress(Exception):
                client.close()

    def close(self) -> None:
        with self.lock:
            self._drop()

    def _drop(self) -> None:
        if self._client is not None:
            with contextlib.suppress(Exception):
                self._client.close()
            self._client = None

    def exchange(
        self,
        endpoint: ShardEndpoint | None,
        sequence: str,
        id: str,
        top: int,
        pipeline: bool | None,
    ) -> dict:
        """Submit one query and wait for its terminal outcome.

        Raises :class:`ShardFailure` when the shard cannot be reached
        or dies mid-exchange.  A submit-side connection error gets one
        transparent reconnect (the server never saw the query); a
        failure *after* submit is never retried here, because the
        shard may still be computing — the caller decides whether a
        duplicate scan is acceptable.
        """
        if endpoint is None:
            raise ShardFailure(f"{self.name}: no endpoint (shard down)")
        with self.lock:
            for attempt in (1, 2):
                if self._stale:
                    self._drop()
                    self._stale = False
                if self._client is None:
                    try:
                        self._client = SearchClient(
                            endpoint.host, endpoint.port, timeout=self.timeout_s
                        ).connect()
                    except OSError as exc:
                        raise ShardFailure(f"{self.name}: connect failed: {exc}") from exc
                try:
                    self._client.submit(sequence, id=id, top=top, pipeline=pipeline)
                except (OSError, ConnectionError) as exc:
                    self._drop()
                    if attempt == 2:
                        raise ShardFailure(f"{self.name}: submit failed: {exc}") from exc
                    continue
                try:
                    return self._client.collect(1)[0]
                except TimeoutError as exc:
                    self._drop()
                    raise ShardFailure(
                        f"{self.name}: no answer within {self.timeout_s}s"
                    ) from exc
                except (OSError, ServiceUnavailable) as exc:
                    self._drop()
                    raise ShardFailure(f"{self.name}: died mid-query: {exc}") from exc
        raise ShardFailure(f"{self.name}: unreachable")  # pragma: no cover


class ScatterGatherRouter:
    """One logical search endpoint over many shard services.

    Parameters
    ----------
    shards:
        A started :class:`~repro.cluster.manager.ShardManager` (live
        endpoints, supervision, restart nudges) or a static
        :class:`~repro.cluster.topology.ClusterTopology` of adopted
        endpoints.
    host / port:
        Router bind address (``port=0`` picks an ephemeral port).
    top_hits:
        Cap on per-query hit-list depth, like a single service's.
    shard_timeout_s:
        Per-exchange socket timeout; a shard silent for longer is
        dropped from that query's merge (partial result, never a
        hang).
    retry:
        Policy for resubmitting shard ``rejected`` / retryable
        ``error`` outcomes (the shared :mod:`repro.service.retry`
        helper).
    speculative:
        Enable latency-weighted speculative top-k credit.  Exactness
        is preserved by the refinement round, so this is safe to keep
        on; disable to make every shard always scan at full depth.
    max_in_flight:
        Router-level admission bound: queries beyond it are rejected
        with a ``retry_after_s`` hint (bounded backpressure, matching
        the single-service contract).
    """

    def __init__(
        self,
        shards: ShardManager | ClusterTopology,
        host: str = "127.0.0.1",
        port: int = 0,
        top_hits: int = 5,
        shard_timeout_s: float = 30.0,
        retry: RetryPolicy | None = None,
        speculative: bool = True,
        ewma_alpha: float = 0.2,
        max_in_flight: int = 32,
        owns_manager: bool = False,
    ):
        if top_hits < 1:
            raise ValueError(f"top_hits must be >= 1, got {top_hits}")
        if max_in_flight < 1:
            raise ValueError(f"max_in_flight must be >= 1, got {max_in_flight}")
        if not 0 < ewma_alpha <= 1:
            raise ValueError(f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        self.host = host
        self.port = port
        self.top_hits = top_hits
        self.shard_timeout_s = shard_timeout_s
        self.retry = retry or RetryPolicy()
        self.speculative = speculative
        self.ewma_alpha = ewma_alpha
        self.owns_manager = owns_manager
        if isinstance(shards, ShardManager):
            self.manager: ShardManager | None = shards
            self._static_endpoints: dict[str, ShardEndpoint] = {}
            names = shards.shard_names
            shards.on_change(self._on_shard_change)
        else:
            self.manager = None
            self._static_endpoints = {e.name: e for e in shards}
            names = [e.name for e in shards]
        if not names:
            raise ValueError("router needs at least one shard")
        self.shard_names = names
        self._links = {name: _ShardLink(name, shard_timeout_s) for name in names}
        self.stats = RouterStats(names)
        self.stats.shards_up.set(len(names))
        # Latency EWMA per shard, feeding the speculative-k credit.
        self._ewma: dict[str, float] = {}
        self._samples: dict[str, int] = {name: 0 for name in names}
        self._ewma_lock = threading.Lock()
        self._admission = threading.Semaphore(max_in_flight)
        self._query_counter = 0
        self._counter_lock = threading.Lock()
        self._stopping = threading.Event()
        self._stopped = threading.Event()
        self._shutdown_lock = threading.Lock()
        self._shutdown_done = False
        self._sock = None
        self._accept_thread: threading.Thread | None = None
        self._connections: set[_ClientConnection] = set()
        self._conn_lock = threading.Lock()
        self._conn_threads: list[threading.Thread] = []
        self._query_threads: list[threading.Thread] = []
        self._started = False

    # -- lifecycle -----------------------------------------------------

    def __enter__(self) -> "ScatterGatherRouter":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    def start(self) -> None:
        if self._started:
            raise RuntimeError("router already started")
        self._sock = socket.create_server(
            (self.host, self.port), backlog=16, reuse_port=False
        )
        self._sock.settimeout(0.2)
        self.port = self._sock.getsockname()[1]
        self._started = True
        print(
            f"swdual cluster: routing {len(self.shard_names)} shards "
            f"on {self.host}:{self.port} "
            f"[{', '.join(self.shard_names)}]",
            file=sys.stderr,
            flush=True,
        )
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="swdual-router-accept", daemon=True
        )
        self._accept_thread.start()

    def shutdown(self, timeout: float = 30.0) -> None:
        """Close the listener, finish in-flight queries, say bye."""
        with self._shutdown_lock:
            if self._shutdown_done:
                self._stopped.wait(timeout)
                return
            self._shutdown_done = True
        self._stopping.set()
        if self._sock is not None:
            with contextlib.suppress(OSError):
                self._sock.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=timeout)
        for t in list(self._query_threads):
            t.join(timeout=timeout)
        for link in self._links.values():
            link.close()
        with self._conn_lock:
            connections = list(self._connections)
        for conn in connections:
            conn.send(protocol.bye_response())
            conn.close()
        current = threading.current_thread()
        for t in self._conn_threads:
            if t is not current:
                t.join(timeout=5)
        if self.owns_manager and self.manager is not None:
            self.manager.close()
        self._stopped.set()

    def serve_forever(self) -> None:
        """Block until the router stops (``shutdown`` verb or SIGINT)."""
        if not self._started:
            self.start()
        if threading.current_thread() is threading.main_thread():
            previous = signal.getsignal(signal.SIGINT)

            def _on_sigint(signum, frame):
                threading.Thread(target=self.shutdown, daemon=True).start()

            signal.signal(signal.SIGINT, _on_sigint)
            try:
                self._stopped.wait()
            finally:
                signal.signal(signal.SIGINT, previous)
        else:
            self._stopped.wait()

    # -- shard plumbing -------------------------------------------------

    def _endpoint(self, name: str) -> ShardEndpoint | None:
        if self.manager is not None:
            return self.manager.endpoints().get(name)
        return self._static_endpoints.get(name)

    def _on_shard_change(self, name: str) -> None:
        """Manager callback: a shard moved or died — drop its link so
        the next exchange reconnects to the fresh endpoint, and reset
        its latency credit.  A restarted shard's EWMA described the old
        process; trusting it could shallow-scan the replacement and
        force a refinement round-trip on the very first query.  Zeroing
        the sample count makes :meth:`_speculative_k` run everyone at
        full depth (the conservative cold-start) until the newcomer
        re-earns its credit."""
        link = self._links.get(name)
        if link is not None:
            link.invalidate()
        with self._ewma_lock:
            self._ewma.pop(name, None)
            if name in self._samples:
                self._samples[name] = 0

    def _nudge_supervisor(self) -> None:
        """Ask the manager to look at its shards now (not at the next
        poll tick) after the router observed a failure."""
        manager = self.manager
        if manager is None:
            return

        def poll() -> None:
            with contextlib.suppress(Exception):
                manager.poll_once()

        threading.Thread(target=poll, daemon=True).start()

    def _observe_latency(self, name: str, latency_s: float) -> None:
        with self._ewma_lock:
            prev = self._ewma.get(name)
            self._ewma[name] = (
                latency_s
                if prev is None
                else prev + self.ewma_alpha * (latency_s - prev)
            )
            self._samples[name] += 1

    def _speculative_k(self, name: str, top: int) -> int:
        """Latency-weighted speculative hit-list depth for one shard.

        The fastest shard class always scans at full depth; a shard
        whose EWMA latency is w× the fastest gets ``top/w`` (floored
        at 1).  Until every shard has enough samples, everyone runs at
        full depth.
        """
        if not self.speculative or len(self.shard_names) == 1:
            return top
        with self._ewma_lock:
            if any(self._samples[n] < _MIN_CREDIT_SAMPLES for n in self.shard_names):
                return top
            fastest = min(self._ewma[n] for n in self.shard_names)
            mine = self._ewma[name]
        if mine <= 0 or fastest <= 0:
            return top
        weight = fastest / mine
        return max(1, min(top, math.ceil(top * weight)))

    # -- serving --------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                sock, addr = self._sock.accept()
            except TimeoutError:
                continue
            except OSError:
                return
            conn = _ClientConnection(sock, f"{addr[0]}:{addr[1]}")
            with self._conn_lock:
                self._connections.add(conn)
            t = threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name=f"swdual-router-conn-{conn.peer}",
                daemon=True,
            )
            self._conn_threads.append(t)
            t.start()

    def _serve_connection(self, conn: _ClientConnection) -> None:
        try:
            while True:
                try:
                    line = conn.reader.readline(protocol.MAX_LINE_BYTES + 1)
                except (OSError, ValueError):
                    return
                if not line:
                    return
                if line.startswith(b"GET "):
                    self._serve_http_get(conn, line)
                    return
                try:
                    message = protocol.decode_message(line)
                except protocol.WireError as exc:
                    self.stats.errors.inc()
                    conn.send(protocol.error_response(str(exc)))
                    continue
                self._dispatch_request(conn, message)
        finally:
            conn.close()
            with self._conn_lock:
                self._connections.discard(conn)

    def _serve_http_get(self, conn: _ClientConnection, request_line: bytes) -> None:
        parts = request_line.split()
        target = parts[1].decode("latin-1", "replace") if len(parts) >= 2 else ""
        with contextlib.suppress(OSError, ValueError):
            while True:
                header = conn.reader.readline(protocol.MAX_LINE_BYTES + 1)
                if not header or header in (b"\r\n", b"\n"):
                    break
        path = target.split("?", 1)[0].rstrip("/") or "/"
        if path == "/metrics":
            status = "200 OK"
            content_type = protocol.PROMETHEUS_CONTENT_TYPE
            body = self._prometheus().encode("utf-8")
        else:
            status = "404 Not Found"
            content_type = "text/plain; charset=utf-8"
            body = b"only /metrics is served over HTTP\n"
        head = (
            f"HTTP/1.0 {status}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        ).encode("ascii")
        conn.send_raw(head + body)

    def _dispatch_request(self, conn: _ClientConnection, message: dict) -> None:
        verb = message.get("verb")
        if verb == "query":
            self._admit_query(conn, message)
        elif verb == "stats":
            conn.send(protocol.stats_response(self.snapshot()))
        elif verb == "metrics":
            conn.send(protocol.metrics_response(self._prometheus()))
        elif verb == "ping":
            conn.send(protocol.pong_response())
        elif verb == "shutdown":
            conn.send(protocol.bye_response())
            threading.Thread(target=self.shutdown, daemon=True).start()
        else:
            self.stats.errors.inc()
            conn.send(
                protocol.error_response(
                    f"unknown verb {verb!r}; expected one of {list(protocol.REQUEST_VERBS)}"
                )
            )

    def _next_query_id(self) -> str:
        with self._counter_lock:
            self._query_counter += 1
            return f"r{self._query_counter}"

    def _retry_after_s(self) -> float:
        mean = self.stats.latency.mean
        return max(_DEFAULT_RETRY_AFTER_S, mean)

    def _admit_query(self, conn: _ClientConnection, message: dict) -> None:
        query_id = str(message.get("id") or self._next_query_id())
        text = message.get("sequence")
        if not isinstance(text, str) or not text:
            self.stats.errors.inc()
            conn.send(
                protocol.error_response("query needs a non-empty 'sequence'", query_id)
            )
            return
        top = message.get("top")
        if top is None:
            top = self.top_hits
        if not isinstance(top, int) or top < 1:
            self.stats.errors.inc()
            conn.send(protocol.error_response("'top' must be a positive integer", query_id))
            return
        top = min(top, self.top_hits)
        pipeline = message.get("pipeline")
        if pipeline is not None and not isinstance(pipeline, bool):
            self.stats.errors.inc()
            conn.send(protocol.error_response("'pipeline' must be a boolean", query_id))
            return
        stream = bool(message.get("stream", False))
        if self._stopping.is_set():
            self.stats.rejected.inc()
            conn.send(
                protocol.rejected_response(query_id, "shutting down", self._retry_after_s())
            )
            return
        if not self._admission.acquire(blocking=False):
            self.stats.rejected.inc()
            conn.send(
                protocol.rejected_response(
                    query_id, "router at max in-flight queries", self._retry_after_s()
                )
            )
            return
        self.stats.received.inc()
        t = threading.Thread(
            target=self._run_query,
            args=(conn, query_id, text, top, pipeline, stream),
            name=f"swdual-router-query-{query_id}",
            daemon=True,
        )
        self._query_threads.append(t)
        t.start()
        self._query_threads = [qt for qt in self._query_threads if qt.is_alive()]

    # -- the scatter-gather core ----------------------------------------

    def _ask_shard(
        self, name: str, text: str, query_id: str, k: int, pipeline: bool | None
    ) -> dict:
        """One shard exchange with bounded retry of retryable outcomes."""
        link = self._links[name]

        def attempt() -> dict:
            return link.exchange(self._endpoint(name), text, query_id, k, pipeline)

        def on_retry(outcome, attempt_number, delay):
            self.stats.upstream_retries.inc()

        return run_with_retry(attempt, self.retry, on_retry=on_retry)

    def _run_query(
        self,
        conn: _ClientConnection,
        query_id: str,
        text: str,
        top: int,
        pipeline: bool | None,
        stream: bool,
    ) -> None:
        started = time.monotonic()
        try:
            parts: dict[str, tuple[QueryResult, int]] = {}
            failed: dict[str, str] = {}
            state_lock = threading.Lock()

            def one_shard(name: str) -> None:
                asked = self._speculative_k(name, top)
                shard_started = time.monotonic()
                try:
                    outcome = self._ask_shard(name, text, query_id, asked, pipeline)
                except ShardFailure as exc:
                    with state_lock:
                        failed[name] = str(exc)
                    self.stats.record_shard_failure(name)
                    self._nudge_supervisor()
                    return
                elapsed = time.monotonic() - shard_started
                kind = outcome.get("type")
                if kind == "result":
                    hits = tuple(
                        Hit(subject_id=str(s), score=int(score))
                        for s, score in outcome.get("hits", [])
                    )
                    with state_lock:
                        parts[name] = (QueryResult(query_id=query_id, hits=hits), asked)
                    self.stats.record_shard_result(name, elapsed)
                    self._observe_latency(name, elapsed)
                    if stream:
                        conn.send(
                            protocol.partial_response(
                                query_id,
                                name,
                                [(h.subject_id, h.score) for h in hits],
                                latency_s=elapsed,
                            )
                        )
                else:
                    # Terminal rejected/error after the retry budget.
                    with state_lock:
                        failed[name] = (
                            f"{kind}: {outcome.get('reason', 'unspecified')}"
                        )
                    self.stats.record_shard_failure(name)

            threads = [
                threading.Thread(target=one_shard, args=(name,), daemon=True)
                for name in self.shard_names
            ]
            for t in threads:
                t.start()
            # The exchange itself is bounded by the shard socket
            # timeout plus the retry budget; this join is the
            # never-hang backstop above it.
            deadline = (
                self.shard_timeout_s * self.retry.max_attempts
                + self.retry.max_delay_s * self.retry.max_attempts
                + 5.0
            )
            for t in threads:
                t.join(timeout=max(0.1, deadline - (time.monotonic() - started)))
            with state_lock:
                for name in self.shard_names:
                    if name not in parts and name not in failed:
                        failed[name] = "deadline exceeded"
                        self.stats.record_shard_failure(name)
                gathered = dict(parts)
                failures = dict(failed)
            if not gathered:
                self.stats.failed.inc()
                conn.send(
                    protocol.error_response(
                        f"all {len(self.shard_names)} shards failed: "
                        + "; ".join(f"{n}: {r}" for n, r in sorted(failures.items())),
                        query_id,
                        retryable=True,
                    )
                )
                return
            merged = self._merge_with_refinement(
                gathered, text, query_id, top, pipeline
            )
            latency = time.monotonic() - started
            self.stats.latency.observe(latency)
            self.stats.completed.inc()
            partial = bool(failures)
            if partial:
                self.stats.partial.inc()
            self._set_up_gauge(len(gathered))
            conn.send(
                protocol.result_response(
                    query_id,
                    [(h.subject_id, h.score) for h in merged.hits],
                    latency_s=latency,
                    queue_wait_s=0.0,
                    worker=f"router[{len(gathered)}/{len(self.shard_names)}]",
                    partial=partial if partial else None,
                    shards_failed=sorted(failures) if failures else None,
                )
            )
        finally:
            self._admission.release()

    def _merge_with_refinement(
        self,
        gathered: dict[str, tuple[QueryResult, int]],
        text: str,
        query_id: str,
        top: int,
        pipeline: bool | None,
    ) -> QueryResult:
        """Fold per-shard lists; re-query truncated shards whose hidden
        hits could still reach the merged top-k (ties included), so a
        speculative shallow ask never changes the reported list."""
        merged = merge_query_results([qr for qr, _ in gathered.values()], top=top)
        if not self.speculative:
            return merged
        while True:
            kth_score = merged.hits[top - 1].score if len(merged.hits) >= top else None
            needs_full = [
                name
                for name, (qr, asked) in gathered.items()
                if asked < top
                and len(qr.hits) == asked
                and (kth_score is None or qr.hits[-1].score >= kth_score)
            ]
            if not needs_full:
                return merged
            for name in needs_full:
                self.stats.refinements.inc()
                try:
                    outcome = self._ask_shard(name, text, query_id, top, pipeline)
                except ShardFailure:
                    # The shard answered the speculative round but died
                    # before refinement; keep its truncated list — the
                    # result is already at least as good as partial.
                    gathered[name] = (gathered[name][0], top)
                    self.stats.record_shard_failure(name)
                    continue
                if outcome.get("type") == "result":
                    hits = tuple(
                        Hit(subject_id=str(s), score=int(score))
                        for s, score in outcome.get("hits", [])
                    )
                    gathered[name] = (QueryResult(query_id=query_id, hits=hits), top)
                else:
                    gathered[name] = (gathered[name][0], top)
            merged = merge_query_results([qr for qr, _ in gathered.values()], top=top)

    def _set_up_gauge(self, up: int) -> None:
        self.stats.shards_up.set(up)

    # -- introspection ---------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-able router state: counters, latency, per-shard health,
        speculative credit, and the manager's supervision view."""
        shards = {}
        with self._ewma_lock:
            ewma = dict(self._ewma)
            samples = dict(self._samples)
        for name in self.shard_names:
            endpoint = self._endpoint(name)
            shard = self.stats.shard_snapshot(name)
            shard["endpoint"] = (
                f"{endpoint.host}:{endpoint.port}" if endpoint else None
            )
            shard["ewma_latency_s"] = ewma.get(name)
            shard["samples"] = samples.get(name, 0)
            shard["speculative_k"] = self._speculative_k(name, self.top_hits)
            shards[name] = shard
        snapshot = {
            "kind": "router",
            "uptime_s": self.stats.uptime_s,
            "topology": {
                "shards": len(self.shard_names),
                "managed": self.manager is not None,
            },
            "requests": {
                "received": int(self.stats.received.value),
                "completed": int(self.stats.completed.value),
                "partial": int(self.stats.partial.value),
                "failed": int(self.stats.failed.value),
                "rejected": int(self.stats.rejected.value),
                "errors": int(self.stats.errors.value),
                "upstream_retries": int(self.stats.upstream_retries.value),
                "refinements": int(self.stats.refinements.value),
            },
            "latency": self.stats.latency.snapshot(),
            "shards": shards,
            "throughput_qps": self.stats.completed.value / self.stats.uptime_s,
        }
        if self.manager is not None:
            snapshot["supervision"] = self.manager.snapshot()
        return snapshot

    def _prometheus(self) -> str:
        return prometheus_text(self.stats.registry)
