"""Cluster topology: which shard endpoints make up one logical service.

A topology is a named list of shard endpoints.  It either comes out of
a :class:`~repro.cluster.manager.ShardManager` that spawned the shard
processes itself, or is *adopted* from a TOML/JSON file describing
pre-started services (e.g. shards running on other hosts)::

    # cluster.toml
    name = "uniprot-cluster"

    [[shards]]
    name = "shard0"
    host = "10.0.0.11"
    port = 7731

    [[shards]]
    name = "shard1"
    host = "10.0.0.12"
    port = 7731

The equivalent JSON shape is ``{"name": ..., "shards": [{"name": ...,
"host": ..., "port": ...}, ...]}``.  TOML parsing uses the stdlib
``tomllib`` (Python >= 3.11); on older interpreters only JSON files
are accepted.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

try:  # Python >= 3.11
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - 3.10 fallback
    tomllib = None

__all__ = ["ClusterTopology", "ShardEndpoint", "load_topology"]


@dataclass(frozen=True)
class ShardEndpoint:
    """One shard's service address."""

    name: str
    host: str
    port: int

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("shard endpoints need a non-empty name")
        if not self.host:
            raise ValueError(f"shard {self.name!r} needs a host")
        if not 0 < self.port < 65536:
            raise ValueError(f"shard {self.name!r} has invalid port {self.port}")

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)


@dataclass(frozen=True)
class ClusterTopology:
    """An ordered, uniquely-named set of shard endpoints."""

    name: str
    shards: tuple[ShardEndpoint, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.shards:
            raise ValueError(f"topology {self.name!r} has no shards")
        names = [s.name for s in self.shards]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate shard names in topology {self.name!r}: {names}")

    def __len__(self) -> int:
        return len(self.shards)

    def __iter__(self):
        return iter(self.shards)

    def endpoint(self, name: str) -> ShardEndpoint:
        for shard in self.shards:
            if shard.name == name:
                return shard
        raise KeyError(f"no shard named {name!r} in topology {self.name!r}")


def _topology_from_dict(data: dict, default_name: str) -> ClusterTopology:
    if not isinstance(data, dict):
        raise ValueError(f"topology must be a mapping, got {type(data).__name__}")
    raw_shards = data.get("shards")
    if not isinstance(raw_shards, list) or not raw_shards:
        raise ValueError("topology needs a non-empty 'shards' list")
    shards = []
    for i, raw in enumerate(raw_shards):
        if not isinstance(raw, dict):
            raise ValueError(f"shard entry {i} must be a mapping")
        try:
            port = int(raw["port"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"shard entry {i} needs an integer 'port'") from exc
        shards.append(
            ShardEndpoint(
                name=str(raw.get("name") or f"shard{i}"),
                host=str(raw.get("host") or "127.0.0.1"),
                port=port,
            )
        )
    return ClusterTopology(
        name=str(data.get("name") or default_name), shards=tuple(shards)
    )


def load_topology(path: str | os.PathLike) -> ClusterTopology:
    """Read a topology file; the format follows the extension
    (``.toml`` vs anything else = JSON)."""
    path = os.fspath(path)
    default_name = os.path.splitext(os.path.basename(path))[0]
    with open(path, "rb") as fh:
        raw = fh.read()
    if path.endswith(".toml"):
        if tomllib is None:  # pragma: no cover - 3.10 fallback
            raise ValueError(
                "TOML topologies need Python >= 3.11 (tomllib); use JSON instead"
            )
        try:
            data = tomllib.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, tomllib.TOMLDecodeError) as exc:
            raise ValueError(f"invalid TOML topology {path}: {exc}") from exc
    else:
        try:
            data = json.loads(raw)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValueError(f"invalid JSON topology {path}: {exc}") from exc
    return _topology_from_dict(data, default_name)
