"""Processing-element models.

A :class:`ProcessingElement` (PE, the paper's term) is a CPU worker or a
GPU worker with a *rate model* describing how fast it updates SW cells.
The rate model is deliberately simple but captures the one effect the
scheduling contribution depends on: **GPU throughput ramps up with
query length** (a short query cannot fill a GPU, while a CPU SIMD
kernel saturates quickly), so the CPU/GPU time ratio ``p_j / p̄_j``
varies across tasks and the knapsack's ratio ordering has real work to
do.

The saturation form is ``rate(q) = peak · q / (q + half_length)`` —
half the peak rate at ``q = half_length`` — plus a fixed per-task
overhead (kernel launch, host/device transfer, thread spawn).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.utils import check_non_negative, check_positive

__all__ = ["PEKind", "RateModel", "ProcessingElement"]


class PEKind(enum.Enum):
    """The two processor classes of the paper's platform model."""

    CPU = "cpu"
    GPU = "gpu"


@dataclass(frozen=True)
class RateModel:
    """Throughput model of one PE class.

    Parameters
    ----------
    peak_gcups:
        Asymptotic cell-update rate in GCUPS for long queries.
    half_length:
        Query length (residues) at which the rate reaches half of peak.
        0 gives a length-independent rate.
    task_overhead_s:
        Fixed seconds added per task (per query-vs-database comparison).
    """

    peak_gcups: float
    half_length: float = 0.0
    task_overhead_s: float = 0.0

    def __post_init__(self) -> None:
        check_positive("peak_gcups", self.peak_gcups)
        check_non_negative("half_length", self.half_length)
        check_non_negative("task_overhead_s", self.task_overhead_s)

    def rate_gcups(self, query_length: int) -> float:
        """Effective GCUPS for a query of *query_length* residues."""
        if query_length <= 0:
            raise ValueError(f"query_length must be positive, got {query_length}")
        return self.peak_gcups * query_length / (query_length + self.half_length)

    def task_seconds(
        self, query_length: int, db_residues: int, efficiency: float = 1.0
    ) -> float:
        """Predicted wall-clock seconds for one comparison task.

        Parameters
        ----------
        efficiency:
            Multiplier < 1 models contention when several workers of the
            same class are active (applied to the rate, not the
            overhead).
        """
        if db_residues < 0:
            raise ValueError(f"db_residues must be >= 0, got {db_residues}")
        if not 0 < efficiency <= 1:
            raise ValueError(f"efficiency must be in (0, 1], got {efficiency}")
        cells = query_length * db_residues
        rate = self.rate_gcups(query_length) * efficiency
        return self.task_overhead_s + cells / (rate * 1e9)

    def scaled(self, factor: float) -> "RateModel":
        """A copy with the peak rate multiplied by *factor*."""
        check_positive("factor", factor)
        return RateModel(
            peak_gcups=self.peak_gcups * factor,
            half_length=self.half_length,
            task_overhead_s=self.task_overhead_s,
        )


@dataclass(frozen=True)
class ProcessingElement:
    """One worker slot of the hybrid platform."""

    name: str
    kind: PEKind
    rate: RateModel

    @property
    def is_gpu(self) -> bool:
        """True for GPU workers."""
        return self.kind is PEKind.GPU

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProcessingElement({self.name!r}, {self.kind.value}, {self.rate.peak_gcups:.1f} GCUPS)"
