"""Hybrid-platform substrate: PE models, calibrated performance model,
Idgraf-like platform factory and discrete-event simulation utilities."""

from repro.platform.pe import PEKind, ProcessingElement, RateModel
from repro.platform.calibration import (
    CPU_PARALLEL_EFFICIENCY,
    CPU_TASK_OVERHEAD_S,
    GPU_CPU_SERVICE_FRACTION,
    GPU_PARALLEL_EFFICIENCY,
    GPU_TASK_OVERHEAD_S,
    PAPER,
    PaperConstants,
    cpu_rate_model,
    gpu_rate_model,
    peak_from_workload_time,
    rate_model_for,
)
from repro.platform.benchkernels import (
    build_bench_workload,
    run_kernel_bench,
    write_bench_report,
)
from repro.platform.benchpipeline import (
    OracleDivergence,
    build_pipeline_workload,
    run_pipeline_bench,
)
from repro.platform.benchrouter import ClusterDivergence, run_router_bench
from repro.platform.benchsched import SCHED_BENCH_POLICIES, run_sched_bench
from repro.platform.benchshm import run_shm_bench
from repro.platform.benchstamp import BENCH_SCHEMA_VERSION, bench_stamp, stamp_report
from repro.platform.cluster import HybridPlatform, idgraf_platform, swdual_worker_mix
from repro.platform.perfmodel import (
    PerformanceModel,
    live_rate_model,
    measure_kernel_gcups,
)
from repro.platform.simclock import Event, EventQueue, SimClock

__all__ = [
    "PEKind",
    "ProcessingElement",
    "RateModel",
    "PAPER",
    "PaperConstants",
    "cpu_rate_model",
    "gpu_rate_model",
    "rate_model_for",
    "peak_from_workload_time",
    "CPU_PARALLEL_EFFICIENCY",
    "GPU_PARALLEL_EFFICIENCY",
    "GPU_CPU_SERVICE_FRACTION",
    "CPU_TASK_OVERHEAD_S",
    "GPU_TASK_OVERHEAD_S",
    "HybridPlatform",
    "idgraf_platform",
    "swdual_worker_mix",
    "PerformanceModel",
    "measure_kernel_gcups",
    "live_rate_model",
    "build_bench_workload",
    "build_pipeline_workload",
    "run_kernel_bench",
    "run_pipeline_bench",
    "run_router_bench",
    "run_sched_bench",
    "SCHED_BENCH_POLICIES",
    "run_shm_bench",
    "write_bench_report",
    "ClusterDivergence",
    "OracleDivergence",
    "BENCH_SCHEMA_VERSION",
    "bench_stamp",
    "stamp_report",
    "Event",
    "EventQueue",
    "SimClock",
]
