"""Pipeline benchmark behind ``swdual bench pipeline``.

Measures the *effective* throughput win of the heuristic filter
cascade (:mod:`repro.align.pipeline`) over the exact full scan on a
realistic workload: a large random protein background with a handful
of mutated homologs of each query planted in it, so there are real
hits to find (a pure random background would make every search come
back empty and the "zero hits lost" check vacuous).

The headline number is **effective GCUPS**: the cell count of the
*full scan* divided by the *pipeline's* wall time — the throughput an
operator observes for the same question ("score every subject"), which
is exactly how BLAST-class tools report their speed.  Raw GCUPS of
the pipeline itself would be meaningless, since its whole point is to
never compute most of the cells.

Each named sensitivity preset (``strict`` / ``default`` /
``sensitive`` from :data:`repro.engine.pipeline.PIPELINE_PRESETS`) is
measured and verified against the exact scan:

* ``scores_exact`` — every hit the pipeline reports carries a score
  bit-identical to the oracle (the cascade's hard contract; a
  violation fails the benchmark loudly);
* ``hits_lost`` — subjects the oracle reports at the threshold but
  the heuristic filtered out (sensitivity cost; the planted homologs
  make this measurable).

The result dictionary is what ``BENCH_pipeline.json`` records; the
numbers are machine-dependent provenance, not fixtures — tests assert
on shape and on the exactness flags only.
"""

from __future__ import annotations

import time

import numpy as np

from repro.align.pipeline import StageCounts, clear_kmer_cache, pipeline_score_packed
from repro.align.scoring import ScoringScheme, default_scheme
from repro.align.sw_batch import clear_profile_cache, sw_score_packed
from repro.engine.pipeline import PIPELINE_PRESETS, preset_config
from repro.sequences.alphabet import PROTEIN
from repro.sequences.database import SequenceDatabase
from repro.sequences.mutate import plant_homologs
from repro.sequences.packed import DEFAULT_CHUNK_CELLS, PackedDatabase
from repro.sequences.sequence import Sequence
from repro.utils import ensure_rng

__all__ = ["build_pipeline_workload", "run_pipeline_bench", "OracleDivergence"]

#: Presets the benchmark sweeps, permissive -> strict.
BENCH_PRESETS = ("sensitive", "default", "strict")


class OracleDivergence(AssertionError):
    """The pipeline reported a hit whose score differs from the exact
    scalar-oracle score — a violation of the cascade's hard contract
    (never acceptable, at any sensitivity)."""


def build_pipeline_workload(
    num_subjects: int = 1500,
    min_len: int = 100,
    max_len: int = 400,
    query_len: int = 250,
    num_queries: int = 2,
    num_homologs: int = 6,
    divergence: float = 0.2,
    seed: int = 0,
) -> tuple[list[Sequence], SequenceDatabase]:
    """Random background with *num_homologs* mutated homologs of every
    query planted in it — a workload where hits exist but are rare."""
    if num_subjects < 1 or num_queries < 1:
        raise ValueError("need at least one subject and one query")
    if not 1 <= min_len <= max_len:
        raise ValueError(f"bad length range [{min_len}, {max_len}]")
    rng = ensure_rng(seed)

    def draw(sid: str, length: int) -> Sequence:
        codes = rng.integers(0, 20, size=length).astype(np.uint8)
        return Sequence(id=sid, codes=codes, alphabet=PROTEIN)

    subjects = [
        draw(f"bg{i}", int(rng.integers(min_len, max_len + 1)))
        for i in range(num_subjects)
    ]
    queries = [draw(f"pq{i}", query_len) for i in range(num_queries)]
    for q in queries:
        subjects = plant_homologs(subjects, q, num_homologs, divergence, seed=rng)
    return queries, SequenceDatabase(name="bench-pipeline", sequences=subjects)


def _time_pass(fn, repeats: int) -> float:
    """Best-of-*repeats* wall time of one full ``fn()`` pass."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return max(best, 1e-9)


def run_pipeline_bench(
    num_subjects: int = 1500,
    min_len: int = 100,
    max_len: int = 400,
    query_len: int = 250,
    num_queries: int = 2,
    num_homologs: int = 6,
    divergence: float = 0.2,
    threshold: int = 100,
    repeats: int = 3,
    chunk_cells: int = DEFAULT_CHUNK_CELLS,
    scheme: ScoringScheme | None = None,
    presets: tuple[str, ...] = BENCH_PRESETS,
    seed: int = 0,
) -> dict:
    """Run the pipeline-vs-full-scan benchmark; returns the report dict.

    Raises :class:`OracleDivergence` if any preset reports a hit whose
    score differs from the exact kernel's — the check CI's smoke run
    exists to keep honest.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if threshold < 1:
        raise ValueError(f"threshold must be >= 1, got {threshold}")
    scheme = scheme or default_scheme()
    queries, database = build_pipeline_workload(
        num_subjects,
        min_len,
        max_len,
        query_len,
        num_queries,
        num_homologs,
        divergence,
        seed,
    )
    packed = PackedDatabase.from_database(database, chunk_cells=chunk_cells)
    cells = sum(len(q) for q in queries) * database.total_residues
    clear_profile_cache()
    clear_kmer_cache()

    # -- exact full-scan baseline (the oracle) -------------------------
    exact_scores = {q.id: sw_score_packed(q, packed, scheme) for q in queries}

    def fullscan_pass() -> None:
        for q in queries:
            sw_score_packed(q, packed, scheme)

    fullscan_s = _time_pass(fullscan_pass, repeats)
    fullscan_gcups = cells / fullscan_s / 1e9
    oracle_hits = {
        q.id: np.flatnonzero(exact_scores[q.id] >= threshold) for q in queries
    }
    total_oracle_hits = int(sum(len(v) for v in oracle_hits.values()))

    # -- the cascade at each sensitivity preset ------------------------
    preset_reports = {}
    for name in presets:
        config = preset_config(name, threshold=threshold)
        stages = StageCounts()
        pipe_scores = {
            q.id: pipeline_score_packed(
                q, packed, scheme, config, counts=stages
            )
            for q in queries
        }

        def pipeline_pass(config=config) -> None:
            for q in queries:
                pipeline_score_packed(q, packed, scheme, config)

        pipeline_s = _time_pass(pipeline_pass, repeats)

        hits_lost = 0
        for q in queries:
            exact = exact_scores[q.id]
            pipe = pipe_scores[q.id]
            reported = np.flatnonzero(pipe >= threshold)
            mismatched = reported[pipe[reported] != exact[reported]]
            if mismatched.size:
                idx = int(mismatched[0])
                raise OracleDivergence(
                    f"preset {name!r}: pipeline reported subject "
                    f"{database[idx].id!r} at {int(pipe[idx])}, exact score "
                    f"is {int(exact[idx])}"
                )
            hits_lost += int((pipe[oracle_hits[q.id]] < threshold).sum())

        preset_reports[name] = {
            "config": config.as_dict(),
            "seconds": pipeline_s,
            "effective_gcups": cells / pipeline_s / 1e9,
            "speedup_vs_fullscan": fullscan_s / pipeline_s,
            "stages": stages.as_dict(),
            "filter_rate": stages.filter_rate(),
            "hits_reported": int(
                sum((pipe_scores[q.id] >= threshold).sum() for q in queries)
            ),
            "hits_lost": hits_lost,
            "scores_exact": True,  # OracleDivergence would have raised
        }

    return {
        "bench": "pipeline",
        "workload": {
            "num_subjects": num_subjects,
            "min_len": min_len,
            "max_len": max_len,
            "query_len": query_len,
            "num_queries": num_queries,
            "num_homologs": num_homologs,
            "divergence": divergence,
            "db_sequences": len(database),
            "db_residues": database.total_residues,
            "cells_per_pass": cells,
            "chunk_cells": chunk_cells,
            "threshold": threshold,
            "repeats": repeats,
            "seed": seed,
        },
        "fullscan": {
            "seconds": fullscan_s,
            "gcups": fullscan_gcups,
            "oracle_hits": total_oracle_hits,
        },
        "presets": preset_reports,
        "best_speedup": max(
            (r["speedup_vs_fullscan"] for r in preset_reports.values()),
            default=0.0,
        ),
    }
