"""Provenance stamp for benchmark artifacts.

Every ``BENCH_*.json`` the CLI writes is a machine-dependent
measurement, useless without knowing *what* produced it.
:func:`bench_stamp` captures that context once — report schema
version, the git revision of the working tree, interpreter and numpy
versions, and the CPU budget — and :func:`stamp_report` folds it into
a report dict under the ``"provenance"`` key.  The stamp is applied
centrally in :func:`repro.platform.benchkernels.write_bench_report`,
so the kernel, shared-memory and pipeline benchmarks all carry it
without each writer remembering to.

The git revision is best-effort: outside a repository (or without a
``git`` binary) it records ``None`` rather than failing the benchmark.
"""

from __future__ import annotations

import os
import platform as platform_mod
import subprocess
import sys

import numpy as np

__all__ = ["BENCH_SCHEMA_VERSION", "bench_stamp", "stamp_report"]

#: Version of the BENCH_*.json report envelope.  Bump when the shape
#: of the provenance stamp (or the common report layout) changes.
BENCH_SCHEMA_VERSION = 1


def _git_revision() -> str | None:
    """The working tree's HEAD commit (``+dirty`` suffixed), or None."""
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
        if rev.returncode != 0:
            return None
        commit = rev.stdout.strip()
        dirty = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
        if dirty.returncode == 0 and dirty.stdout.strip():
            commit += "+dirty"
        return commit
    except (OSError, subprocess.SubprocessError):
        return None


def bench_stamp() -> dict:
    """Capture the provenance of a benchmark run on this machine."""
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "git_revision": _git_revision(),
        "python_version": platform_mod.python_version(),
        "python_implementation": platform_mod.python_implementation(),
        "numpy_version": np.__version__,
        "cpu_count": os.cpu_count(),
        "platform": platform_mod.platform(),
        "machine": platform_mod.machine(),
        "executable": sys.executable,
    }


def stamp_report(report: dict) -> dict:
    """Return *report* with a ``"provenance"`` stamp merged in.

    An existing ``"provenance"`` key is preserved untouched (re-writing
    a previously stamped report must not re-date it to this machine).
    """
    if "provenance" in report:
        return report
    stamped = dict(report)
    stamped["provenance"] = bench_stamp()
    return stamped
