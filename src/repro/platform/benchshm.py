"""Data-plane + dispatch benchmark behind ``swdual bench shm``.

Contrasts the original process transport — the whole database pickled
to every worker at spawn, whole queries as the unit of dispatch — with
the zero-copy plane and chunk-granular scheduler:

* **Warm-up scan**: pool start time for growing worker counts on the
  ``pickle`` vs ``shm`` data plane.  The headline number is the
  *per-additional-worker* cost, measured directly as each worker's own
  database-acquisition seconds (unpickle + re-pack vs SHM attach) so
  fork/exec overhead common to both planes does not dilute the
  comparison; full start() wall times are recorded alongside.
* **Batch makespan**: repeated identical batches on a 1 CPU-role +
  1 GPU-role pool, pickled whole-query dispatch vs shm chunk dispatch
  with work stealing, both driven by the same live-calibrated GCUPS
  rates.  Reported as p50/p99 of the per-batch wall time, plus the
  steal count and a bit-for-bit comparison of every hit list (chunk
  dispatch must be invisible in the scores, whatever was stolen).

The result dictionary is what ``BENCH_shm.json`` records.  Numbers are
machine-dependent — the JSON is a provenance artifact, not a fixture;
tests only assert on the report's *shape*.
"""

from __future__ import annotations

import time

import numpy as np

from repro.align.scoring import ScoringScheme, default_scheme
from repro.platform.benchkernels import build_bench_workload
from repro.sequences.shm import shm_available

# NB: the engine layer imports repro.platform (perf model), so the
# transport/calibration imports must stay inside the functions here.

__all__ = ["run_shm_bench"]


def _percentiles(samples: list[float]) -> dict:
    arr = np.sort(np.asarray(samples, dtype=float))
    return {
        "samples": int(arr.size),
        "mean_s": float(arr.mean()),
        "p50_s": float(np.percentile(arr, 50)),
        "p99_s": float(np.percentile(arr, 99)),
        "min_s": float(arr[0]),
        "max_s": float(arr[-1]),
    }


def _measure_start(
    database, scheme, num_workers: int, plane: str, repeats: int, chunk_cells: int
) -> tuple[float, float]:
    """Best-of start() wall seconds and mean per-worker setup seconds."""
    from repro.engine.transport import ProcessWorkerPool

    best_wall = float("inf")
    setups: list[float] = []
    for _ in range(repeats):
        pool = ProcessWorkerPool(
            database,
            num_cpu_workers=num_workers,
            num_gpu_workers=0,
            scheme=scheme,
            chunk_cells=chunk_cells,
            data_plane=plane,
        )
        start = time.perf_counter()
        try:
            pool.start()
            best_wall = min(best_wall, time.perf_counter() - start)
            setups.extend(pool.setup_seconds.values())
        finally:
            pool.close()
    return best_wall, float(np.mean(setups))


#: Chunk bound for the bench: small enough that the workload packs
#: into dozens of chunks, so chunk-range subtasks have real boundaries
#: to split and steal at (the library default packs this whole
#: workload into one chunk, which degenerates to whole-query grains).
BENCH_CHUNK_CELLS = 16_000

#: Subtask grains per worker in the batch section — oversubscribed
#: beyond the library default so the steal path is exercised hard.
BENCH_OVERSUBSCRIBE = 8


def run_shm_bench(
    num_subjects: int = 300,
    min_len: int = 100,
    max_len: int = 400,
    query_len: int = 300,
    num_queries: int = 4,
    repeats: int = 3,
    max_workers: int = 2,
    chunk_cells: int = BENCH_CHUNK_CELLS,
    warmup_subjects: int | None = None,
    scheme: ScoringScheme | None = None,
    seed: int = 0,
) -> dict:
    """Run the data-plane/dispatch benchmark; returns the report dict.

    The warm-up scan runs against a larger database
    (*warmup_subjects*, default ``20 × num_subjects``): per-worker
    attach cost is near-constant while the pickled plane's re-pack
    scales with the database, and the scan should measure the regime
    the shm plane exists for.  Requires a working ``/dev/shm``
    (:func:`shm_available`); raises ``RuntimeError`` otherwise — there
    is nothing to compare on a platform where the shm plane falls back
    to pickling anyway.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if max_workers < 1:
        raise ValueError(f"max_workers must be >= 1, got {max_workers}")
    if not shm_available():
        raise RuntimeError("POSIX shared memory is not available on this platform")
    from repro.engine.search import calibrate_live
    from repro.engine.transport import ProcessWorkerPool

    scheme = scheme or default_scheme()
    queries, database = build_bench_workload(
        num_subjects, min_len, max_len, query_len, num_queries, seed
    )
    if warmup_subjects is None:
        warmup_subjects = num_subjects * 20
    _, warmup_db = build_bench_workload(
        warmup_subjects, min_len, max_len, query_len, num_queries, seed
    )
    rates = calibrate_live(database, scheme, chunk_cells=chunk_cells, repeats=repeats)

    # -- warm-up scan ---------------------------------------------------
    scan = []
    for n in range(1, max_workers + 1):
        pickle_wall, pickle_setup = _measure_start(
            warmup_db, scheme, n, "pickle", repeats, chunk_cells
        )
        shm_wall, shm_setup = _measure_start(
            warmup_db, scheme, n, "shm", repeats, chunk_cells
        )
        scan.append(
            {
                "workers": n,
                "pickle_s": pickle_wall,
                "shm_s": shm_wall,
                "marginal_pickle_s": pickle_setup,
                "marginal_shm_s": shm_setup,
            }
        )
    head = scan[-1]
    warmup = {
        "scan": scan,
        "marginal_pickle_s": head["marginal_pickle_s"],
        "marginal_shm_s": head["marginal_shm_s"],
        "marginal_speedup": head["marginal_pickle_s"] / max(head["marginal_shm_s"], 1e-9),
    }

    # -- batch makespan -------------------------------------------------
    # Two variants of the same pickled-whole-query vs shm-chunk-dispatch
    # comparison, both sides always driven by the same rate model:
    # ``calibrated`` feeds live-measured GCUPS to both (the chunk seed
    # is already near-optimal, so stealing is roughly a no-op on a
    # quiet machine), ``miscalibrated`` swaps the cpu/gpu rates (the
    # whole-query allocator commits the batch to the wrong split and
    # eats the full mistake; the chunk scheduler seeds equally wrong
    # but the idle fast worker steals the slow worker's queue back,
    # grain by grain — the robustness the re-costed steal exists for).
    samples = max(5, repeats)
    modes = {"pickle": ("pickle", "query"), "shm_chunk": ("shm", "chunk")}
    swapped = {"cpu": rates["gpu"], "gpu": rates["cpu"]}
    hits: dict[str, list] = {}
    batch: dict = {}
    for variant, variant_rates in (("calibrated", rates), ("miscalibrated", swapped)):
        pools = {
            mode: ProcessWorkerPool(
                database,
                num_cpu_workers=1,
                num_gpu_workers=1,
                scheme=scheme,
                top_hits=10,
                chunk_cells=chunk_cells,
                data_plane=plane,
                dispatch=dispatch,
                oversubscribe=BENCH_OVERSUBSCRIBE,
            )
            for mode, (plane, dispatch) in modes.items()
        }
        walls: dict[str, list[float]] = {mode: [] for mode in modes}
        steals = 0
        try:
            for pool in pools.values():
                pool.start()
                # One untimed batch warms kernels and profile caches.
                pool.run_batch(queries, policy="swdual", measured_gcups=variant_rates)
            # Interleave the timed samples so machine drift (thermal,
            # background load) hits both modes alike.
            for _ in range(samples):
                for mode, pool in pools.items():
                    report = pool.run_batch(
                        queries, policy="swdual", measured_gcups=variant_rates
                    )
                    walls[mode].append(report.wall_seconds)
                    hits[f"{variant}:{mode}"] = [
                        [(h.subject_id, h.score) for h in qr.hits]
                        for qr in report.query_results
                    ]
            steals = sum(pools["shm_chunk"].steals.values())
        finally:
            for pool in pools.values():
                pool.close()
        makespans = {mode: _percentiles(walls[mode]) for mode in modes}
        batch[variant] = {
            "pickle": makespans["pickle"],
            "shm_chunk": makespans["shm_chunk"],
            "p99_speedup": makespans["pickle"]["p99_s"]
            / max(makespans["shm_chunk"]["p99_s"], 1e-9),
            "steals": steals,
        }

    return {
        "bench": "shm",
        "workload": {
            "num_subjects": num_subjects,
            "min_len": min_len,
            "max_len": max_len,
            "query_len": query_len,
            "num_queries": num_queries,
            "repeats": repeats,
            "max_workers": max_workers,
            "warmup_subjects": warmup_subjects,
            "warmup_db_residues": warmup_db.total_residues,
            "db_residues": database.total_residues,
            "chunk_cells": chunk_cells,
            "oversubscribe": BENCH_OVERSUBSCRIBE,
            "seed": seed,
        },
        "rates_gcups": rates,
        "warmup": warmup,
        "batch": batch,
        "scores_identical": all(h == hits["calibrated:pickle"] for h in hits.values()),
    }
