"""Scheduler-plane benchmark behind ``swdual bench sched``.

Contrasts one-shot vs rolling calibration under a **drifting-speed
drill**: a warm threads pool of 2 CPU-role + 2 GPU-role workers whose
GPU-role workers are slowed by an injected ``slow`` fault on every task
(:meth:`~repro.engine.faults.FaultPlan.slowdown` — the victims stay
healthy and bit-correct, only their measured rate collapses), while
the allocator's starting rates still claim the GPU class is the fast
one:

* **oneshot** keeps trusting those stale rates for every batch — the
  dual-approximation split keeps loading the slowed class, and each
  batch eats the full sleep on its critical path;
* **rolling** feeds each batch's :class:`~repro.engine.results.SearchReport`
  aggregates to a :class:`~repro.sched.RollingCalibrator` and re-runs
  the split per batch through an
  :class:`~repro.sched.IncrementalAllocator` — after the warm batches
  the estimates reflect the collapse and the work shifts to the
  healthy class.

Reported as p50/p99 of per-batch wall seconds for both legs, plus a
**policy grid** (self / swdual / swdual-dp / affinity on an identical
un-drilled pool) asserting every policy's hit tables are bit-for-bit
identical — placement is the only thing any of this moves.

The result dictionary is what ``BENCH_sched.json`` records.  Numbers
are machine-dependent — the JSON is a provenance artifact, not a
fixture; tests only assert on the report's *shape*.
"""

from __future__ import annotations

import numpy as np

from repro.align.scoring import ScoringScheme, default_scheme
from repro.platform.benchkernels import build_bench_workload

# NB: the engine layer imports repro.platform (perf model), so the
# engine/service imports must stay inside the functions here.

__all__ = ["run_sched_bench", "SCHED_BENCH_POLICIES"]

#: Allocation policies the policy-grid leg compares (all must produce
#: bit-identical hit tables).
SCHED_BENCH_POLICIES = ("self", "swdual", "swdual-dp", "affinity")

#: Stale rates the drill starts from: the GPU class is claimed 4x
#: faster, so a one-shot allocator keeps overloading the slowed class.
STALE_RATES = {"cpu": 1.0, "gpu": 4.0}


def _percentiles(samples: list[float]) -> dict:
    arr = np.sort(np.asarray(samples, dtype=float))
    return {
        "samples": int(arr.size),
        "mean_s": float(arr.mean()),
        "p50_s": float(np.percentile(arr, 50)),
        "p99_s": float(np.percentile(arr, 99)),
        "min_s": float(arr[0]),
        "max_s": float(arr[-1]),
    }


def _hit_tables(report) -> list:
    return [[(h.subject_id, h.score) for h in qr.hits] for qr in report.query_results]


def _drill_pool(database, scheme, slow_seconds: float, horizon: int):
    """A fresh 2+2 threads pool whose GPU-role workers run every task
    ``slow_seconds`` long."""
    from repro.engine.faults import FaultPlan
    from repro.service.pool import WarmPool

    plan = FaultPlan.slowdown(
        ["gpu0", "gpu1"], slow_seconds=slow_seconds, horizon=horizon
    )
    return WarmPool(
        database,
        num_cpu_workers=2,
        num_gpu_workers=2,
        backend="threads",
        policy="swdual",
        scheme=scheme,
        measured_gcups=dict(STALE_RATES),
        top_hits=10,
        fault_plan=plan,
    )


def run_sched_bench(
    num_subjects: int = 160,
    min_len: int = 60,
    max_len: int = 200,
    query_len: int = 150,
    num_queries: int = 6,
    batches: int = 12,
    warm_batches: int = 2,
    slow_seconds: float = 0.04,
    scheme: ScoringScheme | None = None,
    seed: int = 0,
    smoke: bool = False,
) -> dict:
    """Run the scheduler-plane benchmark; returns the report dict.

    ``smoke=True`` shrinks the workload for CI (fewer batches and
    queries, shorter sleeps) — shape and exactness checks still hold,
    the p99 margin is just smaller.
    """
    if batches < 1:
        raise ValueError(f"batches must be >= 1, got {batches}")
    if warm_batches < 0:
        raise ValueError(f"warm_batches must be >= 0, got {warm_batches}")
    from repro.sched import IncrementalAllocator, RollingCalibrator

    if smoke:
        num_subjects = min(num_subjects, 80)
        num_queries = min(num_queries, 4)
        batches = min(batches, 5)
        slow_seconds = min(slow_seconds, 0.02)
    scheme = scheme or default_scheme()
    queries, database = build_bench_workload(
        num_subjects, min_len, max_len, query_len, num_queries, seed
    )
    # Every GPU-role task in the run must land inside the drill.
    horizon = (warm_batches + batches) * num_queries + 64

    hits: dict[str, list] = {}

    # -- oneshot leg: every batch allocated with the stale rates --------
    oneshot_walls: list[float] = []
    with _drill_pool(database, scheme, slow_seconds, horizon) as pool:
        for _ in range(warm_batches):
            pool.run_batch(queries)
        for _ in range(batches):
            report = pool.run_batch(queries)
            oneshot_walls.append(report.wall_seconds)
        hits["oneshot"] = _hit_tables(report)

    # -- rolling leg: identical pool + drill, live re-calibration -------
    calibrator = RollingCalibrator(seed_rates=STALE_RATES)
    allocator = IncrementalAllocator(calibrator, fallback_rates=STALE_RATES)
    rolling_walls: list[float] = []
    with _drill_pool(database, scheme, slow_seconds, horizon) as pool:
        for _ in range(warm_batches):
            report = pool.run_batch(queries, measured_gcups=allocator.rates_for_batch())
            calibrator.observe_report(report)
        for _ in range(batches):
            report = pool.run_batch(queries, measured_gcups=allocator.rates_for_batch())
            calibrator.observe_report(report)
            rolling_walls.append(report.wall_seconds)
        hits["rolling"] = _hit_tables(report)

    # -- policy grid: same workload, no drill, every policy -------------
    from repro.service.pool import WarmPool

    policies: dict[str, dict] = {}
    for policy in SCHED_BENCH_POLICIES:
        with WarmPool(
            database,
            num_cpu_workers=2,
            num_gpu_workers=2,
            backend="threads",
            policy=policy,
            scheme=scheme,
            measured_gcups=dict(STALE_RATES),
            top_hits=10,
        ) as pool:
            report = pool.run_batch(queries)
        hits[f"policy:{policy}"] = _hit_tables(report)
        policies[policy] = {
            "wall_s": report.wall_seconds,
            "scheduler_info": report.scheduler_info,
        }

    oneshot = _percentiles(oneshot_walls)
    rolling = _percentiles(rolling_walls)
    reference = hits["oneshot"]
    return {
        "bench": "sched",
        "workload": {
            "num_subjects": num_subjects,
            "min_len": min_len,
            "max_len": max_len,
            "query_len": query_len,
            "num_queries": num_queries,
            "db_residues": database.total_residues,
            "seed": seed,
            "smoke": smoke,
        },
        "drill": {
            "slow_seconds": slow_seconds,
            "slowed_workers": ["gpu0", "gpu1"],
            "batches": batches,
            "warm_batches": warm_batches,
        },
        "rates_initial_gcups": dict(STALE_RATES),
        "oneshot": {"batch_wall": oneshot},
        "rolling": {
            "batch_wall": rolling,
            "final_rates_gcups": calibrator.rates(),
            "reallocations": allocator.reallocations,
            "calibration": calibrator.snapshot(),
        },
        "p99_improvement": oneshot["p99_s"] / max(rolling["p99_s"], 1e-9),
        "policies": policies,
        "scores_identical": all(h == reference for h in hits.values()),
    }
