"""Calibration of the performance model against the paper's own data.

We do not have the Idgraf machine (2× Xeon 2.67 GHz, 8× Tesla C2050) or
CUDA, so per-task processing times come from rate models calibrated to
the paper's single-worker measurements (DESIGN.md, substitution table):

* **CPU class** (SWIPE-style SSE worker): Table II gives SWIPE on one
  worker = 2,367.24 s for the standard workload (40 queries totalling
  102,000 residues against the UniProt profile of 190,733,333
  residues).
* **GPU class** (CUDASW++-style worker): Table II gives CUDASW++ on one
  GPU = 785.26 s for the same workload.

With the saturating rate model ``rate(q) = peak·q/(q+h)`` the workload
time has the closed form::

    T  =  n·α  +  R_db · (Q_total + n·h) / (peak · 1e9)

(`R_db` database residues, `Q_total` total query residues, `n` query
count, `α` per-task overhead), so ``peak`` follows directly from the
measured ``T``.  Half-lengths and overheads are fixed a priori: GPUs
need long queries to fill (h ≈ 220 residues, launch+transfer overhead
0.5 s/task), CPU SIMD saturates almost immediately (h ≈ 25, 0.2 s).

Only the *single-worker baselines* are pinned this way.  SWDUAL's own
multi-worker numbers are never used for calibration — its curve must
emerge from the scheduler — while the baseline applications' scaling
curves are taken from their own Table II columns (they are external
comparators we reproduce, not the contribution).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.platform.pe import PEKind, RateModel

__all__ = [
    "PAPER",
    "PaperConstants",
    "peak_from_workload_time",
    "cpu_rate_model",
    "gpu_rate_model",
    "CPU_HALF_LENGTH",
    "GPU_HALF_LENGTH",
    "CPU_TASK_OVERHEAD_S",
    "GPU_TASK_OVERHEAD_S",
    "CPU_PARALLEL_EFFICIENCY",
    "GPU_PARALLEL_EFFICIENCY",
    "GPU_CPU_SERVICE_FRACTION",
]


@dataclass(frozen=True)
class PaperConstants:
    """Raw numbers lifted from the paper used for calibration."""

    #: Table II column 1: single-worker wall-clock seconds, UniProt workload.
    swipe_t1: float = 2367.24
    striped_t1: float = 7190.0
    swps3_t1: float = 69208.2
    cudasw_t1: float = 785.26
    #: Standard workload: 40 queries, 102,000 total residues (Section V).
    query_count: int = 40
    query_total_residues: int = 102_000
    #: UniProt profile size implied by Table IV (see sequences.synthetic).
    uniprot_residues: int = 190_733_333
    #: Idgraf: 2×4-core Xeons, 8 Tesla C2050 (Section V).
    idgraf_cpus: int = 8
    idgraf_gpus: int = 8


PAPER = PaperConstants()

#: Query length at which each class reaches half its peak rate.
CPU_HALF_LENGTH = 25.0
GPU_HALF_LENGTH = 220.0

#: Fixed per-task overhead (thread spawn / kernel launch + transfers).
CPU_TASK_OVERHEAD_S = 0.2
GPU_TASK_OVERHEAD_S = 0.5

#: Per-additional-worker geometric efficiency within a class.  CPU from
#: SWIPE's near-ideal 1->4 scaling (eff(4)=0.97 -> ~0.99/worker); GPUs
#: on Idgraf are independent PCIe devices, so they keep a similar
#: intrinsic factor (CUDASW++'s poorer scaling is modelled at the app
#: level, not the platform level).
CPU_PARALLEL_EFFICIENCY = 0.99
GPU_PARALLEL_EFFICIENCY = 0.97

#: Fraction of one CPU worker's throughput consumed by each active GPU
#: worker (Section V-A: "each GPU worker actually needs some CPU time").
GPU_CPU_SERVICE_FRACTION = 0.15


def peak_from_workload_time(
    measured_seconds: float,
    half_length: float,
    task_overhead_s: float,
    db_residues: int = PAPER.uniprot_residues,
    query_total: int = PAPER.query_total_residues,
    query_count: int = PAPER.query_count,
) -> float:
    """Invert the closed-form workload time for the peak GCUPS.

    See the module docstring for the formula.  Raises if the overheads
    alone exceed the measured time.
    """
    compute_time = measured_seconds - query_count * task_overhead_s
    if compute_time <= 0:
        raise ValueError(
            f"overheads ({query_count * task_overhead_s:.1f}s) exceed the "
            f"measured time ({measured_seconds:.1f}s)"
        )
    effective_cells = db_residues * (query_total + query_count * half_length)
    return effective_cells / (compute_time * 1e9)


def cpu_rate_model() -> RateModel:
    """CPU worker rate model calibrated to SWIPE's single-worker time."""
    peak = peak_from_workload_time(
        PAPER.swipe_t1, CPU_HALF_LENGTH, CPU_TASK_OVERHEAD_S
    )
    return RateModel(
        peak_gcups=peak,
        half_length=CPU_HALF_LENGTH,
        task_overhead_s=CPU_TASK_OVERHEAD_S,
    )


def gpu_rate_model() -> RateModel:
    """GPU worker rate model calibrated to CUDASW++'s single-GPU time."""
    peak = peak_from_workload_time(
        PAPER.cudasw_t1, GPU_HALF_LENGTH, GPU_TASK_OVERHEAD_S
    )
    return RateModel(
        peak_gcups=peak,
        half_length=GPU_HALF_LENGTH,
        task_overhead_s=GPU_TASK_OVERHEAD_S,
    )


def rate_model_for(kind: PEKind) -> RateModel:
    """The calibrated rate model for a PE class."""
    return gpu_rate_model() if kind is PEKind.GPU else cpu_rate_model()
