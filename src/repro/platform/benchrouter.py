"""Router benchmark behind ``swdual bench router``.

Measures the aggregate-throughput win of database sharding: the same
workload is pushed through a 1-shard cluster (router + one service
process, the scatter-gather baseline with all its wire overhead) and
an N-shard cluster, each shard a real :class:`~repro.service.server.
SearchService` process with one CPU worker.  Because every shard scans
only its slice, N shards score the same total cell count in roughly
1/N the wall time — **aggregate GCUPS** (total cells of the unsharded
scan divided by wall time) is the headline number, exactly the metric
SWAPHI-class multi-node papers report.

Correctness is checked the same way the conformance tests do: the
merged top-k of every cluster size must be bit-identical (subject ids
*and* scores, tie-order included) to an unsharded in-process oracle.
A divergence fails the benchmark loudly rather than producing a fast
wrong number.

The result dict is what ``BENCH_router.json`` records (benchstamped on
write); numbers are machine-dependent provenance, not fixtures.
"""

from __future__ import annotations

import time

from repro.sequences.queries import standard_query_set
from repro.sequences.synthetic import small_database

__all__ = ["ClusterDivergence", "run_router_bench"]


class ClusterDivergence(AssertionError):
    """A cluster's merged top-k differed from the unsharded oracle —
    a violation of the scatter-gather merge contract."""


def _drive_cluster(
    database,
    queries,
    num_shards: int,
    top: int,
    service_kwargs: dict,
    start_method: str,
) -> tuple[float, list[list[list]]]:
    """Run the workload through one cluster size; returns (wall, hits).

    Queries are pipelined through one connection (submit all, then
    collect), so the router can keep every shard busy — the wall time
    reflects aggregate cluster throughput, not per-query round trips.
    """
    # Imported here, not at module scope: repro.cluster sits above the
    # engine, which imports this package — a top-level import would be
    # circular.
    from repro.cluster.manager import ShardManager
    from repro.cluster.router import ScatterGatherRouter
    from repro.service.client import SearchClient

    with ShardManager(
        database=database,
        num_shards=num_shards,
        service_kwargs=service_kwargs,
        start_method=start_method,
    ) as manager:
        with ScatterGatherRouter(manager, top_hits=top) as router:
            with SearchClient("127.0.0.1", router.port, timeout=120.0) as client:
                # Warm every shard link (connect + first exchange)
                # outside the timed window.
                client.query(queries[0], top=top)
                started = time.perf_counter()
                ids = [client.submit(q, top=top) for q in queries]
                outcomes = client.collect(len(ids))
                wall = time.perf_counter() - started
    by_id = {str(o.get("id")): o for o in outcomes}
    hits = []
    for qid in ids:
        outcome = by_id[qid]
        if outcome.get("type") != "result" or outcome.get("partial"):
            raise ClusterDivergence(
                f"{num_shards}-shard cluster degraded during the bench: {outcome}"
            )
        hits.append(outcome["hits"])
    return wall, hits


def run_router_bench(
    num_sequences: int = 120,
    mean_length: int = 400,
    num_queries: int = 8,
    query_scale: float = 0.05,
    top: int = 5,
    num_shards: int = 3,
    start_method: str = "auto",
    seed: int = 0,
) -> dict:
    """Benchmark an ``num_shards``-shard cluster against 1 shard.

    Raises :class:`ClusterDivergence` if any cluster size reports a
    merged top-k different from the unsharded in-process oracle.
    """
    if num_shards < 2:
        raise ValueError(f"num_shards must be >= 2, got {num_shards}")
    if num_queries < 1:
        raise ValueError(f"num_queries must be >= 1, got {num_queries}")
    database = small_database(
        num_sequences=num_sequences, mean_length=mean_length, seed=seed
    )
    queries = standard_query_set(count=num_queries).scaled(query_scale).materialize(
        seed=seed + 1
    )
    service_kwargs = dict(
        num_cpu_workers=1, num_gpu_workers=0, backend="threads", top_hits=top
    )
    cells = sum(len(q) for q in queries) * database.total_residues

    from repro.engine.search import live_search

    # -- unsharded in-process oracle -----------------------------------
    report = live_search(
        queries, database, num_cpu_workers=1, num_gpu_workers=0, top_hits=top
    )
    oracle = {
        r.query_id: [[h.subject_id, h.score] for h in r.hits]
        for r in report.query_results
    }

    sizes = {}
    for shards in (1, num_shards):
        wall, hits = _drive_cluster(
            database, queries, shards, top, service_kwargs, start_method
        )
        for q, got in zip(queries, hits):
            if got != oracle[q.id]:
                raise ClusterDivergence(
                    f"{shards}-shard top-{top} for {q.id!r} diverged from the "
                    f"unsharded oracle: {got} != {oracle[q.id]}"
                )
        sizes[str(shards)] = {
            "shards": shards,
            "seconds": wall,
            "aggregate_gcups": cells / wall / 1e9,
            "queries_per_s": len(queries) / wall,
            "hits_identical": True,  # ClusterDivergence would have raised
        }

    baseline = sizes["1"]
    scaled = sizes[str(num_shards)]
    return {
        "bench": "router",
        "workload": {
            "num_sequences": num_sequences,
            "mean_length": mean_length,
            "db_residues": database.total_residues,
            "num_queries": num_queries,
            "query_scale": query_scale,
            "top": top,
            "cells_per_pass": cells,
            "start_method": start_method,
            "seed": seed,
        },
        "sizes": sizes,
        "speedup": baseline["seconds"] / scaled["seconds"],
        "scaling_efficiency": (
            baseline["seconds"] / scaled["seconds"] / num_shards
        ),
    }
