"""Discrete-event simulation clock and event queue.

The master–slave engine's simulated mode (DESIGN.md §5) advances
virtual time by popping the earliest pending event.  This module
provides the minimal machinery: a monotonically advancing
:class:`SimClock` and a heap-backed :class:`EventQueue` with stable FIFO
ordering for simultaneous events (so simulation traces are fully
deterministic).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Any

__all__ = ["SimClock", "EventQueue", "Event"]


@dataclass(frozen=True)
class Event:
    """One scheduled occurrence: a time, a tag and an arbitrary payload."""

    time: float
    tag: str
    payload: Any = None


class SimClock:
    """Virtual wall clock; time only moves forward."""

    def __init__(self, start: float = 0.0):
        if start < 0:
            raise ValueError(f"start time must be >= 0, got {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance_to(self, t: float) -> None:
        """Move the clock to *t*; rejects travel into the past."""
        if t < self._now - 1e-12:
            raise ValueError(f"cannot move clock backwards: {t} < {self._now}")
        self._now = max(self._now, float(t))


class EventQueue:
    """A time-ordered queue of :class:`Event` objects.

    Events at equal times pop in insertion order (a strict tie-break
    keeps simulated executions reproducible run to run).
    """

    def __init__(self):
        self._heap: list[tuple[float, int, Event]] = []
        self._counter = itertools.count()

    def push(self, time: float, tag: str, payload: Any = None) -> Event:
        """Schedule an event; returns it."""
        if time < 0:
            raise ValueError(f"event time must be >= 0, got {time}")
        event = Event(time=float(time), tag=tag, payload=payload)
        heapq.heappush(self._heap, (event.time, next(self._counter), event))
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event; raises when empty."""
        if not self._heap:
            raise IndexError("pop from empty EventQueue")
        return heapq.heappop(self._heap)[2]

    def peek_time(self) -> float:
        """Time of the earliest event; raises when empty."""
        if not self._heap:
            raise IndexError("peek on empty EventQueue")
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
