"""The performance model: per-task times on a concrete platform.

Bridges the rate models of :mod:`repro.platform.pe` and the scheduler,
adding the two platform-level effects the paper discusses:

* **intra-class contention** — adding workers of one class is slightly
  sublinear (memory bandwidth for CPUs, PCIe/host threads for GPUs);
  modelled as a geometric per-worker efficiency;
* **GPU CPU-service cost** — "each GPU worker actually needs some CPU
  time to execute as fast as it can" (Section V-A); each active GPU
  worker drains a fixed fraction of one CPU worker's throughput,
  spread over the CPU workers.

The scheduler consumes :meth:`PerformanceModel.task_times`, the pair of
vectors ``(p_j, p̄_j)`` of Section III.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.platform.calibration import (
    CPU_PARALLEL_EFFICIENCY,
    GPU_CPU_SERVICE_FRACTION,
    GPU_PARALLEL_EFFICIENCY,
)
from repro.platform.cluster import HybridPlatform
from repro.platform.pe import PEKind, ProcessingElement, RateModel

__all__ = ["PerformanceModel", "measure_kernel_gcups", "live_rate_model"]


@dataclass(frozen=True)
class PerformanceModel:
    """Predicts task processing times on each PE of a platform.

    Parameters
    ----------
    platform:
        The hybrid platform being modelled.
    cpu_parallel_efficiency / gpu_parallel_efficiency:
        Geometric per-additional-worker efficiency within each class.
    gpu_cpu_service_fraction:
        CPU throughput fraction consumed per active GPU worker.
    """

    platform: HybridPlatform
    cpu_parallel_efficiency: float = CPU_PARALLEL_EFFICIENCY
    gpu_parallel_efficiency: float = GPU_PARALLEL_EFFICIENCY
    gpu_cpu_service_fraction: float = GPU_CPU_SERVICE_FRACTION

    def __post_init__(self) -> None:
        for name in (
            "cpu_parallel_efficiency",
            "gpu_parallel_efficiency",
        ):
            v = getattr(self, name)
            if not 0 < v <= 1:
                raise ValueError(f"{name} must be in (0, 1], got {v}")
        if not 0 <= self.gpu_cpu_service_fraction < 1:
            raise ValueError(
                f"gpu_cpu_service_fraction must be in [0, 1), got "
                f"{self.gpu_cpu_service_fraction}"
            )

    def class_efficiency(self, kind: PEKind) -> float:
        """Effective rate multiplier for one worker of class *kind*."""
        m = self.platform.num_cpus
        k = self.platform.num_gpus
        if kind is PEKind.GPU:
            return self.gpu_parallel_efficiency ** max(0, k - 1)
        eff = self.cpu_parallel_efficiency ** max(0, m - 1)
        if m > 0 and k > 0:
            service = self.gpu_cpu_service_fraction * k / m
            eff *= max(0.05, 1.0 - service)
        return eff

    def task_seconds(
        self, pe: ProcessingElement, query_length: int, db_residues: int
    ) -> float:
        """Predicted seconds for one comparison task on *pe*."""
        return pe.rate.task_seconds(
            query_length, db_residues, efficiency=self.class_efficiency(pe.kind)
        )

    def task_times(
        self, query_lengths: np.ndarray, db_residues: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectors ``(p, p̄)`` — CPU and GPU seconds per task.

        Requires the platform to have at least one PE of each class (the
        scheduler's hybrid setting); single-class platforms should call
        :meth:`task_seconds` directly.
        """
        lengths = np.asarray(query_lengths, dtype=np.int64)
        if lengths.ndim != 1 or lengths.size == 0:
            raise ValueError("query_lengths must be a non-empty 1-D array")
        if (lengths <= 0).any():
            raise ValueError("query lengths must be positive")
        cpus, gpus = self.platform.cpus, self.platform.gpus
        if not cpus or not gpus:
            raise ValueError(
                "task_times needs a hybrid platform with both CPU and GPU "
                f"workers; {self.platform.name!r} has {len(cpus)} CPUs and "
                f"{len(gpus)} GPUs"
            )
        p_cpu = self._times_for(cpus[0], lengths, db_residues)
        p_gpu = self._times_for(gpus[0], lengths, db_residues)
        return p_cpu, p_gpu

    def _times_for(
        self, pe: ProcessingElement, lengths: np.ndarray, db_residues: int
    ) -> np.ndarray:
        eff = self.class_efficiency(pe.kind)
        rate = pe.rate.peak_gcups * lengths / (lengths + pe.rate.half_length)
        return pe.rate.task_overhead_s + (lengths * db_residues) / (
            rate * eff * 1e9
        )


def measure_kernel_gcups(
    kernel,
    query,
    subjects,
    scheme,
    repeats: int = 1,
) -> float:
    """Measure the real GCUPS of a live kernel on actual sequences.

    ``kernel(query, subjects, scheme)`` must score *query* against all
    *subjects*.  Used by live-mode calibration so the simulator can also
    be driven by measured (rather than paper-derived) rates.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    cells = len(query) * sum(len(s) for s in subjects)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        kernel(query, subjects, scheme)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    if best <= 0:  # pragma: no cover - clock resolution guard
        best = 1e-9
    return cells / best / 1e9


def live_rate_model(measured_gcups: float, task_overhead_s: float = 0.0) -> RateModel:
    """Rate model from a live measurement (length-independent)."""
    return RateModel(
        peak_gcups=measured_gcups,
        half_length=0.0,
        task_overhead_s=task_overhead_s,
    )
