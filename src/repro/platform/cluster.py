"""The hybrid platform: a set of CPU and GPU processing elements.

Models the paper's testbed (Idgraf at Inria Grenoble: two 4-core Intel
Xeon 2.67 GHz processors and eight Nvidia Tesla C2050 GPUs) and the
worker configurations of Section V-A, where "the first four workers
used on the SWDUAL execution were GPUs and the last four workers were
CPUs": 2 workers = 1 GPU + 1 CPU, 3 = 2 GPU + 1 CPU, 4 = 3 GPU + 1 CPU,
then 5–8 add CPUs next to the full 4 GPUs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.platform.calibration import cpu_rate_model, gpu_rate_model
from repro.platform.pe import PEKind, ProcessingElement, RateModel

__all__ = ["HybridPlatform", "idgraf_platform", "swdual_worker_mix"]


def swdual_worker_mix(num_workers: int, max_gpus: int = 4) -> tuple[int, int]:
    """The paper's (gpus, cpus) split for a SWDUAL worker count.

    GPUs are added first (up to *max_gpus*, keeping at least one CPU),
    then CPUs — Section V-A's configuration.
    """
    if num_workers < 2:
        raise ValueError(
            f"SWDUAL needs at least one CPU and one GPU (>=2 workers), "
            f"got {num_workers}"
        )
    gpus = min(num_workers - 1, max_gpus)
    cpus = num_workers - gpus
    return gpus, cpus


@dataclass(frozen=True)
class HybridPlatform:
    """An ordered collection of PEs: ``k`` GPUs and ``m`` CPUs.

    The paper's notation: ``m`` CPUs, ``k`` GPUs (Section III).
    """

    pes: tuple[ProcessingElement, ...]
    name: str = "hybrid"

    def __post_init__(self) -> None:
        if not self.pes:
            raise ValueError("platform needs at least one processing element")
        names = [pe.name for pe in self.pes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate PE names: {names}")

    @property
    def cpus(self) -> tuple[ProcessingElement, ...]:
        """CPU workers, in declaration order."""
        return tuple(pe for pe in self.pes if pe.kind is PEKind.CPU)

    @property
    def gpus(self) -> tuple[ProcessingElement, ...]:
        """GPU workers, in declaration order."""
        return tuple(pe for pe in self.pes if pe.kind is PEKind.GPU)

    @property
    def num_cpus(self) -> int:
        """``m`` in the paper's notation."""
        return len(self.cpus)

    @property
    def num_gpus(self) -> int:
        """``k`` in the paper's notation."""
        return len(self.gpus)

    def __len__(self) -> int:
        return len(self.pes)

    def __iter__(self):
        return iter(self.pes)

    def pe_by_name(self, name: str) -> ProcessingElement:
        """Look up a PE; raises ``KeyError`` for unknown names."""
        for pe in self.pes:
            if pe.name == name:
                return pe
        raise KeyError(f"no PE named {name!r} in platform {self.name!r}")


def idgraf_platform(
    num_gpus: int,
    num_cpus: int,
    cpu_rate: RateModel | None = None,
    gpu_rate: RateModel | None = None,
) -> HybridPlatform:
    """Build an Idgraf-like platform with calibrated rate models.

    Parameters
    ----------
    num_gpus / num_cpus:
        Worker counts (either may be zero, but not both).
    cpu_rate / gpu_rate:
        Override the calibrated per-class rate models (used by the
        ablations and by live-calibrated runs).
    """
    if num_gpus < 0 or num_cpus < 0:
        raise ValueError("worker counts must be non-negative")
    if num_gpus == 0 and num_cpus == 0:
        raise ValueError("platform needs at least one worker")
    cpu_rate = cpu_rate or cpu_rate_model()
    gpu_rate = gpu_rate or gpu_rate_model()
    pes = [
        ProcessingElement(name=f"gpu{i}", kind=PEKind.GPU, rate=gpu_rate)
        for i in range(num_gpus)
    ] + [
        ProcessingElement(name=f"cpu{i}", kind=PEKind.CPU, rate=cpu_rate)
        for i in range(num_cpus)
    ]
    return HybridPlatform(pes=tuple(pes), name=f"idgraf_{num_gpus}g{num_cpus}c")
