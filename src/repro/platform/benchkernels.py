"""Kernel micro-benchmarks behind ``swdual bench kernels``.

Measures real GCUPS of the live scoring paths on a synthetic protein
workload, contrasting the seed-era hot path (re-pack the database on
every call, score everything in int64) with the packed fast path (pack
once, adaptive narrow-dtype ladder, cached query profiles) and the two
wavefront variants (per-subject Python loop vs the batched chunk
sweep).  The result dictionary is what ``BENCH_kernels.json`` records:
per-kernel/per-dtype GCUPS plus the headline
``speedup_packed_vs_seed`` ratio.

Numbers are machine-dependent — the JSON is a provenance artifact, not
a fixture; tests only assert on the report's *shape* and on cheap
relative sanity properties.
"""

from __future__ import annotations

import json
import time

import numpy as np

from repro.align.scoring import ScoringScheme, default_scheme
from repro.align.sw_batch import (
    DTYPE_LADDER,
    clear_profile_cache,
    sw_score_batch,
    sw_score_packed,
)
from repro.align.sw_wavefront import sw_score_wavefront, sw_score_wavefront_packed
from repro.sequences.alphabet import PROTEIN
from repro.sequences.database import SequenceDatabase
from repro.sequences.packed import DEFAULT_CHUNK_CELLS, PackedDatabase
from repro.sequences.sequence import Sequence
from repro.telemetry import tracing
from repro.utils import ensure_rng

__all__ = ["build_bench_workload", "run_kernel_bench", "write_bench_report"]


def build_bench_workload(
    num_subjects: int = 300,
    min_len: int = 100,
    max_len: int = 400,
    query_len: int = 300,
    num_queries: int = 4,
    seed: int = 0,
) -> tuple[list[Sequence], SequenceDatabase]:
    """Deterministic synthetic workload (uniform standard residues)."""
    if num_subjects < 1 or num_queries < 1:
        raise ValueError("need at least one subject and one query")
    if not 1 <= min_len <= max_len:
        raise ValueError(f"bad length range [{min_len}, {max_len}]")
    rng = ensure_rng(seed)

    def draw(sid: str, length: int) -> Sequence:
        codes = rng.integers(0, 20, size=length).astype(np.uint8)
        return Sequence(id=sid, codes=codes, alphabet=PROTEIN)

    subjects = [
        draw(f"bench_s{i}", int(rng.integers(min_len, max_len + 1)))
        for i in range(num_subjects)
    ]
    queries = [draw(f"bench_q{i}", query_len) for i in range(num_queries)]
    return queries, SequenceDatabase(name="bench", sequences=subjects)


def _time_pass(fn, repeats: int) -> float:
    """Best-of-*repeats* wall time of one full ``fn()`` pass."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return max(best, 1e-9)


def run_kernel_bench(
    num_subjects: int = 300,
    min_len: int = 100,
    max_len: int = 400,
    query_len: int = 300,
    num_queries: int = 4,
    repeats: int = 3,
    wavefront_subjects: int = 25,
    chunk_cells: int = DEFAULT_CHUNK_CELLS,
    scheme: ScoringScheme | None = None,
    seed: int = 0,
    kernel_backend: str | None = None,
) -> dict:
    """Run the kernel micro-benchmark suite; returns the report dict.

    Five measurements on the same workload:

    ``seed_int64_per_call``
        The pre-packed-database hot path: every call re-packs the
        subject list, rebuilds the query profile (cache cleared) and
        scores in int64 — what repeated queries against one database
        used to cost.
    ``packed_ladder``
        The fast path: one shared :class:`PackedDatabase`, the adaptive
        int16-first dtype ladder, warm profile cache.
    ``levels``
        GCUPS with the ladder pinned to each usable dtype level, to
        expose where the narrow-dtype win comes from.
    ``wavefront_per_subject`` / ``wavefront_batched``
        The GPU-role kernel scored subject-by-subject (old live-engine
        closure) vs whole-chunk anti-diagonal sweeps, on a subject
        subset (the Python-loop variant is far too slow for the full
        set).
    ``backends``
        The batch hot path (``packed_ladder`` plus per-dtype rungs)
        measured side by side under the numpy tier and the resolved
        compiled tier (*kernel_backend*; ``auto`` by default), with the
        headline ``speedup_compiled_vs_numpy`` ratio.  The numpy
        measurements above are always pinned to the numpy tier, so
        historical reports stay comparable whatever backend is active.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    from repro.align import backend as kernel_backend_mod

    backend_info, _ = kernel_backend_mod.get_kernels(kernel_backend)
    scheme = scheme or default_scheme()
    queries, database = build_bench_workload(
        num_subjects, min_len, max_len, query_len, num_queries, seed
    )
    subjects = list(database)
    cells = sum(len(q) for q in queries) * database.total_residues
    int64_level = DTYPE_LADDER[-1]

    def seed_pass() -> None:
        for q in queries:
            clear_profile_cache()
            sw_score_batch(
                q,
                subjects,
                scheme,
                chunk_cells=chunk_cells,
                levels=(int64_level,),
                backend="numpy",
            )

    seed_gcups = cells / _time_pass(seed_pass, repeats) / 1e9

    packed = PackedDatabase.from_database(database, chunk_cells=chunk_cells)
    clear_profile_cache()

    def ladder_pass(backend) -> None:
        for q in queries:
            sw_score_packed(q, packed, scheme, backend=backend)

    def ladder_levels(backend) -> dict:
        out = {}
        for level in DTYPE_LADDER:
            if not level.usable(scheme):
                continue
            name = np.dtype(level.dtype).name

            def level_pass(level=level) -> None:
                for q in queries:
                    sw_score_packed(
                        q, packed, scheme, levels=(level,), backend=backend
                    )

            out[name] = cells / _time_pass(level_pass, repeats) / 1e9
        return out

    ladder_pass("numpy")  # warm the profile cache: steady-state cost
    packed_gcups = cells / _time_pass(lambda: ladder_pass("numpy"), repeats) / 1e9
    levels = ladder_levels("numpy")

    backends = {"numpy": {"packed_ladder": packed_gcups, "levels": levels}}
    speedup_compiled = None
    if backend_info.compiled:
        ladder_pass(backend_info)  # warm (includes any JIT compilation)
        compiled_gcups = (
            cells / _time_pass(lambda: ladder_pass(backend_info), repeats) / 1e9
        )
        backends[backend_info.name] = {
            "packed_ladder": compiled_gcups,
            "levels": ladder_levels(backend_info),
        }
        speedup_compiled = compiled_gcups / packed_gcups

    wf_subjects = subjects[: max(1, wavefront_subjects)]
    wf_db = SequenceDatabase(name="bench-wf", sequences=wf_subjects)
    wf_packed = PackedDatabase.from_database(wf_db, chunk_cells=chunk_cells)
    wf_cells = len(queries[0]) * wf_db.total_residues

    def wf_loop_pass() -> None:
        for s in wf_subjects:
            sw_score_wavefront(queries[0], s, scheme)

    def wf_batched_pass() -> None:
        sw_score_wavefront_packed(queries[0], wf_packed, scheme)

    wf_loop_gcups = wf_cells / _time_pass(wf_loop_pass, repeats) / 1e9
    wf_batched_gcups = wf_cells / _time_pass(wf_batched_pass, repeats) / 1e9

    telemetry = _telemetry_guard(queries, packed, database, scheme, repeats)

    return {
        "bench": "kernels",
        "workload": {
            "num_subjects": num_subjects,
            "min_len": min_len,
            "max_len": max_len,
            "query_len": query_len,
            "num_queries": num_queries,
            "repeats": repeats,
            "wavefront_subjects": len(wf_subjects),
            "db_residues": database.total_residues,
            "cells_per_pass": cells,
            "chunk_cells": chunk_cells,
            "seed": seed,
        },
        "gcups": {
            "seed_int64_per_call": seed_gcups,
            "packed_ladder": packed_gcups,
            "levels": levels,
            "backends": backends,
            "wavefront_per_subject": wf_loop_gcups,
            "wavefront_batched": wf_batched_gcups,
        },
        "kernel_backend": {
            "name": backend_info.name,
            "requested": backend_info.requested,
            "version": backend_info.version,
            "fallback_reason": backend_info.fallback_reason,
        },
        "speedup_packed_vs_seed": packed_gcups / seed_gcups,
        "speedup_wavefront_batched": wf_batched_gcups / wf_loop_gcups,
        "speedup_compiled_vs_numpy": speedup_compiled,
        "telemetry": telemetry,
    }


def _telemetry_guard(queries, packed, database, scheme, repeats: int) -> dict:
    """Measure the tracing overhead on the packed hot path.

    Runs the same instrumented pass the live engine uses (one
    ``task.kernel`` span per query, guarded by ``tracing.enabled()``)
    three ways: plain (no instrumentation), instrumented-but-disabled
    (the production default), and instrumented-with-tracing-on.  The
    reported percentages are the guard ``swdual bench kernels`` prints:
    disabled must be ~0%, enabled must stay small (<3% on a quiet
    machine; spans wrap per-task work, never per-cell loops).
    """
    cells_per_query = {q.id: len(q) * database.total_residues for q in queries}

    def plain_pass() -> None:
        for q in queries:
            sw_score_packed(q, packed, scheme)

    def instrumented_pass() -> None:
        for q in queries:
            if tracing.enabled():
                cm = tracing.span(
                    "task.kernel",
                    worker="bench",
                    kind="cpu",
                    query=q.id,
                    cells=cells_per_query[q.id],
                )
            else:
                cm = tracing.NULL_SPAN
            with cm:
                sw_score_packed(q, packed, scheme)

    was_enabled = tracing.enabled()
    tracing.disable()
    try:
        baseline_s = _time_pass(plain_pass, repeats)
        disabled_s = _time_pass(instrumented_pass, repeats)
        with tracing.enabled_tracing():
            enabled_s = _time_pass(instrumented_pass, repeats)
            tracing.drain()  # don't leak bench spans into caller traces
    finally:
        if was_enabled:
            tracing.enable()
    return {
        "baseline_s": baseline_s,
        "disabled_s": disabled_s,
        "enabled_s": enabled_s,
        "overhead_disabled_pct": (disabled_s / baseline_s - 1.0) * 100.0,
        "overhead_enabled_pct": (enabled_s / baseline_s - 1.0) * 100.0,
        "spans_per_pass": len(queries),
    }


def write_bench_report(report: dict, path: str) -> str:
    """Write a benchmark report dict as pretty JSON; returns *path*.

    Every report is stamped with the run's provenance (schema version,
    git revision, python/numpy versions, CPU count) on the way out —
    see :mod:`repro.platform.benchstamp`.
    """
    from repro.platform.benchstamp import stamp_report

    with open(path, "w") as fh:
        json.dump(stamp_report(report), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path
