"""Experiment: Table II / Figure 7 — the application comparison.

40 standard queries against the UniProt profile; SWPS3, STRIPED, SWIPE
and CUDASW++ at 1–4 workers, SWDUAL at 2–8 (GPUs first, then CPUs, per
Section V-A).  The driver regenerates the wall-clock execution times
and pairs them with the paper's reported values.
"""

from __future__ import annotations

from repro.comparators.apps import BASELINE_APPS, SWDUAL
from repro.experiments.report import ExperimentResult, Series
from repro.sequences.queries import standard_query_set
from repro.sequences.synthetic import paper_database_profile

__all__ = ["run_table2", "BASELINE_WORKER_COUNTS", "SWDUAL_WORKER_COUNTS"]

BASELINE_WORKER_COUNTS = (1, 2, 3, 4)
SWDUAL_WORKER_COUNTS = (2, 3, 4, 5, 6, 7, 8)


def run_table2(seed: int = 2014) -> ExperimentResult:
    """Regenerate Table II / Figure 7.

    Returns measured (simulated) execution times per application and
    worker count, alongside the paper's reported times.
    """
    database = paper_database_profile("uniprot", seed=seed)
    queries = standard_query_set()

    measured: dict[str, Series] = {}
    paper: dict[str, Series] = {}
    for app in BASELINE_APPS:
        measured[app.name] = Series(
            label=app.name,
            points={
                w: app.simulate(queries, database, w).report.wall_seconds
                for w in BASELINE_WORKER_COUNTS
            },
        )
        paper[app.name] = Series(label=app.name, points=dict(app.spec.measured_seconds))

    measured[SWDUAL.name] = Series(
        label=SWDUAL.name,
        points={
            w: SWDUAL.simulate(queries, database, w).report.wall_seconds
            for w in SWDUAL_WORKER_COUNTS
        },
    )
    paper[SWDUAL.name] = Series(
        label=SWDUAL.name, points=dict(SWDUAL.spec.measured_seconds)
    )
    return ExperimentResult(
        experiment_id="Table II / Figure 7",
        title="Execution times for the compared implementations (UniProt)",
        measured=measured,
        paper=paper,
        x_label="workers",
        unit="s",
    )
