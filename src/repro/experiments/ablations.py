"""Ablation experiments on the design choices DESIGN.md calls out.

A1 — knapsack priority order (Section III sorts by ``p/p̄``; the
ablation compares against GPU-time, CPU-time, random and index orders
and the exact DP split).

A2 — binary-search tolerance (the paper bounds iterations by
``log(Bmax − Bmin)``; the ablation sweeps the tolerance and records
iterations vs. makespan quality).

A3 — scheduler comparison (2-approx vs 3/2-DP vs all baselines) on the
paper workload and on adversarial random instances.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.baselines import BASELINES
from repro.core.binary_search import dual_approx_schedule
from repro.core.dual_approx import build_class_schedule
from repro.core.dual_approx_dp import make_dp_step
from repro.core.task import TaskSet, tasks_from_queries
from repro.platform.cluster import idgraf_platform
from repro.platform.perfmodel import PerformanceModel
from repro.sequences.queries import standard_query_set
from repro.sequences.synthetic import paper_database_profile
from repro.utils import ensure_rng

__all__ = [
    "paper_taskset",
    "knapsack_order_ablation",
    "tolerance_ablation",
    "scheduler_ablation",
    "KNAPSACK_ORDERS",
]


def paper_taskset(num_gpus: int = 4, num_cpus: int = 4) -> TaskSet:
    """The standard-workload task set on the calibrated platform."""
    perf = PerformanceModel(idgraf_platform(num_gpus, num_cpus))
    database = paper_database_profile("uniprot")
    return tasks_from_queries(standard_query_set(), database.total_residues, perf)


#: Name -> function(p, pbar, rng) returning GPU-filling priority order.
KNAPSACK_ORDERS = {
    "ratio (paper)": lambda p, pbar, rng: np.lexsort((np.arange(p.size), -(p / pbar))),
    "gpu-time": lambda p, pbar, rng: np.argsort(pbar, kind="stable"),
    "cpu-time": lambda p, pbar, rng: np.argsort(-p, kind="stable"),
    "index": lambda p, pbar, rng: np.arange(p.size),
    "random": lambda p, pbar, rng: rng.permutation(p.size),
}


@dataclass(frozen=True)
class OrderAblationRow:
    """Makespan of one GPU-filling order at a fixed guess."""

    order: str
    makespan: float
    cpu_area: float
    gpu_area: float


def knapsack_order_ablation(
    tasks: TaskSet,
    m: int,
    k: int,
    lam: float | None = None,
    seed: int = 0,
) -> list[OrderAblationRow]:
    """A1: replace the ratio order with alternatives and compare.

    Each order fills the GPUs up to the same area budget ``kλ``; the
    resulting split is list-scheduled identically, so any makespan
    difference is attributable to the ordering alone.
    """
    rng = ensure_rng(seed)
    p, pbar = tasks.cpu_times, tasks.gpu_times
    if lam is None:
        # A sensible guess: the dual-approximation's own final guess.
        lam = dual_approx_schedule(tasks, m, k).final_guess
    rows = []
    for name, order_fn in KNAPSACK_ORDERS.items():
        order = np.asarray(order_fn(p, pbar, rng))
        on_cpu = np.ones(len(tasks), dtype=bool)
        area = 0.0
        for j in order:
            if area >= k * lam:
                break
            on_cpu[j] = False
            area += pbar[j]
        schedule = build_class_schedule(tasks, on_cpu, m, k, label=name)
        rows.append(
            OrderAblationRow(
                order=name,
                makespan=schedule.makespan,
                cpu_area=float(p[on_cpu].sum()),
                gpu_area=float(area),
            )
        )
    return rows


@dataclass(frozen=True)
class ToleranceRow:
    """Binary-search behaviour at one tolerance."""

    tolerance: float
    iterations: int
    makespan: float
    lower_bound: float


def tolerance_ablation(
    tasks: TaskSet,
    m: int,
    k: int,
    tolerances: tuple[float, ...] = (0.3, 0.1, 0.03, 0.01, 0.003, 0.001),
) -> list[ToleranceRow]:
    """A2: tolerance sweep — iterations grow ~logarithmically while the
    makespan improvement saturates."""
    rows = []
    for tol in tolerances:
        result = dual_approx_schedule(tasks, m, k, tolerance=tol)
        rows.append(
            ToleranceRow(
                tolerance=tol,
                iterations=result.iterations,
                makespan=result.schedule.makespan,
                lower_bound=result.lower_bound,
            )
        )
    return rows


@dataclass(frozen=True)
class SchedulerRow:
    """One scheduler's makespan and idle time on one instance."""

    scheduler: str
    makespan: float
    total_idle: float


def scheduler_ablation(
    tasks: TaskSet, m: int, k: int
) -> list[SchedulerRow]:
    """A3: every scheduler on the same instance, sorted by makespan."""
    rows = []
    r2 = dual_approx_schedule(tasks, m, k)
    rows.append(
        SchedulerRow("swdual-2approx", r2.schedule.makespan, r2.schedule.total_idle_time)
    )
    r32 = dual_approx_schedule(tasks, m, k, step_fn=make_dp_step())
    rows.append(
        SchedulerRow("swdual-3/2dp", r32.schedule.makespan, r32.schedule.total_idle_time)
    )
    for name, fn in BASELINES.items():
        sched = fn(tasks, m, k)
        rows.append(SchedulerRow(name, sched.makespan, sched.total_idle_time))
    rows.sort(key=lambda r: r.makespan)
    return rows
