"""Run the complete evaluation in one call.

`run_all()` executes every table/figure driver and the ablations, and
renders one combined report — what `swdual experiment all` prints and
what EXPERIMENTS.md is refreshed from.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.ablations import (
    knapsack_order_ablation,
    paper_taskset,
    scheduler_ablation,
    tolerance_ablation,
)
from repro.experiments.robustness import robustness_ablation
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3
from repro.experiments.table4 import run_table4
from repro.experiments.table5 import run_table5
from repro.utils import ascii_table

__all__ = ["run_all", "EvaluationSummary"]


@dataclass(frozen=True)
class EvaluationSummary:
    """Everything Section V produces, regenerated."""

    table2: object
    table3: object
    table4: object
    table5: object
    ablation_text: str

    def render(self) -> str:
        """One combined plain-text report."""
        parts = [
            self.table2.table(),
            self.table3.table(),
            self.table4.times.table(),
            self.table4.gcups.table(),
            self.table5.times.table(),
            self.table5.gcups.table(),
            self.ablation_text,
        ]
        return "\n\n".join(parts)

    def shape_checks(self) -> dict[str, bool]:
        """The DESIGN.md §4 shape criteria as named booleans."""
        t2 = self.table2.measured
        checks = {
            "app ordering SWPS3>STRIPED>SWIPE>CUDASW++": all(
                t2["SWPS3"].value_at(w)
                > t2["STRIPED"].value_at(w)
                > t2["SWIPE"].value_at(w)
                > t2["CUDASW++"].value_at(w)
                for w in (1, 2, 3, 4)
            ),
            "SWDUAL wins at 4 workers": t2["SWDUAL"].value_at(4)
            < t2["CUDASW++"].value_at(4),
            "CUDASW++ wins at 2 workers": t2["CUDASW++"].value_at(2)
            < t2["SWDUAL"].value_at(2),
            "Table III matches spec": self.table3.matches_spec(),
            "times decrease with workers": all(
                s.is_decreasing() for s in self.table4.times.measured.values()
            ),
            "hom/het GCUPS within 25%": all(
                abs(
                    self.table5.gcups.measured["heterogeneous"].value_at(w)
                    / self.table5.gcups.measured["homogeneous"].value_at(w)
                    - 1.0
                )
                <= 0.25
                for w in (2, 4, 8)
            ),
        }
        return checks


def run_all(seed: int = 2014) -> EvaluationSummary:
    """Regenerate Tables II–V, Figures 7–9 and the A1–A4 ablations."""
    tasks = paper_taskset()
    from repro.platform import PerformanceModel, idgraf_platform

    perf = PerformanceModel(idgraf_platform(4, 4))
    a1 = knapsack_order_ablation(tasks, 4, 4)
    a2 = tolerance_ablation(tasks, 4, 4)
    a3 = scheduler_ablation(tasks, 4, 4)
    a4 = robustness_ablation(tasks, perf, sigmas=(0.0, 0.2, 0.8), seeds=(0, 1))
    ablation_text = "\n\n".join(
        [
            ascii_table(
                ["A1: order", "makespan (s)"],
                [[r.order, f"{r.makespan:.2f}"] for r in a1],
            ),
            ascii_table(
                ["A2: tolerance", "iterations", "makespan (s)"],
                [[f"{r.tolerance:g}", r.iterations, f"{r.makespan:.2f}"] for r in a2],
            ),
            ascii_table(
                ["A3: scheduler", "makespan (s)", "idle (s)"],
                [[r.scheduler, f"{r.makespan:.2f}", f"{r.total_idle:.2f}"] for r in a3],
            ),
            ascii_table(
                ["A4: sigma", "one-round", "self-sched", "winner"],
                [
                    [f"{r.sigma:g}", f"{r.one_round:.1f}", f"{r.self_scheduling:.1f}", r.best_policy()]
                    for r in a4
                ],
            ),
        ]
    )
    return EvaluationSummary(
        table2=run_table2(seed=seed),
        table3=run_table3(seed=seed),
        table4=run_table4(seed=seed, worker_counts=(2, 3, 4, 5, 6, 7, 8)),
        table5=run_table5(seed=seed, worker_counts=(2, 3, 4, 5, 6, 7, 8)),
        ablation_text=ablation_text,
    )
