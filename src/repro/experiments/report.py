"""Experiment result containers and rendering.

Every experiment driver returns an :class:`ExperimentResult` holding
labelled series of (x, value) points, the matching numbers reported in
the paper (when the paper reports them), and helpers to render the
paper-style ASCII table and to check the *shape* criteria of
DESIGN.md §4 (who wins, monotonicity, rough factors).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils import ascii_table

__all__ = ["Series", "ExperimentResult"]


@dataclass(frozen=True)
class Series:
    """One labelled line of a figure / row of a table."""

    label: str
    points: dict[int, float]  # x (worker count, ...) -> value

    def value_at(self, x: int) -> float:
        """Value at *x*; raises ``KeyError`` when absent."""
        return self.points[x]

    @property
    def xs(self) -> list[int]:
        """Sorted x positions."""
        return sorted(self.points)

    def is_decreasing(self, strict: bool = False) -> bool:
        """True when the series decreases along x (execution times
        should, as workers are added)."""
        values = [self.points[x] for x in self.xs]
        pairs = zip(values, values[1:])
        if strict:
            return all(a > b for a, b in pairs)
        return all(a >= b - 1e-12 for a, b in pairs)


@dataclass(frozen=True)
class ExperimentResult:
    """Outcome of one experiment driver."""

    experiment_id: str
    title: str
    #: Measured (simulated) series, keyed by label.
    measured: dict[str, Series]
    #: The paper's reported series for the same cells (may be sparse).
    paper: dict[str, Series] = field(default_factory=dict)
    #: Column header for the x axis.
    x_label: str = "workers"
    #: Unit of the values (for rendering).
    unit: str = "s"

    def table(self, include_paper: bool = True) -> str:
        """Paper-style ASCII table of measured (and paper) values."""
        xs = sorted({x for s in self.measured.values() for x in s.xs})
        headers = [self.x_label] + [str(x) for x in xs]
        rows = []
        for label, series in self.measured.items():
            rows.append(
                [label]
                + [
                    f"{series.points[x]:.2f}" if x in series.points else "-"
                    for x in xs
                ]
            )
            if include_paper and label in self.paper:
                ref = self.paper[label]
                rows.append(
                    [f"  (paper {label})"]
                    + [
                        f"{ref.points[x]:.2f}" if x in ref.points else "-"
                        for x in xs
                    ]
                )
        return ascii_table(headers, rows, title=f"{self.experiment_id}: {self.title}")

    def ratio_to_paper(self, label: str) -> dict[int, float]:
        """measured/paper ratio per x where both exist."""
        if label not in self.paper:
            raise KeyError(f"no paper reference for {label!r}")
        ref = self.paper[label]
        got = self.measured[label]
        return {
            x: got.points[x] / ref.points[x]
            for x in got.xs
            if x in ref.points
        }
