"""Experiment: Table V / Figure 9 — homogeneous vs heterogeneous sets.

Section V-C verifies "that the allocation strategy ... is equally able
to work with sequences ... that are similar in terms of size as well as
tasks with very different sizes": 40 queries of 4,500–5,000 residues
(homogeneous) and 40 of 4–35,213 residues (the UniProt extremes,
heterogeneous), both against UniProt, SWDUAL with 2–8 workers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.comparators.apps import SWDUAL
from repro.experiments.report import ExperimentResult, Series
from repro.sequences.queries import (
    QuerySet,
    heterogeneous_query_set,
    homogeneous_query_set,
)
from repro.sequences.synthetic import paper_database_profile

__all__ = ["run_table5", "PAPER_TABLE5", "TABLE5_WORKER_COUNTS", "FIGURE9_WORKER_COUNTS"]

TABLE5_WORKER_COUNTS = (2, 4, 8)
FIGURE9_WORKER_COUNTS = (2, 3, 4, 5, 6, 7, 8)

#: Table V as printed: set -> workers -> (seconds, GCUPS).
PAPER_TABLE5 = {
    "heterogeneous": {2: (3554.36, 37.55), 4: (1785.73, 74.74), 8: (908.45, 146.92)},
    "homogeneous": {2: (998.27, 36.3), 4: (484.74, 74.76), 8: (249.69, 145.14)},
}


@dataclass(frozen=True)
class Table5Result:
    """Times and GCUPS per query set and worker count."""

    times: ExperimentResult
    gcups: ExperimentResult


def run_table5(
    seed: int = 2014,
    worker_counts: tuple[int, ...] = FIGURE9_WORKER_COUNTS,
) -> Table5Result:
    """Regenerate Table V (and the Figure 9 curves)."""
    database = paper_database_profile("uniprot", seed=seed)
    sets: dict[str, QuerySet] = {
        "heterogeneous": heterogeneous_query_set(),
        "homogeneous": homogeneous_query_set(),
    }
    time_series: dict[str, Series] = {}
    gcups_series: dict[str, Series] = {}
    paper_times: dict[str, Series] = {}
    paper_gcups: dict[str, Series] = {}
    for label, queries in sets.items():
        points_t: dict[int, float] = {}
        points_g: dict[int, float] = {}
        for w in worker_counts:
            report = SWDUAL.simulate(queries, database, w).report
            points_t[w] = report.wall_seconds
            points_g[w] = report.gcups
        time_series[label] = Series(label=label, points=points_t)
        gcups_series[label] = Series(label=label, points=points_g)
        paper_times[label] = Series(
            label=label, points={w: t for w, (t, _) in PAPER_TABLE5[label].items()}
        )
        paper_gcups[label] = Series(
            label=label, points={w: g for w, (_, g) in PAPER_TABLE5[label].items()}
        )
    return Table5Result(
        times=ExperimentResult(
            experiment_id="Table V / Figure 9",
            title="SWDUAL on homogeneous vs heterogeneous query sets (UniProt)",
            measured=time_series,
            paper=paper_times,
            unit="s",
        ),
        gcups=ExperimentResult(
            experiment_id="Table V (GCUPS)",
            title="SWDUAL GCUPS on the two query sets",
            measured=gcups_series,
            paper=paper_gcups,
            unit="GCUPS",
        ),
    )
