"""Ablation A7 — sensitivity to the calibration's free parameter.

The performance model pins peak rates to the paper's single-worker
times, but the **GPU half-length** ``h`` (the query length at which a
GPU reaches half its peak rate) is the one modelling choice the paper
does not determine.  Because the peak is re-derived from CUDASW++'s T1
for *any* ``h`` (the closed form in `platform.calibration`), varying
``h`` changes the *distribution* of task times — and hence what the
scheduler can exploit — without changing the calibrated totals.

This ablation sweeps ``h`` over an order of magnitude and re-checks the
headline qualitative results, showing the reproduction's conclusions do
not hinge on the chosen constant.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.comparators.apps import CUDASW
from repro.engine.search import simulate_search
from repro.platform.calibration import (
    GPU_TASK_OVERHEAD_S,
    PAPER,
    peak_from_workload_time,
)
from repro.platform.cluster import idgraf_platform, swdual_worker_mix
from repro.platform.pe import RateModel
from repro.platform.perfmodel import PerformanceModel
from repro.sequences.queries import standard_query_set
from repro.sequences.synthetic import paper_database_profile

__all__ = ["SensitivityRow", "gpu_half_length_sensitivity", "DEFAULT_HALF_LENGTHS"]

DEFAULT_HALF_LENGTHS = (50.0, 120.0, 220.0, 400.0, 800.0)


@dataclass(frozen=True)
class SensitivityRow:
    """Headline quantities at one GPU half-length."""

    half_length: float
    gpu_peak_gcups: float
    swdual_2w: float
    swdual_4w: float
    swdual_8w: float
    cudasw_2w: float
    cudasw_4w: float

    @property
    def crossover_holds(self) -> bool:
        """Paper shape: CUDASW++ wins at 2 workers, SWDUAL at 4."""
        return (
            self.cudasw_2w < self.swdual_2w and self.swdual_4w < self.cudasw_4w
        )

    @property
    def speedup_2_to_8(self) -> float:
        """SWDUAL improvement from 2 to 8 workers."""
        return self.swdual_2w / self.swdual_8w


def gpu_half_length_sensitivity(
    half_lengths: tuple[float, ...] = DEFAULT_HALF_LENGTHS,
    seed: int = 2014,
) -> list[SensitivityRow]:
    """Sweep the GPU half-length and re-run the headline comparisons."""
    if not half_lengths:
        raise ValueError("need at least one half-length")
    database = paper_database_profile("uniprot", seed=seed)
    queries = standard_query_set()
    rows = []
    for h in half_lengths:
        if h < 0:
            raise ValueError(f"half-length must be >= 0, got {h}")
        peak = peak_from_workload_time(PAPER.cudasw_t1, h, GPU_TASK_OVERHEAD_S)
        gpu_rate = RateModel(
            peak_gcups=peak, half_length=h, task_overhead_s=GPU_TASK_OVERHEAD_S
        )

        def swdual_time(workers: int) -> float:
            gpus, cpus = swdual_worker_mix(workers)
            perf = PerformanceModel(
                idgraf_platform(gpus, cpus, gpu_rate=gpu_rate)
            )
            return simulate_search(
                queries, database, gpus, cpus, policy="swdual", perf=perf
            ).report.wall_seconds

        # CUDASW++ with the same half-length (its peak re-derived from
        # its own T1, so the single-worker anchor is preserved).
        cudasw_times = {}
        for w in (2, 4):
            app_platform = CUDASW.platform(w)
            scaled = RateModel(
                peak_gcups=peak * CUDASW.efficiency(w),
                half_length=h,
                task_overhead_s=GPU_TASK_OVERHEAD_S,
            )
            perf = PerformanceModel(
                idgraf_platform(w, 0, gpu_rate=scaled),
                gpu_parallel_efficiency=1.0,
                gpu_cpu_service_fraction=0.0,
            )
            from repro.core.task import TaskSet
            from repro.engine.simulation import simulate_self_scheduling

            seconds = [
                scaled.task_seconds(int(q), database.total_residues)
                for q in queries.lengths
            ]
            tasks = TaskSet(
                cpu_times=seconds,
                gpu_times=seconds,
                query_lengths=queries.lengths,
                db_residues=database.total_residues,
            )
            cudasw_times[w] = simulate_self_scheduling(
                tasks, perf.platform, perf
            ).report.wall_seconds
        _ = app_platform  # documented parity with ComparatorApp.platform

        rows.append(
            SensitivityRow(
                half_length=h,
                gpu_peak_gcups=peak,
                swdual_2w=swdual_time(2),
                swdual_4w=swdual_time(4),
                swdual_8w=swdual_time(8),
                cudasw_2w=cudasw_times[2],
                cudasw_4w=cudasw_times[4],
            )
        )
    return rows
