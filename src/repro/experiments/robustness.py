"""Ablation A4 — robustness of the one-round allocation to prediction
error.

SWDUAL's one-round static allocation trusts the per-task time
predictions; the paper notes allocation could also run "iteratively
until all tasks are executed".  This ablation injects multiplicative
lognormal error between predicted and actual durations
(:class:`repro.engine.simulation.DurationNoise`) and compares, under
the *same* per-task errors:

* the one-round SWDUAL plan (static — imbalance grows with the error);
* iterative SWDUAL with 2/4/8 rounds (barriers bound the drift);
* dynamic self-scheduling (fully error-absorbing, but blind to
  heterogeneity).

The interesting regime is where the curves cross: below some error
level the one-round plan wins (no barrier idle), above it the dynamic
strategies take over.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.swdual import SWDualScheduler
from repro.core.task import TaskSet
from repro.engine.simulation import (
    DurationNoise,
    simulate_plan,
    simulate_self_scheduling,
    simulate_swdual_rounds,
)
from repro.platform.perfmodel import PerformanceModel

__all__ = ["RobustnessRow", "robustness_ablation", "DEFAULT_SIGMAS"]

DEFAULT_SIGMAS = (0.0, 0.1, 0.2, 0.4, 0.8)


@dataclass(frozen=True)
class RobustnessRow:
    """Makespan of each policy at one noise level (averaged over seeds)."""

    sigma: float
    one_round: float
    rounds2: float
    rounds4: float
    self_scheduling: float

    def best_policy(self) -> str:
        """Name of the winning policy at this noise level."""
        values = {
            "one-round": self.one_round,
            "2-rounds": self.rounds2,
            "4-rounds": self.rounds4,
            "self-scheduling": self.self_scheduling,
        }
        return min(values, key=values.get)


def robustness_ablation(
    tasks: TaskSet,
    perf: PerformanceModel,
    sigmas: tuple[float, ...] = DEFAULT_SIGMAS,
    seeds: tuple[int, ...] = (0, 1, 2),
) -> list[RobustnessRow]:
    """Run the A4 sweep; every policy sees identical per-task errors."""
    if not sigmas:
        raise ValueError("need at least one sigma")
    if not seeds:
        raise ValueError("need at least one seed")
    platform = perf.platform
    m, k = platform.num_cpus, platform.num_gpus
    plan = SWDualScheduler("2approx").schedule_tasks(tasks, m, k).schedule

    rows = []
    for sigma in sigmas:
        acc = {"one": 0.0, "r2": 0.0, "r4": 0.0, "self": 0.0}
        for seed in seeds:
            noise = DurationNoise(sigma, seed=seed)
            acc["one"] += simulate_plan(
                tasks, plan, platform, perf, noise=noise
            ).report.wall_seconds
            acc["r2"] += simulate_swdual_rounds(
                tasks, platform, perf, rounds=2, noise=noise
            ).report.wall_seconds
            acc["r4"] += simulate_swdual_rounds(
                tasks, platform, perf, rounds=4, noise=noise
            ).report.wall_seconds
            acc["self"] += simulate_self_scheduling(
                tasks, platform, perf, noise=noise
            ).report.wall_seconds
        n = len(seeds)
        rows.append(
            RobustnessRow(
                sigma=sigma,
                one_round=acc["one"] / n,
                rounds2=acc["r2"] / n,
                rounds4=acc["r4"] / n,
                self_scheduling=acc["self"] / n,
            )
        )
    return rows
