"""Experiment: Table III — the genomic databases used in the tests.

Regenerates the database summary table from the synthetic profiles and
checks them against the paper's counts (and the residue totals implied
by Table IV — see :mod:`repro.sequences.synthetic`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sequences.database import DatabaseStats
from repro.sequences.synthetic import (
    PAPER_DATABASE_ORDER,
    PAPER_DATABASES,
    paper_database_profile,
)
from repro.utils import ascii_table

__all__ = ["run_table3", "Table3Result"]


@dataclass(frozen=True)
class Table3Result:
    """Synthetic database stats next to the paper's spec."""

    stats: list[DatabaseStats]

    def table(self) -> str:
        """Render the Table III layout."""
        headers = [
            "Database",
            "Number of seqs",
            "Smallest",
            "Longest",
            "Mean",
            "Total residues",
        ]
        return ascii_table(
            headers,
            [s.as_row() for s in self.stats],
            title="Table III: Genomic databases used on the tests",
        )

    def matches_spec(self) -> bool:
        """True when every generated profile matches the paper's spec."""
        for stats in self.stats:
            spec = next(
                s for s in PAPER_DATABASES.values() if s.name == stats.name
            )
            if stats.num_sequences != spec.num_sequences:
                return False
            if stats.min_length != spec.min_length:
                return False
            if stats.max_length != spec.max_length:
                return False
            if stats.total_residues != spec.total_residues:
                return False
        return True


def run_table3(seed: int = 2014) -> Table3Result:
    """Regenerate Table III from the seeded synthetic databases."""
    stats = [
        paper_database_profile(key, seed=seed).stats()
        for key in PAPER_DATABASE_ORDER
    ]
    return Table3Result(stats=stats)
