"""A5 — online-scheduler policy ablation on the live engine.

Every allocation policy (self / swdual / swdual-dp / affinity) crossed
with both calibration modes (oneshot / rolling) on the same drilled
warm pool: the GPU-role workers run every task ``slow_seconds`` long
(:meth:`~repro.engine.faults.FaultPlan.slowdown`) while the starting
rates still claim they are the fast class — the drift the rolling
plane exists to absorb.  Each cell reports per-batch wall-time
statistics, the reallocation count the incremental allocator recorded,
and a bit-identical check of the final hit tables against the first
cell (policies and calibration modes may only move *placement*, never
scores).

With *timeline_dir* set, each cell's per-task kernel spans are reduced
to a schedule timeline (:func:`repro.telemetry.export.schedule_timeline`)
and written as ``timeline_<policy>_<calibration>.json`` — the live
counterpart of the paper's Figure 4/5 schedule sketches, showing the
slow class draining as the rolling estimates catch up.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

__all__ = ["SchedulingRow", "SCHEDULING_POLICIES", "scheduling_ablation"]

#: Policies the ablation crosses with the calibration modes.
SCHEDULING_POLICIES = ("self", "swdual", "swdual-dp", "affinity")

#: Stale starting rates: the GPU class claimed 4x faster than CPU.
_STALE_RATES = {"cpu": 1.0, "gpu": 4.0}


@dataclass(frozen=True)
class SchedulingRow:
    """One (policy, calibration) cell of the ablation grid."""

    policy: str
    calibration: str
    mean_batch_s: float
    p99_batch_s: float
    reallocations: int
    timeline_makespan_s: float
    scores_identical: bool


def scheduling_ablation(
    policies: tuple[str, ...] = SCHEDULING_POLICIES,
    num_subjects: int = 120,
    num_queries: int = 5,
    batches: int = 6,
    warm_batches: int = 1,
    slow_seconds: float = 0.03,
    timeline_dir: str | None = None,
    seed: int = 0,
) -> list[SchedulingRow]:
    """Run the grid; returns one row per (policy, calibration) cell.

    Rows are ordered policy-major with ``oneshot`` before ``rolling``,
    so consecutive pairs compare the calibration modes under one
    policy.
    """
    from repro.engine.faults import FaultPlan
    from repro.platform.benchkernels import build_bench_workload
    from repro.sched import CALIBRATION_MODES, IncrementalAllocator, RollingCalibrator
    from repro.service.pool import WarmPool
    from repro.telemetry import tracing
    from repro.telemetry.export import schedule_timeline, write_schedule_timeline

    queries, database = build_bench_workload(
        num_subjects, 60, 180, 140, num_queries, seed
    )
    horizon = (warm_batches + batches) * num_queries + 64
    if timeline_dir is not None:
        os.makedirs(timeline_dir, exist_ok=True)

    rows: list[SchedulingRow] = []
    reference: list | None = None
    for policy in policies:
        for calibration in CALIBRATION_MODES:
            plan = FaultPlan.slowdown(
                ["gpu0", "gpu1"], slow_seconds=slow_seconds, horizon=horizon
            )
            calibrator = allocator = None
            if calibration == "rolling":
                calibrator = RollingCalibrator(seed_rates=_STALE_RATES)
                allocator = IncrementalAllocator(calibrator, fallback_rates=_STALE_RATES)
            walls: list[float] = []
            tracing.drain()  # each cell gets its own span window
            with tracing.enabled_tracing():
                with WarmPool(
                    database,
                    num_cpu_workers=2,
                    num_gpu_workers=2,
                    backend="threads",
                    policy=policy,
                    measured_gcups=dict(_STALE_RATES),
                    top_hits=10,
                    fault_plan=plan,
                ) as pool:
                    for i in range(warm_batches + batches):
                        rates = (
                            allocator.rates_for_batch()
                            if allocator is not None
                            else None
                        )
                        report = pool.run_batch(queries, measured_gcups=rates)
                        if calibrator is not None:
                            calibrator.observe_report(report)
                        if i >= warm_batches:
                            walls.append(report.wall_seconds)
                spans = tracing.drain()
            timeline = schedule_timeline(spans)
            if timeline_dir is not None:
                write_schedule_timeline(
                    spans,
                    os.path.join(
                        timeline_dir, f"timeline_{policy}_{calibration}.json"
                    ),
                )
            hits = [
                [(h.subject_id, h.score) for h in qr.hits]
                for qr in report.query_results
            ]
            if reference is None:
                reference = hits
            arr = np.asarray(walls, dtype=float)
            rows.append(
                SchedulingRow(
                    policy=policy,
                    calibration=calibration,
                    mean_batch_s=float(arr.mean()),
                    p99_batch_s=float(np.percentile(arr, 99)),
                    reallocations=allocator.reallocations if allocator else 0,
                    timeline_makespan_s=timeline["makespan_s"],
                    scores_identical=hits == reference,
                )
            )
    return rows
