"""Experiment drivers regenerating every table and figure of Section V,
plus the design-choice ablations."""

from repro.experiments.report import ExperimentResult, Series
from repro.experiments.table2 import (
    BASELINE_WORKER_COUNTS,
    SWDUAL_WORKER_COUNTS,
    run_table2,
)
from repro.experiments.table3 import Table3Result, run_table3
from repro.experiments.table4 import (
    FIGURE8_WORKER_COUNTS,
    PAPER_TABLE4,
    TABLE4_WORKER_COUNTS,
    run_table4,
)
from repro.experiments.table5 import (
    FIGURE9_WORKER_COUNTS,
    PAPER_TABLE5,
    TABLE5_WORKER_COUNTS,
    run_table5,
)
from repro.experiments.summary import EvaluationSummary, run_all
from repro.experiments.sensitivity import (
    DEFAULT_HALF_LENGTHS,
    SensitivityRow,
    gpu_half_length_sensitivity,
)
from repro.experiments.robustness import (
    DEFAULT_SIGMAS,
    RobustnessRow,
    robustness_ablation,
)
from repro.experiments.ablations import (
    KNAPSACK_ORDERS,
    knapsack_order_ablation,
    paper_taskset,
    scheduler_ablation,
    tolerance_ablation,
)
from repro.experiments.scheduling import (
    SCHEDULING_POLICIES,
    SchedulingRow,
    scheduling_ablation,
)

__all__ = [
    "ExperimentResult",
    "Series",
    "run_table2",
    "BASELINE_WORKER_COUNTS",
    "SWDUAL_WORKER_COUNTS",
    "run_table3",
    "Table3Result",
    "run_table4",
    "PAPER_TABLE4",
    "TABLE4_WORKER_COUNTS",
    "FIGURE8_WORKER_COUNTS",
    "run_table5",
    "PAPER_TABLE5",
    "TABLE5_WORKER_COUNTS",
    "FIGURE9_WORKER_COUNTS",
    "paper_taskset",
    "knapsack_order_ablation",
    "tolerance_ablation",
    "scheduler_ablation",
    "KNAPSACK_ORDERS",
    "robustness_ablation",
    "RobustnessRow",
    "DEFAULT_SIGMAS",
    "run_all",
    "EvaluationSummary",
    "gpu_half_length_sensitivity",
    "SensitivityRow",
    "DEFAULT_HALF_LENGTHS",
    "scheduling_ablation",
    "SchedulingRow",
    "SCHEDULING_POLICIES",
]
