"""Experiment: Table IV / Figure 8 — SWDUAL across the five databases.

40 standard queries against each of the five genomic databases;
SWDUAL with 2, 4 and 8 workers for the table, 2–8 for the figure.
Reports both wall-clock seconds and GCUPS, as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.comparators.apps import SWDUAL
from repro.experiments.report import ExperimentResult, Series
from repro.sequences.queries import standard_query_set
from repro.sequences.synthetic import PAPER_DATABASE_ORDER, paper_database_profile

__all__ = ["run_table4", "PAPER_TABLE4", "TABLE4_WORKER_COUNTS", "FIGURE8_WORKER_COUNTS"]

TABLE4_WORKER_COUNTS = (2, 4, 8)
FIGURE8_WORKER_COUNTS = (2, 3, 4, 5, 6, 7, 8)

#: Table IV as printed: db -> workers -> (seconds, GCUPS).
PAPER_TABLE4 = {
    "ensembl_dog": {2: (78.36, 18.91), 4: (39.63, 37.39), 8: (20.45, 72.45)},
    "ensembl_rat": {2: (75.85, 22.97), 4: (37.97, 45.89), 8: (20.17, 86.38)},
    "refseq_mouse": {2: (84.40, 18.99), 4: (46.25, 34.66), 8: (23.59, 67.95)},
    "refseq_human": {2: (95.09, 20.70), 4: (48.01, 41.00), 8: (24.82, 79.31)},
    "uniprot": {2: (543.28, 35.81), 4: (271.98, 71.53), 8: (142.98, 136.06)},
}


@dataclass(frozen=True)
class Table4Result:
    """Times and GCUPS per database and worker count."""

    times: ExperimentResult
    gcups: ExperimentResult


def run_table4(
    seed: int = 2014,
    worker_counts: tuple[int, ...] = FIGURE8_WORKER_COUNTS,
) -> Table4Result:
    """Regenerate Table IV (and the Figure 8 curves).

    Parameters
    ----------
    worker_counts:
        Worker counts to simulate; the table uses (2, 4, 8), the figure
        the full 2–8 range.
    """
    queries = standard_query_set()
    time_series: dict[str, Series] = {}
    gcups_series: dict[str, Series] = {}
    paper_times: dict[str, Series] = {}
    paper_gcups: dict[str, Series] = {}
    for key in PAPER_DATABASE_ORDER:
        database = paper_database_profile(key, seed=seed)
        points_t: dict[int, float] = {}
        points_g: dict[int, float] = {}
        for w in worker_counts:
            report = SWDUAL.simulate(queries, database, w).report
            points_t[w] = report.wall_seconds
            points_g[w] = report.gcups
        label = database.name
        time_series[label] = Series(label=label, points=points_t)
        gcups_series[label] = Series(label=label, points=points_g)
        paper_times[label] = Series(
            label=label,
            points={w: t for w, (t, _) in PAPER_TABLE4[key].items()},
        )
        paper_gcups[label] = Series(
            label=label,
            points={w: g for w, (_, g) in PAPER_TABLE4[key].items()},
        )
    return Table4Result(
        times=ExperimentResult(
            experiment_id="Table IV / Figure 8",
            title="SWDUAL execution times on the five databases",
            measured=time_series,
            paper=paper_times,
            unit="s",
        ),
        gcups=ExperimentResult(
            experiment_id="Table IV (GCUPS)",
            title="SWDUAL GCUPS on the five databases",
            measured=gcups_series,
            paper=paper_gcups,
            unit="GCUPS",
        ),
    )
