"""High-level SWDUAL scheduler API.

Ties the pieces of Section III together behind one call: build the
task set, run the dual-approximation binary search (2-approx greedy
step by default, 3/2 DP step on request) and return the schedule with
its diagnostics.  This is what the master of the execution engine uses
to allocate tasks, and what the benchmarks drive.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.binary_search import DualApproxResult, dual_approx_schedule
from repro.core.dual_approx import dual_approx_step
from repro.core.dual_approx_dp import make_dp_step
from repro.core.schedule import Schedule
from repro.core.task import TaskSet, tasks_from_queries
from repro.platform.cluster import HybridPlatform
from repro.platform.perfmodel import PerformanceModel
from repro.sequences.queries import QuerySet

__all__ = ["SWDualScheduler", "SWDualPlan"]


@dataclass(frozen=True)
class SWDualPlan:
    """A complete SWDUAL allocation: schedule + search diagnostics."""

    schedule: Schedule
    result: DualApproxResult
    tasks: TaskSet

    @property
    def makespan(self) -> float:
        """Planned ``C_max`` in seconds."""
        return self.schedule.makespan

    @property
    def lower_bound(self) -> float:
        """Certified lower bound on the optimal makespan."""
        return self.result.lower_bound

    def summary(self) -> str:
        """One-line human-readable description of the plan."""
        s = self.schedule
        return (
            f"{s.label}: makespan {s.makespan:.2f}s, "
            f"lower bound {self.lower_bound:.2f}s "
            f"(gap x{self.result.optimality_gap:.3f}), "
            f"{self.result.iterations} guesses, "
            f"total idle {s.total_idle_time:.2f}s"
        )


class SWDualScheduler:
    """The SWDUAL allocation policy.

    Parameters
    ----------
    variant:
        ``"2approx"`` (greedy knapsack step, the implementation the
        paper evaluates) or ``"3/2dp"`` (the DP refinement).
    tolerance:
        Binary-search relative termination width.
    dp_resolution:
        GPU-area discretisation for the DP variant (``None`` scales it
        with the task count).
    """

    VARIANTS = ("2approx", "3/2dp")

    def __init__(
        self,
        variant: str = "2approx",
        tolerance: float = 1e-3,
        dp_resolution: int | None = None,
    ):
        if variant not in self.VARIANTS:
            raise ValueError(
                f"variant must be one of {self.VARIANTS}, got {variant!r}"
            )
        if tolerance <= 0:
            raise ValueError(f"tolerance must be positive, got {tolerance}")
        self.variant = variant
        self.tolerance = tolerance
        self.dp_resolution = dp_resolution
        self._step = (
            dual_approx_step if variant == "2approx" else make_dp_step(dp_resolution)
        )

    def schedule_tasks(self, tasks: TaskSet, m: int, k: int) -> SWDualPlan:
        """Schedule an explicit task set on ``m`` CPUs and ``k`` GPUs."""
        result = dual_approx_schedule(
            tasks, m, k, tolerance=self.tolerance, step_fn=self._step
        )
        return SWDualPlan(schedule=result.schedule, result=result, tasks=tasks)

    def schedule_queries(
        self,
        queries: QuerySet,
        db_residues: int,
        perf: PerformanceModel,
    ) -> SWDualPlan:
        """Schedule a query set against a database on *perf*'s platform."""
        platform = perf.platform
        tasks = tasks_from_queries(queries, db_residues, perf)
        return self.schedule_tasks(tasks, platform.num_cpus, platform.num_gpus)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SWDualScheduler(variant={self.variant!r}, tol={self.tolerance})"


def _platform_counts(platform: HybridPlatform) -> tuple[int, int]:
    return platform.num_cpus, platform.num_gpus
