"""One step of the 2-dual-approximation (Section III).

Given a guess ``λ``, either build a schedule of makespan at most ``2λ``
or answer "NO" (correctly certifying that no schedule of length ``≤ λ``
exists):

1. Feasibility pre-checks from the properties of a λ-schedule: every
   task must fit on *some* PE within λ; a task with ``p_j > λ`` is
   **forced to a GPU**, one with ``p̄_j > λ`` is **forced to a CPU**.
2. The greedy minimisation knapsack fills the GPUs in decreasing
   ``p_j/p̄_j`` order up to area ``kλ`` (overflowing with the last task
   ``j_last``, per Figure 4).
3. If the remaining CPU area exceeds ``mλ`` — or the forced-GPU area
   alone exceeds ``kλ`` — answer "NO"; both follow because the greedy's
   CPU area is no larger than that of any assignment a λ-schedule could
   use (ratio-prefix exchange argument).
4. Otherwise list-schedule each class: GPUs in selection order (so
   ``j_last`` lands last, as Proposition 1's analysis requires), CPUs
   in LPT order (any order satisfies the 2λ bound; LPT just packs
   better in practice).

Proposition 1 then gives ``C_max <= 2λ`` — asserted by the test suite
on randomised instances.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.knapsack import KnapsackResult, greedy_min_knapsack
from repro.core.listsched import list_schedule, lpt_order
from repro.core.schedule import Schedule
from repro.core.task import TaskSet
from repro.telemetry import tracing

__all__ = ["DualApproxStep", "dual_approx_step", "build_class_schedule"]


@dataclass(frozen=True)
class DualApproxStep:
    """Successful step outcome: the schedule plus the split diagnostics."""

    schedule: Schedule
    knapsack: KnapsackResult
    guess: float


def _pe_names(m: int, k: int) -> tuple[list[str], list[str]]:
    return [f"cpu{i}" for i in range(m)], [f"gpu{i}" for i in range(k)]


def build_class_schedule(
    tasks: TaskSet,
    on_cpu: np.ndarray,
    m: int,
    k: int,
    gpu_order: np.ndarray | None = None,
    cpu_order: np.ndarray | None = None,
    label: str = "schedule",
) -> Schedule:
    """List-schedule a CPU/GPU split onto concrete PEs.

    ``gpu_order``/``cpu_order`` give the within-class scheduling order
    as arrays of global task indices (defaults: LPT for both).
    """
    on_cpu = np.asarray(on_cpu, dtype=bool)
    if on_cpu.shape != (len(tasks),):
        raise ValueError("on_cpu mask shape mismatch")
    p, pbar = tasks.cpu_times, tasks.gpu_times
    cpu_names, gpu_names = _pe_names(m, k)
    cpu_idx = np.flatnonzero(on_cpu)
    gpu_idx = np.flatnonzero(~on_cpu)
    if cpu_idx.size and m == 0:
        raise ValueError("tasks assigned to CPUs but platform has none")
    if gpu_idx.size and k == 0:
        raise ValueError("tasks assigned to GPUs but platform has none")
    if cpu_order is None:
        cpu_order = cpu_idx[lpt_order(p[cpu_idx])]
    if gpu_order is None:
        gpu_order = gpu_idx[lpt_order(pbar[gpu_idx])]
    with tracing.span(
        "sched.listsched", cpu_tasks=int(cpu_idx.size), gpu_tasks=int(gpu_idx.size)
    ):
        slots = list_schedule(list(cpu_order), list(p[cpu_order]), cpu_names)
        slots += list_schedule(list(gpu_order), list(pbar[gpu_order]), gpu_names)
    return Schedule(
        slots=slots,
        pe_names=cpu_names + gpu_names,
        num_tasks=len(tasks),
        label=label,
    )


def dual_approx_step(
    tasks: TaskSet, m: int, k: int, lam: float
) -> DualApproxStep | None:
    """Run one guess of the 2-dual-approximation.

    Returns the built step (schedule of makespan ``<= 2λ``) or ``None``
    for a certified "NO".
    """
    if lam <= 0:
        raise ValueError(f"guess λ must be positive, got {lam}")
    if m < 0 or k < 0 or (m == 0 and k == 0):
        raise ValueError(f"invalid platform size m={m}, k={k}")
    p, pbar = tasks.cpu_times, tasks.gpu_times
    # Ulp-scale tolerance on every λ comparison: a caller probing
    # λ = OPT may hold a value one rounding away from the task time
    # that realises it (e.g. an OPT recomputed through a different
    # float path), and the exact strict checks would then force that
    # task to the wrong class and certify a wrong "NO".  The slack is
    # far below the 2λ guarantee's own headroom.
    tol = 1e-12 * max(1.0, lam)
    fit = lam + tol

    # A λ-schedule runs every task somewhere (on an available class)
    # within λ.
    if m and k:
        per_task_best = np.minimum(p, pbar)
    else:
        per_task_best = p if k == 0 else pbar
    if (per_task_best > fit).any():
        return None

    # Single-class platforms degenerate to plain list scheduling.
    if k == 0:
        if (p > fit).any() or p.sum() > m * fit:
            return None
        schedule = build_class_schedule(
            tasks, np.ones(len(tasks), bool), m, k, label=f"dual2(λ={lam:.3g})"
        )
        return DualApproxStep(
            schedule=schedule,
            knapsack=KnapsackResult(
                on_cpu=np.ones(len(tasks), bool),
                cpu_area=float(p.sum()),
                gpu_area=0.0,
            ),
            guess=lam,
        )
    if m == 0:
        if (pbar > fit).any() or pbar.sum() > k * fit:
            return None
        schedule = build_class_schedule(
            tasks, np.zeros(len(tasks), bool), m, k, label=f"dual2(λ={lam:.3g})"
        )
        return DualApproxStep(
            schedule=schedule,
            knapsack=KnapsackResult(
                on_cpu=np.zeros(len(tasks), bool),
                cpu_area=0.0,
                gpu_area=float(pbar.sum()),
            ),
            guess=lam,
        )

    forced_gpu = p > fit
    forced_cpu = pbar > fit
    if (forced_gpu & forced_cpu).any():
        return None  # the task fits nowhere within λ
    if float(pbar[forced_gpu].sum()) > k * fit:
        return None  # forced GPU load alone refutes the guess

    with tracing.span("sched.knapsack", tasks=len(tasks), guess=lam):
        result = greedy_min_knapsack(
            p, pbar, capacity=k * lam, forced_gpu=forced_gpu, forced_cpu=forced_cpu
        )
    if result.cpu_area > m * lam + 1e-9:
        return None

    # GPU side in greedy selection order: forced tasks first, then the
    # ratio order; j_last therefore runs last (Proposition 1's case
    # analysis removes it from the area bound).
    gpu_idx = np.flatnonzero(~result.on_cpu)
    ratio = p / pbar
    selection_rank = np.lexsort((np.arange(len(tasks)), -ratio))
    rank_of = np.empty(len(tasks), dtype=np.int64)
    rank_of[selection_rank] = np.arange(len(tasks))
    # forced first (rank -1), then ratio rank.
    keys = np.where(forced_gpu[gpu_idx], -1, rank_of[gpu_idx])
    gpu_order = gpu_idx[np.argsort(keys, kind="stable")]
    schedule = build_class_schedule(
        tasks,
        result.on_cpu,
        m,
        k,
        gpu_order=gpu_order,
        label=f"dual2(λ={lam:.3g})",
    )
    return DualApproxStep(schedule=schedule, knapsack=result, guess=lam)
