"""Baseline scheduling strategies from the related work.

Section I describes how prior hybrid approaches distribute work:

* assume multi-cores and accelerators have the **same processing
  power** [11] → :func:`equal_power_split` (round-robin over all PEs);
* split **proportionally to theoretical computing power** [12] →
  :func:`proportional_split`;
* assign **one work unit at a time** in a Self-Scheduling strategy
  [10] → :func:`self_scheduling` (dynamic, earliest-available PE).

Two classic heterogeneous heuristics round out the comparison set for
the scheduler ablation: :func:`hetero_lpt` (earliest-finish-time in LPT
order — a HEFT-style greedy for independent tasks) and
:func:`earliest_finish_time` with arbitrary order.
"""

from __future__ import annotations

import heapq
from collections.abc import Sequence

import numpy as np

from repro.core.schedule import Schedule, ScheduledTask
from repro.core.task import TaskSet

__all__ = [
    "self_scheduling",
    "equal_power_split",
    "proportional_split",
    "hetero_lpt",
    "earliest_finish_time",
    "BASELINES",
]


def _class_names(m: int, k: int) -> tuple[list[str], list[str]]:
    return [f"cpu{i}" for i in range(m)], [f"gpu{i}" for i in range(k)]


def _check_platform(tasks: TaskSet, m: int, k: int) -> None:
    if m < 0 or k < 0 or (m == 0 and k == 0):
        raise ValueError(f"invalid platform size m={m}, k={k}")
    if len(tasks) == 0:
        raise ValueError("empty task set")


def self_scheduling(
    tasks: TaskSet, m: int, k: int, order: Sequence[int] | None = None
) -> Schedule:
    """Dynamic self-scheduling: hand the next task to whichever PE
    becomes available first (its class decides the task's duration).

    This is the one-work-unit-at-a-time strategy the paper attributes
    to the hybrid-grid prior work; it balances load well but ignores
    *which* tasks profit most from GPUs.
    """
    _check_platform(tasks, m, k)
    cpu_names, gpu_names = _class_names(m, k)
    # Heap of (available_at, tie, name, is_gpu).
    heap = [(0.0, i, name, False) for i, name in enumerate(cpu_names)]
    heap += [(0.0, m + i, name, True) for i, name in enumerate(gpu_names)]
    heapq.heapify(heap)
    order = range(len(tasks)) if order is None else order
    slots = []
    for j in order:
        avail, tie, name, is_gpu = heapq.heappop(heap)
        d = tasks[j].time_on(is_gpu)
        slots.append(ScheduledTask(task_index=j, pe_name=name, start=avail, end=avail + d))
        heapq.heappush(heap, (avail + d, tie, name, is_gpu))
    return Schedule(
        slots=slots,
        pe_names=cpu_names + gpu_names,
        num_tasks=len(tasks),
        label="self-scheduling",
    )


def equal_power_split(tasks: TaskSet, m: int, k: int) -> Schedule:
    """Static round-robin assuming every PE is equally fast [11].

    Task ``j`` goes to PE ``j mod (m+k)``; within a PE tasks run
    back-to-back in index order.
    """
    _check_platform(tasks, m, k)
    cpu_names, gpu_names = _class_names(m, k)
    names = cpu_names + gpu_names
    loads = {name: 0.0 for name in names}
    slots = []
    for j in range(len(tasks)):
        name = names[j % len(names)]
        is_gpu = name in gpu_names
        d = tasks[j].time_on(is_gpu)
        start = loads[name]
        slots.append(ScheduledTask(task_index=j, pe_name=name, start=start, end=start + d))
        loads[name] = start + d
    return Schedule(slots=slots, pe_names=names, num_tasks=len(tasks), label="equal-power")


def proportional_split(tasks: TaskSet, m: int, k: int) -> Schedule:
    """Static split proportional to theoretical class throughput [12].

    The class speed ratio is estimated from the task set itself (mean
    ``p/p̄``); tasks are dealt out, in index order, so each class
    receives work proportional to its aggregate speed, then spread
    round-robin within the class.
    """
    _check_platform(tasks, m, k)
    cpu_names, gpu_names = _class_names(m, k)
    if m == 0 or k == 0:
        return self_scheduling(tasks, m, k)  # degenerate: single class
    speedup = float(np.mean(tasks.cpu_times / tasks.gpu_times))
    gpu_power = k * speedup
    total_power = m + gpu_power
    gpu_share = gpu_power / total_power
    n = len(tasks)
    names = cpu_names + gpu_names
    loads = {name: 0.0 for name in names}
    slots = []
    gpu_credit = 0.0
    cpu_i = gpu_i = 0
    for j in range(n):
        gpu_credit += gpu_share
        if gpu_credit >= 1.0:
            gpu_credit -= 1.0
            name = gpu_names[gpu_i % k]
            gpu_i += 1
            is_gpu = True
        else:
            name = cpu_names[cpu_i % m]
            cpu_i += 1
            is_gpu = False
        d = tasks[j].time_on(is_gpu)
        start = loads[name]
        slots.append(ScheduledTask(task_index=j, pe_name=name, start=start, end=start + d))
        loads[name] = start + d
    return Schedule(slots=slots, pe_names=names, num_tasks=n, label="proportional")


def earliest_finish_time(
    tasks: TaskSet, m: int, k: int, order: Sequence[int] | None = None
) -> Schedule:
    """Greedy EFT: each task (in *order*) goes where it finishes first."""
    _check_platform(tasks, m, k)
    cpu_names, gpu_names = _class_names(m, k)
    cpu_loads = np.zeros(max(m, 1))
    gpu_loads = np.zeros(max(k, 1))
    slots = []
    order = range(len(tasks)) if order is None else order
    for j in order:
        t = tasks[j]
        cpu_finish = cpu_loads.min() + t.cpu_time if m else np.inf
        gpu_finish = gpu_loads.min() + t.gpu_time if k else np.inf
        if gpu_finish <= cpu_finish:
            i = int(np.argmin(gpu_loads))
            start = float(gpu_loads[i])
            gpu_loads[i] = gpu_finish
            slots.append(
                ScheduledTask(task_index=j, pe_name=gpu_names[i], start=start, end=float(gpu_finish))
            )
        else:
            i = int(np.argmin(cpu_loads))
            start = float(cpu_loads[i])
            cpu_loads[i] = cpu_finish
            slots.append(
                ScheduledTask(task_index=j, pe_name=cpu_names[i], start=start, end=float(cpu_finish))
            )
    return Schedule(
        slots=slots,
        pe_names=cpu_names + gpu_names,
        num_tasks=len(tasks),
        label="eft",
    )


def hetero_lpt(tasks: TaskSet, m: int, k: int) -> Schedule:
    """EFT in decreasing ``min(p, p̄)`` order — heterogeneous LPT."""
    order = np.argsort(-np.minimum(tasks.cpu_times, tasks.gpu_times), kind="stable")
    schedule = earliest_finish_time(tasks, m, k, order=list(order))
    return Schedule(
        slots=[s for name in schedule.pe_names for s in schedule.timeline(name)],
        pe_names=schedule.pe_names,
        num_tasks=len(tasks),
        label="hetero-lpt",
    )


#: Name -> callable registry for the scheduler-comparison ablation.
BASELINES = {
    "self-scheduling": self_scheduling,
    "equal-power": equal_power_split,
    "proportional": proportional_split,
    "eft": earliest_finish_time,
    "hetero-lpt": hetero_lpt,
}
