"""Makespan bounds for the binary search.

The dual-approximation binary search (Section III) needs an initial
interval ``[Bmin, Bmax]`` guaranteed to contain the optimal makespan:

* ``Bmin`` — the larger of (a) the biggest single-task lower bound
  ``max_j min(p_j, p̄_j)`` and (b) the *fractional area bound*: even if
  tasks were divisible, the loads ``W_C <= mλ`` and ``W_G <= kλ`` must
  both hold, and the best fractional split is found by moving tasks to
  the GPU in ratio order (the continuous relaxation of the knapsack).
* ``Bmax`` — the makespan of any feasible schedule; we use greedy
  earliest-finish-time, which is cheap and always valid.
"""

from __future__ import annotations

import numpy as np

from repro.core.task import TaskSet

__all__ = ["max_task_lower_bound", "area_lower_bound", "makespan_bounds", "eft_upper_bound"]


def max_task_lower_bound(tasks: TaskSet) -> float:
    """``max_j min(p_j, p̄_j)``: some PE must run each task entirely."""
    return float(np.minimum(tasks.cpu_times, tasks.gpu_times).max())


def area_lower_bound(tasks: TaskSet, m: int, k: int) -> float:
    """Fractional-assignment area bound.

    Sweeps the knapsack's ratio order: after moving a prefix (by best
    ``p/p̄`` first, fractionally at the breakpoint) to the GPUs, the
    makespan is at least ``max(W_C / m, W_G / k)``; the sweep's minimum
    over all prefixes is a valid lower bound because the continuous
    relaxation's optimum moves exactly a ratio-order prefix.

    Handles ``m == 0`` or ``k == 0`` (single-class platforms) by pure
    area division.
    """
    if m < 0 or k < 0 or (m == 0 and k == 0):
        raise ValueError(f"invalid platform size m={m}, k={k}")
    p, pbar = tasks.cpu_times, tasks.gpu_times
    if k == 0:
        return float(p.sum() / m)
    if m == 0:
        return float(pbar.sum() / k)
    order = np.lexsort((np.arange(len(tasks)), -(p / pbar)))
    # Prefix i..: first i tasks (ratio order) on GPU, rest on CPU.
    p_sorted = p[order]
    pbar_sorted = pbar[order]
    gpu_prefix = np.concatenate([[0.0], np.cumsum(pbar_sorted)])
    cpu_suffix = np.concatenate([[0.0], np.cumsum(p_sorted)])
    total_cpu = cpu_suffix[-1]
    best = np.inf
    for i in range(len(tasks) + 1):
        wg = gpu_prefix[i] / k
        wc = (total_cpu - cpu_suffix[i]) / m
        lam = max(wg, wc)
        # Fractional interpolation with the next task at the breakpoint.
        if i < len(tasks) and wg < wc:
            # Move a fraction f of the next task: areas cross where
            # (gpu_prefix[i] + f·p̄)/k == (W_C - f·p)/m.
            num = wc - wg
            den = pbar_sorted[i] / k + p_sorted[i] / m
            f = min(1.0, num / den) if den > 0 else 0.0
            lam = max(
                (gpu_prefix[i] + f * pbar_sorted[i]) / k,
                (total_cpu - cpu_suffix[i] - f * p_sorted[i]) / m,
            )
        best = min(best, lam)
        if wg >= wc:
            break  # further prefixes only grow the GPU side
    return float(best)


def eft_upper_bound(tasks: TaskSet, m: int, k: int) -> float:
    """Makespan of greedy earliest-finish-time — a valid ``Bmax``.

    Tasks are taken in decreasing ``min(p, p̄)`` and placed where they
    finish earliest, respecting the class-specific times.
    """
    if m < 0 or k < 0 or (m == 0 and k == 0):
        raise ValueError(f"invalid platform size m={m}, k={k}")
    p, pbar = tasks.cpu_times, tasks.gpu_times
    cpu_loads = np.zeros(max(m, 1))
    gpu_loads = np.zeros(max(k, 1))
    order = np.argsort(-np.minimum(p, pbar), kind="stable")
    for j in order:
        cpu_finish = (cpu_loads.min() + p[j]) if m else np.inf
        gpu_finish = (gpu_loads.min() + pbar[j]) if k else np.inf
        # Tie-break toward the GPU, matching baselines.earliest_finish_time
        # so this bound equals that schedule's makespan.
        if gpu_finish <= cpu_finish:
            gpu_loads[np.argmin(gpu_loads)] = gpu_finish
        else:
            cpu_loads[np.argmin(cpu_loads)] = cpu_finish
    loads = []
    if m:
        loads.append(cpu_loads.max())
    if k:
        loads.append(gpu_loads.max())
    return float(max(loads))


def makespan_bounds(tasks: TaskSet, m: int, k: int) -> tuple[float, float]:
    """``(Bmin, Bmax)`` for the binary search; ``Bmin <= OPT <= Bmax``."""
    lo = max(max_task_lower_bound(tasks), area_lower_bound(tasks, m, k))
    hi = eft_upper_bound(tasks, m, k)
    return lo, max(hi, lo)
