"""Random scheduling-instance generators.

The ablations and the scheduler test-suite need task sets with
controlled structure.  Four families, all seeded:

* :func:`uniform_instance` — independent ``p`` and ``p̄`` (the fully
  general case; not all tasks accelerated);
* :func:`accelerated_instance` — every task faster on a GPU (the
  paper's special case for SW);
* :func:`anticorrelated_instance` — GPU speedup *decreases* with task
  size (big tasks barely accelerate), the adversarial regime for
  ratio-ordered knapsacks;
* :func:`bimodal_instance` — a few huge tasks among many small ones
  (the heterogeneous-query-set shape of Section V-C).
"""

from __future__ import annotations

import numpy as np

from repro.core.task import TaskSet
from repro.utils import ensure_rng

__all__ = [
    "uniform_instance",
    "accelerated_instance",
    "anticorrelated_instance",
    "bimodal_instance",
    "INSTANCE_FAMILIES",
]


def uniform_instance(
    n: int,
    seed: int | np.random.Generator | None = None,
    lo: float = 0.1,
    hi: float = 10.0,
) -> TaskSet:
    """Independent uniform ``p`` and ``p̄`` in ``[lo, hi]``."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if not 0 < lo < hi:
        raise ValueError(f"need 0 < lo < hi, got ({lo}, {hi})")
    rng = ensure_rng(seed)
    return TaskSet(
        cpu_times=rng.uniform(lo, hi, n),
        gpu_times=rng.uniform(lo, hi, n),
    )


def accelerated_instance(
    n: int,
    seed: int | np.random.Generator | None = None,
    min_speedup: float = 1.0,
    max_speedup: float = 4.0,
) -> TaskSet:
    """Every task GPU-accelerated by a uniform factor in
    ``[min_speedup, max_speedup]``."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if not 1.0 <= min_speedup <= max_speedup:
        raise ValueError(
            f"need 1 <= min_speedup <= max_speedup, got "
            f"({min_speedup}, {max_speedup})"
        )
    rng = ensure_rng(seed)
    pbar = rng.uniform(0.1, 5.0, n)
    speedup = rng.uniform(min_speedup, max_speedup, n)
    return TaskSet(cpu_times=pbar * speedup, gpu_times=pbar)


def anticorrelated_instance(
    n: int,
    seed: int | np.random.Generator | None = None,
) -> TaskSet:
    """Big tasks accelerate poorly: ``speedup ≈ 0.5 + 10/p``.

    Ratio-ordered filling then diverges sharply from size-ordered
    filling — the regime where Section III's priority rule earns its
    keep (ablation A1 uses this family).
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    rng = ensure_rng(seed)
    p = rng.uniform(1.0, 20.0, n)
    speedup = 0.5 + 10.0 / p
    return TaskSet(cpu_times=p, gpu_times=p / speedup)


def bimodal_instance(
    n: int,
    seed: int | np.random.Generator | None = None,
    huge_fraction: float = 0.1,
    huge_scale: float = 20.0,
) -> TaskSet:
    """Mostly small tasks with a ``huge_fraction`` of ``huge_scale``×
    bigger ones (Section V-C's heterogeneous shape)."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if not 0 <= huge_fraction <= 1:
        raise ValueError(f"huge_fraction must be in [0, 1], got {huge_fraction}")
    if huge_scale < 1:
        raise ValueError(f"huge_scale must be >= 1, got {huge_scale}")
    rng = ensure_rng(seed)
    pbar = rng.uniform(0.2, 1.0, n)
    huge = rng.random(n) < huge_fraction
    pbar = np.where(huge, pbar * huge_scale, pbar)
    speedup = rng.uniform(1.2, 3.5, n)
    return TaskSet(cpu_times=pbar * speedup, gpu_times=pbar)


#: Name -> generator(n, seed) registry for sweeping experiments.
INSTANCE_FAMILIES = {
    "uniform": uniform_instance,
    "accelerated": accelerated_instance,
    "anticorrelated": anticorrelated_instance,
    "bimodal": bimodal_instance,
}
