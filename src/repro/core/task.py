"""The task model of Section III.

A *task* is the comparison of one query sequence against the whole
database (Section II-C: "each task is equivalent to the comparison of
one task of the query set to the database").  Every task ``T_j``
carries two processing times: ``p_j`` on a CPU and ``p̄_j`` on a GPU.

:class:`TaskSet` stores them as parallel numpy arrays — the shape the
knapsack and list-scheduling code consume directly — and records the
query metadata needed to execute the task later (live mode) or account
its cell updates (GCUPS reporting).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.platform.perfmodel import PerformanceModel
from repro.sequences.queries import QuerySet

__all__ = ["Task", "TaskSet", "tasks_from_queries"]


@dataclass(frozen=True)
class Task:
    """One query-vs-database comparison with its two processing times."""

    index: int
    query_id: str
    query_length: int
    cpu_time: float
    gpu_time: float

    def __post_init__(self) -> None:
        if self.query_length <= 0:
            raise ValueError(f"query_length must be positive, got {self.query_length}")
        if self.cpu_time <= 0 or self.gpu_time <= 0:
            raise ValueError(
                f"processing times must be positive, got "
                f"({self.cpu_time}, {self.gpu_time})"
            )

    @property
    def acceleration(self) -> float:
        """The knapsack priority ratio ``p_j / p̄_j`` (> 1 means the
        task is faster on a GPU)."""
        return self.cpu_time / self.gpu_time

    def time_on(self, is_gpu: bool) -> float:
        """Processing time on the given PE class."""
        return self.gpu_time if is_gpu else self.cpu_time


class TaskSet:
    """An indexed collection of tasks with vectorised access.

    Parameters
    ----------
    cpu_times / gpu_times:
        The ``p_j`` / ``p̄_j`` vectors (equal length, positive).
    query_ids / query_lengths:
        Optional metadata (synthesised when omitted).
    db_residues:
        Database size the tasks run against (cell accounting).
    """

    def __init__(
        self,
        cpu_times: np.ndarray,
        gpu_times: np.ndarray,
        query_ids: list[str] | None = None,
        query_lengths: np.ndarray | None = None,
        db_residues: int = 0,
    ):
        p = np.asarray(cpu_times, dtype=np.float64)
        pbar = np.asarray(gpu_times, dtype=np.float64)
        if p.ndim != 1 or p.size == 0:
            raise ValueError("cpu_times must be a non-empty 1-D array")
        if p.shape != pbar.shape:
            raise ValueError(
                f"cpu_times and gpu_times differ in shape: {p.shape} vs {pbar.shape}"
            )
        if (p <= 0).any() or (pbar <= 0).any():
            raise ValueError("all processing times must be positive")
        if db_residues < 0:
            raise ValueError(f"db_residues must be >= 0, got {db_residues}")
        n = p.size
        if query_ids is None:
            query_ids = [f"q{j}" for j in range(n)]
        if len(query_ids) != n:
            raise ValueError(f"expected {n} query_ids, got {len(query_ids)}")
        if query_lengths is None:
            query_lengths = np.ones(n, dtype=np.int64)
        query_lengths = np.asarray(query_lengths, dtype=np.int64)
        if query_lengths.shape != (n,):
            raise ValueError("query_lengths shape mismatch")
        if (query_lengths <= 0).any():
            raise ValueError("query lengths must be positive")
        p.setflags(write=False)
        pbar.setflags(write=False)
        query_lengths.setflags(write=False)
        self._p = p
        self._pbar = pbar
        self._ids = list(query_ids)
        self._lengths = query_lengths
        self.db_residues = int(db_residues)

    # -- vectorised views ----------------------------------------------

    @property
    def cpu_times(self) -> np.ndarray:
        """``p_j`` vector (read-only)."""
        return self._p

    @property
    def gpu_times(self) -> np.ndarray:
        """``p̄_j`` vector (read-only)."""
        return self._pbar

    @property
    def query_lengths(self) -> np.ndarray:
        """Residue length per query (read-only)."""
        return self._lengths

    @property
    def query_ids(self) -> list[str]:
        """Query identifiers in task order."""
        return list(self._ids)

    @property
    def acceleration(self) -> np.ndarray:
        """Ratio vector ``p_j / p̄_j``."""
        return self._p / self._pbar

    @property
    def all_accelerated(self) -> bool:
        """True when every task is faster on a GPU — the paper's special
        case with the cheaper 3/2-approximation."""
        return bool((self._pbar <= self._p).all())

    @property
    def total_cells(self) -> int:
        """Total DP cells across all tasks (query lengths × database)."""
        return int(self._lengths.sum()) * self.db_residues

    # -- container protocol ---------------------------------------------

    def __len__(self) -> int:
        return int(self._p.size)

    def __getitem__(self, j: int) -> Task:
        if not 0 <= j < len(self):
            raise IndexError(f"task {j} out of range [0, {len(self)})")
        return Task(
            index=j,
            query_id=self._ids[j],
            query_length=int(self._lengths[j]),
            cpu_time=float(self._p[j]),
            gpu_time=float(self._pbar[j]),
        )

    def __iter__(self):
        for j in range(len(self)):
            yield self[j]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TaskSet(n={len(self)}, accelerated={self.all_accelerated}, "
            f"db_residues={self.db_residues})"
        )


def tasks_from_queries(
    queries: QuerySet,
    db_residues: int,
    perf: PerformanceModel,
) -> TaskSet:
    """Build the task set for a query set against a database.

    Uses the performance model's ``(p, p̄)`` predictions — the same
    numbers the simulated execution engine charges, so the scheduler's
    assumptions and the simulator agree.
    """
    if db_residues <= 0:
        raise ValueError(f"db_residues must be positive, got {db_residues}")
    p, pbar = perf.task_times(queries.lengths, db_residues)
    return TaskSet(
        cpu_times=p,
        gpu_times=pbar,
        query_ids=[f"{queries.name}_q{j:02d}" for j in range(len(queries))],
        query_lengths=queries.lengths,
        db_residues=db_residues,
    )
