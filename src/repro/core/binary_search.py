"""Binary search driving the dual-approximation guesses (Section III).

Starting from ``[Bmin, Bmax]`` (:mod:`repro.core.bounds`), each
iteration tries the midpoint ``λ``:

* the step answers "NO"  → ``λ`` becomes the new lower bound;
* the step returns a schedule (of makespan ``<= g·λ``) → ``λ`` becomes
  the new upper bound.

The number of iterations is bounded by ``log((Bmax - Bmin)/tolerance)``
— the paper's ``log(Bmax - Bmin)`` with the termination granularity
made explicit.  The best (smallest-makespan) schedule seen anywhere in
the search is returned; on termination the lower bound certifies
``C_max <= g · OPT / (1 - tolerance)`` for the returned schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.bounds import makespan_bounds
from repro.core.dual_approx import DualApproxStep, dual_approx_step
from repro.core.schedule import Schedule
from repro.core.task import TaskSet
from repro.telemetry import tracing

__all__ = ["DualApproxResult", "dual_approx_schedule"]

StepFn = Callable[[TaskSet, int, int, float], DualApproxStep | None]


@dataclass(frozen=True)
class DualApproxResult:
    """Outcome of the full binary search."""

    schedule: Schedule
    #: Lower bound on the optimal makespan (final Bmin).  Exact for the
    #: greedy 2-approx step; for the DP step a "NO" can be conservative
    #: by the area-discretisation ε, making this bound approximate.
    lower_bound: float
    #: Final accepted guess (final Bmax).
    final_guess: float
    #: Number of dual-approximation steps executed.
    iterations: int
    #: Trace of ``(λ, accepted)`` per step, in execution order.
    trace: tuple[tuple[float, bool], ...] = field(default=())

    @property
    def optimality_gap(self) -> float:
        """``makespan / lower_bound`` — an upper bound on the
        approximation ratio actually achieved."""
        return self.schedule.makespan / self.lower_bound if self.lower_bound else float("inf")


def dual_approx_schedule(
    tasks: TaskSet,
    m: int,
    k: int,
    tolerance: float = 1e-3,
    max_iterations: int = 60,
    step_fn: StepFn = dual_approx_step,
) -> DualApproxResult:
    """Run the dual-approximation binary search to convergence.

    Parameters
    ----------
    tasks:
        The task set with its ``(p, p̄)`` vectors.
    m / k:
        CPU / GPU counts.
    tolerance:
        Relative width ``(hi - lo)/lo`` at which the search stops.
    max_iterations:
        Hard cap on steps (the log bound makes this generous).
    step_fn:
        The dual-approximation step — the 2-approx by default; the
        3/2 DP variant plugs in here.
    """
    if tolerance <= 0:
        raise ValueError(f"tolerance must be positive, got {tolerance}")
    if max_iterations < 1:
        raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")

    search_span = tracing.span(
        "sched.binary_search", tasks=len(tasks), m=m, k=k, tolerance=tolerance
    )
    with search_span as sp:
        result = _binary_search(tasks, m, k, tolerance, max_iterations, step_fn)
        if sp is not None:
            sp.attrs["iterations"] = result.iterations
            sp.attrs["lower_bound"] = result.lower_bound
    return result


def _binary_search(
    tasks: TaskSet,
    m: int,
    k: int,
    tolerance: float,
    max_iterations: int,
    step_fn: StepFn,
) -> DualApproxResult:
    lo, hi = makespan_bounds(tasks, m, k)
    # An exact dual-approximation never answers NO above OPT; the DP
    # step's area discretisation can be conservative near the boundary,
    # so inflate Bmax geometrically until it accepts.
    first = step_fn(tasks, m, k, hi)
    inflations = 0
    while first is None and inflations < 20:
        hi *= 1.1
        inflations += 1
        first = step_fn(tasks, m, k, hi)
    if first is None:  # pragma: no cover - would mean a broken step
        raise RuntimeError(
            f"dual-approximation step rejected the upper bound λ={hi}"
        )
    best_schedule = first.schedule
    trace: list[tuple[float, bool]] = [(hi, True)]
    iterations = 1

    while iterations < max_iterations and (hi - lo) > tolerance * max(lo, 1e-12):
        lam = (lo + hi) / 2.0
        step = step_fn(tasks, m, k, lam)
        iterations += 1
        if step is None:
            trace.append((lam, False))
            lo = lam
        else:
            trace.append((lam, True))
            hi = lam
            if step.schedule.makespan < best_schedule.makespan:
                best_schedule = step.schedule
    return DualApproxResult(
        schedule=best_schedule,
        lower_bound=lo,
        final_guess=hi,
        iterations=iterations,
        trace=tuple(trace),
    )
