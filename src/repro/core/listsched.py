"""List scheduling: place tasks on the least-loaded machine.

Section III uses list scheduling twice — to lay the knapsack's CPU
tasks onto the ``m`` CPUs and the GPU tasks onto the ``k`` GPUs ("the
scheduling on the CPUs after the allocation of the greedy knapsack is
done with a list scheduling algorithm assigning the tasks on an
available processor of the corresponding type").  The classic Graham
bound makes it safe inside the dual-approximation argument.
"""

from __future__ import annotations

import heapq
from collections.abc import Sequence

import numpy as np

from repro.core.schedule import ScheduledTask

__all__ = ["list_schedule", "lpt_order"]


def list_schedule(
    task_indices: Sequence[int],
    durations: Sequence[float],
    machine_names: Sequence[str],
) -> list[ScheduledTask]:
    """Assign tasks, in the given order, each to the least-loaded machine.

    Parameters
    ----------
    task_indices:
        Global task indices, in scheduling order.
    durations:
        Matching processing times (same length as *task_indices*).
    machine_names:
        The machines of one class; ties broken by declaration order.

    Returns
    -------
    list[ScheduledTask]
        One slot per task, with start/end times.
    """
    if len(task_indices) != len(durations):
        raise ValueError(
            f"{len(task_indices)} tasks but {len(durations)} durations"
        )
    if not machine_names:
        if task_indices:
            raise ValueError("cannot schedule tasks on zero machines")
        return []
    for d in durations:
        if d <= 0:
            raise ValueError(f"durations must be positive, got {d}")
    # Heap of (load, tie_break, machine); tie_break keeps determinism.
    heap = [(0.0, i, name) for i, name in enumerate(machine_names)]
    heapq.heapify(heap)
    slots = []
    for j, d in zip(task_indices, durations):
        load, tie, name = heapq.heappop(heap)
        slots.append(
            ScheduledTask(task_index=int(j), pe_name=name, start=load, end=load + float(d))
        )
        heapq.heappush(heap, (load + float(d), tie, name))
    return slots


def lpt_order(durations: np.ndarray) -> np.ndarray:
    """Indices sorted by decreasing duration (Longest Processing Time).

    Ties resolve by increasing index, so the order is deterministic.
    """
    durations = np.asarray(durations, dtype=np.float64)
    return np.lexsort((np.arange(durations.size), -durations))
