"""ASCII Gantt-chart rendering for schedules.

The paper's analysis is all about where the idle time sits (Figures 4
and 5 are Gantt sketches); this module renders any
:class:`~repro.core.schedule.Schedule` as a fixed-width text chart so
examples, the CLI and EXPERIMENTS.md can show allocations directly.
"""

from __future__ import annotations

from repro.core.schedule import Schedule

__all__ = ["render_gantt", "render_utilization"]

_IDLE_CHAR = "."


def render_gantt(schedule: Schedule, width: int = 72) -> str:
    """Render per-PE timelines; digits are ``task_index % 10``.

    Idle stretches show as ``.`` so fill/drain and tail imbalance are
    visible at a glance.
    """
    if width < 10:
        raise ValueError(f"width must be >= 10, got {width}")
    makespan = schedule.makespan
    if makespan <= 0:
        return "(empty schedule)"
    lines = []
    for name, slots in schedule.gantt_rows():
        cells = [_IDLE_CHAR] * width
        for start, end, task in slots:
            a = int(start / makespan * (width - 1))
            b = max(a + 1, int(round(end / makespan * (width - 1))))
            mark = str(task % 10)
            for x in range(a, min(b, width)):
                cells[x] = mark
        lines.append(f"{name:>8} |{''.join(cells)}|")
    scale = f"{'':>8}  0{'':{max(0, width - 12)}}{makespan:10.2f}s"
    lines.append(scale)
    return "\n".join(lines)


def render_utilization(schedule: Schedule, width: int = 40) -> str:
    """Render per-PE busy fractions as horizontal bars."""
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    makespan = schedule.makespan
    if makespan <= 0:
        return "(empty schedule)"
    lines = []
    for name in schedule.pe_names:
        frac = schedule.busy_time(name) / makespan
        bar = "#" * int(round(width * frac))
        lines.append(f"{name:>8} [{bar:<{width}}] {frac:6.1%}")
    lines.append(
        f"{'total':>8} idle {schedule.total_idle_time:.2f}s of "
        f"{len(schedule.pe_names) * makespan:.2f}s PE-seconds"
    )
    return "\n".join(lines)
