"""The 3/2-dual-approximation step (the DP refinement of Section III).

The paper notes that replacing the greedy knapsack with a dynamic
program that additionally constrains the number of *big* tasks brings
the guarantee from ``2·OPT`` down to ``3/2·OPT`` (the algorithm of
Kedad-Sidhoum, Monna, Mounié & Trystram, HeteroPar 2013), at a cost of
``O(n² m k²)`` per step in general and ``O(m n log n)`` in the paper's
special case where every task is GPU-accelerated.

The structural facts for a guess ``λ``:

* in any λ-schedule, a machine holds at most **one** task longer than
  ``λ/2`` on its class, so at most ``m`` tasks with ``p_j > λ/2`` sit
  on CPUs and at most ``k`` tasks with ``p̄_j > λ/2`` on GPUs;
* if an assignment satisfies the two area caps **and** those two big
  counts, laying out each class big-tasks-first (one per machine) and
  then list-scheduling the small ones gives makespan ``<= 3λ/2``:
  every big task ends by ``λ``, and a small task (``<= λ/2``) starts
  no later than ``area/machines <= λ``.

The DP therefore minimises the CPU area subject to (GPU area ``<= kλ``,
``#bigCPU <= m``, ``#bigGPU <= k``), with the GPU area discretised
(conservative rounding up, so feasibility is never overstated; the
guarantee holds up to the discretisation ε).
"""

from __future__ import annotations

import numpy as np

from repro.core.dual_approx import DualApproxStep, build_class_schedule
from repro.core.knapsack import KnapsackResult
from repro.core.listsched import lpt_order
from repro.core.schedule import Schedule
from repro.core.task import TaskSet

__all__ = ["dual_approx_dp_step", "make_dp_step"]


def dual_approx_dp_step(
    tasks: TaskSet,
    m: int,
    k: int,
    lam: float,
    resolution: int | None = None,
) -> DualApproxStep | None:
    """One guess of the 3/2 dual approximation; ``None`` means "NO".

    Parameters
    ----------
    resolution:
        GPU-area discretisation (units of ``kλ / resolution``).  Higher
        is tighter but slower; the DP runs in
        O(n · resolution · m · k) with vectorised inner loops.  The
        default scales with the task count (``max(200, 10·n)``) so the
        total conservative rounding error stays a small fraction of the
        capacity.
    """
    if lam <= 0:
        raise ValueError(f"guess λ must be positive, got {lam}")
    if m <= 0 or k <= 0:
        raise ValueError(
            "the DP refinement targets hybrid platforms (m >= 1 and k >= 1); "
            f"got m={m}, k={k}"
        )
    if resolution is not None and resolution < 1:
        raise ValueError(f"resolution must be >= 1, got {resolution}")
    p, pbar = tasks.cpu_times, tasks.gpu_times
    n = len(tasks)
    if resolution is None:
        resolution = max(200, 10 * n)

    # Same ulp-scale tolerance as the 2-approx step: a λ probed at
    # exactly OPT may sit one rounding away from the task time that
    # realises it, and strict checks would then certify a wrong "NO".
    fit = lam + 1e-12 * max(1.0, lam)
    if (np.minimum(p, pbar) > fit).any():
        return None
    forced_gpu = p > fit
    forced_cpu = pbar > fit
    if (forced_gpu & forced_cpu).any():
        return None

    big_cpu = p > lam / 2.0  # big if placed on a CPU
    big_gpu = pbar > lam / 2.0  # big if placed on a GPU

    capacity = k * lam
    unit = capacity / resolution
    # Conservative rounding up (epsilon guards exact unit multiples);
    # weights > resolution mean "does not fit at all".
    weights = np.minimum(
        np.ceil(pbar / unit - 1e-9).astype(np.int64), resolution + 1
    )

    INF = np.float64(np.inf)
    # dp[u, b, g]: min CPU area with u GPU units, b big-CPU tasks on
    # CPUs, g big-GPU tasks on GPUs.
    m_cap = min(m, int(big_cpu.sum()))
    g_cap = min(k, int(big_gpu.sum()))
    dp = np.full((resolution + 1, m_cap + 1, g_cap + 1), INF)
    dp[0, 0, 0] = 0.0
    # choice[j] mirrors dp's shape: True where GPU was chosen.
    choices = np.zeros((n, resolution + 1, m_cap + 1, g_cap + 1), dtype=bool)

    for j in range(n):
        w = int(weights[j])
        # CPU option: shift the big-CPU axis if this task is big there.
        if forced_gpu[j]:
            dp_cpu = np.full_like(dp, INF)
        elif big_cpu[j]:
            dp_cpu = np.full_like(dp, INF)
            if m_cap >= 1:
                dp_cpu[:, 1:, :] = dp[:, :-1, :] + p[j]
        else:
            dp_cpu = dp + p[j]
        # GPU option: shift the area axis (and big-GPU axis if big).
        dp_gpu = np.full_like(dp, INF)
        if not forced_cpu[j] and w <= resolution:
            if big_gpu[j]:
                if g_cap >= 1:
                    dp_gpu[w:, :, 1:] = dp[: resolution + 1 - w, :, :-1]
            else:
                dp_gpu[w:, :, :] = dp[: resolution + 1 - w, :, :]
        take_gpu = dp_gpu < dp_cpu
        choices[j] = take_gpu
        dp = np.where(take_gpu, dp_gpu, dp_cpu)

    if not np.isfinite(dp).any():
        return None
    flat = int(np.argmin(dp))
    u, b, g = np.unravel_index(flat, dp.shape)
    best_wc = float(dp[u, b, g])
    if best_wc > m * lam + 1e-9:
        return None

    # Backtrack the assignment.
    on_cpu = np.ones(n, dtype=bool)
    for j in range(n - 1, -1, -1):
        if choices[j, u, b, g]:
            on_cpu[j] = False
            u -= int(weights[j])
            if big_gpu[j]:
                g -= 1
        else:
            if big_cpu[j]:
                b -= 1

    schedule = _big_first_schedule(tasks, on_cpu, m, k, lam)
    return DualApproxStep(
        schedule=schedule,
        knapsack=KnapsackResult(
            on_cpu=on_cpu,
            cpu_area=float(p[on_cpu].sum()),
            gpu_area=float(pbar[~on_cpu].sum()),
        ),
        guess=lam,
    )


def _big_first_schedule(
    tasks: TaskSet, on_cpu: np.ndarray, m: int, k: int, lam: float
) -> Schedule:
    """Big-tasks-first layout yielding the 3λ/2 bound.

    Within each class, tasks longer than λ/2 are scheduled first (LPT
    among themselves, landing one per machine since their count is
    capped by the machine count), then the small ones via list
    scheduling in LPT order.
    """
    p, pbar = tasks.cpu_times, tasks.gpu_times
    cpu_idx = np.flatnonzero(on_cpu)
    gpu_idx = np.flatnonzero(~on_cpu)
    cpu_big_first = cpu_idx[lpt_order(p[cpu_idx])] if cpu_idx.size else cpu_idx
    gpu_big_first = gpu_idx[lpt_order(pbar[gpu_idx])] if gpu_idx.size else gpu_idx
    # LPT order already places all >λ/2 tasks before the small ones.
    return build_class_schedule(
        tasks,
        on_cpu,
        m,
        k,
        cpu_order=cpu_big_first,
        gpu_order=gpu_big_first,
        label=f"dual3/2(λ={lam:.3g})",
    )


def make_dp_step(resolution: int | None = None):
    """A step function with a fixed DP resolution, pluggable into
    :func:`repro.core.binary_search.dual_approx_schedule`."""

    def step(tasks: TaskSet, m: int, k: int, lam: float):
        return dual_approx_dp_step(tasks, m, k, lam, resolution=resolution)

    return step
