"""The minimisation knapsack of Section III.

Choosing which tasks run on the GPUs is formulated (Equations 5–7) as::

    W*_C = min Σ p_j x_j          (CPU workload)
    s.t.  Σ p̄_j (1 - x_j) <= kλ  (GPU area cap)
          x_j in {0, 1}

Two solvers are provided:

* :func:`greedy_min_knapsack` — the paper's O(n log n) greedy: sort by
  decreasing ``p_j / p̄_j`` (best relative GPU speedup first) and fill
  the GPUs "up to getting a computational area larger than kλ"
  (Figure 4).  The overflow of the last selected task ``j_last`` is
  what the Proposition 1 analysis absorbs.
* :func:`dp_min_knapsack` — an exact dynamic program over a discretised
  GPU area, used by the 3/2-approximation refinement and by the
  knapsack-ordering ablation as the optimum reference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["KnapsackResult", "greedy_min_knapsack", "dp_min_knapsack"]


@dataclass(frozen=True)
class KnapsackResult:
    """Outcome of a knapsack split.

    ``on_cpu`` is the ``x_j`` vector (True = CPU).  ``last_gpu_task``
    is the paper's ``j_last`` — the final task the greedy placed on the
    GPUs (None if the GPU side is empty or the solver was exact).
    """

    on_cpu: np.ndarray
    cpu_area: float
    gpu_area: float
    last_gpu_task: int | None = None

    def __post_init__(self) -> None:
        arr = np.asarray(self.on_cpu, dtype=bool)
        arr.setflags(write=False)
        object.__setattr__(self, "on_cpu", arr)


def _validate(p: np.ndarray, pbar: np.ndarray, capacity: float) -> tuple[np.ndarray, np.ndarray]:
    p = np.asarray(p, dtype=np.float64)
    pbar = np.asarray(pbar, dtype=np.float64)
    if p.shape != pbar.shape or p.ndim != 1:
        raise ValueError(f"p and pbar must be equal-length vectors, got {p.shape} / {pbar.shape}")
    if (p <= 0).any() or (pbar <= 0).any():
        raise ValueError("processing times must be positive")
    if capacity < 0:
        raise ValueError(f"capacity must be >= 0, got {capacity}")
    return p, pbar


def greedy_min_knapsack(
    p: np.ndarray,
    pbar: np.ndarray,
    capacity: float,
    forced_gpu: np.ndarray | None = None,
    forced_cpu: np.ndarray | None = None,
) -> KnapsackResult:
    """The paper's greedy: fill GPUs in ratio order until area >= kλ.

    Parameters
    ----------
    p / pbar:
        CPU / GPU processing-time vectors.
    capacity:
        GPU area budget ``kλ``.
    forced_gpu:
        Boolean mask of tasks that *must* go to the GPUs (the dual
        approximation forces tasks with ``p_j > λ``); they are charged
        against the capacity first, regardless of ratio.
    forced_cpu:
        Boolean mask of tasks the greedy must never move to the GPUs
        (the dual approximation pins tasks with ``p̄_j > λ`` to CPUs so
        the GPU makespan bound survives).

    Notes
    -----
    Following Figure 4, the greedy keeps adding while the accumulated
    GPU area is **below** the capacity, so it finishes with
    ``gpu_area >= capacity`` (unless it runs out of tasks) and the last
    selected task overflows — the 2λ analysis handles that overflow.
    """
    p, pbar = _validate(p, pbar, capacity)
    n = p.size
    on_cpu = np.ones(n, dtype=bool)
    if forced_gpu is not None:
        forced_gpu = np.asarray(forced_gpu, dtype=bool)
        if forced_gpu.shape != (n,):
            raise ValueError("forced_gpu mask shape mismatch")
    else:
        forced_gpu = np.zeros(n, dtype=bool)
    if forced_cpu is not None:
        forced_cpu = np.asarray(forced_cpu, dtype=bool)
        if forced_cpu.shape != (n,):
            raise ValueError("forced_cpu mask shape mismatch")
        if (forced_cpu & forced_gpu).any():
            raise ValueError("a task cannot be forced to both classes")
    else:
        forced_cpu = np.zeros(n, dtype=bool)

    gpu_area = 0.0
    last = None
    for j in np.flatnonzero(forced_gpu):
        on_cpu[j] = False
        gpu_area += pbar[j]
        last = int(j)

    # Decreasing p/pbar, ties by index for determinism.
    ratio = p / pbar
    order = np.lexsort((np.arange(n), -ratio))
    for j in order:
        if gpu_area >= capacity:
            break
        if forced_gpu[j] or forced_cpu[j]:
            continue
        on_cpu[j] = False
        gpu_area += pbar[j]
        last = int(j)

    cpu_area = float(p[on_cpu].sum())
    return KnapsackResult(
        on_cpu=on_cpu,
        cpu_area=cpu_area,
        gpu_area=float(gpu_area),
        last_gpu_task=last,
    )


def dp_min_knapsack(
    p: np.ndarray,
    pbar: np.ndarray,
    capacity: float,
    resolution: int = 200,
    forced_gpu: np.ndarray | None = None,
    forced_cpu: np.ndarray | None = None,
) -> KnapsackResult | None:
    """Exact (discretised) minimisation knapsack.

    Minimises the CPU area subject to the GPU area cap, with the GPU
    area discretised into *resolution* units of ``capacity /
    resolution`` (each task's GPU time is rounded **up**, so the
    returned split never violates the true capacity).

    Returns ``None`` when no assignment fits (e.g. forced-GPU tasks
    already exceed the capacity).
    """
    p, pbar = _validate(p, pbar, capacity)
    if resolution < 1:
        raise ValueError(f"resolution must be >= 1, got {resolution}")
    n = p.size
    forced_gpu = (
        np.zeros(n, dtype=bool) if forced_gpu is None else np.asarray(forced_gpu, bool)
    )
    forced_cpu = (
        np.zeros(n, dtype=bool) if forced_cpu is None else np.asarray(forced_cpu, bool)
    )
    if forced_gpu.shape != (n,) or forced_cpu.shape != (n,):
        raise ValueError("forced mask shape mismatch")
    if (forced_gpu & forced_cpu).any():
        raise ValueError("a task cannot be forced to both classes")

    if capacity == 0:
        if forced_gpu.any():
            return None
        on_cpu = np.ones(n, dtype=bool)
        return KnapsackResult(on_cpu=on_cpu, cpu_area=float(p.sum()), gpu_area=0.0)

    unit = capacity / resolution
    # Conservative rounding up, with a tiny epsilon so exact multiples
    # of the unit do not spill into the next bucket through float noise.
    weights = np.ceil(pbar / unit - 1e-9).astype(np.int64)
    cap_units = resolution

    INF = np.inf
    # dp[u] = min CPU area using exactly <= u GPU units so far.
    dp = np.full(cap_units + 1, INF)
    dp[0] = 0.0
    choice = np.zeros((n, cap_units + 1), dtype=bool)  # True = placed on GPU
    for j in range(n):
        w, pj = int(weights[j]), p[j]
        if forced_cpu[j]:
            dp = dp + pj
            continue
        # Option GPU: dp_gpu[u] = dp[u - w]; option CPU: dp[u] + pj.
        dp_gpu = np.full(cap_units + 1, INF)
        if w <= cap_units:
            dp_gpu[w:] = dp[: cap_units + 1 - w]
        if forced_gpu[j]:
            new_dp = dp_gpu
            choice[j] = dp_gpu < INF
        else:
            dp_cpu = dp + pj
            choice[j] = dp_gpu < dp_cpu
            new_dp = np.where(choice[j], dp_gpu, dp_cpu)
        dp = new_dp
    if not np.isfinite(dp).any():
        return None
    u = int(np.argmin(dp))
    # Backtrack.
    on_cpu = np.ones(n, dtype=bool)
    for j in range(n - 1, -1, -1):
        if forced_cpu[j]:
            continue
        if choice[j, u]:
            on_cpu[j] = False
            u -= int(weights[j])
    gpu_area = float(pbar[~on_cpu].sum())
    return KnapsackResult(
        on_cpu=on_cpu,
        cpu_area=float(p[on_cpu].sum()),
        gpu_area=gpu_area,
    )
