"""Schedule representation: Gantt-chart data, makespan and idle time.

A :class:`Schedule` is the scheduler's output and the simulator's
input: for every PE, an ordered list of :class:`ScheduledTask` slots
with explicit start/end times.  The paper's quality criteria are the
**makespan** (global completion time) and the **idle time** on each PE
("the objective is to obtain fast execution time and minimize the idle
time on each PE"), so both are first-class here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.task import TaskSet

__all__ = ["ScheduledTask", "Schedule"]


@dataclass(frozen=True)
class ScheduledTask:
    """One task occurrence on one PE's timeline."""

    task_index: int
    pe_name: str
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < self.start:
            raise ValueError(
                f"invalid slot [{self.start}, {self.end}] for task "
                f"{self.task_index}"
            )

    @property
    def duration(self) -> float:
        """Slot length in seconds."""
        return self.end - self.start


class Schedule:
    """Per-PE timelines for a task set.

    Parameters
    ----------
    slots:
        All scheduled tasks; each task index must appear exactly once.
    pe_names:
        Every PE of the platform (also those left idle), so idle-time
        accounting covers unused workers.
    num_tasks:
        Expected task count (validates completeness).
    """

    def __init__(
        self,
        slots: list[ScheduledTask],
        pe_names: list[str],
        num_tasks: int,
        label: str = "schedule",
    ):
        self.label = label
        self._pe_names = list(pe_names)
        if len(set(self._pe_names)) != len(self._pe_names):
            raise ValueError(f"duplicate PE names: {self._pe_names}")
        self._timelines: dict[str, list[ScheduledTask]] = {
            name: [] for name in self._pe_names
        }
        seen: set[int] = set()
        for slot in slots:
            if slot.pe_name not in self._timelines:
                raise ValueError(f"slot on unknown PE {slot.pe_name!r}")
            if slot.task_index in seen:
                raise ValueError(f"task {slot.task_index} scheduled twice")
            if not 0 <= slot.task_index < num_tasks:
                raise ValueError(
                    f"task index {slot.task_index} out of range [0, {num_tasks})"
                )
            seen.add(slot.task_index)
            self._timelines[slot.pe_name].append(slot)
        if len(seen) != num_tasks:
            missing = sorted(set(range(num_tasks)) - seen)
            raise ValueError(f"tasks not scheduled: {missing[:10]}")
        for name in self._pe_names:
            self._timelines[name].sort(key=lambda s: s.start)
            prev_end = 0.0
            for slot in self._timelines[name]:
                if slot.start < prev_end - 1e-9:
                    raise ValueError(
                        f"overlapping slots on {name!r} at t={slot.start}"
                    )
                prev_end = slot.end
        self.num_tasks = num_tasks

    # -- metrics ---------------------------------------------------------

    @property
    def pe_names(self) -> list[str]:
        """All PE names, including idle ones."""
        return list(self._pe_names)

    def timeline(self, pe_name: str) -> list[ScheduledTask]:
        """Ordered slots of one PE."""
        return list(self._timelines[pe_name])

    @property
    def makespan(self) -> float:
        """Global completion time ``C_max``."""
        ends = [
            tl[-1].end for tl in self._timelines.values() if tl
        ]
        return max(ends) if ends else 0.0

    def completion_time(self, pe_name: str) -> float:
        """When the given PE finishes its last task (0 if idle)."""
        tl = self._timelines[pe_name]
        return tl[-1].end if tl else 0.0

    def busy_time(self, pe_name: str) -> float:
        """Total processing seconds on one PE."""
        return sum(s.duration for s in self._timelines[pe_name])

    def idle_time(self, pe_name: str, horizon: float | None = None) -> float:
        """Seconds the PE is idle before *horizon* (default: makespan).

        This is the paper's idle-time criterion: gaps plus the tail
        after the PE's last task until the global completion time.
        """
        horizon = self.makespan if horizon is None else horizon
        return max(0.0, horizon - self.busy_time(pe_name))

    @property
    def total_idle_time(self) -> float:
        """Sum of idle time across all PEs (paper's balance criterion)."""
        return sum(self.idle_time(name) for name in self._pe_names)

    @property
    def mean_utilization(self) -> float:
        """Average busy fraction over all PEs within the makespan."""
        ms = self.makespan
        if ms == 0:
            return 0.0
        return float(
            np.mean([self.busy_time(n) / ms for n in self._pe_names])
        )

    def assignment_vector(self) -> dict[int, str]:
        """Map task index -> PE name."""
        return {
            slot.task_index: name
            for name, tl in self._timelines.items()
            for slot in tl
        }

    def tasks_on(self, pe_name: str) -> list[int]:
        """Task indices scheduled on one PE, in start order."""
        return [s.task_index for s in self._timelines[pe_name]]

    def verify_against(self, tasks: TaskSet, gpu_names: set[str]) -> None:
        """Check every slot's duration matches the task's class time.

        Raises ``ValueError`` on any inconsistency — used by tests and
        by the engine before executing a schedule.
        """
        for name, tl in self._timelines.items():
            is_gpu = name in gpu_names
            for slot in tl:
                expected = tasks[slot.task_index].time_on(is_gpu)
                if abs(slot.duration - expected) > 1e-6 * max(1.0, expected):
                    raise ValueError(
                        f"slot duration {slot.duration} != task time "
                        f"{expected} for task {slot.task_index} on {name!r}"
                    )

    def gantt_rows(self) -> list[tuple[str, list[tuple[float, float, int]]]]:
        """Rows of ``(pe_name, [(start, end, task_index), ...])`` for
        plotting / ASCII Gantt rendering."""
        return [
            (name, [(s.start, s.end, s.task_index) for s in self._timelines[name]])
            for name in self._pe_names
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Schedule({self.label!r}, tasks={self.num_tasks}, "
            f"pes={len(self._pe_names)}, makespan={self.makespan:.2f}s)"
        )
