"""Exact optimal makespan via branch-and-bound (small instances).

The dual approximation certifies factors relative to a *lower bound*;
for small instances we can compute the true optimum and measure the
achieved ratio exactly.  The solver branches on tasks in decreasing
``min(p, p̄)`` order, assigning each to one machine of either class,
with three prunings:

* **incumbent** — partial loads already at/above the best makespan;
* **area bound** — remaining work spread perfectly over each class
  cannot beat the incumbent (uses the fractional ratio-prefix bound of
  :func:`repro.core.bounds.area_lower_bound` on the remaining tasks);
* **machine symmetry** — within a class, only the first machine of any
  set with equal load is tried.

Exponential in the worst case; intended for ``n ≲ 18`` (tests and the
optimality-gap experiment).
"""

from __future__ import annotations

import numpy as np

from repro.core.task import TaskSet

__all__ = ["optimal_makespan", "OptimalSearchBudgetExceeded"]


class OptimalSearchBudgetExceeded(RuntimeError):
    """Raised when the node budget runs out before the search finishes."""


def optimal_makespan(
    tasks: TaskSet,
    m: int,
    k: int,
    node_budget: int = 2_000_000,
    upper_bound: float | None = None,
) -> float:
    """Exact optimal makespan of *tasks* on ``m`` CPUs and ``k`` GPUs.

    Parameters
    ----------
    node_budget:
        Maximum search nodes; exceeding it raises
        :class:`OptimalSearchBudgetExceeded` (guards against misuse on
        large instances).
    upper_bound:
        Optional known-feasible makespan to seed the incumbent (e.g.
        from the dual approximation), tightening pruning.
    """
    if m < 0 or k < 0 or (m == 0 and k == 0):
        raise ValueError(f"invalid platform size m={m}, k={k}")
    n = len(tasks)
    p = tasks.cpu_times
    pbar = tasks.gpu_times
    order = np.argsort(-np.minimum(p if m else np.inf, pbar if k else np.inf), kind="stable")
    p_sorted = p[order]
    pbar_sorted = pbar[order]
    # Suffix sums of the per-class areas for the area pruning.
    suffix_p = np.concatenate([np.cumsum(p_sorted[::-1])[::-1], [0.0]])
    suffix_pbar = np.concatenate([np.cumsum(pbar_sorted[::-1])[::-1], [0.0]])
    suffix_best = np.concatenate(
        [np.cumsum(np.minimum(p_sorted, pbar_sorted)[::-1])[::-1], [0.0]]
    )

    cpu_loads = [0.0] * m
    gpu_loads = [0.0] * k
    if upper_bound is None:
        from repro.core.bounds import eft_upper_bound

        upper_bound = eft_upper_bound(tasks, m, k)
    best = [float(upper_bound) + 1e-12]
    nodes = [0]

    def lower_bound_remaining(i: int) -> float:
        # Perfectly divisible remainder over all machines (weak but
        # cheap): every remaining task contributes at least min(p, p̄).
        current = max(max(cpu_loads, default=0.0), max(gpu_loads, default=0.0))
        spread = (sum(cpu_loads) + sum(gpu_loads) + suffix_best[i]) / (m + k)
        return max(current, spread)

    def rec(i: int) -> None:
        nodes[0] += 1
        if nodes[0] > node_budget:
            raise OptimalSearchBudgetExceeded(
                f"exceeded {node_budget} nodes at depth {i}/{n}"
            )
        if i == n:
            makespan = max(max(cpu_loads, default=0.0), max(gpu_loads, default=0.0))
            if makespan < best[0]:
                best[0] = makespan
            return
        if lower_bound_remaining(i) >= best[0]:
            return
        # CPU placements (symmetry: skip machines equal to a previous).
        tried: set[float] = set()
        for c in range(m):
            load = cpu_loads[c]
            if load in tried:
                continue
            tried.add(load)
            if load + p_sorted[i] >= best[0]:
                continue
            cpu_loads[c] = load + p_sorted[i]
            rec(i + 1)
            cpu_loads[c] = load
        tried = set()
        for g in range(k):
            load = gpu_loads[g]
            if load in tried:
                continue
            tried.add(load)
            if load + pbar_sorted[i] >= best[0]:
                continue
            gpu_loads[g] = load + pbar_sorted[i]
            rec(i + 1)
            gpu_loads[g] = load
        return

    rec(0)
    return float(best[0])
