"""The paper's primary contribution: the SWDUAL dual-approximation
scheduler (knapsack split, list scheduling, binary search, 3/2 DP
refinement) plus baseline strategies and makespan bounds."""

from repro.core.task import Task, TaskSet, tasks_from_queries
from repro.core.schedule import Schedule, ScheduledTask
from repro.core.listsched import list_schedule, lpt_order
from repro.core.knapsack import KnapsackResult, dp_min_knapsack, greedy_min_knapsack
from repro.core.bounds import (
    area_lower_bound,
    eft_upper_bound,
    makespan_bounds,
    max_task_lower_bound,
)
from repro.core.dual_approx import DualApproxStep, build_class_schedule, dual_approx_step
from repro.core.dual_approx_dp import dual_approx_dp_step, make_dp_step
from repro.core.binary_search import DualApproxResult, dual_approx_schedule
from repro.core.baselines import (
    BASELINES,
    earliest_finish_time,
    equal_power_split,
    hetero_lpt,
    proportional_split,
    self_scheduling,
)
from repro.core.gantt import render_gantt, render_utilization
from repro.core.instances import (
    INSTANCE_FAMILIES,
    accelerated_instance,
    anticorrelated_instance,
    bimodal_instance,
    uniform_instance,
)
from repro.core.optimal import OptimalSearchBudgetExceeded, optimal_makespan
from repro.core.swdual import SWDualPlan, SWDualScheduler

__all__ = [
    "Task",
    "TaskSet",
    "tasks_from_queries",
    "Schedule",
    "ScheduledTask",
    "list_schedule",
    "lpt_order",
    "KnapsackResult",
    "greedy_min_knapsack",
    "dp_min_knapsack",
    "max_task_lower_bound",
    "area_lower_bound",
    "eft_upper_bound",
    "makespan_bounds",
    "DualApproxStep",
    "dual_approx_step",
    "build_class_schedule",
    "dual_approx_dp_step",
    "make_dp_step",
    "DualApproxResult",
    "dual_approx_schedule",
    "BASELINES",
    "self_scheduling",
    "equal_power_split",
    "proportional_split",
    "earliest_finish_time",
    "hetero_lpt",
    "SWDualPlan",
    "SWDualScheduler",
    "render_gantt",
    "uniform_instance",
    "accelerated_instance",
    "anticorrelated_instance",
    "bimodal_instance",
    "INSTANCE_FAMILIES",
    "optimal_makespan",
    "OptimalSearchBudgetExceeded",
    "render_utilization",
]
