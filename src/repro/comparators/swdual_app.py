"""SWDUAL as a comparator application.

Wraps the full pipeline — worker mix of Section V-A, calibrated hybrid
platform, dual-approximation allocation, simulated master–slave
execution — behind the same ``simulate(queries, database, workers)``
interface the baseline apps expose, so Figure 7/Table II drivers treat
all five applications uniformly.

Unlike the baselines, nothing here is pinned to SWDUAL's own published
numbers: the platform rates come from the *baselines'* single-worker
times and SWDUAL's multi-worker curve is emergent from the scheduler.
"""

from __future__ import annotations

from repro.engine.search import simulate_search
from repro.engine.simulation import SimulationOutcome
from repro.platform.cluster import swdual_worker_mix
from repro.sequences.database import DatabaseProfile
from repro.sequences.queries import QuerySet

__all__ = ["SWDualApp"]


class SWDualApp:
    """The paper's contribution, as a Table I-style application."""

    class _Spec:
        name = "SWDUAL"
        version = "1.0"
        command = "./swdual master ... ; ./swdual worker ..."
        measured_seconds = {
            2: 543.28,
            3: 472.84,
            4: 271.98,
            5: 266.69,
            6: 239.04,
            7: 183.12,
            8: 142.98,
        }

    spec = _Spec()

    def __init__(self, policy: str = "swdual", max_gpus: int = 4):
        if max_gpus < 1:
            raise ValueError(f"max_gpus must be >= 1, got {max_gpus}")
        self.policy = policy
        self.max_gpus = max_gpus

    @property
    def name(self) -> str:
        """Application name for reports."""
        return self.spec.name

    def worker_mix(self, workers: int) -> tuple[int, int]:
        """The Section V-A (gpus, cpus) composition for *workers*."""
        return swdual_worker_mix(workers, max_gpus=self.max_gpus)

    def simulate(
        self, queries: QuerySet, database: DatabaseProfile, workers: int
    ) -> SimulationOutcome:
        """Run SWDUAL with the paper's worker mix for *workers*."""
        gpus, cpus = self.worker_mix(workers)
        return simulate_search(queries, database, gpus, cpus, policy=self.policy)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SWDualApp(policy={self.policy!r})"
