"""The concrete compared applications (Tables I and II).

Four external baselines plus SWDUAL itself.  Each baseline's spec
embeds the Table I command line and the Table II measured times its
scaling model is derived from; the live kernel is the numpy
implementation of the same algorithmic idea:

========  ===========================  =============================
app       algorithmic idea             live kernel
========  ===========================  =============================
SWIPE     inter-sequence SIMD          :func:`repro.align.sw_batch.sw_score_batch`
STRIPED   Farrar striped intra-SIMD    :func:`repro.align.sw_striped.sw_score_striped`
SWPS3     vectorised Farrar port       :func:`repro.align.sw_vector.sw_score_rowsweep`
CUDASW++  GPU anti-diagonal kernels    :func:`repro.align.sw_wavefront.sw_score_wavefront`
========  ===========================  =============================
"""

from __future__ import annotations

import numpy as np

from repro.align.sw_batch import sw_score_batch
from repro.align.sw_striped import sw_score_striped
from repro.align.sw_vector import sw_score_rowsweep
from repro.align.sw_wavefront import sw_score_wavefront
from repro.comparators.base import ComparatorApp, ComparatorSpec
from repro.comparators.swdual_app import SWDualApp
from repro.platform.calibration import (
    CPU_HALF_LENGTH,
    CPU_TASK_OVERHEAD_S,
    GPU_HALF_LENGTH,
    GPU_TASK_OVERHEAD_S,
)
from repro.platform.pe import PEKind

__all__ = [
    "SWIPE",
    "STRIPED",
    "SWPS3",
    "CUDASW",
    "SWDUAL",
    "BASELINE_APPS",
    "ALL_APPS",
    "LIVE_KERNELS",
    "table1_rows",
]


def _efficiency_from_measured(measured: dict[int, float]) -> dict[int, float]:
    """Per-worker efficiency ``eff(k) = T1 / (k·Tk)`` from a Table II row."""
    t1 = measured[1]
    return {k: t1 / (k * t) for k, t in measured.items() if k > 1}


def _spec(name, version, command, kind, measured, half, overhead) -> ComparatorSpec:
    return ComparatorSpec(
        name=name,
        version=version,
        command=command,
        kind=kind,
        t1_seconds=measured[1],
        half_length=half,
        task_overhead_s=overhead,
        efficiency_table=_efficiency_from_measured(measured),
        measured_seconds=dict(measured),
    )


#: Table II measured seconds per worker count, straight from the paper.
_MEASURED = {
    "SWPS3": {1: 69208.2, 2: 36174.09, 3: 25206.563, 4: 18904.31},
    "STRIPED": {1: 7190.0, 2: 3615.38, 3: 1369.33, 4: 1027.28},
    "SWIPE": {1: 2367.24, 2: 1199.47, 3: 816.61, 4: 610.23},
    "CUDASW++": {1: 785.26, 2: 445.611, 3: 350.09, 4: 292.157},
}

SWIPE = ComparatorApp(
    _spec(
        "SWIPE",
        "1.0",
        "./swipe -a $T -i $Q -d $D",
        PEKind.CPU,
        _MEASURED["SWIPE"],
        CPU_HALF_LENGTH,
        CPU_TASK_OVERHEAD_S,
    )
)

STRIPED = ComparatorApp(
    _spec(
        "STRIPED",
        "",
        "./striped -T $T $Q $D",
        PEKind.CPU,
        _MEASURED["STRIPED"],
        CPU_HALF_LENGTH,
        CPU_TASK_OVERHEAD_S,
    )
)

SWPS3 = ComparatorApp(
    _spec(
        "SWPS3",
        "20080605",
        "./swps3 -j $T $Q $D",
        PEKind.CPU,
        _MEASURED["SWPS3"],
        CPU_HALF_LENGTH,
        CPU_TASK_OVERHEAD_S,
    )
)

CUDASW = ComparatorApp(
    _spec(
        "CUDASW++",
        "2.0",
        "./cudasw -use_gpus $T -query $Q -db $D",
        PEKind.GPU,
        _MEASURED["CUDASW++"],
        GPU_HALF_LENGTH,
        GPU_TASK_OVERHEAD_S,
    )
)

SWDUAL = SWDualApp()

#: The CPU/GPU-only applications of Table I, in Table II order.
BASELINE_APPS = [SWPS3, STRIPED, SWIPE, CUDASW]

#: Everything compared in Figure 7, in plot-legend order.
ALL_APPS = BASELINE_APPS + [SWDUAL]


def _swps3_kernel(query, subjects, scheme):
    return np.array(
        [sw_score_rowsweep(query, s, scheme) for s in subjects], dtype=np.int64
    )


def _striped_kernel(query, subjects, scheme):
    return np.array(
        [sw_score_striped(query, s, scheme) for s in subjects], dtype=np.int64
    )


def _cudasw_kernel(query, subjects, scheme):
    return np.array(
        [sw_score_wavefront(query, s, scheme) for s in subjects], dtype=np.int64
    )


#: App name -> live numpy kernel scoring a query against many subjects.
LIVE_KERNELS = {
    "SWIPE": lambda q, subjects, scheme: sw_score_batch(q, subjects, scheme),
    "STRIPED": _striped_kernel,
    "SWPS3": _swps3_kernel,
    "CUDASW++": _cudasw_kernel,
}


def table1_rows() -> list[list[str]]:
    """The rows of Table I (application, version, command line)."""
    rows = [
        [app.spec.name, app.spec.version, app.spec.command]
        for app in BASELINE_APPS
    ]
    rows.sort(key=lambda r: ["SWIPE", "STRIPED", "SWPS3", "CUDASW++"].index(r[0]))
    return rows
