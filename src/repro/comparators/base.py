"""Comparator application models (the rows of Table I).

Each compared application is modelled by:

* its **command line** and version (Table I, reproduced verbatim);
* a **rate model** whose peak is calibrated from the application's own
  single-worker time in Table II (see
  :mod:`repro.platform.calibration`);
* its **measured scaling table** — per-worker efficiency derived from
  Table II's multi-worker columns (``eff(k) = T1 / (k · Tk)``),
  geometric extrapolation beyond the measured counts.  These apps are
  external comparators; pinning their scaling to their own published
  measurements is calibration of the *baseline*, never of the
  contribution (SWDUAL's curve is emergent — see DESIGN.md §6);
* its **allocation behaviour** — all four baselines balance work
  dynamically across homogeneous workers, modelled as self-scheduling
  of the query tasks;
* a **live kernel** — the numpy kernel implementing the same
  algorithmic idea, used by live mode and the kernel microbenchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.simulation import SimulationOutcome, simulate_self_scheduling
from repro.core.task import TaskSet
from repro.platform.calibration import peak_from_workload_time
from repro.platform.cluster import HybridPlatform
from repro.platform.pe import PEKind, ProcessingElement, RateModel
from repro.platform.perfmodel import PerformanceModel
from repro.sequences.database import DatabaseProfile
from repro.sequences.queries import QuerySet

__all__ = ["ComparatorSpec", "ComparatorApp"]


@dataclass(frozen=True)
class ComparatorSpec:
    """Static description of one compared application."""

    name: str
    version: str
    command: str
    kind: PEKind
    #: Single-worker wall-clock seconds on the UniProt workload (Table II).
    t1_seconds: float
    #: Rate-model shape parameters (class defaults unless stated).
    half_length: float
    task_overhead_s: float
    #: Measured per-worker efficiency ``{k: T1/(k·Tk)}`` from Table II.
    efficiency_table: dict[int, float] = field(default_factory=dict)
    #: Reference wall-clock seconds per worker count (Table II row).
    measured_seconds: dict[int, float] = field(default_factory=dict)


class ComparatorApp:
    """Executable model of a compared application."""

    def __init__(self, spec: ComparatorSpec):
        self.spec = spec

    @property
    def name(self) -> str:
        """Application name as listed in Table I."""
        return self.spec.name

    def rate_model(self) -> RateModel:
        """Single-worker rate model calibrated to the app's own T1."""
        peak = peak_from_workload_time(
            self.spec.t1_seconds, self.spec.half_length, self.spec.task_overhead_s
        )
        return RateModel(
            peak_gcups=peak,
            half_length=self.spec.half_length,
            task_overhead_s=self.spec.task_overhead_s,
        )

    def efficiency(self, workers: int) -> float:
        """Per-worker efficiency at *workers*, from the measured table.

        Beyond the largest measured count the per-step ratio of the last
        two entries extrapolates geometrically (clamped to [0.05, -]).
        STRIPED's published superlinear step is kept as measured.
        """
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        table = self.spec.efficiency_table
        if workers == 1 or not table:
            return 1.0
        if workers in table:
            return table[workers]
        ks = sorted(table)
        last = ks[-1]
        if workers < last:
            # Interpolate between the nearest measured counts.
            below = max(k for k in ks if k < workers)
            above = min(k for k in ks if k > workers)
            frac = (workers - below) / (above - below)
            lo = table.get(below, 1.0)
            return lo + frac * (table[above] - lo)
        prev = table[ks[-2]] if len(ks) >= 2 else 1.0
        step = table[last] / prev if prev > 0 else 1.0
        eff = table[last] * (step ** (workers - last))
        return max(0.05, eff)

    def platform(self, workers: int) -> HybridPlatform:
        """Homogeneous platform of *workers* PEs of the app's class,
        with the scaling efficiency folded into the per-PE rate."""
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        rate = self.rate_model().scaled(self.efficiency(workers))
        pes = tuple(
            ProcessingElement(
                name=f"{self.spec.kind.value}{i}", kind=self.spec.kind, rate=rate
            )
            for i in range(workers)
        )
        return HybridPlatform(pes=pes, name=f"{self.spec.name}_{workers}w")

    def simulate(
        self, queries: QuerySet, database: DatabaseProfile, workers: int
    ) -> SimulationOutcome:
        """Simulate the app searching *database* with *workers*.

        All four baseline applications balance their work dynamically
        (threads pulling chunks / GPUs pulling queries), modelled as
        self-scheduling of the query tasks.
        """
        platform = self.platform(workers)
        perf = PerformanceModel(
            platform,
            cpu_parallel_efficiency=1.0,  # scaling already in the PE rate
            gpu_parallel_efficiency=1.0,
            gpu_cpu_service_fraction=0.0,
        )
        # Homogeneous platform: both class columns carry the same times
        # (the simulator charges durations through the PE rate models).
        pe = platform.pes[0]
        seconds = [
            pe.rate.task_seconds(int(q), database.total_residues)
            for q in queries.lengths
        ]
        tasks = TaskSet(
            cpu_times=seconds,
            gpu_times=seconds,
            query_ids=[f"{queries.name}_q{j:02d}" for j in range(len(queries))],
            query_lengths=queries.lengths,
            db_residues=database.total_residues,
        )
        return simulate_self_scheduling(
            tasks, platform, perf, label=f"{self.spec.name}({workers}w)"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ComparatorApp({self.spec.name!r})"
