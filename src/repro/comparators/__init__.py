"""Models of the compared applications: SWIPE, STRIPED, SWPS3,
CUDASW++ (Table I baselines) and SWDUAL itself."""

from repro.comparators.base import ComparatorApp, ComparatorSpec
from repro.comparators.swdual_app import SWDualApp
from repro.comparators.apps import (
    ALL_APPS,
    BASELINE_APPS,
    CUDASW,
    LIVE_KERNELS,
    STRIPED,
    SWDUAL,
    SWIPE,
    SWPS3,
    table1_rows,
)

__all__ = [
    "ComparatorApp",
    "ComparatorSpec",
    "SWDualApp",
    "SWIPE",
    "STRIPED",
    "SWPS3",
    "CUDASW",
    "SWDUAL",
    "BASELINE_APPS",
    "ALL_APPS",
    "LIVE_KERNELS",
    "table1_rows",
]
