"""Human-readable formatting for experiment reports.

The benchmark harness prints the same rows/series the paper reports;
these helpers render them as plain-text tables resembling the paper's
Tables II, IV and V.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["format_seconds", "format_si", "ascii_table"]

_SI_PREFIXES = [(1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "k")]


def format_seconds(seconds: float) -> str:
    """Render a duration compactly: ``86.2 s``, ``12m 03s``, ``2h 05m``."""
    if seconds < 0:
        raise ValueError(f"seconds must be >= 0, got {seconds}")
    if seconds < 120:
        return f"{seconds:.2f} s"
    minutes, secs = divmod(seconds, 60.0)
    if minutes < 120:
        return f"{int(minutes)}m {secs:04.1f}s"
    hours, minutes = divmod(minutes, 60.0)
    return f"{int(hours)}h {int(minutes):02d}m"


def format_si(value: float, unit: str = "", digits: int = 2) -> str:
    """Render *value* with an SI prefix: ``77.70 Tcell``, ``136.06 GCUPS``."""
    for factor, prefix in _SI_PREFIXES:
        if abs(value) >= factor:
            return f"{value / factor:.{digits}f} {prefix}{unit}".rstrip()
    return f"{value:.{digits}f} {unit}".rstrip()


def ascii_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render *rows* as a fixed-width ASCII table.

    All cells are stringified with ``str``; columns are right-aligned
    except the first, which is left-aligned (matching the paper's table
    style of a label column followed by numeric columns).
    """
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    ncols = len(headers)
    for row in cells:
        if len(row) != ncols:
            raise ValueError(f"row has {len(row)} cells, expected {ncols}: {row!r}")
    widths = [max(len(row[i]) for row in cells) for i in range(ncols)]

    def render(row: list[str]) -> str:
        out = [row[0].ljust(widths[0])]
        out += [row[i].rjust(widths[i]) for i in range(1, ncols)]
        return "  ".join(out)

    sep = "-" * (sum(widths) + 2 * (ncols - 1))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render(cells[0]))
    lines.append(sep)
    lines.extend(render(row) for row in cells[1:])
    return "\n".join(lines)
