"""Argument-validation helpers with consistent error messages."""

from __future__ import annotations

from typing import Any

__all__ = ["check_positive", "check_non_negative", "check_in_range", "check_type"]


def check_positive(name: str, value: float) -> float:
    """Raise ``ValueError`` unless ``value > 0``; return the value."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Raise ``ValueError`` unless ``value >= 0``; return the value."""
    if not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_in_range(name: str, value: float, lo: float, hi: float) -> float:
    """Raise ``ValueError`` unless ``lo <= value <= hi``; return the value."""
    if not (lo <= value <= hi):
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value!r}")
    return value


def check_type(name: str, value: Any, types: type | tuple[type, ...]) -> Any:
    """Raise ``TypeError`` unless ``isinstance(value, types)``; return the value."""
    if not isinstance(value, types):
        expected = (
            types.__name__
            if isinstance(types, type)
            else " | ".join(t.__name__ for t in types)
        )
        raise TypeError(f"{name} must be {expected}, got {type(value).__name__}")
    return value
