"""Small shared utilities: validation, RNG handling, formatting.

These helpers are deliberately tiny and dependency-free so every other
subpackage can use them without import cycles.
"""

from repro.utils.rng import ensure_rng, spawn_rng
from repro.utils.validation import (
    check_positive,
    check_non_negative,
    check_in_range,
    check_type,
)
from repro.utils.format import format_seconds, format_si, ascii_table

__all__ = [
    "ensure_rng",
    "spawn_rng",
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_type",
    "format_seconds",
    "format_si",
    "ascii_table",
]
