"""Deterministic random-number-generator plumbing.

Every stochastic component in the library (synthetic databases, query
sets, baseline schedulers with random tie-breaking, workload generators)
accepts either an integer seed, an existing :class:`numpy.random.Generator`
or ``None``.  Centralising the coercion here keeps experiments
reproducible: the benchmark harness passes fixed seeds everywhere.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ensure_rng", "spawn_rng"]


def ensure_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce *seed* into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` (fresh OS-entropy generator), an ``int`` seed, or an
        existing generator (returned unchanged).

    Returns
    -------
    numpy.random.Generator
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, (int, np.integer)):
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        return np.random.default_rng(int(seed))
    raise TypeError(f"seed must be None, int or numpy Generator, got {type(seed).__name__}")


def spawn_rng(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive *n* statistically independent child generators from *rng*.

    Used when one seeded experiment needs several independent streams
    (e.g. one per synthetic database) whose draws do not interleave.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)]
