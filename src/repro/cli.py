"""Command-line interface.

Subcommands mirror the system's surfaces::

    swdual convert  IN.fasta OUT.swdb     # FASTA -> binary format
    swdual info     DB.swdb               # database statistics
    swdual align    Q.fasta S.fasta       # pairwise local alignment
    swdual search   QUERIES.fasta DB      # live master-slave search
    swdual simulate [--db uniprot ...]    # paper-scale simulated run
    swdual experiment {table2,table3,table4,table5,ablations}
    swdual bench kernels                  # real kernel GCUPS -> JSON
    swdual serve    DB                    # resident search service (TCP)
    swdual query    QUERIES.fasta         # submit queries to a service
    swdual stats                          # snapshot a running service
    swdual cluster  {serve,query,stats}   # sharded scatter-gather cluster
    swdual trace    --queries Q --db DB   # traced run -> Chrome trace + timeline

``swdual simulate`` and ``swdual experiment`` regenerate the paper's
numbers from the calibrated models; ``swdual search`` runs real kernels
on real FASTA/swdb files; ``swdual serve`` keeps a warm worker pool
resident and serves queries over the NDJSON protocol (docs/service.md).
"""

from __future__ import annotations

import argparse
import sys

from repro import __version__
from repro.utils import ascii_table

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="swdual",
        description="SWDUAL: fast biological sequence comparison on hybrid platforms",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_convert = sub.add_parser("convert", help="convert FASTA to the .swdb binary format")
    p_convert.add_argument("fasta")
    p_convert.add_argument("swdb")

    p_info = sub.add_parser("info", help="print statistics of a database file")
    p_info.add_argument("database", help=".swdb or FASTA file")

    p_align = sub.add_parser("align", help="pairwise local alignment of two FASTA records")
    p_align.add_argument("query", help="FASTA file (first record is used)")
    p_align.add_argument("subject", help="FASTA file (first record is used)")
    p_align.add_argument(
        "--matrix", default="blosum62", help="substitution matrix name"
    )
    p_align.add_argument("--gap-open", type=int, default=10)
    p_align.add_argument("--gap-extend", type=int, default=1)
    p_align.add_argument(
        "--linear-space",
        action="store_true",
        help="use the Myers-Miller linear-space traceback",
    )

    p_search = sub.add_parser("search", help="live master-slave database search")
    p_search.add_argument("queries", help="FASTA file of query sequences")
    p_search.add_argument("database", help=".swdb or FASTA database")
    p_search.add_argument("--cpus", type=int, default=1, help="CPU workers")
    p_search.add_argument("--gpus", type=int, default=1, help="GPU-role workers")
    p_search.add_argument(
        "--policy",
        default="swdual",
        choices=("swdual", "swdual-dp", "affinity", "self"),
    )
    p_search.add_argument("--top", type=int, default=5, help="hits per query")
    p_search.add_argument(
        "--pipeline",
        nargs="?",
        const="default",
        default=None,
        choices=("exact", "sensitive", "default", "strict"),
        help="run the heuristic filter cascade instead of the full "
        "scan (optional sensitivity preset, default 'default')",
    )
    p_search.add_argument(
        "--kernel-backend",
        default=None,
        choices=("auto", "numba", "cc", "numpy"),
        help="alignment-kernel tier: 'auto' probes numba, then a C toolchain, then falls back to numpy",
    )
    p_search.add_argument("--json", action="store_true", help="emit a JSON report")
    p_search.add_argument(
        "--processes",
        type=int,
        default=0,
        help="use N worker processes instead of threads (self-scheduling)",
    )

    p_sim = sub.add_parser("simulate", help="paper-scale simulated search")
    p_sim.add_argument("--db", default="uniprot", help="paper database key")
    p_sim.add_argument("--workers", type=int, default=8)
    p_sim.add_argument("--policy", default="swdual")
    p_sim.add_argument(
        "--queries",
        default="standard",
        choices=("standard", "homogeneous", "heterogeneous"),
    )
    p_sim.add_argument(
        "--gantt", action="store_true", help="print an ASCII Gantt chart"
    )
    p_sim.add_argument("--json", action="store_true", help="emit a JSON report")

    p_exp = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p_exp.add_argument(
        "which",
        choices=(
            "table2",
            "table3",
            "table4",
            "table5",
            "ablations",
            "robustness",
            "scheduling",
            "all",
        ),
    )
    p_exp.add_argument(
        "--timeline-dir",
        default=None,
        help="(scheduling) write per-cell schedule-timeline JSON here",
    )

    p_bench = sub.add_parser(
        "bench", help="measure real kernel GCUPS on this machine"
    )
    p_bench.add_argument(
        "which",
        choices=("kernels", "shm", "pipeline", "router", "sched"),
        help="'kernels' = raw kernel GCUPS; 'shm' = shared-memory data "
        "plane + chunk dispatch vs the pickled whole-query baseline; "
        "'pipeline' = heuristic filter cascade vs the exact full scan; "
        "'router' = N-shard scatter-gather cluster vs 1 shard; "
        "'sched' = oneshot vs rolling calibration under a "
        "drifting-speed drill, plus the policy conformance grid",
    )
    p_bench.add_argument(
        "--out",
        default=None,
        help="JSON report path (default BENCH_<which>.json; '-' to skip writing)",
    )
    p_bench.add_argument(
        "--subjects",
        type=int,
        default=None,
        help="database size (default 300; pipeline: 1500)",
    )
    p_bench.add_argument("--min-len", type=int, default=100)
    p_bench.add_argument("--max-len", type=int, default=400)
    p_bench.add_argument(
        "--query-len",
        type=int,
        default=None,
        help="query length (default 300; pipeline: 250)",
    )
    p_bench.add_argument(
        "--queries",
        type=int,
        default=None,
        help="queries per pass (default 4; pipeline: 2)",
    )
    p_bench.add_argument("--repeats", type=int, default=3, help="best-of repeats")
    p_bench.add_argument(
        "--workers", type=int, default=2, help="(shm) pool size for the warm-up scan"
    )
    p_bench.add_argument(
        "--homologs",
        type=int,
        default=6,
        help="(pipeline) homologs planted per query",
    )
    p_bench.add_argument(
        "--threshold",
        type=int,
        default=100,
        help="(pipeline) reporting score threshold",
    )
    p_bench.add_argument(
        "--smoke",
        action="store_true",
        help="(pipeline, router, sched) small fast run for CI: shape + "
        "exactness checks only, no throughput target",
    )
    p_bench.add_argument(
        "--shards",
        type=int,
        default=3,
        help="(router) shard count compared against the 1-shard baseline",
    )
    p_bench.add_argument(
        "--kernel-backend",
        default=None,
        choices=("auto", "numba", "cc", "numpy"),
        help="(kernels) pin the compiled tier the numpy baseline is "
        "compared against; 'numpy' skips the comparison",
    )

    p_serve = sub.add_parser(
        "serve", help="run the resident search service on a database"
    )
    p_serve.add_argument("database", help=".swdb or FASTA database")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=7731, help="0 = ephemeral")
    p_serve.add_argument("--cpus", type=int, default=1, help="CPU-role workers")
    p_serve.add_argument("--gpus", type=int, default=1, help="GPU-role workers")
    p_serve.add_argument("--backend", default="threads", choices=("threads", "processes"))
    p_serve.add_argument(
        "--policy",
        default="swdual",
        choices=("swdual", "swdual-dp", "affinity", "self"),
    )
    p_serve.add_argument(
        "--calibration",
        default="oneshot",
        choices=("oneshot", "rolling"),
        help="'rolling' re-estimates per-role GCUPS from telemetry and "
        "re-runs the allocation per micro-batch",
    )
    p_serve.add_argument(
        "--data-plane",
        default="auto",
        choices=("auto", "shm", "pickle"),
        help="(processes) how the packed database reaches workers",
    )
    p_serve.add_argument(
        "--dispatch",
        default="query",
        choices=("query", "chunk"),
        help="(processes) dispatch whole queries or chunk ranges with stealing",
    )
    p_serve.add_argument("--top", type=int, default=5, help="hits per query")
    p_serve.add_argument(
        "--pipeline",
        nargs="?",
        const="default",
        default=None,
        choices=("exact", "sensitive", "default", "strict"),
        help="score queries with the heuristic filter cascade by "
        "default (optional sensitivity preset; per-request 'pipeline' "
        "flags still override)",
    )
    p_serve.add_argument(
        "--queue-size", type=int, default=64, help="admission queue capacity"
    )
    p_serve.add_argument(
        "--batch-size", type=int, default=8, help="micro-batch cap per dispatch"
    )
    p_serve.add_argument(
        "--calibrate",
        action="store_true",
        help="measure real per-role GCUPS at startup (cached per database)",
    )
    p_serve.add_argument(
        "--kernel-backend",
        default=None,
        choices=("auto", "numba", "cc", "numpy"),
        help="alignment-kernel tier: 'auto' probes numba, then a C toolchain, then falls back to numpy",
    )

    p_query = sub.add_parser(
        "query", help="submit FASTA queries to a running service"
    )
    p_query.add_argument("queries", help="FASTA file of query sequences")
    p_query.add_argument("--host", default="127.0.0.1")
    p_query.add_argument("--port", type=int, default=7731)
    p_query.add_argument("--top", type=int, default=None, help="hits per query")
    p_pipe_group = p_query.add_mutually_exclusive_group()
    p_pipe_group.add_argument(
        "--pipeline",
        action="store_true",
        help="ask the server to run the heuristic filter cascade",
    )
    p_pipe_group.add_argument(
        "--exact",
        action="store_true",
        help="ask the server for the exact full scan",
    )
    p_query.add_argument("--json", action="store_true", help="one JSON line per result")

    p_stats = sub.add_parser("stats", help="snapshot a running service's metrics")
    p_stats.add_argument("--host", default="127.0.0.1")
    p_stats.add_argument("--port", type=int, default=7731)
    p_stats.add_argument("--json", action="store_true", help="emit raw JSON")

    p_db = sub.add_parser(
        "db", help="administer a running service's live database"
    )
    db_sub = p_db.add_subparsers(dest="db_command", required=True)

    p_dappend = db_sub.add_parser(
        "append",
        help="append FASTA sequences to the live database "
        "(atomic generation swap, no restart)",
    )
    p_dappend.add_argument("sequences", help="FASTA file of sequences to append")
    p_dappend.add_argument("--host", default="127.0.0.1")
    p_dappend.add_argument("--port", type=int, default=7731)
    p_dappend.add_argument(
        "--json", action="store_true", help="emit the db_info answer as JSON"
    )

    p_dretire = db_sub.add_parser(
        "retire", help="retire sequences from the live database by id"
    )
    p_dretire.add_argument("ids", nargs="+", help="sequence id(s) to retire")
    p_dretire.add_argument("--host", default="127.0.0.1")
    p_dretire.add_argument("--port", type=int, default=7731)
    p_dretire.add_argument(
        "--json", action="store_true", help="emit the db_info answer as JSON"
    )

    p_dinfo = db_sub.add_parser(
        "info", help="show the database generation a service is serving"
    )
    p_dinfo.add_argument("--host", default="127.0.0.1")
    p_dinfo.add_argument("--port", type=int, default=7731)
    p_dinfo.add_argument("--json", action="store_true", help="emit raw JSON")

    p_cluster = sub.add_parser(
        "cluster",
        help="scatter-gather router over sharded search services",
    )
    cluster_sub = p_cluster.add_subparsers(dest="cluster_command", required=True)

    p_cserve = cluster_sub.add_parser(
        "serve", help="shard a database, run one service per shard + the router"
    )
    p_cserve.add_argument(
        "database",
        nargs="?",
        default=None,
        help=".swdb or FASTA database to shard (omit with --topology)",
    )
    p_cserve.add_argument(
        "--shards", type=int, default=3, help="shard count (spawn mode)"
    )
    p_cserve.add_argument(
        "--topology",
        default=None,
        help="TOML/JSON file of pre-started shard endpoints (adopt mode)",
    )
    p_cserve.add_argument("--host", default="127.0.0.1", help="router bind host")
    p_cserve.add_argument(
        "--port", type=int, default=7731, help="router port (0 = ephemeral)"
    )
    p_cserve.add_argument(
        "--cpus", type=int, default=1, help="CPU-role workers per shard"
    )
    p_cserve.add_argument(
        "--gpus", type=int, default=0, help="GPU-role workers per shard"
    )
    p_cserve.add_argument(
        "--backend", default="threads", choices=("threads", "processes")
    )
    p_cserve.add_argument("--top", type=int, default=5, help="hits per query")
    p_cserve.add_argument(
        "--start-method",
        default="auto",
        choices=("auto", "fork", "spawn"),
        help="multiprocessing start method for shard processes",
    )
    p_cserve.add_argument(
        "--max-restarts",
        type=int,
        default=3,
        help="automatic restart budget per crashed shard",
    )
    p_cserve.add_argument(
        "--shard-timeout",
        type=float,
        default=30.0,
        help="seconds before a silent shard is dropped from a query's merge",
    )
    p_cserve.add_argument(
        "--no-speculation",
        action="store_true",
        help="disable latency-weighted speculative top-k credit",
    )

    p_cquery = cluster_sub.add_parser(
        "query", help="submit FASTA queries to a running cluster router"
    )
    p_cquery.add_argument("queries", help="FASTA file of query sequences")
    p_cquery.add_argument("--host", default="127.0.0.1")
    p_cquery.add_argument("--port", type=int, default=7731)
    p_cquery.add_argument("--top", type=int, default=None, help="hits per query")
    c_pipe_group = p_cquery.add_mutually_exclusive_group()
    c_pipe_group.add_argument(
        "--pipeline",
        action="store_true",
        help="ask the shards to run the heuristic filter cascade",
    )
    c_pipe_group.add_argument(
        "--exact",
        action="store_true",
        help="ask the shards for the exact full scan",
    )
    p_cquery.add_argument(
        "--stream",
        action="store_true",
        help="print each shard's partial hit list as it arrives",
    )
    p_cquery.add_argument(
        "--json", action="store_true", help="one JSON line per message"
    )

    p_cstats = cluster_sub.add_parser(
        "stats", help="snapshot a running cluster router"
    )
    p_cstats.add_argument("--host", default="127.0.0.1")
    p_cstats.add_argument("--port", type=int, default=7731)
    p_cstats.add_argument("--json", action="store_true", help="emit raw JSON")

    p_chaos = sub.add_parser(
        "chaos",
        help="seeded fault-injection run: kill/stall/corrupt workers, "
        "verify bit-identical recovery",
    )
    p_chaos.add_argument("--seed", type=int, default=7, help="fault-plan seed")
    p_chaos.add_argument("--workers", type=int, default=4, help="worker processes")
    p_chaos.add_argument("--faults", type=int, default=1, help="faults to inject")
    p_chaos.add_argument(
        "--kinds",
        default="kill,stall,corrupt",
        help="comma-separated fault kinds to draw from",
    )
    p_chaos.add_argument("--dispatch", default="query", choices=("query", "chunk"))
    p_chaos.add_argument(
        "--policy", default="self", choices=("self", "swdual", "swdual-dp")
    )
    p_chaos.add_argument("--queries", default=None, help="FASTA file (default: seeded workload)")
    p_chaos.add_argument("--db", default=None, help=".swdb or FASTA database")
    p_chaos.add_argument("--json", action="store_true", help="emit the full report as JSON")
    p_chaos.add_argument(
        "--out", default=None, help="write the recovery-event trace (JSON) here"
    )

    p_trace = sub.add_parser(
        "trace",
        help="run one traced batch and export Chrome-trace + schedule-timeline JSON",
    )
    p_trace.add_argument("--queries", required=True, help="FASTA file of query sequences")
    p_trace.add_argument("--db", required=True, help=".swdb or FASTA database")
    p_trace.add_argument("--cpus", type=int, default=1, help="CPU-role workers")
    p_trace.add_argument("--gpus", type=int, default=1, help="GPU-role workers")
    p_trace.add_argument(
        "--backend", default="threads", choices=("threads", "processes")
    )
    p_trace.add_argument(
        "--policy", default="swdual", choices=("swdual", "swdual-dp", "self")
    )
    p_trace.add_argument("--top", type=int, default=5, help="hits per query")
    p_trace.add_argument(
        "--out",
        default="trace",
        help="output prefix (writes PREFIX.chrome.json and PREFIX.timeline.json)",
    )
    return parser


def _cmd_convert(args) -> int:
    from repro.sequences import read_fasta, write_binary_db

    seqs = read_fasta(args.fasta)
    count = write_binary_db(seqs, args.swdb)
    print(f"wrote {count} sequences to {args.swdb}")
    return 0


def _load_db(path: str):
    from repro.sequences import SequenceDatabase

    if path.endswith(".swdb"):
        return SequenceDatabase.from_binary(path)
    return SequenceDatabase.from_fasta(path)


def _cmd_info(args) -> int:
    stats = _load_db(args.database).stats()
    print(
        ascii_table(
            ["Database", "Seqs", "Min", "Max", "Mean", "Residues"],
            [stats.as_row()],
        )
    )
    return 0


def _cmd_align(args) -> int:
    from repro.align import GapModel, ScoringScheme, align_local
    from repro.align.linear_space import align_local_linear_space
    from repro.sequences import matrix_by_name, read_fasta

    queries = read_fasta(args.query)
    subjects = read_fasta(args.subject)
    if not queries or not subjects:
        print("error: both FASTA files must contain at least one record")
        return 1
    scheme = ScoringScheme(
        matrix=matrix_by_name(args.matrix),
        gaps=GapModel.affine(args.gap_open, args.gap_extend),
    )
    aligner = align_local_linear_space if args.linear_space else align_local
    result = aligner(queries[0], subjects[0], scheme)
    print(result.pretty())
    print(f"CIGAR: {result.cigar()}")
    return 0


def _cmd_search(args) -> int:
    from repro.engine import live_search
    from repro.sequences import read_fasta

    queries = read_fasta(args.queries)
    database = _load_db(args.database)
    pipeline = None
    if args.pipeline is not None:
        from repro.engine.pipeline import preset_config

        pipeline = preset_config(args.pipeline)
    if args.processes:
        from repro.engine import process_search

        report = process_search(
            queries,
            database,
            num_workers=args.processes,
            top_hits=args.top,
            pipeline=pipeline,
            kernel_backend=args.kernel_backend,
        )
    else:
        report = live_search(
            queries,
            database,
            num_cpu_workers=args.cpus,
            num_gpu_workers=args.gpus,
            policy=args.policy,
            top_hits=args.top,
            pipeline=pipeline,
            backend=args.kernel_backend,
        )
    if args.json:
        from repro.engine import report_to_json

        print(report_to_json(report))
        return 0
    print(report.summary())
    for qr in report.query_results:
        hits = ", ".join(f"{h.subject_id}:{h.score}" for h in qr.hits[: args.top])
        print(f"  {qr.query_id}: {hits}")
    if report.pipeline_stages:
        s = report.pipeline_stages
        scanned = s.get("subjects_scanned", 0)
        survivors = s.get("banded_survivors", 0)
        rate = 1.0 - survivors / scanned if scanned else 0.0
        print(
            f"pipeline [{args.pipeline}]: {scanned} scanned, "
            f"{s.get('seeds_found', 0)} seeds, {survivors} banded, "
            f"{s.get('rescored', 0)} rescored, {s.get('reported', 0)} reported "
            f"({rate:.1%} filtered before DP)"
        )
    return 0


def _cmd_simulate(args) -> int:
    from repro.engine import simulate_search
    from repro.platform import swdual_worker_mix
    from repro.sequences import (
        heterogeneous_query_set,
        homogeneous_query_set,
        paper_database_profile,
        standard_query_set,
    )

    qsets = {
        "standard": standard_query_set,
        "homogeneous": homogeneous_query_set,
        "heterogeneous": heterogeneous_query_set,
    }
    queries = qsets[args.queries]()
    database = paper_database_profile(args.db)
    gpus, cpus = swdual_worker_mix(args.workers)
    outcome = simulate_search(queries, database, gpus, cpus, policy=args.policy)
    if args.json:
        from repro.engine import report_to_json

        print(report_to_json(outcome.report))
        return 0
    print(outcome.report.summary())
    print(f"scheduler: {outcome.report.scheduler_info}")
    for ws in outcome.report.worker_stats:
        print(
            f"  {ws.name:6} {ws.kind:4} tasks={ws.tasks_executed:3} "
            f"busy={ws.busy_seconds:9.2f}s "
            f"util={ws.utilization(outcome.report.wall_seconds):6.1%}"
        )
    if args.gantt:
        from repro.core import render_gantt

        print()
        print(render_gantt(outcome.schedule))
    return 0


def _cmd_experiment(args) -> int:
    from repro import experiments as ex

    if args.which == "all":
        summary = ex.run_all()
        print(summary.render())
        print()
        print("Shape checks:")
        for name, ok in summary.shape_checks().items():
            print(f"  [{'PASS' if ok else 'FAIL'}] {name}")
        return 0
    if args.which == "table2":
        print(ex.run_table2().table())
    elif args.which == "table3":
        print(ex.run_table3().table())
    elif args.which == "table4":
        result = ex.run_table4(worker_counts=(2, 4, 8))
        print(result.times.table())
        print()
        print(result.gcups.table())
    elif args.which == "table5":
        result = ex.run_table5(worker_counts=(2, 4, 8))
        print(result.times.table())
        print()
        print(result.gcups.table())
    elif args.which == "scheduling":
        print("A5: online scheduler plane (policy x calibration, drilled pool)")
        for row in ex.scheduling_ablation(timeline_dir=args.timeline_dir):
            print(
                f"  {row.policy:10} {row.calibration:8} "
                f"mean={row.mean_batch_s * 1e3:7.1f}ms "
                f"p99={row.p99_batch_s * 1e3:7.1f}ms "
                f"reallocs={row.reallocations:2} "
                f"identical={row.scores_identical}"
            )
        if args.timeline_dir:
            print(f"schedule timelines written under {args.timeline_dir}/")
    elif args.which == "robustness":
        from repro.platform import PerformanceModel, idgraf_platform

        perf = PerformanceModel(idgraf_platform(4, 4))
        print("A4: robustness to prediction error (4 GPUs + 4 CPUs)")
        for row in ex.robustness_ablation(ex.paper_taskset(), perf):
            print(
                f"  sigma={row.sigma:<4g} one-round={row.one_round:7.1f}s "
                f"2-rounds={row.rounds2:7.1f}s 4-rounds={row.rounds4:7.1f}s "
                f"self={row.self_scheduling:7.1f}s  winner={row.best_policy()}"
            )
    else:
        tasks = ex.paper_taskset()
        print("A1: knapsack GPU-filling order")
        for row in ex.knapsack_order_ablation(tasks, 4, 4):
            print(f"  {row.order:14} makespan={row.makespan:8.2f}s")
        print("A2: binary-search tolerance")
        for row in ex.tolerance_ablation(tasks, 4, 4):
            print(
                f"  tol={row.tolerance:<6} iters={row.iterations:2} "
                f"makespan={row.makespan:8.2f}s"
            )
        print("A3: scheduler comparison")
        for row in ex.scheduler_ablation(tasks, 4, 4):
            print(
                f"  {row.scheduler:16} makespan={row.makespan:8.2f}s "
                f"idle={row.total_idle:8.2f}s"
            )
    return 0


def _cmd_bench(args) -> int:
    if args.which == "shm":
        return _cmd_bench_shm(args)
    if args.which == "pipeline":
        return _cmd_bench_pipeline(args)
    if args.which == "router":
        return _cmd_bench_router(args)
    if args.which == "sched":
        return _cmd_bench_sched(args)
    from repro.platform import run_kernel_bench, write_bench_report

    report = run_kernel_bench(
        num_subjects=args.subjects if args.subjects is not None else 300,
        min_len=args.min_len,
        max_len=args.max_len,
        query_len=args.query_len if args.query_len is not None else 300,
        num_queries=args.queries if args.queries is not None else 4,
        repeats=args.repeats,
        kernel_backend=args.kernel_backend,
    )
    gcups = report["gcups"]
    rows = [
        ["seed int64 per-call", f"{gcups['seed_int64_per_call']:.4f}"],
        ["packed + dtype ladder", f"{gcups['packed_ladder']:.4f}"],
    ]
    rows += [
        [f"packed pinned {name}", f"{value:.4f}"]
        for name, value in gcups["levels"].items()
    ]
    for backend_name, measured in gcups["backends"].items():
        if backend_name == "numpy":
            continue  # already printed as the packed/pinned rows above
        rows.append(
            [f"compiled [{backend_name}] ladder", f"{measured['packed_ladder']:.4f}"]
        )
        rows += [
            [f"compiled [{backend_name}] {name}", f"{value:.4f}"]
            for name, value in measured["levels"].items()
        ]
    rows += [
        ["wavefront per-subject", f"{gcups['wavefront_per_subject']:.4f}"],
        ["wavefront batched", f"{gcups['wavefront_batched']:.4f}"],
    ]
    print(ascii_table(["Kernel path", "GCUPS"], rows))
    kb = report["kernel_backend"]
    backend_line = kb["name"] + (f" ({kb['version']})" if kb["version"] else "")
    if kb["fallback_reason"]:
        backend_line += f" [fallback: {kb['fallback_reason']}]"
    print(f"kernel backend:            {backend_line}")
    print(f"speedup packed vs seed:    {report['speedup_packed_vs_seed']:.2f}x")
    print(f"speedup wavefront batched: {report['speedup_wavefront_batched']:.2f}x")
    if report["speedup_compiled_vs_numpy"] is not None:
        print(
            f"speedup compiled vs numpy: "
            f"{report['speedup_compiled_vs_numpy']:.2f}x (batch hot path)"
        )
    telemetry = report["telemetry"]
    print(
        f"telemetry overhead: {telemetry['overhead_disabled_pct']:+.2f}% disabled, "
        f"{telemetry['overhead_enabled_pct']:+.2f}% enabled "
        f"({telemetry['spans_per_pass']} spans/pass)"
    )
    out = args.out if args.out is not None else "BENCH_kernels.json"
    if out != "-":
        write_bench_report(report, out)
        print(f"wrote {out}")
    return 0


def _cmd_bench_shm(args) -> int:
    from repro.platform import run_shm_bench, write_bench_report

    report = run_shm_bench(
        num_subjects=args.subjects if args.subjects is not None else 300,
        min_len=args.min_len,
        max_len=args.max_len,
        query_len=args.query_len if args.query_len is not None else 300,
        num_queries=args.queries if args.queries is not None else 4,
        repeats=args.repeats,
        max_workers=args.workers,
    )
    warm = report["warmup"]
    rows = [
        [
            str(row["workers"]),
            f"{row['pickle_s'] * 1e3:.1f}",
            f"{row['shm_s'] * 1e3:.1f}",
            f"{row['marginal_pickle_s'] * 1e3:.1f}",
            f"{row['marginal_shm_s'] * 1e3:.1f}",
        ]
        for row in warm["scan"]
    ]
    print(
        ascii_table(
            ["Workers", "Pickle ms", "SHM ms", "+1 pickle ms", "+1 SHM ms"], rows
        )
    )
    print(
        f"per-additional-worker warm-up: pickle {warm['marginal_pickle_s'] * 1e3:.1f} ms, "
        f"shm {warm['marginal_shm_s'] * 1e3:.1f} ms "
        f"({warm['marginal_speedup']:.1f}x lower)"
    )
    for variant, batch in report["batch"].items():
        print(
            f"batch makespan p50/p99 ({variant}): pickled whole-query "
            f"{batch['pickle']['p50_s'] * 1e3:.1f}/{batch['pickle']['p99_s'] * 1e3:.1f} ms, "
            f"shm chunk dispatch "
            f"{batch['shm_chunk']['p50_s'] * 1e3:.1f}/{batch['shm_chunk']['p99_s'] * 1e3:.1f} ms "
            f"(p99 {batch['p99_speedup']:.2f}x, {batch['steals']} steals)"
        )
    print(f"scores bit-for-bit identical: {report['scores_identical']}")
    out = args.out if args.out is not None else "BENCH_shm.json"
    if out != "-":
        write_bench_report(report, out)
        print(f"wrote {out}")
    return 0


def _cmd_bench_pipeline(args) -> int:
    from repro.platform import OracleDivergence, run_pipeline_bench, write_bench_report

    if args.smoke:
        workload = dict(
            num_subjects=args.subjects if args.subjects is not None else 250,
            num_queries=args.queries if args.queries is not None else 1,
            query_len=args.query_len if args.query_len is not None else 200,
            num_homologs=args.homologs,
            repeats=1,
        )
    else:
        workload = dict(
            num_subjects=args.subjects if args.subjects is not None else 1500,
            num_queries=args.queries if args.queries is not None else 2,
            query_len=args.query_len if args.query_len is not None else 250,
            num_homologs=args.homologs,
            repeats=args.repeats,
        )
    try:
        report = run_pipeline_bench(
            min_len=args.min_len,
            max_len=args.max_len,
            threshold=args.threshold,
            **workload,
        )
    except OracleDivergence as exc:
        print(f"ORACLE DIVERGENCE: {exc}", file=sys.stderr)
        return 2
    full = report["fullscan"]
    rows = [
        [
            "full scan (oracle)",
            f"{full['seconds'] * 1e3:.1f}",
            f"{full['gcups']:.4f}",
            "1.00",
            "-",
            str(full["oracle_hits"]),
            "-",
        ]
    ]
    rows += [
        [
            f"pipeline {name}",
            f"{r['seconds'] * 1e3:.1f}",
            f"{r['effective_gcups']:.4f}",
            f"{r['speedup_vs_fullscan']:.2f}",
            f"{r['filter_rate']:.1%}",
            str(r["hits_reported"]),
            str(r["hits_lost"]),
        ]
        for name, r in report["presets"].items()
    ]
    print(
        ascii_table(
            [
                "Search path",
                "Pass ms",
                "Eff GCUPS",
                "Speedup",
                "Filtered",
                "Hits",
                "Lost",
            ],
            rows,
        )
    )
    print(f"best effective speedup vs full scan: {report['best_speedup']:.2f}x")
    print("reported scores bit-identical to the exact oracle: True")
    out = args.out if args.out is not None else "BENCH_pipeline.json"
    if out != "-":
        write_bench_report(report, out)
        print(f"wrote {out}")
    return 0


def _cmd_bench_router(args) -> int:
    from repro.platform import ClusterDivergence, run_router_bench, write_bench_report

    if args.smoke:
        workload = dict(
            num_sequences=args.subjects if args.subjects is not None else 36,
            mean_length=150,
            num_queries=args.queries if args.queries is not None else 4,
            query_scale=0.02,
        )
    else:
        workload = dict(
            num_sequences=args.subjects if args.subjects is not None else 120,
            mean_length=400,
            num_queries=args.queries if args.queries is not None else 8,
            query_scale=0.05,
        )
    try:
        report = run_router_bench(num_shards=args.shards, **workload)
    except ClusterDivergence as exc:
        print(f"CLUSTER DIVERGENCE: {exc}", file=sys.stderr)
        return 2
    rows = [
        [
            str(size["shards"]),
            f"{size['seconds'] * 1e3:.1f}",
            f"{size['aggregate_gcups']:.4f}",
            f"{size['queries_per_s']:.2f}",
            str(size["hits_identical"]),
        ]
        for size in report["sizes"].values()
    ]
    print(
        ascii_table(
            ["Shards", "Wall ms", "Agg GCUPS", "Queries/s", "Hits identical"], rows
        )
    )
    print(
        f"speedup at {args.shards} shards vs 1: {report['speedup']:.2f}x "
        f"(scaling efficiency {report['scaling_efficiency']:.1%}; "
        f"wall-clock scaling needs >= {args.shards} CPU cores)"
    )
    print("merged top-k bit-identical to the unsharded oracle: True")
    out = args.out if args.out is not None else "BENCH_router.json"
    if out != "-":
        write_bench_report(report, out)
        print(f"wrote {out}")
    return 0


def _cmd_bench_sched(args) -> int:
    from repro.platform import run_sched_bench, write_bench_report

    report = run_sched_bench(
        num_subjects=args.subjects if args.subjects is not None else 160,
        min_len=args.min_len,
        max_len=args.max_len,
        query_len=args.query_len if args.query_len is not None else 150,
        num_queries=args.queries if args.queries is not None else 6,
        smoke=args.smoke,
    )
    oneshot = report["oneshot"]["batch_wall"]
    rolling = report["rolling"]["batch_wall"]
    rows = [
        [
            "oneshot (stale rates)",
            f"{oneshot['mean_s'] * 1e3:.1f}",
            f"{oneshot['p50_s'] * 1e3:.1f}",
            f"{oneshot['p99_s'] * 1e3:.1f}",
            "-",
        ],
        [
            "rolling (live rates)",
            f"{rolling['mean_s'] * 1e3:.1f}",
            f"{rolling['p50_s'] * 1e3:.1f}",
            f"{rolling['p99_s'] * 1e3:.1f}",
            str(report["rolling"]["reallocations"]),
        ],
    ]
    print(ascii_table(["Calibration", "Mean ms", "p50 ms", "p99 ms", "Reallocs"], rows))
    drill = report["drill"]
    print(
        f"drill: {', '.join(drill['slowed_workers'])} slowed by "
        f"{drill['slow_seconds'] * 1e3:.0f} ms/task over {drill['batches']} batches"
    )
    final = report["rolling"]["final_rates_gcups"]
    print(
        "rolling final rates: "
        + ", ".join(f"{k}={v:.4f}" for k, v in sorted(final.items()))
        + f" GCUPS (seeded {report['rates_initial_gcups']})"
    )
    print(f"p99 improvement rolling vs oneshot: {report['p99_improvement']:.2f}x")
    policy_rows = [
        [policy, f"{cell['wall_s'] * 1e3:.1f}"]
        for policy, cell in report["policies"].items()
    ]
    print(ascii_table(["Policy", "Batch ms"], policy_rows))
    print(f"scores bit-for-bit identical across all legs: {report['scores_identical']}")
    out = args.out if args.out is not None else "BENCH_sched.json"
    if out != "-":
        write_bench_report(report, out)
        print(f"wrote {out}")
    return 0


def _cmd_serve(args) -> int:
    from repro.service import SearchService

    database = _load_db(args.database)
    pipeline = None
    if args.pipeline is not None:
        from repro.engine.pipeline import preset_config

        pipeline = preset_config(args.pipeline)
    service = SearchService(
        database,
        host=args.host,
        port=args.port,
        num_cpu_workers=args.cpus,
        num_gpu_workers=args.gpus,
        backend=args.backend,
        policy=args.policy,
        top_hits=args.top,
        data_plane=args.data_plane,
        dispatch=args.dispatch,
        max_queue=args.queue_size,
        max_batch=args.batch_size,
        calibrate=args.calibrate,
        pipeline=pipeline,
        calibration=args.calibration,
        kernel_backend=args.kernel_backend,
    )
    service.start()
    host, port = service.address
    mode = f", pipeline {args.pipeline}" if args.pipeline is not None else ""
    print(
        f"serving {database.name} ({len(database)} seqs, "
        f"{database.total_residues} residues) on {host}:{port} "
        f"[{args.backend}, {args.cpus} cpu + {args.gpus} gpu workers, "
        f"policy {args.policy}{mode}]"
    )
    print("Ctrl-C (or the 'shutdown' verb) drains and exits.")
    service.serve_forever()
    print("service stopped")
    return 0


def _cmd_query(args) -> int:
    import json as json_mod

    from repro.sequences import read_fasta
    from repro.service import SearchClient

    queries = read_fasta(args.queries)
    if not queries:
        print("error: no query records found", file=sys.stderr)
        return 1
    pipeline = True if args.pipeline else (False if args.exact else None)
    failures = 0
    with SearchClient(args.host, args.port) as client:
        for q in queries:
            client.submit(q, top=args.top, pipeline=pipeline)
        for outcome in client.collect(len(queries)):
            if args.json:
                print(json_mod.dumps(outcome))
                if outcome["type"] != "result":
                    failures += 1
                continue
            if outcome["type"] == "result":
                hits = ", ".join(f"{sid}:{score}" for sid, score in outcome["hits"])
                print(
                    f"  {outcome['id']}: {hits}  "
                    f"({outcome['latency_s'] * 1e3:.1f} ms, "
                    f"queue {outcome['queue_wait_s'] * 1e3:.1f} ms, "
                    f"{outcome['worker']})"
                )
            elif outcome["type"] == "rejected":
                failures += 1
                print(
                    f"  {outcome['id']}: REJECTED ({outcome['reason']}; "
                    f"retry after {outcome['retry_after_s']:.2f}s)"
                )
            else:
                failures += 1
                print(f"  {outcome.get('id', '?')}: ERROR {outcome['reason']}")
    return 1 if failures else 0


def _cmd_db(args) -> int:
    import json as json_mod

    from repro.service import SearchClient

    records = None
    if args.db_command == "append":
        from repro.sequences import read_fasta

        records = read_fasta(args.sequences)
        if not records:
            print("error: no records found", file=sys.stderr)
            return 1
    with SearchClient(args.host, args.port) as client:
        if args.db_command == "append":
            answer = client.db_append(records)
        elif args.db_command == "retire":
            answer = client.db_retire(args.ids)
        else:
            answer = {"type": "db_info", "generation": client.db_info()}
    if args.json:
        print(json_mod.dumps(answer))
        return 0 if answer.get("type") == "db_info" else 1
    if answer.get("type") != "db_info":
        print(f"error: {answer.get('reason', answer)}", file=sys.stderr)
        return 1
    gen = answer["generation"]
    mutation = ""
    if gen.get("appended"):
        mutation = f" (+{gen['appended']} appended)"
    elif gen.get("retired"):
        mutation = f" (-{gen['retired']} retired)"
    print(
        f"generation {gen['ordinal']}{mutation}: "
        f"{gen['num_sequences']} sequences, {gen['total_residues']} residues "
        f"[{gen['name']} @ {gen['fingerprint'][:12]}]"
    )
    if answer.get("swapped"):
        print(
            "swap applied atomically; queries admitted before it "
            "completed on the previous generation"
        )
    return 0


def _cmd_stats(args) -> int:
    import json as json_mod

    from repro.service import SearchClient

    with SearchClient(args.host, args.port) as client:
        snapshot = client.stats()
    if args.json:
        print(json_mod.dumps(snapshot, indent=2))
        return 0
    req = snapshot["requests"]
    print(
        f"uptime {snapshot['uptime_s']:.1f}s — "
        f"{req['received']} received, {req['completed']} completed, "
        f"{req['rejected']} rejected, {req['errors']} errors, "
        f"queue {req['queue_depth']}, in-flight {req['in_flight']}"
    )
    kb = snapshot.get("kernel_backend")
    if kb:
        line = kb["name"] + (f" ({kb['version']})" if kb.get("version") else "")
        if kb.get("fallback_reason"):
            line += f" [fallback: {kb['fallback_reason']}]"
        print(f"kernel backend: {line} (requested {kb['requested']})")
    dbinfo = snapshot.get("database")
    if dbinfo:
        print(
            f"database: generation {dbinfo['ordinal']} "
            f"({dbinfo['num_sequences']} sequences, "
            f"{dbinfo['total_residues']} residues, "
            f"{dbinfo.get('swaps', 0)} live swaps) "
            f"[{dbinfo['name']} @ {dbinfo['fingerprint'][:12]}]"
        )
    lat = snapshot["latency"]
    wait = snapshot["queue_wait"]
    print(
        f"latency mean {lat['mean_s'] * 1e3:.1f} ms "
        f"(p50 {lat['p50_s'] * 1e3:.1f} / p90 {lat['p90_s'] * 1e3:.1f} / "
        f"p99 {lat['p99_s'] * 1e3:.1f} / max {lat['max_s'] * 1e3:.1f} ms), "
        f"throughput {snapshot['throughput_qps']:.2f} q/s"
    )
    print(
        f"queue wait mean {wait['mean_s'] * 1e3:.1f} ms "
        f"(p50 {wait['p50_s'] * 1e3:.1f} / p90 {wait['p90_s'] * 1e3:.1f} / "
        f"p99 {wait['p99_s'] * 1e3:.1f} / max {wait['max_s'] * 1e3:.1f} ms)"
    )
    recovery = snapshot.get("recovery")
    if recovery:
        print(
            f"recovery: {recovery['worker_deaths']} worker deaths, "
            f"{recovery['task_retries']} retries, "
            f"{recovery['tasks_requeued']} requeued, "
            f"{recovery['tasks_quarantined']} quarantined"
        )
    pipeline = snapshot.get("pipeline")
    if pipeline and pipeline.get("subjects_scanned"):
        print(
            f"pipeline: {pipeline['subjects_scanned']} scanned, "
            f"{pipeline['seeds_found']} seeds, "
            f"{pipeline['banded_survivors']} banded, "
            f"{pipeline['rescored']} rescored, "
            f"{pipeline['reported']} reported "
            f"({pipeline['filter_rate']:.1%} filtered before DP)"
        )
    rows = [
        [
            kind,
            role["workers"],
            role["tasks"],
            role.get("steals", 0),
            f"{role['busy_seconds']:.2f}",
            f"{role['gcups']:.3f}",
            f"{role['utilization']:.1%}",
        ]
        for kind, role in snapshot["roles"].items()
    ]
    print(
        ascii_table(
            ["Role", "Workers", "Tasks", "Steals", "Busy s", "GCUPS", "Util"], rows
        )
    )
    return 0


def _cmd_cluster(args) -> int:
    handlers = {
        "serve": _cmd_cluster_serve,
        "query": _cmd_cluster_query,
        "stats": _cmd_cluster_stats,
    }
    return handlers[args.cluster_command](args)


def _cmd_cluster_serve(args) -> int:
    from repro.cluster import ScatterGatherRouter, ShardManager, load_topology

    if (args.database is None) == (args.topology is None):
        print(
            "error: give a database to shard OR --topology, not both",
            file=sys.stderr,
        )
        return 2
    if args.topology is not None:
        topology = load_topology(args.topology)
        manager = ShardManager(topology=topology)
        origin = f"adopted topology {topology.name} ({len(topology)} shards)"
    else:
        database = _load_db(args.database)
        manager = ShardManager(
            database=database,
            num_shards=args.shards,
            start_method=args.start_method,
            max_restarts=args.max_restarts,
            service_kwargs=dict(
                num_cpu_workers=args.cpus,
                num_gpu_workers=args.gpus,
                backend=args.backend,
                top_hits=args.top,
            ),
        )
        origin = (
            f"{database.name} ({len(database)} seqs, "
            f"{database.total_residues} residues) cut into "
            f"{len(manager.shard_names)} shards"
        )
    manager.start()
    router = ScatterGatherRouter(
        manager,
        host=args.host,
        port=args.port,
        top_hits=args.top,
        shard_timeout_s=args.shard_timeout,
        speculative=not args.no_speculation,
        owns_manager=True,
    )
    router.start()
    host, port = router.address
    print(f"cluster: {origin}")
    print(f"router on {host}:{port} — existing clients work unchanged")
    print("Ctrl-C (or the 'shutdown' verb) drains shards and exits.")
    router.serve_forever()
    print("cluster stopped")
    return 0


def _cmd_cluster_query(args) -> int:
    import json as json_mod

    from repro.sequences import read_fasta
    from repro.service import SearchClient

    queries = read_fasta(args.queries)
    if not queries:
        print("error: no query records found", file=sys.stderr)
        return 1
    pipeline = True if args.pipeline else (False if args.exact else None)
    failures = 0
    with SearchClient(args.host, args.port) as client:
        for q in queries:
            qid = client.submit(
                q, top=args.top, pipeline=pipeline, stream=args.stream or None
            )
            for outcome in client.collect_stream(qid):
                if args.json:
                    print(json_mod.dumps(outcome))
                    if outcome["type"] not in ("result", "partial"):
                        failures += 1
                    continue
                if outcome["type"] == "partial":
                    hits = ", ".join(
                        f"{sid}:{score}" for sid, score in outcome["hits"]
                    )
                    print(
                        f"    [{outcome['shard']}] {hits}  "
                        f"({outcome['latency_s'] * 1e3:.1f} ms)"
                    )
                elif outcome["type"] == "result":
                    hits = ", ".join(
                        f"{sid}:{score}" for sid, score in outcome["hits"]
                    )
                    flag = ""
                    if outcome.get("partial"):
                        failures += 1
                        flag = (
                            f"  PARTIAL (missing "
                            f"{', '.join(outcome.get('shards_failed', []))})"
                        )
                    print(
                        f"  {outcome['id']}: {hits}  "
                        f"({outcome['latency_s'] * 1e3:.1f} ms, "
                        f"{outcome['worker']}){flag}"
                    )
                elif outcome["type"] == "rejected":
                    failures += 1
                    print(
                        f"  {outcome['id']}: REJECTED ({outcome['reason']}; "
                        f"retry after {outcome['retry_after_s']:.2f}s)"
                    )
                else:
                    failures += 1
                    print(f"  {outcome.get('id', '?')}: ERROR {outcome['reason']}")
    return 1 if failures else 0


def _cmd_cluster_stats(args) -> int:
    import json as json_mod

    from repro.service import SearchClient

    with SearchClient(args.host, args.port) as client:
        snapshot = client.stats()
    if args.json:
        print(json_mod.dumps(snapshot, indent=2))
        return 0
    if snapshot.get("kind") != "router":
        print(
            "error: endpoint is a single service, not a cluster router "
            "(use 'swdual stats')",
            file=sys.stderr,
        )
        return 1
    req = snapshot["requests"]
    print(
        f"uptime {snapshot['uptime_s']:.1f}s — "
        f"{req['received']} received, {req['completed']} completed "
        f"({req['partial']} partial), {req['failed']} failed, "
        f"{req['rejected']} rejected, {req['errors']} errors"
    )
    print(
        f"upstream: {req['upstream_retries']} retries, "
        f"{req['refinements']} speculative refinements; "
        f"throughput {snapshot['throughput_qps']:.2f} q/s"
    )
    lat = snapshot["latency"]
    print(
        f"merged latency mean {lat['mean'] * 1e3:.1f} ms "
        f"(p50 {lat['p50'] * 1e3:.1f} / p90 {lat['p90'] * 1e3:.1f} / "
        f"p99 {lat['p99'] * 1e3:.1f} / max {lat['max'] * 1e3:.1f} ms)"
    )
    supervision = snapshot.get("supervision", {})
    rows = []
    for name, shard in snapshot["shards"].items():
        state = supervision.get(name, {}).get("state", "-")
        restarts = supervision.get(name, {}).get("restarts", 0)
        ewma = shard.get("ewma_latency_s")
        rows.append(
            [
                name,
                shard.get("endpoint") or "-",
                state,
                str(shard["queries"]),
                str(shard["failures"]),
                str(restarts),
                f"{ewma * 1e3:.1f}" if ewma is not None else "-",
                str(shard["speculative_k"]),
            ]
        )
    print(
        ascii_table(
            [
                "Shard",
                "Endpoint",
                "State",
                "Queries",
                "Failures",
                "Restarts",
                "EWMA ms",
                "Spec k",
            ],
            rows,
        )
    )
    return 0


def _cmd_chaos(args) -> int:
    import json as json_mod

    from repro.engine import run_chaos

    kinds = tuple(k.strip() for k in args.kinds.split(",") if k.strip())
    queries = database = None
    if args.queries is not None:
        from repro.sequences import read_fasta

        queries = read_fasta(args.queries)
        if not queries:
            print("error: no query records found", file=sys.stderr)
            return 1
    if args.db is not None:
        database = _load_db(args.db)
    report = run_chaos(
        seed=args.seed,
        num_workers=args.workers,
        num_faults=args.faults,
        kinds=kinds,
        queries=queries,
        database=database,
        dispatch=args.dispatch,
        policy=args.policy,
    )
    if args.out:
        with open(args.out, "w") as fh:
            json_mod.dump(report.to_dict(), fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out}", file=sys.stderr)
    if args.json:
        print(json_mod.dumps(report.to_dict(), indent=2))
    else:
        print(report.summary())
        for event in report.events:
            worker = event.get("worker") or "-"
            task = event["task"] if event.get("task") is not None else "-"
            print(
                f"  [{event['seq']}] {event['kind']}: worker={worker} "
                f"task={task} attempt={event.get('attempt') or '-'} "
                f"{event.get('detail') or ''}".rstrip()
            )
    return 0 if report.survived else 1


def _cmd_trace(args) -> int:
    from repro.sequences import read_fasta
    from repro.service import ServiceStats, WarmPool
    from repro.telemetry import tracing
    from repro.telemetry.export import (
        schedule_timeline,
        write_chrome_trace,
        write_schedule_timeline,
    )

    queries = read_fasta(args.queries)
    if not queries:
        print("error: no query records found", file=sys.stderr)
        return 1
    database = _load_db(args.db)
    tracing.drain()  # start from an empty buffer: one batch, one trace
    with tracing.enabled_tracing():
        with WarmPool(
            database,
            num_cpu_workers=args.cpus,
            num_gpu_workers=args.gpus,
            backend=args.backend,
            policy=args.policy,
            top_hits=args.top,
        ) as pool:
            stats = ServiceStats(pool.roster)
            report = pool.run_batch(queries)
            stats.record_batch(report)
        spans = tracing.drain()
    chrome_path = f"{args.out}.chrome.json"
    timeline_path = f"{args.out}.timeline.json"
    write_chrome_trace(spans, chrome_path)
    write_schedule_timeline(spans, timeline_path)
    timeline = schedule_timeline(spans)
    snapshot = stats.snapshot()
    print(
        f"traced {len(queries)} queries against {database.name} on "
        f"{args.cpus} cpu + {args.gpus} gpu workers "
        f"({args.backend}, {args.policy})"
    )
    print(f"wrote {chrome_path} ({len(spans)} spans)")
    print(f"wrote {timeline_path} (makespan {timeline['makespan_s'] * 1e3:.1f} ms)")
    rows = []
    for kind in sorted(set(timeline["roles"]) | set(snapshot["roles"])):
        span_busy = timeline["roles"].get(kind, {}).get("busy_seconds", 0.0)
        stat_busy = snapshot["roles"].get(kind, {}).get("busy_seconds", 0.0)
        drift = abs(span_busy - stat_busy) / stat_busy * 100 if stat_busy else 0.0
        rows.append(
            [kind, f"{span_busy * 1e3:.2f}", f"{stat_busy * 1e3:.2f}", f"{drift:.2f}%"]
        )
    print(ascii_table(["Role", "Trace busy ms", "Stats busy ms", "Drift"], rows))
    return 0


_COMMANDS = {
    "convert": _cmd_convert,
    "align": _cmd_align,
    "info": _cmd_info,
    "search": _cmd_search,
    "simulate": _cmd_simulate,
    "experiment": _cmd_experiment,
    "bench": _cmd_bench,
    "serve": _cmd_serve,
    "query": _cmd_query,
    "stats": _cmd_stats,
    "db": _cmd_db,
    "cluster": _cmd_cluster,
    "chaos": _cmd_chaos,
    "trace": _cmd_trace,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Argument errors exit with argparse's status 2; runtime errors from
    a subcommand (missing files, bad values, unreachable service)
    print one line to stderr and return 2 instead of a traceback.
    """
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (OSError, ValueError) as exc:
        print(f"swdual {args.command}: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
