"""Scoring schemes: substitution matrix + gap model.

The paper's Section II defines two gap models:

* **linear** — every gap character costs ``g`` (Equation 1);
* **affine** (Gotoh) — opening a gap costs ``Gs + Ge`` and each
  extension costs ``Ge`` (Equations 2–4), reflecting that "in nature,
  gaps tend to appear in groups".

A :class:`ScoringScheme` bundles the substitution matrix with either
model and is the single argument every kernel takes, so scoring is
consistent across the scalar reference and all vectorised kernels.

Sign conventions follow the paper: ``gap`` (linear) is the *score added*
per gap (negative); ``gap_open``/``gap_extend`` (affine) are
*penalties* (positive), subtracted as in Equations 3–4.  The widely
used SWIPE/BLAST defaults are gap open 10, extend 1 with BLOSUM62.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sequences.matrices import BLOSUM62, SubstitutionMatrix
from repro.sequences.sequence import Sequence

__all__ = ["GapModel", "ScoringScheme", "default_scheme"]


@dataclass(frozen=True)
class GapModel:
    """Gap parameters for one of the two models.

    Exactly one of the following configurations is valid:

    * linear: ``gap < 0``, ``gap_open`` and ``gap_extend`` both ``None``;
    * affine: ``gap is None``, ``gap_open >= 0`` and ``gap_extend > 0``.
    """

    gap: int | None = None
    gap_open: int | None = None
    gap_extend: int | None = None

    def __post_init__(self) -> None:
        if self.gap is not None:
            if self.gap_open is not None or self.gap_extend is not None:
                raise ValueError("linear model must not set gap_open/gap_extend")
            if self.gap >= 0:
                raise ValueError(f"linear gap score must be negative, got {self.gap}")
        else:
            if self.gap_open is None or self.gap_extend is None:
                raise ValueError("affine model requires gap_open and gap_extend")
            if self.gap_open < 0:
                raise ValueError(f"gap_open penalty must be >= 0, got {self.gap_open}")
            if self.gap_extend <= 0:
                raise ValueError(
                    f"gap_extend penalty must be > 0, got {self.gap_extend}"
                )

    @property
    def is_affine(self) -> bool:
        """True for the Gotoh affine-gap model."""
        return self.gap is None

    @classmethod
    def linear(cls, gap: int) -> "GapModel":
        """Linear model: each gap character adds score *gap* (< 0)."""
        return cls(gap=gap)

    @classmethod
    def affine(cls, gap_open: int, gap_extend: int) -> "GapModel":
        """Affine model with *penalties* ``Gs=gap_open``, ``Ge=gap_extend``."""
        return cls(gap_open=gap_open, gap_extend=gap_extend)


@dataclass(frozen=True)
class ScoringScheme:
    """Substitution matrix + gap model, the full scoring specification."""

    matrix: SubstitutionMatrix
    gaps: GapModel

    def __post_init__(self) -> None:
        if not self.matrix.is_symmetric:
            raise ValueError(
                f"matrix {self.matrix.name!r} is not symmetric; SW assumes "
                "a symmetric substitution matrix"
            )

    @property
    def alphabet(self):
        """The alphabet of the underlying substitution matrix."""
        return self.matrix.alphabet

    @property
    def is_affine(self) -> bool:
        """True for the Gotoh affine-gap model."""
        return self.gaps.is_affine

    def check_sequence(self, seq: Sequence, role: str = "sequence") -> None:
        """Raise if *seq* uses a different alphabet than the matrix."""
        if seq.alphabet.name != self.alphabet.name:
            raise ValueError(
                f"{role} {seq.id!r} uses alphabet {seq.alphabet.name!r}, "
                f"but the scoring matrix expects {self.alphabet.name!r}"
            )

    def profile(self, query: Sequence) -> np.ndarray:
        """Query profile (``len(q) × alphabet``) for vectorised kernels."""
        self.check_sequence(query, "query")
        return self.matrix.profile(query.codes)

    def max_pair_score(self) -> int:
        """Largest single-residue substitution score (used for bounds)."""
        return int(self.matrix.scores.max())


def default_scheme() -> ScoringScheme:
    """BLOSUM62 with affine gaps 10/1 — the SWIPE/CUDASW++ default."""
    return ScoringScheme(matrix=BLOSUM62, gaps=GapModel.affine(10, 1))
