"""Cell-update accounting: the GCUPS metric.

The paper reports performance in **GCUPS** — billion (DP) cell updates
per second — because it normalises wall-clock time by problem size:
comparing a query of length ``|q|`` against a database of ``R`` total
residues updates ``|q| × R`` cells regardless of implementation.  These
helpers centralise that arithmetic so kernels, the simulator and the
experiment reports all count the same thing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["cell_updates", "gcups", "CellUpdateCounter"]


def cell_updates(query_length: int | np.ndarray, database_residues: int) -> int | np.ndarray:
    """DP cells updated when aligning query(s) against *database_residues*.

    Accepts a scalar length or an array of lengths (returns the
    elementwise product; sum it for a whole query set).
    """
    if np.any(np.asarray(query_length) < 0):
        raise ValueError("query_length must be non-negative")
    if database_residues < 0:
        raise ValueError("database_residues must be non-negative")
    return query_length * database_residues


def gcups(cells: float, seconds: float) -> float:
    """Billion cell updates per second for *cells* done in *seconds*."""
    if cells < 0:
        raise ValueError(f"cells must be >= 0, got {cells}")
    if seconds <= 0:
        raise ValueError(f"seconds must be > 0, got {seconds}")
    return cells / seconds / 1e9


@dataclass
class CellUpdateCounter:
    """Accumulates cell updates across many comparisons.

    Workers carry one of these so the engine can report per-PE and
    aggregate GCUPS exactly as the paper's Tables IV/V do.
    """

    total_cells: int = 0
    comparisons: int = 0
    _per_task: list[int] = field(default_factory=list, repr=False)

    def add(self, query_length: int, database_residues: int) -> int:
        """Record one query-vs-database comparison; returns its cells."""
        cells = int(cell_updates(query_length, database_residues))
        self.total_cells += cells
        self.comparisons += 1
        self._per_task.append(cells)
        return cells

    def merge(self, other: "CellUpdateCounter") -> None:
        """Fold another counter into this one (master merging workers)."""
        self.total_cells += other.total_cells
        self.comparisons += other.comparisons
        self._per_task.extend(other._per_task)

    def gcups(self, seconds: float) -> float:
        """Aggregate GCUPS over *seconds* of wall-clock time."""
        return gcups(self.total_cells, seconds)

    def per_task_cells(self) -> list[int]:
        """Cells per recorded comparison, in recording order."""
        return list(self._per_task)
