"""Scalar reference implementation of Smith-Waterman.

Direct transcriptions of the paper's recurrences:

* Equation 1 — linear-gap local alignment (:func:`sw_matrix_linear`);
* Equations 2–4 — Gotoh affine-gap local alignment
  (:func:`sw_matrices_affine`), with ``E``/``F`` tracking gaps in each
  sequence and a first gap costing ``Gs + Ge``.

These run in O(m·n) Python/NumPy-row time and are the ground truth every
vectorised kernel (:mod:`repro.align.sw_vector`, ``sw_batch``,
``sw_striped``, ``sw_wavefront``) is validated against, so they favour
clarity over speed.  ``H`` matrices use ``int32``; ``E``/``F``
boundaries use a large negative sentinel that cannot overflow when a
penalty is subtracted.
"""

from __future__ import annotations

import numpy as np

from repro.align.scoring import ScoringScheme
from repro.sequences.sequence import Sequence

__all__ = [
    "NEG_INF",
    "sw_matrix_linear",
    "sw_matrices_affine",
    "sw_score",
    "sw_score_and_position",
]

#: Effectively minus infinity for int32 DP cells; chosen so that
#: subtracting any realistic penalty cannot wrap around.
NEG_INF = np.int32(-(2**30))


def sw_matrix_linear(query: Sequence, subject: Sequence, scheme: ScoringScheme) -> np.ndarray:
    """Fill the similarity matrix ``H`` of the paper's Equation 1.

    Returns the full ``(m+1, n+1)`` matrix with the zero boundary row
    and column, suitable for traceback.
    """
    if scheme.is_affine:
        raise ValueError("sw_matrix_linear requires a linear-gap scheme")
    scheme.check_sequence(query, "query")
    scheme.check_sequence(subject, "subject")
    g = scheme.gaps.gap
    q, d = query.codes, subject.codes
    m, n = len(q), len(d)
    S = scheme.matrix.scores
    H = np.zeros((m + 1, n + 1), dtype=np.int32)
    for i in range(1, m + 1):
        srow = S[q[i - 1]]
        for j in range(1, n + 1):
            H[i, j] = max(
                H[i - 1, j - 1] + srow[d[j - 1]],
                H[i, j - 1] + g,
                H[i - 1, j] + g,
                0,
            )
    return H


def sw_matrices_affine(
    query: Sequence, subject: Sequence, scheme: ScoringScheme
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fill the Gotoh matrices ``H``, ``E``, ``F`` (Equations 2–4).

    ``E[i, j]`` is the best score of an alignment of the prefixes ending
    with a gap in the *query* (horizontal move); ``F`` with a gap in the
    *subject* (vertical move).  Boundary ``E``/``F`` values are
    :data:`NEG_INF` so a gap can never start from outside the matrix.
    """
    if not scheme.is_affine:
        raise ValueError("sw_matrices_affine requires an affine-gap scheme")
    scheme.check_sequence(query, "query")
    scheme.check_sequence(subject, "subject")
    gs = scheme.gaps.gap_open
    ge = scheme.gaps.gap_extend
    q, d = query.codes, subject.codes
    m, n = len(q), len(d)
    S = scheme.matrix.scores
    H = np.zeros((m + 1, n + 1), dtype=np.int32)
    E = np.full((m + 1, n + 1), NEG_INF, dtype=np.int32)
    F = np.full((m + 1, n + 1), NEG_INF, dtype=np.int32)
    for i in range(1, m + 1):
        srow = S[q[i - 1]]
        for j in range(1, n + 1):
            # Equation 3: gap in the query, extending along the subject.
            E[i, j] = -ge + max(E[i, j - 1], H[i, j - 1] - gs)
            # Equation 4: gap in the subject, extending along the query.
            F[i, j] = -ge + max(F[i - 1, j], H[i - 1, j] - gs)
            # Equation 2.
            H[i, j] = max(
                H[i - 1, j - 1] + srow[d[j - 1]],
                E[i, j],
                F[i, j],
                0,
            )
    return H, E, F


def sw_score(query: Sequence, subject: Sequence, scheme: ScoringScheme) -> int:
    """Best local alignment score (the *similarity* of Section II-A)."""
    return sw_score_and_position(query, subject, scheme)[0]


def sw_score_and_position(
    query: Sequence, subject: Sequence, scheme: ScoringScheme
) -> tuple[int, tuple[int, int]]:
    """Best local score plus the (i, j) cell it occurs in.

    The position indexes the DP matrix (1-based over residues); ties are
    broken toward the smallest ``i`` then ``j``, matching
    ``np.argmax`` on the row-major matrix.
    """
    if scheme.is_affine:
        H, _, _ = sw_matrices_affine(query, subject, scheme)
    else:
        H = sw_matrix_linear(query, subject, scheme)
    flat = int(np.argmax(H))
    i, j = divmod(flat, H.shape[1])
    return int(H[i, j]), (i, j)
