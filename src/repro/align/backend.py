"""Runtime kernel-backend selection (the capability probe).

Every kernel call site (``sw_score_batch``, ``sw_score_striped``,
``sw_score_banded``, the pipeline's banded stage) consults this module
to decide whether to run the numpy kernels or a compiled tier from
:mod:`repro.align.compiled`.  Selection is a *capability probe*, not a
hard dependency:

1. ``numba`` — import-probe :mod:`numba`, warm-compile the tiny
   self-check kernels once.  Any ``ImportError`` or compile failure
   marks the tier unavailable with the reason recorded.
2. ``cc`` — build/load the cached C kernels with the system compiler
   (see :mod:`repro.align.compiled.cc_kernels`); no compiler, no tier.
3. ``numpy`` — always available; the fallback of last resort.

``auto`` (the default) picks the first tier that passes its probe *and*
a warm self-check (the compiled score of a fixed tiny alignment must
equal the known constant), so a toolchain that imports but miscompiles
degrades to numpy instead of corrupting scores.  The resolved choice is
exposed as a :class:`KernelBackendInfo` so operator surfaces (serve
roster, ``swdual stats``, Prometheus) can show which tier is actually
running and why a fallback happened.

Selection knobs:

* ``SWDUAL_KERNEL_BACKEND`` = ``auto`` | ``numba`` | ``cc`` | ``numpy``
  (the ``--kernel-backend`` CLI flag sets the same knob); an explicit
  compiled choice still falls back to numpy — with
  ``fallback_reason`` recorded — rather than failing the process.
* ``SWDUAL_DISABLE_BACKENDS`` — comma-separated tiers to treat as
  unavailable (tests use this to force fallback paths in spawn
  workers, where monkeypatching does not reach).

Worker processes never receive a resolved backend object: only the
*name* travels over spawn/pickle boundaries, and each process re-probes
via :func:`set_active_backend` after it starts (a container image
without numba can host workers for a master that has it, and vice
versa).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

__all__ = [
    "BACKEND_CHOICES",
    "KernelBackendInfo",
    "resolve_backend",
    "backend_kernels",
    "get_kernels",
    "active_backend",
    "set_active_backend",
    "clear_backend_cache",
]

#: Accepted spellings for the env var / CLI flag.
BACKEND_CHOICES = ("auto", "numba", "cc", "numpy")

#: Probe order under ``auto``.
_COMPILED_TIERS = ("numba", "cc")

_ENV_BACKEND = "SWDUAL_KERNEL_BACKEND"
_ENV_DISABLE = "SWDUAL_DISABLE_BACKENDS"


@dataclass(frozen=True)
class KernelBackendInfo:
    """The outcome of one backend resolution."""

    #: Resolved tier actually in use: "numba", "cc" or "numpy".
    name: str
    #: What was asked for ("auto" unless pinned by flag/env).
    requested: str
    #: Toolchain version of the resolved tier (numba version / compiler
    #: banner), ``None`` for numpy.
    version: str | None = None
    #: Why a compiled tier was not used (probe failure chain), ``None``
    #: when the request resolved cleanly.
    fallback_reason: str | None = None

    @property
    def compiled(self) -> bool:
        return self.name != "numpy"

    def describe(self) -> str:
        """One-line operator-facing summary."""
        out = self.name
        if self.version:
            out += f" ({self.version})"
        if self.fallback_reason:
            out += f" [fallback: {self.fallback_reason}]"
        return out


# -- probes -------------------------------------------------------------


def _disabled_tiers() -> frozenset[str]:
    raw = os.environ.get(_ENV_DISABLE, "")
    return frozenset(t.strip() for t in raw.split(",") if t.strip())


def _probe(tier: str):
    """Instantiate one compiled tier's adapter or raise."""
    from repro.align import compiled

    if tier == "numba":
        return compiled.NumbaKernels()
    if tier == "cc":
        return compiled.CcKernels()
    raise ValueError(f"unknown compiled tier {tier!r}")


def _warm_check(kernels) -> None:
    """Run fixed tiny alignments through every kernel entry point and
    compare against known-good constants (warm-compiles numba's jitted
    functions as a side effect — later calls are pure execution)."""
    from repro.align.scoring import GapModel, ScoringScheme
    from repro.align.sw_batch import DTYPE_LADDER, QueryProfile
    from repro.sequences.alphabet import Alphabet
    from repro.sequences.matrices import SubstitutionMatrix
    from repro.sequences.sequence import Sequence

    alphabet = Alphabet("warmcheck", "AB", "A")
    matrix = SubstitutionMatrix(
        "warm", alphabet, np.array([[4, -1], [-1, 4]], dtype=np.int64)
    )
    scheme = ScoringScheme(matrix=matrix, gaps=GapModel.affine(2, 1))
    q = Sequence("wq", np.array([0, 1, 0], dtype=np.uint8), alphabet)
    d = Sequence("wd", np.array([0, 1, 0], dtype=np.uint8), alphabet)
    # Exact local score of ABA vs ABA: three matches on the diagonal.
    expected = 12
    got = kernels.pair(q, d, scheme)
    if got != expected:
        raise RuntimeError(f"pair self-check: got {got}, want {expected}")
    got = kernels.banded(q, d, scheme, None, None, 0)
    if got != expected:
        raise RuntimeError(f"banded self-check: got {got}, want {expected}")
    level = DTYPE_LADDER[0]
    if kernels.chunk_supported(scheme, level):
        codes = np.array([[0, 1, 0], [1, 1, 0]], dtype=np.uint8)
        profile = QueryProfile(q, scheme).padded(level)
        best, saturated = kernels.chunk(q.codes, codes, profile, scheme, level)
        if saturated or best.tolist() != [12, 8]:
            raise RuntimeError(
                f"chunk self-check: got {best.tolist()} "
                f"(saturated={saturated}), want [12, 8]"
            )


# -- resolution ---------------------------------------------------------

# Memoised per (requested, disabled-set); cleared by clear_backend_cache.
_RESOLVED: dict = {}
# Adapter instances per resolved tier name.
_KERNELS: dict = {}
# The process-wide default backend (set_active_backend / first use).
_ACTIVE: KernelBackendInfo | None = None


def _try_tier(tier: str, disabled: frozenset[str]) -> tuple[object, str] | str:
    """Probe one tier; returns ``(kernels, version)`` or a reason."""
    if tier in disabled:
        return f"{tier}: disabled via {_ENV_DISABLE}"
    if tier in _KERNELS:
        return _KERNELS[tier], _KERNELS[tier].version
    try:
        kernels = _probe(tier)
        _warm_check(kernels)
    except ImportError as exc:
        return f"{tier}: not importable ({exc})"
    except Exception as exc:  # compile/load/self-check failures
        return f"{tier}: {exc}"
    _KERNELS[tier] = kernels
    return kernels, kernels.version


def resolve_backend(requested: str | None = None) -> KernelBackendInfo:
    """Resolve *requested* (or the env/default) to an available tier.

    Results are memoised per requested name; the probe (including any
    C compile or numba warm-up) runs at most once per process.
    """
    if requested is None:
        requested = os.environ.get(_ENV_BACKEND, "auto") or "auto"
    requested = requested.strip().lower()
    if requested not in BACKEND_CHOICES:
        raise ValueError(
            f"unknown kernel backend {requested!r}; choose from "
            + "/".join(BACKEND_CHOICES)
        )
    disabled = _disabled_tiers()
    key = (requested, disabled)
    hit = _RESOLVED.get(key)
    if hit is not None:
        return hit
    if requested == "numpy":
        info = KernelBackendInfo(name="numpy", requested=requested)
    else:
        tiers = _COMPILED_TIERS if requested == "auto" else (requested,)
        reasons = []
        info = None
        for tier in tiers:
            outcome = _try_tier(tier, disabled)
            if isinstance(outcome, str):
                reasons.append(outcome)
                continue
            _kernels, version = outcome
            info = KernelBackendInfo(
                name=tier,
                requested=requested,
                version=version,
                fallback_reason="; ".join(reasons) or None,
            )
            break
        if info is None:
            info = KernelBackendInfo(
                name="numpy",
                requested=requested,
                fallback_reason="; ".join(reasons) or None,
            )
    _RESOLVED[key] = info
    return info


def backend_kernels(info: KernelBackendInfo | str | None):
    """The compiled-kernel adapter for *info*, or ``None`` for numpy."""
    if info is None:
        info = active_backend()
    elif isinstance(info, str):
        info = resolve_backend(info)
    if not info.compiled:
        return None
    kernels = _KERNELS.get(info.name)
    if kernels is None:  # e.g. info crossed a process boundary by name
        info = resolve_backend(info.name)
        kernels = _KERNELS.get(info.name)
    return kernels


def get_kernels(backend: KernelBackendInfo | str | None = None):
    """``(info, kernels-or-None)`` for one kernel call.

    *backend* may be ``None`` (use the process-active backend), a
    requested name, or an already-resolved :class:`KernelBackendInfo`.
    """
    if backend is None:
        info = active_backend()
    elif isinstance(backend, str):
        info = resolve_backend(backend)
    else:
        info = backend
    return info, backend_kernels(info)


def active_backend() -> KernelBackendInfo:
    """The process-wide default backend (resolving it on first use)."""
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = resolve_backend(None)
    return _ACTIVE


def set_active_backend(backend: str | KernelBackendInfo | None) -> KernelBackendInfo:
    """Pin the process-wide default backend (spawn workers call this
    with the *name* they were handed — resolution happens locally)."""
    global _ACTIVE
    if backend is None:
        _ACTIVE = None
        return active_backend()
    if isinstance(backend, str):
        backend = resolve_backend(backend)
    _ACTIVE = backend
    return backend


def clear_backend_cache() -> None:
    """Drop all probe results and the active backend (tests)."""
    global _ACTIVE
    _ACTIVE = None
    _RESOLVED.clear()
    _KERNELS.clear()
