"""Linear-space alignment (Hirschberg / Myers-Miller).

The quadratic *space* of the DP matrices is the paper's Section I
complaint ("huge memory requirements"); its reference [6] aligns huge
sequences on GPUs in linear space.  This module implements the
classical linear-space machinery for the affine-gap model:

* :func:`align_global_linear_space` — Myers & Miller's divide-and-
  conquer: O(m·n) time, O(m+n) space, with the two-way midpoint join
  (through a substitution state or through a gap spanning the middle
  row, which saves one gap-open charge).
* :func:`align_local_linear_space` — local alignment in linear space:
  a score-only forward pass finds the optimal end cell, a reverse pass
  on the reversed prefixes finds the start cell, and the enclosed
  segment is aligned globally with the linear-space global routine.

Both produce :class:`~repro.align.traceback.AlignmentResult` objects
identical in score to the quadratic-space traceback (tested, including
rescoring of the emitted alignment).
"""

from __future__ import annotations

import numpy as np

from repro.align.scoring import GapModel, ScoringScheme
from repro.align.traceback import GAP_CHAR, AlignmentResult
from repro.sequences.sequence import Sequence

__all__ = ["align_global_linear_space", "align_local_linear_space"]

_NEG = np.int64(-(2**40))


def _as_affine(scheme: ScoringScheme) -> ScoringScheme:
    if scheme.is_affine:
        return scheme
    return ScoringScheme(
        matrix=scheme.matrix, gaps=GapModel.affine(0, -scheme.gaps.gap)
    )


# ---------------------------------------------------------------------------
# Global alignment (Myers-Miller)
# ---------------------------------------------------------------------------


def align_global_linear_space(
    query: Sequence, subject: Sequence, scheme: ScoringScheme
) -> AlignmentResult:
    """Optimal global alignment in O(m+n) space.

    Scores equal :func:`repro.align.nw.nw_score` with ``mode="global"``.
    """
    scheme = _as_affine(scheme)
    scheme.check_sequence(query, "query")
    scheme.check_sequence(subject, "subject")
    ops: list[str] = []
    _mm_diff(
        query.codes,
        subject.codes,
        scheme.matrix.scores.astype(np.int64),
        np.int64(scheme.gaps.gap_open),
        np.int64(scheme.gaps.gap_extend),
        np.int64(scheme.gaps.gap_open),
        np.int64(scheme.gaps.gap_open),
        ops,
    )
    aligned_q, aligned_s = _ops_to_strings(ops, query.text, subject.text)
    score = _score_alignment(aligned_q, aligned_s, scheme)
    return AlignmentResult(
        score=score,
        query_id=query.id,
        subject_id=subject.id,
        aligned_query=aligned_q,
        aligned_subject=aligned_s,
        query_start=0,
        query_end=len(query),
        subject_start=0,
        subject_end=len(subject),
    )


def _mm_forward(A, B, S, gs, ge, tb):
    """Forward pass: ``CC[j]``/``DD[j]`` for aligning all of *A* against
    ``B[:j]``; ``DD`` requires the alignment to end with a gap in the
    subject (vertical move).  ``tb`` is the gap-open charge at the top
    boundary (0 when continuing a gap across a divide)."""
    n = len(B)
    j_idx = np.arange(1, n + 1, dtype=np.int64)
    CC = np.zeros(n + 1, dtype=np.int64)
    CC[1:] = -(gs + j_idx * ge)
    DD = np.full(n + 1, _NEG, dtype=np.int64)
    for i in range(len(A)):
        srow = S[A[i]][B] if n else np.empty(0, dtype=np.int64)
        open_pen = tb if i == 0 else gs
        # DD: gap in subject (vertical) — extends or opens from CC.
        DD_new = np.maximum(DD - ge, CC - open_pen - ge)
        diag = CC[:-1] + srow
        c = np.maximum(diag, DD_new[1:])
        # CC_new[0]: all of A[:i+1] deleted (vertical gap from origin,
        # open charge tb).  The horizontal chain (gap in query) is the
        # usual prefix scan, seeded by this boundary cell.
        CC_new0 = -(tb + (i + 1) * ge)
        k = np.arange(n, dtype=np.int64)
        a = np.empty(n, dtype=np.int64)
        if n:
            a[0] = CC_new0 - gs
            if n > 1:
                a[1:] = c[:-1] - gs + k[1:] * ge
            E = np.maximum.accumulate(a) - (k + 1) * ge
            CC_row = np.maximum(c, E)
        else:
            CC_row = c
        CC = np.empty(n + 1, dtype=np.int64)
        CC[0] = CC_new0
        CC[1:] = CC_row
        DD = DD_new
        DD[0] = CC_new0  # a vertical gap ending at column 0 == CC there
    return CC, DD


def _mm_diff(A, B, S, gs, ge, tb, te, ops: list[str]) -> None:
    """Myers-Miller recursion emitting ops: 'M' (align pair), 'D' (gap
    in subject / consume A), 'I' (gap in query / consume B)."""
    m, n = len(A), len(B)
    if m == 0:
        ops.extend("I" * n)
        return
    if n == 0:
        ops.extend("D" * m)
        return
    if m == 1:
        _mm_base_single_row(A, B, S, gs, ge, tb, te, ops)
        return
    mid = m // 2
    CC, DD = _mm_forward(A[:mid], B, S, gs, ge, tb)
    RR, SS = _mm_forward(A[mid:][::-1], B[::-1], S, gs, ge, te)
    RR, SS = RR[::-1], SS[::-1]
    # Type 1 join: paths meet in a substitution/normal state at (mid, j).
    join1 = CC + RR
    # Type 2 join: one vertical gap spans the middle rows; merging the
    # two gap halves refunds one open charge.
    join2 = DD + SS + gs
    best1 = int(join1.max())
    best2 = int(join2.max())
    if best1 >= best2:
        j = int(np.argmax(join1))
        _mm_diff(A[:mid], B[:j], S, gs, ge, tb, gs, ops)
        _mm_diff(A[mid:], B[j:], S, gs, ge, gs, te, ops)
    else:
        j = int(np.argmax(join2))
        # The gap covers rows mid-1 and mid (one row from each half).
        _mm_diff(A[: mid - 1], B[:j], S, gs, ge, tb, np.int64(0), ops)
        ops.extend("DD")
        _mm_diff(A[mid + 1 :], B[j:], S, gs, ge, np.int64(0), te, ops)


def _mm_base_single_row(A, B, S, gs, ge, tb, te, ops: list[str]) -> None:
    """Optimal alignment of one residue against B (brute force).

    Either A[0] aligns with some B[j] (gaps around it) or A[0] is
    deleted against all of B.
    """
    n = len(B)
    min_open = np.int64(min(tb, te))
    # Option A: delete A[0]; B fully inserted.
    best = -(min_open + ge) - ((gs + n * ge) if n else np.int64(0))
    best_j = -1
    for j in range(n):
        left = (gs + j * ge) if j else 0
        right = (gs + (n - 1 - j) * ge) if j < n - 1 else 0
        cand = int(S[A[0], B[j]]) - left - right
        if cand > best:
            best = cand
            best_j = j
    if best_j < 0:
        if n:
            ops.extend("I" * n)
        ops.append("D")
        return
    ops.extend("I" * best_j)
    ops.append("M")
    ops.extend("I" * (n - 1 - best_j))


def _ops_to_strings(ops, q_text: str, s_text: str) -> tuple[str, str]:
    qi = si = 0
    aq = []
    asub = []
    for op in ops:
        if op == "M":
            aq.append(q_text[qi])
            asub.append(s_text[si])
            qi += 1
            si += 1
        elif op == "D":
            aq.append(q_text[qi])
            asub.append(GAP_CHAR)
            qi += 1
        else:
            aq.append(GAP_CHAR)
            asub.append(s_text[si])
            si += 1
    if qi != len(q_text) or si != len(s_text):
        raise RuntimeError(
            f"ops consumed {qi}/{len(q_text)} query and {si}/{len(s_text)} "
            "subject residues"
        )
    return "".join(aq), "".join(asub)


def _score_alignment(aq: str, asub: str, scheme: ScoringScheme) -> int:
    gs, ge = scheme.gaps.gap_open, scheme.gaps.gap_extend
    total = 0
    in_gap_q = in_gap_s = False
    for a, b in zip(aq, asub):
        if a == GAP_CHAR:
            total -= ge + (0 if in_gap_q else gs)
            in_gap_q, in_gap_s = True, False
        elif b == GAP_CHAR:
            total -= ge + (0 if in_gap_s else gs)
            in_gap_q, in_gap_s = False, True
        else:
            total += scheme.matrix.score(a, b)
            in_gap_q = in_gap_s = False
    return total


# ---------------------------------------------------------------------------
# Local alignment in linear space
# ---------------------------------------------------------------------------


def _best_cell(query: Sequence, subject: Sequence, scheme: ScoringScheme):
    """Score-only forward pass returning (best, i*, j*) — the maximum H
    cell, ties toward smaller i then j (matching np.argmax row-major)."""
    from repro.align.sw_vector import rowsweep_rows

    best = 0
    best_i = best_j = 0
    for i, (row, _) in enumerate(rowsweep_rows(query, subject, scheme), start=1):
        j = int(np.argmax(row))
        if row[j] > best:
            best = int(row[j])
            best_i, best_j = i, j
    return best, best_i, best_j


def align_local_linear_space(
    query: Sequence, subject: Sequence, scheme: ScoringScheme
) -> AlignmentResult:
    """Optimal local alignment in linear space.

    Same score as :func:`repro.align.traceback.align_local`; the
    alignment itself may differ among co-optimal alignments.
    """
    scheme = _as_affine(scheme)
    scheme.check_sequence(query, "query")
    scheme.check_sequence(subject, "subject")
    best, end_i, end_j = _best_cell(query, subject, scheme)
    if best == 0:
        return AlignmentResult(
            score=0,
            query_id=query.id,
            subject_id=subject.id,
            aligned_query="",
            aligned_subject="",
            query_start=0,
            query_end=0,
            subject_start=0,
            subject_end=0,
        )
    # Reverse pass over the reversed prefixes finds the start cell: the
    # best local alignment of the reversed prefixes ending at their
    # origin-side equals `best` and its end cell mirrors our start.
    rev_q = query[:end_i].reversed()
    rev_s = subject[:end_j].reversed()
    rbest, ri, rj = _best_cell(rev_q, rev_s, scheme)
    if rbest != best:  # pragma: no cover - would indicate a kernel bug
        raise RuntimeError(
            f"reverse pass found {rbest}, forward pass {best}; inconsistent"
        )
    start_i, start_j = end_i - ri, end_j - rj
    segment_q = query[start_i:end_i]
    segment_s = subject[start_j:end_j]
    inner = align_global_linear_space(segment_q, segment_s, scheme)
    return AlignmentResult(
        score=best,
        query_id=query.id,
        subject_id=subject.id,
        aligned_query=inner.aligned_query,
        aligned_subject=inner.aligned_subject,
        query_start=start_i,
        query_end=end_i,
        subject_start=start_j,
        subject_end=end_j,
    )
